//! Million-node streamed broadcast: Theorem 1.1 over a hashed unit-disk
//! deployment of 1,000,000 nodes whose CSR (~1.8 GB) is never built — the
//! engine pulls neighborhoods on demand from the `StreamedUnitDisk` spec
//! (spatial bucket index + scaled hot-neighborhood cache, `O(n)` resident)
//! while `peak_state_bytes` stays a quarter of the materialized cost.
//!
//! This is the same configuration as the `m1_million_disk_single` entry of
//! `BENCH_pipeline.json` (schema 6), with the same leaned recruiting
//! constant (`2·log n` iterations instead of the default `4·log n` — at
//! this scale the default doubles the round count without changing the
//! outcome at the pinned seed). Expect a run of the order of forty minutes
//! on one core (44,940 rounds, ~90M transmissions at mean degree ~452);
//! the bench pins its exact round count.
//!
//! ```sh
//! cargo run --release --example million_stream
//! ```

use broadcast::{Params, Scenario, TopologySpec, Workload};
use std::time::Instant;

fn main() {
    let (n, radius) = (1_000_000usize, 0.012f64);
    let mut params = Params::scaled(n);
    params.recruit_iterations = 2 * params.log_n;
    let scenario = Scenario::new(
        TopologySpec::StreamedUnitDisk { n, radius, graph_seed: 2026 },
        Workload::Single { payload: 0xFEED },
    )
    .params(params)
    .seed(1);
    println!("streaming {n} nodes (disk r={radius}) — no CSR is ever materialized...");

    let t = Instant::now();
    let out = scenario.run();
    let wall = t.elapsed().as_secs_f64();

    // What the same run would pin resident if the disk were materialized:
    // the expected CSR bytes ((n+1)·4 + 2m·4, m = n²·π·r²/2) on top of the
    // identical node state.
    let est_m = (n as f64 * n as f64 * std::f64::consts::PI * radius * radius / 2.0) as usize;
    let csr_bytes = (n + 1) * 4 + 2 * est_m * 4;
    println!(
        "completed: {:?} rounds (cap {}) in {wall:.1}s; peak state {:.0} MB \
         (a materialized CSR alone would add {:.0} MB); act skips {}; transmissions {}",
        out.completion_round,
        out.cap,
        out.peak_state_bytes as f64 / 1e6,
        csr_bytes as f64 / 1e6,
        out.stats.act_skips,
        out.stats.transmissions,
    );
    assert!(out.completion_round.is_some(), "streamed million-node run must complete");
    assert!(out.stats.act_skips > 0, "the wake fast path never engaged");
    assert!(
        4 * out.peak_state_bytes < csr_bytes + out.peak_state_bytes,
        "peak state {} is not well below the materialized cost {}",
        out.peak_state_bytes,
        csr_bytes + out.peak_state_bytes,
    );
}
