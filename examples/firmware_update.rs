//! Firmware update: push a k-packet image to every sensor (Theorem 1.2,
//! known topology), and see what network coding buys over plain routing.
//!
//! ```sh
//! cargo run --release --example firmware_update
//! ```

use baselines::routing::RoutingNode;
use broadcast::multi_message::broadcast_known;
use broadcast::schedule::{EmptyBehavior, SchedLabels, ScheduleConfig, SlowKey};
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::rng::stream_rng;
use radio_sim::{CollisionMode, DoneCheck, NodeId, Simulator};
use rlnc::gf2::BitVec;

fn main() {
    let graph = generators::grid(8, 8); // a warehouse sensor grid
    let params = Params::scaled(graph.node_count());
    let k = 16; // firmware split into 16 packets
    let image: Vec<BitVec> = (0..k as u64).map(|i| BitVec::from_u64(0xF00D + i * 7, 32)).collect();
    println!("pushing a {k}-packet image to {} sensors", graph.node_count());

    let coded = broadcast_known(
        &graph,
        NodeId::new(0),
        &image,
        &params,
        3,
        SlowKey::VirtualDistance,
        EmptyBehavior::Silent,
        4_000_000,
    );
    println!("RLNC over the MMV schedule: {:?} rounds", coded.completion_round.unwrap());

    // Routing baseline on the identical schedule.
    let mut rng = stream_rng(3, 777);
    let (tree, _) = gst::build_gst(
        &graph,
        &[NodeId::new(0)],
        &mut rng,
        &gst::BuildConfig::for_nodes(graph.node_count()),
    );
    let vd = gst::VirtualDistances::compute(&graph, &tree);
    let cfg = ScheduleConfig::from_params(&params);
    let words: Vec<u64> = (0..k as u64).collect();
    let mut sim = Simulator::new(graph.clone(), CollisionMode::NoDetection, 3, |id| {
        let node = RoutingNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), k);
        if id.index() == 0 {
            node.with_messages(&words)
        } else {
            node
        }
    });
    // Routing completion only advances on packet receptions, so the
    // delivery-gated policy is exact and skips the O(n) predicate scan in
    // silent rounds.
    let routing = sim
        .run_until_with(4_000_000, DoneCheck::OnDelivery, |ns| {
            ns.iter().all(RoutingNode::is_complete)
        })
        .expect("routing completes");
    println!("plain routing, same schedule: {routing} rounds");
}
