//! Firmware update: push a k-packet image to every sensor (Theorem 1.2,
//! known topology), and see what network coding buys over plain routing.
//! The coded run goes through the `Scenario` facade; the routing baseline
//! reuses the identical schedule labels on the same graph.
//!
//! ```sh
//! cargo run --release --example firmware_update
//! ```

use baselines::routing::RoutingNode;
use broadcast::schedule::{SchedLabels, ScheduleConfig};
use broadcast::{EmptyBehavior, Params, Scenario, SlowKey, TopologySpec, Workload};
use radio_sim::rng::stream_rng;
use radio_sim::{CollisionMode, DoneCheck, NodeId, Simulator};
use rlnc::gf2::BitVec;

fn main() {
    let warehouse = TopologySpec::Grid { w: 8, h: 8 }; // a warehouse sensor grid
    let k = 16; // firmware split into 16 packets
    let image: Vec<BitVec> = (0..k as u64).map(|i| BitVec::from_u64(0xF00D + i * 7, 32)).collect();

    let scenario = Scenario::new(
        warehouse.clone(),
        Workload::MultiKnown {
            messages: image,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        },
    )
    .seed(3)
    .round_cap(4_000_000);

    let graph = scenario.graph();
    println!("pushing a {k}-packet image to {} sensors", graph.node_count());

    let coded = scenario.run_on(&graph);
    println!("RLNC over the MMV schedule: {:?} rounds", coded.completion_round.unwrap());

    // Routing baseline on the identical schedule.
    let params = Params::scaled(graph.node_count());
    let mut rng = stream_rng(3, 777);
    let (tree, _) = gst::build_gst(
        &graph,
        &[NodeId::new(0)],
        &mut rng,
        &gst::BuildConfig::for_nodes(graph.node_count()),
    );
    let vd = gst::VirtualDistances::compute(&graph, &tree);
    let cfg = ScheduleConfig::from_params(&params);
    let words: Vec<u64> = (0..k as u64).collect();
    let mut sim = Simulator::new(graph.clone(), CollisionMode::NoDetection, 3, |id| {
        let node = RoutingNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), k);
        if id.index() == 0 {
            node.with_messages(&words)
        } else {
            node
        }
    });
    // Routing completion only advances on packet receptions, so the
    // delivery-gated policy is exact and skips the O(n) predicate scan in
    // silent rounds.
    let routing = sim
        .run_until_with(4_000_000, DoneCheck::OnDelivery, |ns| {
            ns.iter().all(RoutingNode::is_complete)
        })
        .expect("routing completes");
    println!("plain routing, same schedule: {routing} rounds");
}
