//! Serving mode, end to end: drives `sweep::serve` with a canned request
//! script and prints the full wire transcript — the same loop `serve`
//! would run over stdin/stdout in production, here over in-memory buffers
//! so the example is self-checking.
//!
//! ```sh
//! cargo run --release --example sweep_server
//! ```
//!
//! The script exercises the whole request surface: a corridor bake-off
//! sweep, a status probe, a deliberately malformed line (the server must
//! answer a typed error and keep serving), a results fetch for the
//! finished sweep, and a submit for an unsupported workload.

use mini_json::Json;
use std::io::BufReader;
use sweep::SweepPool;

fn main() {
    let script = [
        // A two-scenario corridor bake-off over 4 shared seeds.
        r#"{"type":"submit_sweep","id":1,"scenarios":[{"topology":{"kind":"cluster_chain","clusters":20,"size":6},"workload":{"kind":"single","payload":661847}},{"topology":{"kind":"cluster_chain","clusters":20,"size":6},"workload":{"kind":"decay","payload":661847}}],"seed_range":{"start":0,"end":4}}"#,
        // Probe it (it may already be done: status is exact either way).
        r#"{"type":"status","id":2,"sweep":1}"#,
        // A line a buggy client might send: typed error, loop survives.
        r#"{"type":"submit_sweep","id":3,"scenario":{"#,
        // multi_known is deliberately not servable.
        r#"{"type":"submit_sweep","id":4,"scenario":{"topology":{"kind":"path","n":4},"workload":{"kind":"multi_known"}},"seeds":[0]}"#,
    ];
    let input = script.join("\n");
    let mut output: Vec<u8> = Vec::new();
    sweep::serve(BufReader::new(input.as_bytes()), &mut output, SweepPool::new().workers(2));

    // Self-checks: every response parses, the sweep drained to its
    // sweep_done summary, and the malformed line got its typed error.
    let transcript = String::from_utf8(output).expect("server wrote non-UTF-8");
    let responses: Vec<(String, Json)> = transcript
        .lines()
        .map(|l| (l.to_string(), Json::parse(l).expect("server emitted unparseable JSON")))
        .collect();
    let kind = |r: &Json| r.get("type").and_then(Json::as_str).unwrap_or("").to_string();

    // The live wire order is scheduler-dependent — two workers stream
    // outcome lines concurrently with the control loop — so the demo prints
    // a canonical view: submit_ok, outcomes in serial (scenario, order)
    // position, the sweep_done summary, then the control responses. The
    // status_ok progress snapshot is itself timing-dependent (the probe
    // races the runner), so it is asserted on but elided from the print.
    let mut ordered: Vec<&(String, Json)> =
        responses.iter().filter(|(_, r)| kind(r) == "outcome").collect();
    ordered.sort_by_key(|(_, r)| {
        let at = |k| r.get(k).and_then(Json::as_u64).unwrap_or(u64::MAX);
        (at("sweep"), at("scenario"), at("order"))
    });
    println!("--- wire transcript, canonical order ({} request lines) ---", script.len());
    for (line, _) in responses.iter().filter(|(_, r)| kind(r) == "submit_ok") {
        println!("< {line}");
    }
    for (line, _) in ordered {
        println!("< {line}");
    }
    for (line, _) in responses.iter().filter(|(_, r)| kind(r) == "sweep_done") {
        println!("< {line}");
    }
    println!("< (status_ok for id 2 elided: its progress snapshot races the runner)");
    for (line, _) in responses.iter().filter(|(_, r)| kind(r) == "error") {
        println!("< {line}");
    }
    let responses: Vec<Json> = responses.into_iter().map(|(_, r)| r).collect();

    let outcomes = responses.iter().filter(|r| kind(r) == "outcome").count();
    assert_eq!(outcomes, 8, "2 scenarios x 4 seeds must stream 8 outcome lines");

    let done: Vec<&Json> = responses.iter().filter(|r| kind(r) == "sweep_done").collect();
    assert_eq!(done.len(), 1, "the sweep must drain to exactly one sweep_done");
    assert_eq!(done[0].get("cancelled").and_then(Json::as_bool), Some(false));
    let summary = done[0].get("summary").and_then(Json::as_arr).expect("no summary");
    assert_eq!(summary.len(), 2, "one merged-matrix digest per scenario");
    for digest in summary {
        assert_eq!(digest.get("runs").and_then(Json::as_u64), Some(4));
        assert_eq!(digest.get("failures").and_then(Json::as_arr), Some(&[][..]));
    }

    let status: Vec<&Json> = responses.iter().filter(|r| kind(r) == "status_ok").collect();
    assert_eq!(status.len(), 1, "the probe must get exactly one status_ok");
    assert_eq!(status[0].get("sweep").and_then(Json::as_u64), Some(1));
    assert_eq!(status[0].get("total").and_then(Json::as_u64), Some(8));

    let errors: Vec<String> = responses
        .iter()
        .filter(|r| kind(r) == "error")
        .map(|r| r.get("code").and_then(Json::as_str).unwrap_or("").to_string())
        .collect();
    assert!(errors.contains(&"malformed_json".to_string()), "errors: {errors:?}");
    assert!(errors.contains(&"unsupported".to_string()), "errors: {errors:?}");

    println!("--- ok: {} responses, 1 sweep drained, errors typed ---", responses.len());
}
