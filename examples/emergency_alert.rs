//! Emergency alert: one message must reach a whole city-scale mesh fast.
//! Compares the paper's collision-detection broadcast (Theorem 1.1) against
//! the classical Decay baseline on a high-diameter network.
//!
//! ```sh
//! cargo run --release --example emergency_alert
//! ```

use broadcast::decay::{DecayBroadcast, DecayMsg};
use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::{generators, Traversal};
use radio_sim::{CollisionMode, NodeId, Simulator};

fn main() {
    // A long corridor of dense neighborhoods: 20 blocks of 6 radios.
    let graph = generators::cluster_chain(20, 6);
    let d = graph.bfs(NodeId::new(0)).max_level();
    let params = Params::scaled(graph.node_count());
    println!("corridor mesh: {} radios, diameter {}", graph.node_count(), d);

    let ghk = broadcast_single(&graph, NodeId::new(0), 0xA1E57, &params, 1);
    println!(
        "GHK with collision detection: {:?} rounds",
        ghk.completion_round.expect("alert delivered")
    );

    let mut sim = Simulator::new(graph.clone(), CollisionMode::NoDetection, 1, |id| {
        DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(0xA1E57)))
    });
    let decay = sim
        .run_until(5_000_000, |ns| ns.iter().all(DecayBroadcast::is_informed))
        .expect("alert delivered");
    println!("BGI Decay (no CD):            {decay} rounds");
    println!(
        "collision detection pays off once D is large: {}x fewer rounds",
        decay / ghk.completion_round.unwrap().max(1)
    );
}
