//! Emergency alert: one message must reach a whole city-scale mesh fast.
//! Compares the paper's collision-detection broadcast (Theorem 1.1), run
//! adaptively with phase-completion detection, against the classical Decay
//! baseline on a high-diameter network — both declared through the same
//! `Scenario` facade, so the comparison shares topology, params and seed
//! wiring by construction.
//!
//! ```sh
//! cargo run --release --example emergency_alert
//! ```

use broadcast::{Algo, Detail, Scenario, TopologySpec, Workload};
use radio_sim::graph::Traversal;
use radio_sim::NodeId;

fn main() {
    // A long corridor of dense neighborhoods: 20 blocks of 6 radios.
    let corridor = TopologySpec::ClusterChain { clusters: 20, size: 6 };
    let graph = corridor.build();
    let d = graph.bfs(NodeId::new(0)).max_level();
    println!("corridor mesh: {} radios, diameter {}", graph.node_count(), d);

    let ghk = Scenario::new(corridor.clone(), Workload::Single { payload: 0xA1E57 })
        .seed(1)
        .run_on(&graph);
    let ghk_rounds = ghk.completion_round.expect("alert delivered");
    let Detail::Single { plan, .. } = &ghk.detail else { unreachable!() };
    println!(
        "GHK-CD (adaptive T1.1):  {ghk_rounds} rounds \
         (worst-case cap {}, {} rings, phases {:?})",
        ghk.cap, plan.ring_count, ghk.phases,
    );

    let decay = Scenario::new(corridor, Workload::Baseline(Algo::Decay { payload: 0xA1E57 }))
        .seed(1)
        .run_on(&graph);
    let decay_rounds = decay.completion_round.expect("alert delivered");
    println!("BGI Decay (no CD):       {decay_rounds} rounds");

    let ratio = ghk_rounds as f64 / decay_rounds.max(1) as f64;
    println!(
        "adaptive GHK-CD lands at {ratio:.1}x Decay on this mesh (fixed windows needed ~41,000x);\n\
         its worst-case guarantee stays O(D + polylog): cap/actual = {:.0}x headroom",
        ghk.cap as f64 / ghk_rounds as f64
    );
}
