//! Emergency alert: one message must reach a whole city-scale mesh fast.
//! Compares the paper's collision-detection broadcast (Theorem 1.1), run
//! adaptively with phase-completion detection, against the classical Decay
//! baseline on a high-diameter network.
//!
//! ```sh
//! cargo run --release --example emergency_alert
//! ```

use broadcast::decay::{DecayBroadcast, DecayMsg};
use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::{generators, Traversal};
use radio_sim::{CollisionMode, NodeId, Simulator};

fn main() {
    // A long corridor of dense neighborhoods: 20 blocks of 6 radios.
    let graph = generators::cluster_chain(20, 6);
    let d = graph.bfs(NodeId::new(0)).max_level();
    let params = Params::scaled(graph.node_count());
    println!("corridor mesh: {} radios, diameter {}", graph.node_count(), d);

    let ghk = broadcast_single(&graph, NodeId::new(0), 0xA1E57, &params, 1);
    let ghk_rounds = ghk.completion_round.expect("alert delivered");
    println!(
        "GHK-CD (adaptive T1.1):  {ghk_rounds} rounds \
         (worst-case cap {}, {} rings, phases {:?})",
        ghk.plan.total_rounds(),
        ghk.plan.ring_count,
        ghk.phases,
    );

    let mut sim = Simulator::new(graph.clone(), CollisionMode::NoDetection, 1, |id| {
        DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(0xA1E57)))
    });
    let decay = sim
        .run_until(5_000_000, |ns| ns.iter().all(DecayBroadcast::is_informed))
        .expect("alert delivered");
    println!("BGI Decay (no CD):       {decay} rounds");

    let ratio = ghk_rounds as f64 / decay.max(1) as f64;
    println!(
        "adaptive GHK-CD lands at {ratio:.1}x Decay on this mesh (fixed windows needed ~41,000x);\n\
         its worst-case guarantee stays O(D + polylog): cap/actual = {:.0}x headroom",
        ghk.plan.total_rounds() as f64 / ghk_rounds as f64
    );
}
