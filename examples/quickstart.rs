//! Quickstart: declare a scenario, run it. One message crosses an
//! unknown-topology radio network with collision detection (Theorem 1.1),
//! through the `Scenario` facade — the front door to every pipeline and
//! baseline in this repo.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use broadcast::{Detail, Scenario, TopologySpec, Workload};
use radio_sim::graph::Traversal;
use radio_sim::NodeId;

fn main() {
    // A 150-node unit-disk deployment — the classical physical radio model.
    // The spec *describes* the network; the graph is built lazily at run
    // time (swap the spec to change topology, nothing else moves).
    let scenario = Scenario::new(
        TopologySpec::UnitDisk { n: 150, radius: 0.16, graph_seed: 2024 },
        Workload::Single { payload: 0xC0FFEE },
    )
    .seed(7);

    let graph = scenario.graph();
    let d = graph.bfs(NodeId::new(0)).max_level();
    println!("network: {} nodes, {} links, diameter {}", graph.node_count(), graph.edge_count(), d);

    let outcome = scenario.run_on(&graph);
    let Detail::Single { plan, .. } = &outcome.detail else { unreachable!() };
    match outcome.completion_round {
        Some(round) => println!(
            "message delivered to all {} nodes in {} rounds \
             ({} rings, worst-case cap {}, {} in-stretch fast collisions)",
            graph.node_count(),
            round,
            plan.ring_count,
            outcome.cap,
            outcome.audit.fast_collisions_in_stretch,
        ),
        None => println!("broadcast did not finish within the worst-case cap"),
    }
}
