//! Quickstart: broadcast one message through an unknown-topology radio
//! network with collision detection (Theorem 1.1).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::{generators, Traversal};
use radio_sim::rng::stream_rng;
use radio_sim::NodeId;

fn main() {
    // A 150-node unit-disk deployment — the classical physical radio model.
    let mut rng = stream_rng(2024, 0);
    let graph = generators::unit_disk(150, 0.16, &mut rng);
    let d = graph.bfs(NodeId::new(0)).max_level();
    println!("network: {} nodes, {} links, diameter {}", graph.node_count(), graph.edge_count(), d);

    let params = Params::scaled(graph.node_count());
    let outcome = broadcast_single(&graph, NodeId::new(0), 0xC0FFEE, &params, 7);

    match outcome.completion_round {
        Some(round) => println!(
            "message delivered to all {} nodes in {} rounds \
             ({} rings, worst-case cap {}, {} in-stretch fast collisions)",
            graph.node_count(),
            round,
            outcome.plan.ring_count,
            outcome.plan.total_rounds(),
            outcome.audit.fast_collisions_in_stretch,
        ),
        None => println!("broadcast did not finish within the worst-case cap"),
    }
}
