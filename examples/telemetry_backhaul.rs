//! Telemetry backhaul: a gateway streams k sensor frames through a network
//! it has no map of — Theorem 1.3 end to end (collision-wave layering,
//! distributed GST, distributed virtual labels, batched RLNC, FEC handoffs),
//! run **adaptively**: every phase window closes via in-model status beeps
//! as soon as its work is done, with `GhkMultiPlan::total_rounds()` kept as
//! the worst-case cap.
//!
//! ```sh
//! cargo run --release --example telemetry_backhaul
//! ```

use broadcast::multi_message::{broadcast_unknown, BatchMode};
use broadcast::Params;
use radio_sim::graph::{generators, Traversal};
use radio_sim::NodeId;
use rlnc::gf2::BitVec;

fn main() {
    let graph = generators::cluster_chain(6, 6);
    let d = graph.bfs(NodeId::new(0)).max_level();
    let params = Params::scaled(graph.node_count());
    let frames: Vec<BitVec> = (0..8u64).map(|i| BitVec::from_u64(0xBEE0 + i, 32)).collect();
    println!(
        "gateway streaming {} frames across {} unknown-topology nodes (D = {d})",
        frames.len(),
        graph.node_count()
    );

    let out = broadcast_unknown(&graph, NodeId::new(0), &frames, &params, 11, BatchMode::FullK);
    match out.completion_round {
        Some(r) => {
            println!(
                "all frames decoded everywhere after {r} rounds \
                 (worst-case cap {}, {:.0}x headroom)",
                out.rounds_budget,
                out.rounds_budget as f64 / r.max(1) as f64
            );
            println!("  phase breakdown: {:?}", out.phases);
            println!("  channel: {}", out.stats);
        }
        None => println!("streaming failed within {} rounds", out.rounds_budget),
    }
}
