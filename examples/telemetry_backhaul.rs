//! Telemetry backhaul: a gateway streams k sensor frames through a network
//! it has no map of — Theorem 1.3 end to end (collision-wave layering,
//! distributed GST, distributed virtual labels, batched RLNC, FEC handoffs),
//! run **adaptively**: every phase window closes via in-model status beeps
//! as soon as its work is done, with the plan's `total_rounds()` kept as the
//! worst-case cap. Declared through the `Scenario` facade.
//!
//! ```sh
//! cargo run --release --example telemetry_backhaul
//! ```

use broadcast::{BatchMode, Scenario, TopologySpec, Workload};
use radio_sim::graph::Traversal;
use radio_sim::NodeId;
use rlnc::gf2::BitVec;

fn main() {
    let frames: Vec<BitVec> = (0..8u64).map(|i| BitVec::from_u64(0xBEE0 + i, 32)).collect();
    let scenario = Scenario::new(
        TopologySpec::ClusterChain { clusters: 6, size: 6 },
        Workload::MultiUnknown { messages: frames.clone(), batch: BatchMode::FullK },
    )
    .seed(11);

    let graph = scenario.graph();
    let d = graph.bfs(NodeId::new(0)).max_level();
    println!(
        "gateway streaming {} frames across {} unknown-topology nodes (D = {d})",
        frames.len(),
        graph.node_count()
    );

    let out = scenario.run_on(&graph);
    match out.completion_round {
        Some(r) => {
            println!(
                "all frames decoded everywhere after {r} rounds \
                 (worst-case cap {}, {:.0}x headroom)",
                out.cap,
                out.cap as f64 / r.max(1) as f64
            );
            println!("  phase breakdown: {:?}", out.phases);
            println!("  channel: {}", out.stats);
        }
        None => println!("streaming failed within {} rounds", out.cap),
    }
}
