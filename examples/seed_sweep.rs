//! Seed sweep: declarative scenarios, aggregated over a seed range — now
//! fanned out on the work-stealing [`sweep::SweepPool`]. One `SweepProduct`
//! carries every scenario; the pool shards the jobs across workers and
//! merges the shard matrices back into exactly the serial `SeedMatrix`es
//! (the example asserts that, recomputing one sweep serially).
//!
//! ```sh
//! cargo run --release --example seed_sweep             # machine-sized pool
//! cargo run --release --example seed_sweep -- --workers 4
//! SWEEP_WORKERS=1 cargo run --release --example seed_sweep   # serial
//! ```
//!
//! At `--workers 1` the pool runs the jobs inline on the calling thread —
//! same fold path, same matrices, no spawning.

use broadcast::{Algo, Scenario, SeedMatrix, TopologySpec, Workload};
use radio_sim::FaultPlan;
use sweep::{SweepPool, SweepProduct};

/// Worker count: `--workers N` beats `SWEEP_WORKERS=N` beats the machine.
fn worker_flag() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            let n = args.next().and_then(|v| v.parse().ok());
            return Some(n.expect("--workers needs a number"));
        }
    }
    std::env::var("SWEEP_WORKERS").ok().and_then(|v| v.parse().ok())
}

fn main() {
    let corridor = TopologySpec::ClusterChain { clusters: 20, size: 6 };
    let payload = 0xA1E57;

    // The whole bake-off is one product: three scenarios × 5 shared seeds.
    let scenarios = vec![
        Scenario::new(corridor.clone(), Workload::Single { payload }),
        Scenario::new(corridor.clone(), Workload::Baseline(Algo::Decay { payload })),
        Scenario::new(corridor, Workload::Baseline(Algo::Decay { payload }))
            .faults(FaultPlan::none().with_erasure(0.05))
            .round_cap(100_000),
    ];
    let product = SweepProduct::new().scenarios(scenarios.clone()).seeds(0..5);

    let pool = match worker_flag() {
        Some(n) => SweepPool::new().workers(n),
        None => SweepPool::new(),
    };
    println!("sweeping {} jobs on {} worker(s)", product.job_count(), pool.worker_count());
    let matrices: Vec<SeedMatrix> = pool.run(&product);
    let [ghk, decay, lossy] = <[SeedMatrix; 3]>::try_from(matrices).expect("three matrices");

    println!("{}", ghk.report());
    assert!(ghk.all_completed(), "T1.1 failed on seeds {:?}", ghk.failures());
    assert!(ghk.all_within_caps(), "a run exceeded its worst-case cap");

    println!("{}", decay.report());
    assert!(decay.all_completed(), "Decay failed on seeds {:?}", decay.failures());

    let ratio = ghk.mean_rounds().unwrap() / decay.mean_rounds().unwrap().max(1.0);
    println!("mean GHK-CD / mean Decay = {ratio:.1}x over 5 shared seeds");

    // Median and tail views of the same sweeps: the median is robust to one
    // slow seed, and p95 is the tail the paper's w.h.p. bounds speak to.
    let (med, p95) = (ghk.median_rounds().unwrap(), ghk.p95_rounds().unwrap());
    println!("GHK-CD rounds median/p95 = {med}/{p95}");
    assert!(med <= p95, "median cannot exceed p95");
    assert!(
        ghk.best_rounds().unwrap() <= med && p95 <= ghk.worst_rounds().unwrap(),
        "quantiles must sit inside the min..max envelope"
    );

    // Adversarial smoke: the same corridor under 5% packet erasure. Decay
    // degrades gracefully and must still complete on every seed; the sweep
    // label records the fault plan.
    println!("{}", lossy.report());
    assert!(lossy.label.ends_with("+erase(0.05)"), "fault label drifted: {}", lossy.label);
    assert!(lossy.all_completed(), "lossy Decay failed on seeds {:?}", lossy.failures());

    // The executor's contract, checked live: the shard-merged GHK matrix is
    // bit-identical to the serial sweep (full Debug equality).
    let serial = scenarios[0].seeds(0..5);
    assert_eq!(format!("{ghk:?}"), format!("{serial:?}"), "parallel sweep diverged from serial");
    println!("parallel == serial: OK");
}
