//! Seed sweep: one declarative scenario, aggregated over a seed range —
//! `Scenario::seeds` builds the graph once and returns a `SeedMatrix`
//! report, replacing the per-bench copy-pasted seed loops.
//!
//! ```sh
//! cargo run --release --example seed_sweep
//! ```

use broadcast::{Algo, Scenario, TopologySpec, Workload};
use radio_sim::FaultPlan;

fn main() {
    let corridor = TopologySpec::ClusterChain { clusters: 20, size: 6 };

    let ghk = Scenario::new(corridor.clone(), Workload::Single { payload: 0xA1E57 }).seeds(0..5);
    println!("{}", ghk.report());
    assert!(ghk.all_completed(), "T1.1 failed on seeds {:?}", ghk.failures());
    assert!(ghk.all_within_caps(), "a run exceeded its worst-case cap");

    let decay =
        Scenario::new(corridor.clone(), Workload::Baseline(Algo::Decay { payload: 0xA1E57 }))
            .seeds(0..5);
    println!("{}", decay.report());
    assert!(decay.all_completed(), "Decay failed on seeds {:?}", decay.failures());

    let ratio = ghk.mean_rounds().unwrap() / decay.mean_rounds().unwrap().max(1.0);
    println!("mean GHK-CD / mean Decay = {ratio:.1}x over 5 shared seeds");

    // Median and tail views of the same sweeps: the median is robust to one
    // slow seed, and p95 is the tail the paper's w.h.p. bounds speak to.
    let (med, p95) = (ghk.median_rounds().unwrap(), ghk.p95_rounds().unwrap());
    println!("GHK-CD rounds median/p95 = {med}/{p95}");
    assert!(med <= p95, "median cannot exceed p95");
    assert!(
        ghk.best_rounds().unwrap() <= med && p95 <= ghk.worst_rounds().unwrap(),
        "quantiles must sit inside the min..max envelope"
    );

    // Adversarial smoke: the same corridor under 5% packet erasure. Decay
    // degrades gracefully and must still complete on every seed; the sweep
    // label records the fault plan.
    let lossy = Scenario::new(corridor, Workload::Baseline(Algo::Decay { payload: 0xA1E57 }))
        .faults(FaultPlan::none().with_erasure(0.05))
        .round_cap(100_000)
        .seeds(0..5);
    println!("{}", lossy.report());
    assert!(lossy.label.ends_with("+erase(0.05)"), "fault label drifted: {}", lossy.label);
    assert!(lossy.all_completed(), "lossy Decay failed on seeds {:?}", lossy.failures());
}
