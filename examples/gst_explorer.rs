//! GST explorer: build a gathering spanning tree, print its stretch anatomy
//! and verify the collision-freeness property — then broadcast over the
//! same graph through the `Scenario` facade (its `Custom` topology escape
//! hatch) to see the structure put to work.
//!
//! ```sh
//! cargo run --release --example gst_explorer
//! ```

use broadcast::{Scenario, TopologySpec, Workload};
use gst::{build_gst, verify_gst, BuildConfig, VirtualDistances};
use radio_sim::graph::{generators, Traversal};
use radio_sim::rng::stream_rng;
use radio_sim::NodeId;

fn main() {
    let graph = generators::cluster_chain(8, 6);
    let mut rng = stream_rng(5, 0);
    let (tree, report) =
        build_gst(&graph, &[NodeId::new(0)], &mut rng, &BuildConfig::for_nodes(graph.node_count()));
    println!(
        "GST over {} nodes: depth {}, max rank {} (bound {}), built in {} epochs",
        graph.node_count(),
        tree.max_level(),
        tree.max_rank(),
        radio_sim::graph::ceil_log2(graph.node_count()),
        report.epochs
    );

    let stretches = tree.stretches();
    let mut by_rank = std::collections::BTreeMap::<u32, (usize, usize)>::new();
    for s in &stretches {
        let e = by_rank.entry(s.rank).or_default();
        e.0 += 1;
        e.1 = e.1.max(s.len());
    }
    for (rank, (count, longest)) in by_rank {
        println!("  rank {rank}: {count} stretches, longest {longest} nodes");
    }

    let vd = VirtualDistances::compute(&graph, &tree);
    println!(
        "max virtual distance {} (Lemma 3.4 bound {})",
        vd.max(),
        2 * radio_sim::graph::ceil_log2(graph.node_count())
    );

    let violations = verify_gst(&graph, &tree, &[NodeId::new(0)]);
    println!("verifier: {} violations", violations.len());
    let diameter = graph.bfs(NodeId::new(0)).max_level();
    println!("graph diameter {diameter}; stretches let one message cross it in O(D + log^2 n)");

    // The same graph through the front door: Theorem 1.1 end to end.
    let out = Scenario::new(TopologySpec::custom(graph), Workload::Single { payload: 0x6E57 })
        .seed(5)
        .run();
    match out.completion_round {
        Some(r) => {
            println!("scenario run (T1.1 on this graph): delivered in {r} rounds (cap {})", out.cap)
        }
        None => println!("scenario run did not finish within the cap"),
    }
}
