//! Degradation suite: how the adaptive GHK pipelines hold up against the
//! Decay baseline under seeded adversarial channels (ROADMAP item 3 — the
//! paper's robustness story, exercised for the first time).
//!
//! Two halves:
//!
//! * **Bit-identity.** `FaultPlan::none()` must keep every historical round
//!   pin — corridor 677, unit-disk 2146, telemetry 3308, firmware 5011 —
//!   and the full channel trace, so the fault layer is provably invisible
//!   when disabled.
//! * **Degradation pins.** GHK-vs-Decay completion under erasure
//!   p ∈ {0.05, 0.2}, one scheduled jammer, 1% per-round edge churn,
//!   unit-disk mobility at two epoch lengths, and a combined
//!   erasure+jammer plan on the corridor and grid specs. Exact per-seed
//!   completion rounds are pinned (runs are deterministic, so any drift is
//!   a semantic change); cap-outs are recorded as `None` through the
//!   [`SeedMatrix`].
//!
//! The finding these pins freeze: with the staged recovery ladder
//! (status-beep majority voting, one handoff retry, then ring-local
//! repair → regional re-dissemination → no-knowledge Decay fallback) the
//! adaptive Theorem 1.1 pipeline completes on **every** seed of **every**
//! fault class on both topologies, within its worst-case cap. Faults still
//! corrupt the collision/silence signals the phase machinery feeds on —
//! which is why the faulted runs land one to two orders of magnitude above
//! Decay (which merely slows down) — but they no longer strand the run,
//! and the ladder keeps the tail local: on the deep corridor, where the
//! recovery PR's retry-then-flood scheme landed up to 250× Decay, repairing
//! only the failed ring before escalating holds every seed within 60×.
//! (The shallow grid keeps the 250× bound: its paired Decay runs finish in
//! tens of rounds, so the ratio is dominated by Decay's head start rather
//! than by recovery cost.) Collision detection's clean-channel
//! round-complexity still costs resilience; the recovery ladder caps that
//! cost at degradation instead of failure.

use broadcast::multi_message::BatchMode;
use broadcast::{Algo, Scenario, SeedMatrix, TopologySpec, Workload};
use radio_sim::FaultPlan;
use rlnc::gf2::BitVec;

/// The emergency-alert corridor (E1): 20 cliques of 6, diameter-dominated.
fn corridor() -> TopologySpec {
    TopologySpec::ClusterChain { clusters: 20, size: 6 }
}

/// The firmware-update grid (E3 family): shallow, well-connected.
fn grid() -> TopologySpec {
    TopologySpec::Grid { w: 6, h: 6 }
}

/// The bench's multi-message payloads.
fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64(0xBEE0 + i, 32)).collect()
}

/// Per-seed completion rounds of a matrix, in sweep order.
fn completions(m: &SeedMatrix) -> Vec<Option<u64>> {
    m.runs.iter().map(|r| r.outcome.completion_round).collect()
}

/// Pins one GHK-vs-Decay degradation scenario: both algorithms swept over
/// seeds 1..4 under the same fault plan, exact completion rounds asserted.
/// Completed GHK runs must also stay within the theorem's worst-case cap.
fn pin_degradation(
    spec: TopologySpec,
    plan: FaultPlan,
    ghk_expected: [Option<u64>; 3],
    decay_expected: [Option<u64>; 3],
) {
    let ghk = Scenario::new(spec.clone(), Workload::Single { payload: 0xA1E57 })
        .faults(plan.clone())
        .seeds(1..4);
    let decay = Scenario::new(spec, Workload::Baseline(Algo::Decay { payload: 0xA1E57 }))
        .round_cap(100_000)
        .faults(plan)
        .seeds(1..4);
    assert_eq!(completions(&ghk), ghk_expected, "GHK drifted: {}", ghk.report());
    assert_eq!(completions(&decay), decay_expected, "Decay drifted: {}", decay.report());
    for run in &ghk.runs {
        if run.outcome.completion_round.is_some() {
            assert!(
                run.outcome.completed_within_cap(),
                "seed {} completed beyond the worst-case cap",
                run.seed
            );
        }
    }
}

/// 5% Bernoulli packet erasure per (transmitter, receiver) copy.
fn erase05() -> FaultPlan {
    FaultPlan::none().with_erasure(0.05)
}

/// 20% erasure — a heavily lossy channel.
fn erase20() -> FaultPlan {
    FaultPlan::none().with_erasure(0.2)
}

/// One jammer parked on node 30, injecting collisions every other round.
fn one_jammer() -> FaultPlan {
    FaultPlan::none().with_jammer(30, 2, 0)
}

/// 1% per-round edge churn (links flap independently each round).
fn churn1pct() -> FaultPlan {
    FaultPlan::none().with_churn(1, 0.0, 0.01)
}

/// The combined adversary: lossy channel *and* a scheduled jammer at once,
/// so erased signal and fabricated collisions corrupt the status reads in
/// both directions simultaneously — the plan most likely to need the
/// ladder's structural rungs rather than voting alone.
fn erase05_plus_jammer() -> FaultPlan {
    FaultPlan::none().with_erasure(0.05).with_jammer(30, 2, 0)
}

/// Unit-disk mobility on the 120-node corridor: positions re-sampled every
/// `epoch` rounds at radius 0.4 (well above the ~0.11 connectivity
/// threshold for 120 uniform nodes), so the chain the pipeline constructed
/// over is repeatedly replaced by a fresh random deployment.
fn corridor_mobility(epoch: u64) -> FaultPlan {
    FaultPlan::none().with_mobility(0.4, epoch)
}

/// Unit-disk mobility for the 36-node grid (radius 0.35 vs its ~0.18
/// connectivity threshold).
fn grid_mobility(epoch: u64) -> FaultPlan {
    FaultPlan::none().with_mobility(0.35, epoch)
}

// ---------------------------------------------------------------------------
// Corridor: before the recovery layer, every fault class capped the deep
// 20-cluster pipeline out (all pins were `None`); now voting, handoff
// retries and the Decay fallback carry every seed to bounded completion.
// ---------------------------------------------------------------------------

#[test]
fn corridor_recovers_under_light_erasure() {
    pin_degradation(
        corridor(),
        erase05(),
        [Some(2241), Some(4313), Some(2572)],
        [Some(157), Some(157), Some(163)],
    );
}

#[test]
fn corridor_recovers_under_heavy_erasure() {
    pin_degradation(
        corridor(),
        erase20(),
        [Some(6183), Some(6180), Some(6224)],
        [Some(199), Some(169), Some(169)],
    );
}

#[test]
fn corridor_recovers_under_one_jammer() {
    pin_degradation(
        corridor(),
        one_jammer(),
        [Some(3494), Some(3551), Some(3514)],
        [Some(149), Some(148), Some(148)],
    );
}

#[test]
fn corridor_recovers_under_churn() {
    pin_degradation(
        corridor(),
        churn1pct(),
        [Some(4485), Some(3822), Some(3810)],
        [Some(627), Some(218), Some(1255)],
    );
}

#[test]
fn corridor_recovers_under_fast_mobility() {
    // Epoch 8: the deployment re-samples faster than any single phase
    // window, so the pipeline effectively runs over a time-averaged dense
    // graph — construction completes at near-clean speed.
    pin_degradation(
        corridor(),
        corridor_mobility(8),
        [Some(1010), Some(986), Some(982)],
        [Some(34), Some(20), Some(34)],
    );
}

#[test]
fn corridor_recovers_under_slow_mobility() {
    // Epoch 128: each deployment lives long enough for real phase progress,
    // then is yanked away — the worst cadence for structure-carrying
    // pipelines (re-learn per epoch) while structure-free Decay just rides
    // each fresh small-diameter unit disk.
    pin_degradation(
        corridor(),
        corridor_mobility(128),
        [Some(5444), Some(5266), Some(4724)],
        [Some(154), Some(152), Some(139)],
    );
}

/// The combined adversary runs corridor recovery end to end: every seed
/// climbs the ladder (rung-1 ring repair observed on all three), which is
/// the `ring_repairs > 0` acceptance pin for this PR.
#[test]
fn corridor_recovers_under_combined_erasure_and_jamming() {
    pin_degradation(
        corridor(),
        erase05_plus_jammer(),
        [Some(4724), Some(5333), Some(3507)],
        [Some(149), Some(155), Some(148)],
    );
    let ghk = Scenario::new(corridor(), Workload::Single { payload: 0xA1E57 })
        .faults(erase05_plus_jammer())
        .seeds(1..4);
    for run in &ghk.runs {
        assert!(
            run.outcome.stats.ring_repairs > 0,
            "seed {}: combined faults must push recovery through rung 1 \
             (stats: {:?})",
            run.seed,
            run.outcome.stats
        );
    }
}

// ---------------------------------------------------------------------------
// Grid: erasure and churn already mostly spared the shallow grid; the
// recovery layer closes the remaining gaps (the churn seed that used to cap
// out, and the every-other-round jammer that used to break the pipeline).
// ---------------------------------------------------------------------------

#[test]
fn grid_recovers_under_light_erasure() {
    pin_degradation(
        grid(),
        erase05(),
        [Some(964), Some(4007), Some(2401)],
        [Some(29), Some(20), Some(32)],
    );
}

#[test]
fn grid_recovers_under_heavy_erasure() {
    pin_degradation(
        grid(),
        erase20(),
        [Some(2196), Some(2475), Some(3853)],
        [Some(26), Some(32), Some(31)],
    );
}

#[test]
fn grid_recovers_under_one_jammer() {
    pin_degradation(
        grid(),
        one_jammer(),
        [Some(3349), Some(3396), Some(3051)],
        [Some(44), Some(22), Some(44)],
    );
}

#[test]
fn grid_recovers_under_churn() {
    pin_degradation(
        grid(),
        churn1pct(),
        [Some(2566), Some(3407), Some(2422)],
        [Some(25), Some(28), Some(38)],
    );
}

#[test]
fn grid_recovers_under_fast_mobility() {
    pin_degradation(
        grid(),
        grid_mobility(8),
        [Some(1617), Some(1555), Some(1307)],
        [Some(16), Some(32), Some(18)],
    );
}

#[test]
fn grid_recovers_under_slow_mobility() {
    pin_degradation(
        grid(),
        grid_mobility(128),
        [Some(2876), Some(3843), Some(6223)],
        [Some(32), Some(27), Some(44)],
    );
}

#[test]
fn grid_recovers_under_combined_erasure_and_jamming() {
    pin_degradation(
        grid(),
        erase05_plus_jammer(),
        [Some(3784), Some(3785), Some(4309)],
        [Some(44), Some(27), Some(32)],
    );
}

/// The acceptance headline in executable form: under **each** fault class on
/// **both** topologies, the adaptive pipeline completes on every seed where
/// Decay completes (same fault plan, same master seeds), within its
/// worst-case cap, and within a bounded multiple of the paired Decay run —
/// degradation with a bounded constant, not failure. The corridor bound is
/// 60× (the recovery ladder's headline win — it was 250× when the only
/// recovery was retry-then-global-flood); the shallow grid keeps 250×
/// because its paired Decay runs finish in tens of rounds, making the
/// ratio mostly Decay's head start.
/// A (topology, Decay-ratio bound, mobility-plan builder) row of the
/// headline matrix below.
type RatioSpec = (TopologySpec, u64, fn(u64) -> FaultPlan);

#[test]
fn adaptive_pipeline_completes_within_bounded_decay_ratio_under_every_fault_class() {
    let specs: [RatioSpec; 2] = [(corridor(), 60, corridor_mobility), (grid(), 250, grid_mobility)];
    for (spec, ratio, mobility) in specs {
        for plan in [
            erase05(),
            erase20(),
            one_jammer(),
            churn1pct(),
            erase05_plus_jammer(),
            mobility(8),
            mobility(128),
        ] {
            let ghk = Scenario::new(spec.clone(), Workload::Single { payload: 0xA1E57 })
                .faults(plan.clone())
                .seeds(1..4);
            let decay =
                Scenario::new(spec.clone(), Workload::Baseline(Algo::Decay { payload: 0xA1E57 }))
                    .round_cap(100_000)
                    .faults(plan.clone())
                    .seeds(1..4);
            assert!(
                decay.all_completed(),
                "Decay failed under {}: {}",
                plan.label(),
                decay.report()
            );
            assert!(ghk.all_completed(), "GHK failed under {}: {}", plan.label(), ghk.report());
            assert!(ghk.all_within_caps(), "a GHK run exceeded its cap under {}", plan.label());
            for (g, d) in ghk.runs.iter().zip(&decay.runs) {
                let (g_done, d_done) = (
                    g.outcome.completion_round.expect("checked"),
                    d.outcome.completion_round.expect("checked"),
                );
                assert!(
                    g_done <= ratio * d_done,
                    "seed {} under {}: GHK took {g_done} rounds vs Decay {d_done} (> {ratio}x)",
                    g.seed,
                    plan.label()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-identity: a `FaultPlan::none()` scenario is byte-for-byte the run the
// repo has pinned since before the fault layer existed.
// ---------------------------------------------------------------------------

/// Runs a scenario plain and with an explicit empty plan; asserts the full
/// trace (completion + every `RunStats` field) is identical and returns the
/// completion round.
fn none_plan_is_invisible(scenario: Scenario) -> Option<u64> {
    let plain = scenario.clone().run();
    let none = scenario.faults(FaultPlan::none()).run();
    assert_eq!(plain.completion_round, none.completion_round, "completion diverged");
    assert_eq!(plain.stats, none.stats, "channel trace diverged");
    assert_eq!(plain.phases, none.phases, "phase accounting diverged");
    none.completion_round
}

#[test]
fn none_plan_keeps_the_corridor_pin_at_677() {
    let done = none_plan_is_invisible(
        Scenario::new(corridor(), Workload::Single { payload: 0xA1E57 }).seed(1),
    );
    assert_eq!(done, Some(677));
}

#[test]
fn none_plan_keeps_the_unit_disk_pin_at_2146() {
    let done = none_plan_is_invisible(
        Scenario::new(
            TopologySpec::UnitDisk { n: 80, radius: 0.18, graph_seed: 2024 },
            Workload::Single { payload: 0xFEED },
        )
        .seed(1),
    );
    assert_eq!(done, Some(2146));
}

#[test]
fn none_plan_keeps_the_telemetry_pin_at_3308() {
    let done = none_plan_is_invisible(
        Scenario::new(
            TopologySpec::ClusterChain { clusters: 6, size: 6 },
            Workload::MultiUnknown { messages: payloads(8), batch: BatchMode::FullK },
        )
        .seed(11),
    );
    assert_eq!(done, Some(3308));
}

#[test]
fn none_plan_keeps_the_firmware_pin_at_5011() {
    let done = none_plan_is_invisible(
        Scenario::new(
            grid(),
            Workload::MultiUnknown { messages: payloads(8), batch: BatchMode::Generations(4) },
        )
        .seed(3),
    );
    assert_eq!(done, Some(5011));
}
