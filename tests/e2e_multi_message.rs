//! End-to-end Theorems 1.2/1.3: every node decodes the exact payloads,
//! swept over a seed × topology matrix (failures name the exact cell).

use broadcast::multi_message::{broadcast_unknown, BatchMode, GhkMultiNode, GhkMultiPlan};
use broadcast::schedule::{EmptyBehavior, SlowKey};
use broadcast::Params;
use radio_sim::graph::{generators, Graph, Traversal};
use radio_sim::{CollisionMode, NodeId, Simulator};
use rlnc::gf2::BitVec;

fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64(i * 11 + 3, 24)).collect()
}

fn known_topologies() -> Vec<(&'static str, Graph)> {
    vec![("grid", generators::grid(5, 5)), ("cluster_chain", generators::cluster_chain(4, 5))]
}

#[test]
fn known_topology_decodes_exact_payloads() {
    for (name, g) in known_topologies() {
        let params = Params::scaled(g.node_count());
        for seed in 0..3u64 {
            let out = broadcast::multi_message::broadcast_known(
                &g,
                NodeId::new(0),
                &payloads(6),
                &params,
                seed,
                SlowKey::VirtualDistance,
                EmptyBehavior::Silent,
                1_000_000,
            );
            assert!(out.completion_round.is_some(), "topology {name} seed {seed}: timed out");
        }
    }
}

#[test]
fn unknown_topology_decodes_exact_payloads() {
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let msgs = payloads(4);
    let d = g.bfs(NodeId::new(0)).max_level();
    for seed in [2u64, 5, 11] {
        let plan = GhkMultiPlan::new(&params, d, 4, BatchMode::FullK);
        let mut sim = Simulator::new(g.clone(), CollisionMode::Detection, seed, |id| {
            GhkMultiNode::new(&params, plan, id.raw(), 24, (id.index() == 0).then(|| msgs.clone()))
        });
        sim.run(plan.total_rounds() + 1);
        for (i, n) in sim.nodes().iter().enumerate() {
            assert_eq!(
                n.messages().as_deref(),
                Some(&msgs[..]),
                "seed {seed}: node {i} decoded wrong payloads"
            );
        }
    }
}

#[test]
fn unknown_topology_with_generations_decodes() {
    let g = generators::grid(4, 4);
    let params = Params::scaled(16);
    for seed in 0..3u64 {
        let out = broadcast_unknown(
            &g,
            NodeId::new(0),
            &payloads(6),
            &params,
            seed,
            BatchMode::Generations(2),
        );
        assert!(out.completion_round.is_some(), "seed {seed}: generations run timed out");
    }
}

#[test]
fn mmv_noise_mode_still_completes() {
    // Lemma 3.3 stress: empty-decoder nodes transmit noise.
    let g = generators::cluster_chain(4, 4);
    let params = Params::scaled(16);
    for seed in [4u64, 7] {
        let out = broadcast::multi_message::broadcast_known(
            &g,
            NodeId::new(0),
            &payloads(4),
            &params,
            seed,
            SlowKey::VirtualDistance,
            EmptyBehavior::Noise,
            1_000_000,
        );
        assert!(out.completion_round.is_some(), "seed {seed}: noise-mode run timed out");
    }
}
