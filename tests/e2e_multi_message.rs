//! End-to-end Theorems 1.2/1.3: every node decodes the exact payloads,
//! swept over a seed × topology matrix (failures name the exact cell).
//! Scheduled runs go through the `Scenario` facade; the payload-inspection
//! test drives the fixed-plan node through the simulator directly.

use broadcast::multi_message::{BatchMode, GhkMultiNode, GhkMultiPlan};
use broadcast::{EmptyBehavior, Params, Scenario, SlowKey, TopologySpec, Workload};
use radio_sim::graph::{generators, Traversal};
use radio_sim::{CollisionMode, NodeId, Simulator};
use rlnc::gf2::BitVec;

fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64(i * 11 + 3, 24)).collect()
}

fn known_topologies() -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("grid", TopologySpec::Grid { w: 5, h: 5 }),
        ("cluster_chain", TopologySpec::ClusterChain { clusters: 4, size: 5 }),
    ]
}

#[test]
fn known_topology_decodes_exact_payloads() {
    for (name, spec) in known_topologies() {
        let matrix = Scenario::new(
            spec,
            Workload::MultiKnown {
                messages: payloads(6),
                slow_key: SlowKey::VirtualDistance,
                empty: EmptyBehavior::Silent,
            },
        )
        .seeds(0..3);
        for run in &matrix.runs {
            assert!(
                run.outcome.completion_round.is_some(),
                "topology {name} seed {}: timed out",
                run.seed
            );
        }
    }
}

#[test]
fn unknown_topology_decodes_exact_payloads() {
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let msgs = payloads(4);
    let d = g.bfs(NodeId::new(0)).max_level();
    for seed in [2u64, 5, 11] {
        let plan = GhkMultiPlan::new(&params, d, 4, BatchMode::FullK);
        let mut sim = Simulator::new(g.clone(), CollisionMode::Detection, seed, |id| {
            GhkMultiNode::new(&params, plan, id.raw(), 24, (id.index() == 0).then(|| msgs.clone()))
        });
        sim.run(plan.total_rounds() + 1);
        for (i, n) in sim.nodes().iter().enumerate() {
            assert_eq!(
                n.messages().as_deref(),
                Some(&msgs[..]),
                "seed {seed}: node {i} decoded wrong payloads"
            );
        }
    }
}

#[test]
fn unknown_topology_with_generations_decodes() {
    let matrix = Scenario::new(
        TopologySpec::Grid { w: 4, h: 4 },
        Workload::MultiUnknown { messages: payloads(6), batch: BatchMode::Generations(2) },
    )
    .seeds(0..3);
    assert!(matrix.all_completed(), "generations runs timed out on seeds {:?}", matrix.failures());
}

#[test]
fn mmv_noise_mode_still_completes() {
    // Lemma 3.3 stress: empty-decoder nodes transmit noise.
    let scenario = Scenario::new(
        TopologySpec::ClusterChain { clusters: 4, size: 4 },
        Workload::MultiKnown {
            messages: payloads(4),
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Noise,
        },
    );
    for seed in [4u64, 7] {
        let out = scenario.clone().seed(seed).run();
        assert!(out.completion_round.is_some(), "seed {seed}: noise-mode run timed out");
    }
}
