//! Lemma 3.2 / 3.3: dissemination survives worst-case noise senders.

use broadcast::decay::MmvDecayBroadcast;
use broadcast::multi_message::broadcast_known;
use broadcast::schedule::{EmptyBehavior, SlowKey};
use broadcast::Params;
use radio_sim::graph::{generators, Traversal};
use radio_sim::{CollisionMode, NodeId, Simulator};
use rlnc::gf2::BitVec;

#[test]
fn layered_decay_with_noise_completes_and_stays_same_shape() {
    let g = generators::cluster_chain(6, 5);
    let layering = g.bfs(NodeId::new(0));
    let params = Params::scaled(g.node_count());
    let levels: Vec<u32> = g.node_ids().map(|v| layering.level(v)).collect();
    let mut totals = [0u64, 0u64];
    for (i, noise) in [false, true].into_iter().enumerate() {
        for seed in 0..3u64 {
            let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
                MmvDecayBroadcast::new(
                    &params,
                    levels[id.index()],
                    noise,
                    (id.index() == 0).then_some(1),
                )
            });
            let done = sim
                .run_until(2_000_000, |ns| ns.iter().all(MmvDecayBroadcast::is_informed))
                .expect("completes");
            totals[i] += done;
        }
    }
    // Noise may slow things down by a constant factor, never unboundedly.
    assert!(totals[1] < totals[0] * 8, "noise blew up: {totals:?}");
}

#[test]
fn mmv_schedule_with_noise_senders_completes() {
    let g = generators::grid(5, 5);
    let params = Params::scaled(25);
    let msgs: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(i + 1, 16)).collect();
    let out = broadcast_known(
        &g,
        NodeId::new(0),
        &msgs,
        &params,
        5,
        SlowKey::VirtualDistance,
        EmptyBehavior::Noise,
        2_000_000,
    );
    assert!(out.completion_round.is_some());
}
