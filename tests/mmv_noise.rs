//! Lemma 3.2 / 3.3: dissemination survives worst-case noise senders.
//! Both stresses are declared through the `Scenario` facade (the MMV-Decay
//! baseline workload and the noise-mode Theorem 1.2 workload).

use broadcast::{Algo, EmptyBehavior, Scenario, SlowKey, TopologySpec, Workload};
use rlnc::gf2::BitVec;

#[test]
fn layered_decay_with_noise_completes_and_stays_same_shape() {
    let spec = TopologySpec::ClusterChain { clusters: 6, size: 5 };
    let mut totals = [0u64, 0u64];
    for (i, noise) in [false, true].into_iter().enumerate() {
        let matrix =
            Scenario::new(spec.clone(), Workload::Baseline(Algo::MmvDecay { payload: 1, noise }))
                .round_cap(2_000_000)
                .seeds(0..3);
        assert!(matrix.all_completed(), "noise={noise} failed on {:?}", matrix.failures());
        totals[i] += matrix.runs.iter().map(|r| r.outcome.completion_round.unwrap()).sum::<u64>();
    }
    // Noise may slow things down by a constant factor, never unboundedly.
    assert!(totals[1] < totals[0] * 8, "noise blew up: {totals:?}");
}

#[test]
fn mmv_schedule_with_noise_senders_completes() {
    let msgs: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(i + 1, 16)).collect();
    let out = Scenario::new(
        TopologySpec::Grid { w: 5, h: 5 },
        Workload::MultiKnown {
            messages: msgs,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Noise,
        },
    )
    .seed(5)
    .round_cap(2_000_000)
    .run();
    assert!(out.completion_round.is_some());
}
