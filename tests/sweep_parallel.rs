//! Acceptance pin for the sharded sweep executor: a parallel corridor seed
//! sweep is **bit-identical** to the serial sweep at every worker count.
//!
//! "Bit-identical" is checked as full `Debug` equality of the merged
//! [`SeedMatrix`]es — the debug string covers every field of every
//! [`broadcast::Outcome`] transitively (completion round, cap, per-phase
//! rounds, channel stats, audit counters, peak state, detail), so a single
//! diverging bit anywhere in any run fails the test.

use broadcast::{Scenario, SeedMatrix, TopologySpec, Workload};
use radio_sim::FaultPlan;
use sweep::{SweepPool, SweepProduct};

/// The corridor scenario of the bench pipeline: 20 six-node clusters in a
/// chain, single-message broadcast with collision detection.
fn corridor() -> Scenario {
    Scenario::new(
        TopologySpec::ClusterChain { clusters: 20, size: 6 },
        Workload::Single { payload: 0xC0FFEE },
    )
}

fn assert_identical(parallel: &[SeedMatrix], serial: &[SeedMatrix]) {
    assert_eq!(format!("{parallel:?}"), format!("{serial:?}"));
}

/// The ISSUE's acceptance bar: ≥64 seeds, workers 1, 2, 4 and the machine
/// default, all bit-identical to the serial sweep.
#[test]
fn corridor_sweep_is_bit_identical_across_worker_counts() {
    let product = SweepProduct::new().scenario(corridor()).seeds(0..64);
    let serial = vec![corridor().seeds(0..64)];
    let machine = SweepPool::new().worker_count();
    for workers in [1, 2, 4, machine] {
        let parallel = SweepPool::new().workers(workers).run(&product);
        assert_identical(&parallel, &serial);
    }
}

/// Multi-scenario products (including a faulted scenario, whose fault RNG
/// streams are part of the outcome) shard and merge identically too.
#[test]
fn mixed_product_with_faults_is_bit_identical() {
    let faulted = corridor().faults(FaultPlan::none().with_erasure(0.1));
    let product = SweepProduct::new().scenario(corridor()).scenario(faulted.clone()).seeds(0..16);
    let serial = vec![corridor().seeds(0..16), faulted.seeds(0..16)];
    for workers in [2, 3] {
        let parallel = SweepPool::new().workers(workers).run(&product);
        assert_identical(&parallel, &serial);
    }
}

/// `Scenario::seeds` takes any `IntoIterator<Item = u64>`: ranges, explicit
/// vectors, iterator adapters — and the executor reproduces each shape.
#[test]
fn seed_iterators_of_every_shape_sweep_identically() {
    let evens: Vec<u64> = (0..10).map(|s| 2 * s).collect();
    let serial_range = corridor().seeds(0..10u64);
    let serial_list = corridor().seeds(evens.clone());
    let serial_adapter = corridor().seeds((0..20u64).filter(|s| s % 2 == 0));
    assert_eq!(format!("{serial_list:?}"), format!("{serial_adapter:?}"));
    assert_ne!(format!("{serial_range:?}"), format!("{serial_list:?}"));

    let product = SweepProduct::new().scenario(corridor()).seeds(evens);
    let parallel = SweepPool::new().workers(4).run(&product);
    assert_identical(&parallel, &[serial_list]);
}
