//! E14 as a test: control packets stay within O(log n) bits (plus payload).

use broadcast::construction::GstMsg;
use broadcast::recruiting::{CountClass, RecruitMsg};
use radio_sim::model::PacketBits;
use rlnc::gf2::BitVec;
use rlnc::CodedPacket;

const ID_BITS: usize = 32; // ids are O(log n); we store them in u32 words
const PAYLOAD_BITS: usize = 64;

#[test]
fn control_packets_are_small() {
    let budget = 3 * ID_BITS + 16;
    let msgs: Vec<usize> = vec![
        RecruitMsg::Beacon { red: 1, class: CountClass::Multi }.packet_bits(),
        RecruitMsg::Response { blue: 1, red: 2 }.packet_bits(),
        RecruitMsg::EchoSingle { red: 1, blue: 2, multi: true }.packet_bits(),
        GstMsg::Identify { rank: 3 }.packet_bits(),
        GstMsg::RankAnnounce { red: 1, rank: 3 }.packet_bits(),
        GstMsg::Loner.packet_bits(),
    ];
    for bits in msgs {
        assert!(bits <= budget, "{bits} bits exceeds {budget}");
    }
}

#[test]
fn generation_coded_packets_fit_logarithmic_budget() {
    let log_n = radio_sim::graph::ceil_log2(1 << 20) as usize; // n = 1M
    let p = CodedPacket::plaintext(log_n, 0, BitVec::zero(PAYLOAD_BITS));
    // Coefficient overhead is exactly the generation size = O(log n).
    assert_eq!(p.packet_bits(), log_n + PAYLOAD_BITS);
}

#[test]
fn full_k_coding_overhead_is_k_bits() {
    let p = CodedPacket::plaintext(256, 0, BitVec::zero(PAYLOAD_BITS));
    assert_eq!(p.packet_bits(), 256 + PAYLOAD_BITS);
}
