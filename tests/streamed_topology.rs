//! Streamed topologies through the `Scenario` facade: a run over a streamed
//! spec is bit-identical to the same run over its materialization, streamed
//! million-node headers replay deterministically on the wake fast path with
//! a tiny resident topology, and the clamps (MultiKnown, churn/mobility)
//! panic with actionable messages instead of silently materializing.

use broadcast::{Algo, BatchMode, Scenario, TopologySpec, Workload};
use radio_sim::model::{Action, Observation};
use radio_sim::{CollisionMode, FaultPlan, ImplicitGraph, Protocol, Simulator, Topology, Wake};
use rand::rngs::SmallRng;
use rlnc::gf2::BitVec;

fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64(i * 5 + 2, 16)).collect()
}

fn streamed_specs() -> Vec<TopologySpec> {
    vec![
        TopologySpec::StreamedGrid { w: 6, h: 5 },
        TopologySpec::StreamedUnitDisk { n: 24, radius: 0.45, graph_seed: 7 },
        TopologySpec::StreamedGnp { n: 20, p: 0.25, graph_seed: 7 },
    ]
}

/// Asserts the workload over a streamed spec and over that spec's explicit
/// materialization produce the same semantic outcome. `peak_state_bytes` is
/// deliberately excluded: the topology term differs by design.
fn assert_same_outcome(spec: TopologySpec, workload: &Workload, seed: u64) {
    let label = spec.label();
    let streamed = Scenario::new(spec, workload.clone()).seed(seed);
    let materialized =
        Scenario::new(TopologySpec::custom(streamed.graph()), workload.clone()).seed(seed);
    let a = streamed.run();
    let b = materialized.run();
    assert_eq!(a.completion_round, b.completion_round, "{label}: completion diverged");
    assert_eq!(a.cap, b.cap, "{label}: cap diverged");
    assert_eq!(a.phases, b.phases, "{label}: phases diverged");
    assert_eq!(a.stats, b.stats, "{label}: trace diverged");
    assert_eq!(a.audit, b.audit, "{label}: audit diverged");
    assert_eq!(format!("{:?}", a.detail), format!("{:?}", b.detail), "{label}: detail diverged");
    assert!(a.peak_state_bytes > 0 && b.peak_state_bytes > 0, "{label}: peak accounting missing");
}

#[test]
fn streamed_single_matches_materialized() {
    for spec in streamed_specs() {
        assert_same_outcome(spec, &Workload::Single { payload: 0xFACE }, 3);
    }
}

#[test]
fn streamed_multi_unknown_matches_materialized() {
    let workload = Workload::MultiUnknown { messages: payloads(3), batch: BatchMode::FullK };
    for spec in streamed_specs() {
        assert_same_outcome(spec, &workload, 1);
    }
}

#[test]
fn streamed_baseline_matches_materialized() {
    assert_same_outcome(
        TopologySpec::StreamedGrid { w: 5, h: 5 },
        &Workload::Baseline(Algo::Decay { payload: 0xD3 }),
        2,
    );
}

#[test]
fn streamed_grid_is_edge_identical_to_dense_grid_spec() {
    // Grid is the one family whose streamed form matches the sequential
    // generator edge-for-edge, so the dense `Grid` spec must replay it too.
    let streamed =
        Scenario::new(TopologySpec::StreamedGrid { w: 6, h: 4 }, Workload::Single { payload: 11 })
            .seed(5)
            .run();
    let dense = Scenario::new(TopologySpec::Grid { w: 6, h: 4 }, Workload::Single { payload: 11 })
        .seed(5)
        .run();
    assert_eq!(streamed.completion_round, dense.completion_round);
    assert_eq!(streamed.stats, dense.stats);
}

#[test]
fn streamed_erasure_faults_work_and_label_pins() {
    // Erasure (and jammer) plans never touch the topology, so they compose
    // with streamed specs; only churn/mobility are clamped.
    let matrix = Scenario::new(
        TopologySpec::StreamedGrid { w: 4, h: 4 },
        Workload::Single { payload: 0xE1 },
    )
    .faults(FaultPlan::none().with_erasure(0.02))
    .seeds(0..3);
    assert!(matrix.label.starts_with("stream:grid(4x4)/"), "label drifted: {}", matrix.label);
    assert!(matrix.label.ends_with("+erase(0.02)"), "fault label drifted: {}", matrix.label);
    assert!(matrix.all_completed(), "lossy streamed runs failed on seeds {:?}", matrix.failures());
}

/// A wake-hinted flood: informed nodes transmit every round, everyone else
/// is idle until an observation arrives — so on a million-node graph the
/// engine polls only the active frontier.
#[derive(Debug)]
struct Pulse {
    informed: bool,
}

impl Protocol for Pulse {
    type Msg = u32;
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;
    fn next_wake(&self, _round: u64) -> Wake {
        if self.informed {
            Wake::Now
        } else {
            Wake::Idle
        }
    }
    fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action<u32> {
        if self.informed {
            Action::Transmit(0xBEEF)
        } else {
            Action::Listen
        }
    }
    fn observe(&mut self, _round: u64, obs: Observation<u32>, _rng: &mut SmallRng) {
        if matches!(obs, Observation::Message(_)) {
            self.informed = true;
        }
    }
}

fn million_header(rounds: u64) -> radio_sim::RunStats {
    let grid = ImplicitGraph::grid(1000, 1000);
    // The streamed grid must stay orders of magnitude below its CSR cost
    // ((n + 1) * 4 + 2m * 4 ≈ 20 MB for this grid).
    let csr_estimate = (grid.node_count() + 1) * 4 + 2 * 1_998_000 * 4;
    assert!(
        grid.resident_bytes() * 100 < csr_estimate,
        "streamed grid resident {} is not well below the {} byte CSR",
        grid.resident_bytes(),
        csr_estimate
    );
    let mut sim =
        Simulator::new(grid, CollisionMode::Detection, 9, |id| Pulse { informed: id.index() == 0 });
    sim.run(rounds);
    sim.stats().clone()
}

#[test]
fn million_node_streamed_header_replays_bit_identically() {
    // The first rounds of a 1,000,000-node streamed run: deterministic
    // across reruns, and the wake fast path must be doing the work (the
    // sleeping sea of uninformed nodes shows up as act skips).
    let a = million_header(8);
    let b = million_header(8);
    assert_eq!(a, b, "million-node streamed header diverged across reruns");
    assert!(a.act_skips > 0, "wake fast path never engaged: {a:?}");
    assert!(a.deliveries > 0, "the pulse never spread: {a:?}");
}

#[test]
#[should_panic(expected = "needs a materialized graph")]
fn multi_known_on_streamed_panics() {
    use broadcast::{EmptyBehavior, SlowKey};
    let _ = Scenario::new(
        TopologySpec::StreamedGrid { w: 4, h: 4 },
        Workload::MultiKnown {
            messages: payloads(2),
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        },
    )
    .run();
}

#[test]
#[should_panic(expected = "streamed topologies support erasure")]
fn churn_on_streamed_panics() {
    let _ =
        Scenario::new(TopologySpec::StreamedGrid { w: 4, h: 4 }, Workload::Single { payload: 1 })
            .faults(FaultPlan::none().with_churn(4, 0.05, 0.05))
            .run();
}
