//! End-to-end Theorem 1.1 runs across graph families and seeds.

use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::rng::stream_rng;
use radio_sim::NodeId;

#[test]
fn completes_across_families_and_seeds() {
    let mut rng = stream_rng(1, 0);
    let cases = vec![
        generators::path(30),
        generators::grid(6, 5),
        generators::cluster_chain(5, 6),
        generators::binary_tree(31),
        generators::gnp_connected(48, 0.09, &mut rng),
        generators::unit_disk(60, 0.22, &mut rng),
    ];
    for (i, g) in cases.into_iter().enumerate() {
        for seed in 0..2u64 {
            let params = Params::scaled(g.node_count());
            let out = broadcast_single(&g, NodeId::new(0), 0xABCD, &params, seed);
            assert!(
                out.completion_round.is_some(),
                "case {i} seed {seed}: no completion in {} rounds",
                out.plan.total_rounds()
            );
        }
    }
}

#[test]
fn source_can_be_any_node() {
    let g = generators::grid(5, 5);
    let params = Params::scaled(25);
    for source in [0usize, 12, 24] {
        let out = broadcast_single(&g, NodeId::new(source), 7, &params, 3);
        assert!(out.completion_round.is_some(), "source {source}");
    }
}

#[test]
fn completion_is_within_the_plan_budget() {
    let g = generators::cluster_chain(6, 5);
    let params = Params::scaled(30);
    let out = broadcast_single(&g, NodeId::new(0), 1, &params, 4);
    let done = out.completion_round.expect("completes");
    assert!(done <= out.plan.total_rounds() + 1);
}
