//! End-to-end Theorem 1.1 runs across graph families and seeds.

use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::{generators, Graph};
use radio_sim::rng::stream_rng;
use radio_sim::NodeId;

/// The seed × topology matrix every e2e assertion sweeps: a failure names
/// the exact (family, seed) cell instead of hiding behind a single seed.
fn families() -> Vec<(&'static str, Graph)> {
    let mut rng = stream_rng(1, 0);
    vec![
        ("path", generators::path(30)),
        ("grid", generators::grid(6, 5)),
        ("cluster_chain", generators::cluster_chain(5, 6)),
        ("binary_tree", generators::binary_tree(31)),
        ("gnp", generators::gnp_connected(48, 0.09, &mut rng)),
        ("unit_disk", generators::unit_disk(60, 0.22, &mut rng)),
    ]
}

#[test]
fn completes_across_families_and_seeds() {
    for (name, g) in families() {
        let params = Params::scaled(g.node_count());
        for seed in 0..4u64 {
            let out = broadcast_single(&g, NodeId::new(0), 0xABCD, &params, seed);
            assert!(
                out.completion_round.is_some(),
                "family {name} seed {seed}: no completion within the cap of {} rounds \
                 (phases {:?})",
                out.plan.total_rounds(),
                out.phases
            );
        }
    }
}

#[test]
fn source_can_be_any_node() {
    let g = generators::grid(5, 5);
    let params = Params::scaled(25);
    for source in [0usize, 12, 24] {
        for seed in 0..3u64 {
            let out = broadcast_single(&g, NodeId::new(source), 7, &params, seed);
            assert!(out.completion_round.is_some(), "source {source} seed {seed}");
        }
    }
}

#[test]
fn completion_is_within_the_plan_budget() {
    // The worst-case cap must hold over the whole matrix, not one lucky seed.
    for (name, g) in families() {
        let params = Params::scaled(g.node_count());
        for seed in 0..4u64 {
            let out = broadcast_single(&g, NodeId::new(0), 1, &params, seed);
            let done =
                out.completion_round.unwrap_or_else(|| panic!("{name} seed {seed}: no completion"));
            assert!(
                done <= out.plan.total_rounds(),
                "family {name} seed {seed}: completion {done} exceeds cap {}",
                out.plan.total_rounds()
            );
        }
    }
}
