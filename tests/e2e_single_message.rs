//! End-to-end Theorem 1.1 runs across graph families and seeds, declared
//! through the `Scenario` facade (topology specs instead of pre-built
//! graphs).

use broadcast::{Scenario, TopologySpec, Workload};
use radio_sim::NodeId;

/// The seed × topology matrix every e2e assertion sweeps: a failure names
/// the exact (family, seed) cell instead of hiding behind a single seed.
fn families() -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("path", TopologySpec::Path { n: 30 }),
        ("grid", TopologySpec::Grid { w: 6, h: 5 }),
        ("cluster_chain", TopologySpec::ClusterChain { clusters: 5, size: 6 }),
        ("binary_tree", TopologySpec::BinaryTree { n: 31 }),
        ("gnp", TopologySpec::Gnp { n: 48, p: 0.09, graph_seed: 1 }),
        ("unit_disk", TopologySpec::UnitDisk { n: 60, radius: 0.22, graph_seed: 1 }),
    ]
}

#[test]
fn completes_across_families_and_seeds() {
    for (name, spec) in families() {
        let matrix = Scenario::new(spec, Workload::Single { payload: 0xABCD }).seeds(0..4);
        for run in &matrix.runs {
            assert!(
                run.outcome.completion_round.is_some(),
                "family {name} seed {}: no completion within the cap of {} rounds (phases {:?})",
                run.seed,
                run.outcome.cap,
                run.outcome.phases
            );
        }
    }
}

#[test]
fn source_can_be_any_node() {
    for source in [0usize, 12, 24] {
        let matrix =
            Scenario::new(TopologySpec::Grid { w: 5, h: 5 }, Workload::Single { payload: 7 })
                .source(NodeId::new(source))
                .seeds(0..3);
        assert!(matrix.all_completed(), "source {source}: failing seeds {:?}", matrix.failures());
    }
}

#[test]
fn completion_is_within_the_plan_budget() {
    // The worst-case cap must hold over the whole matrix, not one lucky seed.
    for (name, spec) in families() {
        let matrix = Scenario::new(spec, Workload::Single { payload: 1 }).seeds(0..4);
        for run in &matrix.runs {
            let done = run
                .outcome
                .completion_round
                .unwrap_or_else(|| panic!("{name} seed {}: no completion", run.seed));
            assert!(
                done <= run.outcome.cap,
                "family {name} seed {}: completion {done} exceeds cap {}",
                run.seed,
                run.outcome.cap
            );
        }
    }
}
