//! Round-count regression pins for the adaptive pipelines, declared through
//! the `Scenario` facade.
//!
//! Each scenario pins its workload to an explicit round *budget* (roughly 2x
//! the worst completion round observed over 10 master seeds at the time the
//! budget was set), so a future change that silently degrades the adaptive
//! pipeline's constants fails tier-1 instead of passing. The budgets are
//! orders of magnitude below the worst-case caps — that gap *is* the
//! adaptivity win — and every run is also asserted against the cap itself
//! (`Outcome::cap`, the plan's `total_rounds()`), which the paper
//! guarantees. Facade runs are bit-identical to the legacy free functions
//! (`tests/e2e_scenario.rs`), so these pins cover both entry points at once.

use broadcast::multi_message::BatchMode;
use broadcast::{Algo, Scenario, TopologySpec, Workload};
use rlnc::gf2::BitVec;

/// Runs the Theorem 1.1 pipeline over the seed range and enforces both the
/// regression budget and the worst-case cap, reporting the failing seed.
fn assert_within_budget(name: &str, spec: TopologySpec, seeds: std::ops::Range<u64>, budget: u64) {
    let matrix = Scenario::new(spec, Workload::Single { payload: 0xBEEF }).seeds(seeds);
    for run in &matrix.runs {
        let (seed, out) = (run.seed, &run.outcome);
        let done = out
            .completion_round
            .unwrap_or_else(|| panic!("{name} seed {seed}: no completion within cap {}", out.cap));
        assert!(
            done <= budget,
            "{name} seed {seed}: {done} rounds exceeds the regression budget {budget} \
             (phases: {:?})",
            out.phases
        );
        assert!(
            done <= out.cap,
            "{name} seed {seed}: {done} rounds exceeds the worst-case cap {}",
            out.cap
        );
        assert!(
            out.stats.act_skips > 0,
            "{name} seed {seed}: the segment scheduler never skipped an act \
             (wake-hint fast path disengaged; stats: {:?})",
            out.stats
        );
    }
}

#[test]
fn corridor_mesh_budget() {
    // The emergency-alert scenario: 20 blocks of 6 radios, diameter 39.
    // Fixed windows used to need ~5.8M rounds here; adaptive worst observed
    // over seeds 0..10 was 1073.
    assert_within_budget(
        "corridor",
        TopologySpec::ClusterChain { clusters: 20, size: 6 },
        0..5,
        2_200,
    );
}

#[test]
fn geometric_deployment_budget() {
    // A dense unit-disk deployment (n = 80, D = 8). Worst observed: 2474.
    assert_within_budget(
        "unit_disk",
        TopologySpec::UnitDisk { n: 80, radius: 0.18, graph_seed: 2024 },
        0..5,
        4_800,
    );
}

#[test]
fn cluster_chain_budget() {
    // A small cluster chain (n = 30, D = 11). Worst observed: 515.
    assert_within_budget(
        "cluster_chain",
        TopologySpec::ClusterChain { clusters: 6, size: 5 },
        0..5,
        1_100,
    );
}

/// The completion round of one BGI Decay run (the baseline all pins are
/// phrased against), through the same facade.
fn decay_rounds(spec: TopologySpec, seed: u64) -> u64 {
    Scenario::new(spec, Workload::Baseline(Algo::Decay { payload: 1 }))
        .seed(seed)
        .run()
        .completion_round
        .expect("Decay completes")
}

#[test]
fn corridor_ghk_within_10x_of_decay() {
    // The headline acceptance bound: on the corridor mesh, collision
    // detection plus the adaptive pipeline must land within a small constant
    // factor of the Decay baseline (it used to be ~40,000x slower).
    let spec = TopologySpec::ClusterChain { clusters: 20, size: 6 };
    for seed in 0..3u64 {
        let ghk = Scenario::new(spec.clone(), Workload::Single { payload: 0xA1E57 })
            .seed(seed)
            .run()
            .completion_round
            .expect("GHK completes");
        let decay = decay_rounds(spec.clone(), seed);
        assert!(
            ghk <= decay * 10,
            "seed {seed}: GHK-CD took {ghk} rounds vs Decay's {decay} (> 10x)"
        );
    }
}

/// Pins the adaptive Theorem 1.3 pipeline to a round budget (≈2x the worst
/// completion observed over 8 seeds when the budget was set), to a multiple
/// of the single-message Decay baseline, and to the plan's worst-case cap.
fn assert_multi_within_budget(
    name: &str,
    spec: TopologySpec,
    k: usize,
    batch: BatchMode,
    seeds: std::ops::Range<u64>,
    budget: u64,
    decay_multiple: u64,
) {
    let msgs: Vec<BitVec> = (0..k as u64).map(|i| BitVec::from_u64(0xBEE0 + i, 32)).collect();
    let matrix =
        Scenario::new(spec.clone(), Workload::MultiUnknown { messages: msgs, batch }).seeds(seeds);
    for run in &matrix.runs {
        let (seed, out) = (run.seed, &run.outcome);
        let done = out
            .completion_round
            .unwrap_or_else(|| panic!("{name} seed {seed}: no completion within cap {}", out.cap));
        assert!(
            done <= budget,
            "{name} seed {seed}: {done} rounds exceeds the regression budget {budget} \
             (phases: {:?})",
            out.phases
        );
        assert!(
            done <= out.cap,
            "{name} seed {seed}: {done} rounds exceeds the worst-case cap {}",
            out.cap
        );
        assert!(
            out.stats.act_skips > 0,
            "{name} seed {seed}: the segment scheduler never skipped an act \
             (wake-hint fast path disengaged; stats: {:?})",
            out.stats
        );
        let decay = decay_rounds(spec.clone(), seed);
        assert!(
            done <= decay * decay_multiple,
            "{name} seed {seed}: {done} rounds vs Decay's {decay} (> {decay_multiple}x)"
        );
    }
}

#[test]
fn telemetry_backhaul_multi_budget() {
    // The telemetry-backhaul scenario: 8 frames, FullK, across a 36-node
    // cluster chain. Fixed windows used to need ~585k rounds here (the
    // construction phase executed verbatim); adaptive worst observed over
    // seeds 0..8 was 3569.
    assert_multi_within_budget(
        "telemetry",
        TopologySpec::ClusterChain { clusters: 6, size: 6 },
        8,
        BatchMode::FullK,
        0..3,
        7_000,
        250,
    );
}

#[test]
fn firmware_grid_multi_budget() {
    // The firmware-update topology: a warehouse grid with generation-sized
    // batches pipelined across narrow rings. Worst observed over seeds 0..8
    // was 6311.
    assert_multi_within_budget(
        "firmware_grid",
        TopologySpec::Grid { w: 6, h: 6 },
        8,
        BatchMode::Generations(4),
        0..3,
        12_500,
        600,
    );
}

#[test]
fn fallback_rounds_stay_on_the_wake_fast_path() {
    // The rung-3 Decay fallback runs with DoneCheck::OnDelivery: its
    // completion scan is gated on a delivery having happened in the
    // segment, so fallback rounds ride the same wake-hint fast path as the
    // clean pipeline rather than polling every node every round. Pin a
    // fallback-heavy faulted run (corridor churn, seed 1 spends ~470 rounds
    // in rung 3) and require the segment scheduler to keep skipping acts
    // while the ladder and fallback execute.
    let out = Scenario::new(
        TopologySpec::ClusterChain { clusters: 20, size: 6 },
        Workload::Single { payload: 0xA1E57 },
    )
    .faults(radio_sim::FaultPlan::none().with_churn(1, 0.0, 0.01))
    .seed(1)
    .run();
    assert!(
        out.stats.fallback_rounds > 0,
        "scenario no longer reaches the rung-3 fallback (stats: {:?})",
        out.stats
    );
    assert!(
        out.completion_round.is_some(),
        "fallback must still complete the broadcast (cap {})",
        out.cap
    );
    assert!(
        out.stats.act_skips > 0,
        "fallback fell off the wake-hint fast path: act_skips == 0 with \
         {} fallback rounds (dense per-round completion scanning)",
        out.stats.fallback_rounds
    );
}

#[test]
fn adaptive_caps_stay_polylog_above_diameter() {
    // The cap itself must keep the O(D + polylog) shape: doubling D at fixed
    // n must grow the cap by ~O(D), not multiply it.
    let params = broadcast::Params::scaled(128);
    let short = broadcast::single_message::Ghk1Plan::new(&params, 20).total_rounds();
    let long = broadcast::single_message::Ghk1Plan::new(&params, 40).total_rounds();
    assert!(long <= short * 3, "cap explodes with D: {short} -> {long}");
}
