//! Round-count regression pins for the adaptive Theorem 1.1 pipeline.
//!
//! Each scenario pins `broadcast_single` to an explicit round *budget*
//! (roughly 2x the worst completion round observed over 10 master seeds at
//! the time the budget was set), so a future change that silently degrades
//! the adaptive pipeline's constants fails tier-1 instead of passing. The
//! budgets are orders of magnitude below the worst-case caps — that gap *is*
//! the adaptivity win — and every run is also asserted against the cap
//! itself, `Ghk1Plan::total_rounds()`, which the paper guarantees.

use broadcast::decay::{DecayBroadcast, DecayMsg};
use broadcast::single_message::{broadcast_single, Ghk1Outcome};
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::rng::stream_rng;
use radio_sim::{CollisionMode, Graph, NodeId, Simulator};

/// Runs the pipeline and enforces both the regression budget and the
/// worst-case cap, reporting the failing seed.
fn assert_within_budget(name: &str, g: &Graph, seeds: std::ops::Range<u64>, budget: u64) {
    let params = Params::scaled(g.node_count());
    for seed in seeds {
        let out: Ghk1Outcome = broadcast_single(g, NodeId::new(0), 0xBEEF, &params, seed);
        let done = out.completion_round.unwrap_or_else(|| {
            panic!("{name} seed {seed}: no completion within cap {}", out.plan.total_rounds())
        });
        assert!(
            done <= budget,
            "{name} seed {seed}: {done} rounds exceeds the regression budget {budget} \
             (phases: {:?})",
            out.phases
        );
        assert!(
            done <= out.plan.total_rounds(),
            "{name} seed {seed}: {done} rounds exceeds the worst-case cap {}",
            out.plan.total_rounds()
        );
    }
}

#[test]
fn corridor_mesh_budget() {
    // The emergency-alert scenario: 20 blocks of 6 radios, diameter 39.
    // Fixed windows used to need ~5.8M rounds here; adaptive worst observed
    // over seeds 0..10 was 1073.
    assert_within_budget("corridor", &generators::cluster_chain(20, 6), 0..5, 2_200);
}

#[test]
fn geometric_deployment_budget() {
    // A dense unit-disk deployment (n = 80, D = 8). Worst observed: 2474.
    let mut rng = stream_rng(2024, 0);
    let g = generators::unit_disk(80, 0.18, &mut rng);
    assert_within_budget("unit_disk", &g, 0..5, 4_800);
}

#[test]
fn cluster_chain_budget() {
    // A small cluster chain (n = 30, D = 11). Worst observed: 515.
    assert_within_budget("cluster_chain", &generators::cluster_chain(6, 5), 0..5, 1_100);
}

#[test]
fn corridor_ghk_within_10x_of_decay() {
    // The headline acceptance bound: on the corridor mesh, collision
    // detection plus the adaptive pipeline must land within a small constant
    // factor of the Decay baseline (it used to be ~40,000x slower).
    let g = generators::cluster_chain(20, 6);
    let params = Params::scaled(g.node_count());
    for seed in 0..3u64 {
        let ghk = broadcast_single(&g, NodeId::new(0), 0xA1E57, &params, seed)
            .completion_round
            .expect("GHK completes");
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
            DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(0xA1E57)))
        });
        let decay = sim
            .run_until(5_000_000, |ns| ns.iter().all(DecayBroadcast::is_informed))
            .expect("Decay completes");
        assert!(
            ghk <= decay * 10,
            "seed {seed}: GHK-CD took {ghk} rounds vs Decay's {decay} (> 10x)"
        );
    }
}

#[test]
fn adaptive_caps_stay_polylog_above_diameter() {
    // The cap itself must keep the O(D + polylog) shape: doubling D at fixed
    // n must grow the cap by ~O(D), not multiply it.
    let params = Params::scaled(128);
    let short = broadcast::single_message::Ghk1Plan::new(&params, 20).total_rounds();
    let long = broadcast::single_message::Ghk1Plan::new(&params, 40).total_rounds();
    assert!(long <= short * 3, "cap explodes with D: {short} -> {long}");
}
