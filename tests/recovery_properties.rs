//! Property tests for the staged recovery ladder's counter invariants
//! (`RunStats::{ring_repairs, regional_repairs, fallback_rounds}` and the
//! rung-3 entry round in `Detail`), over randomized topologies, seeds and
//! fault plans:
//!
//! * **Clean runs are ladder-free.** Without a declared `FaultPlan` the
//!   recovery machinery must be provably inert: every recovery counter
//!   zero and no fallback entry round — on top of the exact bit-identity
//!   pins in `tests/fault_degradation.rs`, this holds over *arbitrary*
//!   topologies and seeds, not just the four historical scenarios.
//! * **Rungs are monotone.** The ladder escalates strictly in order:
//!   nonzero `fallback_rounds` implies a rung-2 regional repair was
//!   attempted, which implies a rung-1 ring repair was attempted. A run
//!   that flooded without first trying local repair is the regression this
//!   property exists to catch.
//! * **Counters replay bit-identically.** A faulted run is a pure function
//!   of (scenario, seed): re-running it must reproduce the full `RunStats`
//!   including every recovery counter, for randomly drawn fault plans (the
//!   fixed-plan matrix lives in `tests/determinism.rs`).

use broadcast::multi_message::BatchMode;
use broadcast::{Detail, Scenario, TopologySpec, Workload};
use proptest::prelude::*;
use radio_sim::{FaultPlan, RunStats};
use rlnc::gf2::BitVec;

/// A small random topology: cluster chains and grids cover deep and
/// shallow diameter regimes without making proptest cases expensive.
fn topology(pick: u8, a: usize, b: usize) -> TopologySpec {
    if pick % 2 == 0 {
        TopologySpec::ClusterChain { clusters: 2 + a % 4, size: 3 + b % 3 }
    } else {
        TopologySpec::Grid { w: 3 + a % 3, h: 3 + b % 3 }
    }
}

/// A random single-class fault plan harsh enough to exercise the ladder on
/// some draws (jammers sit near the middle of every generated topology).
fn fault_plan(pick: u8, p: f64, period: u64) -> FaultPlan {
    match pick % 4 {
        0 => FaultPlan::none().with_erasure(0.05 + p * 0.25),
        1 => FaultPlan::none().with_jammer(4, 1 + period % 3, 0),
        2 => FaultPlan::none().with_churn(1 + period % 2, 0.0, 0.005 + p * 0.02),
        _ => FaultPlan::none().with_erasure(0.1 + p * 0.2).with_jammer(4, 2, 0),
    }
}

/// The ladder/fallback counters of a run.
fn rungs(stats: &RunStats) -> (u64, u64, u64) {
    (stats.ring_repairs, stats.regional_repairs, stats.fallback_rounds)
}

/// The rung-3 entry round recorded in the typed detail (`None` for
/// workloads without a recovery ladder).
fn fallback_entry(detail: &Detail) -> Option<u64> {
    match detail {
        Detail::Single { fallback_entry, .. } => *fallback_entry,
        Detail::MultiUnknown { fallback_entry, .. } => *fallback_entry,
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn clean_runs_never_touch_the_ladder(
        pick in 0u8..4, a in 0usize..8, b in 0usize..8, seed in 0u64..500,
    ) {
        let out = Scenario::new(topology(pick, a, b), Workload::Single { payload: 7 })
            .seed(seed)
            .run();
        prop_assert_eq!(rungs(&out.stats), (0, 0, 0), "clean run fired the ladder");
        prop_assert_eq!(out.stats.retries, 0);
        prop_assert_eq!(out.stats.votes_overturned, 0);
        prop_assert_eq!(fallback_entry(&out.detail), None);
    }

    #[test]
    fn clean_multi_runs_never_touch_the_ladder(
        pick in 0u8..4, a in 0usize..8, seed in 0u64..500,
    ) {
        let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i * 5 + 1, 16)).collect();
        let out = Scenario::new(
            topology(pick, a, a),
            Workload::MultiUnknown { messages: msgs, batch: BatchMode::FullK },
        )
        .seed(seed)
        .run();
        prop_assert_eq!(rungs(&out.stats), (0, 0, 0), "clean multi run fired the ladder");
        prop_assert_eq!(fallback_entry(&out.detail), None);
    }

    #[test]
    fn ladder_rungs_are_monotone_and_replay_exactly(
        tpick in 0u8..4, a in 0usize..8, b in 0usize..8,
        fpick in 0u8..4, p in 0.0f64..1.0, period in 1u64..4,
        seed in 0u64..500,
    ) {
        let scenario = Scenario::new(topology(tpick, a, b), Workload::Single { payload: 7 })
            .faults(fault_plan(fpick, p, period))
            .seed(seed);
        let out = scenario.clone().run();
        let (ring, regional, fallback) = rungs(&out.stats);
        // Escalation is strictly ordered: global flood only after a
        // regional attempt, regional only after a ring-local attempt.
        if fallback > 0 {
            prop_assert!(regional > 0, "fallback without a rung-2 attempt: {:?}", out.stats);
        }
        if regional > 0 {
            prop_assert!(ring > 0, "rung 2 without a rung-1 attempt: {:?}", out.stats);
        }
        // The entry round is recorded exactly when rung 3 armed.
        let entry = fallback_entry(&out.detail);
        prop_assert_eq!(entry.is_some(), fallback > 0, "fallback_entry out of sync");
        if let (Some(entry), Some(done)) = (entry, out.completion_round) {
            prop_assert!(entry <= done, "rung 3 armed after completion");
        }
        // Faulted runs are pure functions of (scenario, seed).
        let replay = scenario.run();
        prop_assert_eq!(out.completion_round, replay.completion_round, "completion diverged");
        prop_assert_eq!(&out.stats, &replay.stats, "recovery counters diverged on replay");
    }
}
