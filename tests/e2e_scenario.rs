//! The `Scenario` facade: cap compliance across a topology × workload × seed
//! matrix, and bit-identity against the legacy free functions on both
//! collision modes (the facade is a front door, not a different run —
//! including the emergency-alert corridor staying at exactly 677 rounds).

use broadcast::decay::{DecayBroadcast, DecayMsg};
use broadcast::multi_message::{
    broadcast_known, broadcast_unknown_with, BatchMode, KnownRunOpts, MultiRunOpts,
};
use broadcast::single_message::broadcast_single_with;
use broadcast::{
    Algo, Detail, EmptyBehavior, Pacing, Params, Scenario, SlowKey, TopologySpec, Workload,
};
use radio_sim::{CollisionMode, DoneCheck, NodeId, Simulator};
use rlnc::gf2::BitVec;

fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64(i * 5 + 2, 16)).collect()
}

fn matrix_topologies() -> Vec<TopologySpec> {
    vec![
        TopologySpec::Path { n: 12 },
        TopologySpec::Grid { w: 4, h: 4 },
        TopologySpec::Star { n: 10 },
        TopologySpec::ClusterChain { clusters: 3, size: 4 },
        TopologySpec::BinaryTree { n: 15 },
        TopologySpec::Gnp { n: 20, p: 0.25, graph_seed: 7 },
        TopologySpec::UnitDisk { n: 24, radius: 0.45, graph_seed: 7 },
    ]
}

fn matrix_workloads() -> Vec<Workload> {
    vec![
        Workload::Single { payload: 0xFACE },
        Workload::MultiKnown {
            messages: payloads(3),
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        },
        Workload::MultiUnknown { messages: payloads(3), batch: BatchMode::FullK },
        Workload::Baseline(Algo::Decay { payload: 0xFACE }),
        Workload::Baseline(Algo::MmvDecay { payload: 0xFACE, noise: true }),
    ]
}

#[test]
fn matrix_completes_within_caps() {
    // Every (topology, workload, seed) cell must complete and respect its
    // worst-case cap; a failure names the exact cell.
    for spec in matrix_topologies() {
        for workload in matrix_workloads() {
            let scenario = Scenario::new(spec.clone(), workload);
            let matrix = scenario.seeds(0..2);
            for run in &matrix.runs {
                assert!(
                    run.outcome.completed_within_cap(),
                    "{} seed {}: completion {:?} vs cap {} (phases {:?})",
                    matrix.label,
                    run.seed,
                    run.outcome.completion_round,
                    run.outcome.cap,
                    run.outcome.phases
                );
                assert_eq!(
                    run.outcome.phases.total(),
                    run.outcome.stats.rounds,
                    "{} seed {}: phase accounting must cover every executed round",
                    matrix.label,
                    run.seed
                );
            }
        }
    }
}

#[test]
fn single_matches_legacy_on_both_modes() {
    let spec = TopologySpec::ClusterChain { clusters: 4, size: 5 };
    let g = spec.build();
    let params = Params::scaled(g.node_count());
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in [0u64, 3] {
            let legacy =
                broadcast_single_with(&g, NodeId::new(0), 9, &params, seed, mode, Pacing::Segment);
            let facade = Scenario::new(spec.clone(), Workload::Single { payload: 9 })
                .collision_mode(mode)
                .seed(seed)
                .run();
            assert_eq!(
                facade.completion_round, legacy.completion_round,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(facade.stats, legacy.stats, "trace diverged ({mode:?}, seed {seed})");
            assert_eq!(facade.audit, legacy.audit, "audit diverged ({mode:?}, seed {seed})");
            assert_eq!(facade.cap, legacy.plan.total_rounds());
            assert_eq!(facade.phases.total(), legacy.phases.total());
            let Detail::Single { plan, fallbacks, fallback_entry } = facade.detail else {
                panic!("wrong detail arm")
            };
            assert_eq!(plan, legacy.plan);
            assert_eq!(fallbacks, legacy.fallbacks);
            assert_eq!(fallback_entry, legacy.fallback_entry);
        }
    }
}

#[test]
fn multi_unknown_matches_legacy_on_both_modes() {
    let spec = TopologySpec::ClusterChain { clusters: 4, size: 4 };
    let g = spec.build();
    let params = Params::scaled(g.node_count());
    let msgs = payloads(3);
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in [1u64, 4] {
            let legacy = broadcast_unknown_with(
                &g,
                NodeId::new(0),
                &msgs,
                &params,
                seed,
                MultiRunOpts::new(BatchMode::FullK).with_mode(mode),
            );
            let facade = Scenario::new(
                spec.clone(),
                Workload::MultiUnknown { messages: msgs.clone(), batch: BatchMode::FullK },
            )
            .collision_mode(mode)
            .seed(seed)
            .run();
            assert_eq!(
                facade.completion_round, legacy.completion_round,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(facade.stats, legacy.stats, "trace diverged ({mode:?}, seed {seed})");
            assert_eq!(facade.audit, legacy.audit, "audit diverged ({mode:?}, seed {seed})");
            assert_eq!(facade.cap, legacy.rounds_budget);
            assert_eq!(facade.phases.total(), legacy.phases.total());
        }
    }
}

#[test]
fn multi_known_matches_legacy_on_both_modes() {
    let spec = TopologySpec::Grid { w: 4, h: 4 };
    let g = spec.build();
    let params = Params::scaled(g.node_count());
    let msgs = payloads(4);
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in [2u64, 6] {
            let legacy = broadcast_known(
                &g,
                NodeId::new(0),
                &msgs,
                &params,
                seed,
                KnownRunOpts::new().with_mode(mode),
            );
            let facade = Scenario::new(
                spec.clone(),
                Workload::MultiKnown {
                    messages: msgs.clone(),
                    slow_key: SlowKey::VirtualDistance,
                    empty: EmptyBehavior::Silent,
                },
            )
            .collision_mode(mode)
            .seed(seed)
            .run();
            assert_eq!(
                facade.completion_round, legacy.completion_round,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(facade.stats, legacy.stats, "trace diverged ({mode:?}, seed {seed})");
            assert_eq!(facade.audit, legacy.audit, "audit diverged ({mode:?}, seed {seed})");
        }
    }
}

#[test]
fn baseline_decay_matches_hand_rolled_loop_on_both_modes() {
    let spec = TopologySpec::ClusterChain { clusters: 5, size: 4 };
    let g = spec.build();
    let params = Params::scaled(g.node_count());
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in [0u64, 5] {
            let mut sim = Simulator::new(g.clone(), mode, seed, |id| {
                DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(3)))
            });
            let legacy = sim.run_until_with(5_000_000, DoneCheck::OnDelivery, |ns| {
                ns.iter().all(DecayBroadcast::is_informed)
            });
            let facade =
                Scenario::new(spec.clone(), Workload::Baseline(Algo::Decay { payload: 3 }))
                    .collision_mode(mode)
                    .seed(seed)
                    .run();
            assert_eq!(
                facade.completion_round, legacy,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(facade.stats, sim.stats().clone(), "trace diverged ({mode:?}, seed {seed})");
        }
    }
}

#[test]
fn corridor_pin_stays_exactly_677() {
    // The emergency-alert corridor at seed 1 has completed in exactly 677
    // rounds since PR 2; the facade must not perturb a single round.
    let out = Scenario::new(
        TopologySpec::ClusterChain { clusters: 20, size: 6 },
        Workload::Single { payload: 0xA1E57 },
    )
    .seed(1)
    .run();
    assert_eq!(
        out.completion_round,
        Some(677),
        "the corridor round sequence changed (phases {:?})",
        out.phases
    );
}

#[test]
fn pacing_knob_reaches_the_drivers() {
    // Per-step pacing must replay the segment-paced run exactly while
    // polling every node (no act skips) — through the facade.
    let spec = TopologySpec::ClusterChain { clusters: 3, size: 4 };
    let seg = Scenario::new(spec.clone(), Workload::Single { payload: 2 }).seed(4).run();
    let step =
        Scenario::new(spec, Workload::Single { payload: 2 }).pacing(Pacing::PerStep).seed(4).run();
    assert_eq!(seg.completion_round, step.completion_round);
    assert_eq!(seg.phases, step.phases);
    assert!(seg.stats.act_skips > 0, "segment pacing never skipped");
    assert_eq!(step.stats.act_skips, 0, "per-step pacing must poll everyone");
}
