//! A run is a pure function of (graph, protocol, master seed).

use broadcast::multi_message::{broadcast_known, broadcast_unknown, BatchMode};
use broadcast::schedule::{EmptyBehavior, SlowKey};
use broadcast::single_message::{broadcast_single, broadcast_single_in_mode};
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::{CollisionMode, NodeId};
use rlnc::gf2::BitVec;

#[test]
fn single_message_deterministic() {
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let a = broadcast_single(&g, NodeId::new(0), 5, &params, 42).completion_round;
    let b = broadcast_single(&g, NodeId::new(0), 5, &params, 42).completion_round;
    let c = broadcast_single(&g, NodeId::new(0), 5, &params, 43).completion_round;
    assert_eq!(a, b);
    assert!(a.is_some() && c.is_some());
}

#[test]
fn single_message_deterministic_across_modes_and_seeds() {
    // The adaptive driver's phase decisions feed off channel-level
    // quiescence, so the *entire trace* — completion round and the full
    // RunStats (rounds, transmissions, deliveries, collisions, skips) — must
    // be a pure function of (graph, params, mode, master seed). Without CD
    // the wave can jam (completion None); the trace must still replay.
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in 0..8u64 {
            let a = broadcast_single_in_mode(&g, NodeId::new(0), 9, &params, seed, mode);
            let b = broadcast_single_in_mode(&g, NodeId::new(0), 9, &params, seed, mode);
            assert_eq!(
                a.completion_round, b.completion_round,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(a.stats, b.stats, "RunStats diverged ({mode:?}, seed {seed})");
            assert_eq!(a.phases, b.phases, "phase accounting diverged ({mode:?}, seed {seed})");
            if mode == CollisionMode::Detection {
                assert!(a.completion_round.is_some(), "seed {seed} failed under CD");
            }
        }
    }
}

#[test]
fn single_message_seeds_differ_somewhere() {
    // Different master seeds must actually produce different traces (the
    // streams are split per node, so this guards against seed plumbing bugs).
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let traces: Vec<_> = (0..8u64)
        .map(|seed| broadcast_single(&g, NodeId::new(0), 9, &params, seed).stats)
        .collect();
    assert!(traces.windows(2).any(|w| w[0] != w[1]), "all 8 seeds produced identical traces");
}

#[test]
fn known_topology_deterministic() {
    let g = generators::grid(5, 4);
    let params = Params::scaled(20);
    let msgs: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(i, 16)).collect();
    let run = |seed| {
        broadcast_known(
            &g,
            NodeId::new(0),
            &msgs,
            &params,
            seed,
            SlowKey::VirtualDistance,
            EmptyBehavior::Silent,
            500_000,
        )
        .completion_round
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn unknown_topology_deterministic() {
    let g = generators::grid(4, 4);
    let params = Params::scaled(16);
    let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i, 16)).collect();
    let run = |seed| {
        broadcast_unknown(&g, NodeId::new(0), &msgs, &params, seed, BatchMode::FullK)
            .completion_round
    };
    assert_eq!(run(9), run(9));
}
