//! A run is a pure function of (graph, protocol, master seed) — and the
//! engine's wake-list fast path is a faithful replay of the dense sweep:
//! identical observations, statistics and per-node RNG draws.

use broadcast::adaptive::Pacing;
use broadcast::decay::{DecayBroadcast, DecayMsg, MmvDecayBroadcast};
use broadcast::multi_message::{
    broadcast_known, broadcast_unknown, broadcast_unknown_faulted, broadcast_unknown_with,
    BatchMode, GhkMultiNode, GhkMultiPlan, KnownRunOpts, MultiRunOpts,
};
use broadcast::single_message::{
    broadcast_single, broadcast_single_faulted, broadcast_single_in_mode, broadcast_single_with,
};
use broadcast::{Params, Scenario, TopologySpec, Workload};
use radio_sim::graph::{generators, Traversal};
use radio_sim::{CollisionMode, DenseWrap, FaultPlan, NodeId, Protocol, RunStats, Simulator};
use rlnc::gf2::BitVec;

/// Runs `make`'s protocol through both engine paths (wake-list vs dense
/// sweep) for `rounds`, returning the per-node extracts and channel stats of
/// each. Any RNG-draw divergence between the paths shows up as a
/// transmission/observation difference, so equal extracts + stats pin the
/// full trace.
fn both_paths<P, S>(
    g: &radio_sim::Graph,
    mode: CollisionMode,
    seed: u64,
    rounds: u64,
    make: impl Fn(NodeId) -> P + Copy,
    extract: impl Fn(&P) -> S,
) -> ((Vec<S>, RunStats), (Vec<S>, RunStats))
where
    P: Protocol,
{
    let mut wake = Simulator::new(g.clone(), mode, seed, make);
    wake.run(rounds);
    let w = (wake.nodes().iter().map(&extract).collect(), wake.stats().clone());
    let mut dense = Simulator::new(g.clone(), mode, seed, |id| DenseWrap(make(id)));
    dense.run(rounds);
    let d = (dense.nodes().iter().map(|n| extract(&n.0)).collect(), dense.stats().clone());
    (w, d)
}

/// Semantic fields of [`RunStats`] (the skip counters differ between paths
/// by design).
fn semantic(s: &RunStats) -> (u64, u64, u64, u64) {
    (s.rounds, s.transmissions, s.deliveries, s.collisions)
}

#[test]
fn decay_wake_list_equals_dense_across_modes_and_seeds() {
    let g = generators::cluster_chain(5, 4);
    let params = Params::scaled(g.node_count());
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in 0..4u64 {
            let ((wn, ws), (dn, ds)) = both_paths(
                &g,
                mode,
                seed,
                1_500,
                |id| DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(7))),
                DecayBroadcast::informed_at,
            );
            assert_eq!(wn, dn, "informed rounds diverged ({mode:?}, seed {seed})");
            assert_eq!(semantic(&ws), semantic(&ds), "stats diverged ({mode:?}, seed {seed})");
            assert!(ws.act_skips > 0 && ds.act_skips == 0);
        }
    }
}

#[test]
fn mmv_decay_wake_list_equals_dense_across_modes_and_seeds() {
    let g = generators::cluster_chain(4, 4);
    let levels: Vec<u32> = {
        let l = g.bfs(NodeId::new(0));
        g.node_ids().map(|v| l.level(v)).collect()
    };
    let params = Params::scaled(g.node_count());
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in 0..4u64 {
            let ((wn, ws), (dn, ds)) = both_paths(
                &g,
                mode,
                seed,
                2_000,
                |id| {
                    MmvDecayBroadcast::new(
                        &params,
                        levels[id.index()],
                        true,
                        (id.index() == 0).then_some(5),
                    )
                },
                MmvDecayBroadcast::informed_at,
            );
            assert_eq!(wn, dn, "informed rounds diverged ({mode:?}, seed {seed})");
            assert_eq!(semantic(&ws), semantic(&ds), "stats diverged ({mode:?}, seed {seed})");
        }
    }
}

#[test]
fn multi_fixed_wake_list_equals_dense_across_modes_and_seeds() {
    // The full fixed-plan Theorem 1.3 node (wave + construction + labeling +
    // windows + FEC handoffs) through both engine paths. NoDetection jams
    // the wave — the trace must still replay identically.
    let g = generators::cluster_chain(4, 4);
    let params = Params::scaled(g.node_count());
    let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i * 9 + 1, 16)).collect();
    let d = g.bfs(NodeId::new(0)).max_level();
    let plan = GhkMultiPlan::new(&params, d, 3, BatchMode::FullK);
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in 0..3u64 {
            let ((wn, ws), (dn, ds)) = both_paths(
                &g,
                mode,
                seed,
                plan.fixed_rounds() + 1,
                |id| {
                    GhkMultiNode::new(
                        &params,
                        plan,
                        id.raw(),
                        16,
                        (id.index() == 0).then(|| msgs.clone()),
                    )
                },
                GhkMultiNode::messages,
            );
            assert_eq!(wn, dn, "decoded payloads diverged ({mode:?}, seed {seed})");
            assert_eq!(semantic(&ws), semantic(&ds), "stats diverged ({mode:?}, seed {seed})");
            assert!(ws.act_skips > 0, "wake path never skipped ({mode:?}, seed {seed})");
        }
    }
}

#[test]
fn unknown_topology_adaptive_full_trace_deterministic() {
    // The adaptive driver's phase decisions feed off channel-level
    // quiescence, so completion, phase accounting and the full RunStats must
    // replay exactly.
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i, 16)).collect();
    for seed in 0..4u64 {
        let a = broadcast_unknown(&g, NodeId::new(0), &msgs, &params, seed, BatchMode::FullK);
        let b = broadcast_unknown(&g, NodeId::new(0), &msgs, &params, seed, BatchMode::FullK);
        assert_eq!(a.completion_round, b.completion_round, "completion diverged (seed {seed})");
        assert_eq!(a.stats, b.stats, "RunStats diverged (seed {seed})");
        assert_eq!(a.phases, b.phases, "phase accounting diverged (seed {seed})");
        assert!(a.completion_round.is_some(), "seed {seed} failed");
    }
}

/// The sparse-path fields of [`RunStats`] that must agree between segment
/// and per-step pacing (everything except the wake-path skip counters,
/// which differ by design: per-step pacing never skips an act).
fn paced_semantic(s: &RunStats) -> (u64, u64, u64, u64, u64) {
    (s.rounds, s.transmissions, s.deliveries, s.collisions, s.observe_skips)
}

#[test]
fn single_segment_pacing_equals_per_step_across_modes_and_seeds() {
    // The tentpole invariant of the segment scheduler: publishing batched
    // work segments through the wake-hint fast path must replay the
    // per-round-stepped run bit for bit — same completion round, same phase
    // accounting, same channel trace — while actually skipping acts.
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in 0..4u64 {
            let seg =
                broadcast_single_with(&g, NodeId::new(0), 9, &params, seed, mode, Pacing::Segment);
            let step =
                broadcast_single_with(&g, NodeId::new(0), 9, &params, seed, mode, Pacing::PerStep);
            assert_eq!(
                seg.completion_round, step.completion_round,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(
                paced_semantic(&seg.stats),
                paced_semantic(&step.stats),
                "trace diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(
                seg.phases, step.phases,
                "phase accounting diverged ({mode:?}, seed {seed})"
            );
            assert!(
                seg.stats.act_skips > 0,
                "segment pacing never skipped ({mode:?}, seed {seed})"
            );
            assert_eq!(step.stats.act_skips, 0, "per-step pacing must poll everyone");
            assert_eq!(step.stats.idle_fastforward, 0);
        }
    }
}

#[test]
fn multi_segment_pacing_equals_per_step_across_modes_and_seeds() {
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i * 7 + 1, 16)).collect();
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in 0..4u64 {
            let opts = MultiRunOpts::new(BatchMode::FullK).with_mode(mode);
            let seg = broadcast_unknown_with(&g, NodeId::new(0), &msgs, &params, seed, opts);
            let step = broadcast_unknown_with(
                &g,
                NodeId::new(0),
                &msgs,
                &params,
                seed,
                opts.with_pacing(Pacing::PerStep),
            );
            assert_eq!(
                seg.completion_round, step.completion_round,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(
                paced_semantic(&seg.stats),
                paced_semantic(&step.stats),
                "trace diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(
                seg.phases, step.phases,
                "phase accounting diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(seg.audit, step.audit, "schedule audit diverged ({mode:?}, seed {seed})");
            assert!(
                seg.stats.act_skips > 0,
                "segment pacing never skipped ({mode:?}, seed {seed})"
            );
            assert_eq!(step.stats.act_skips, 0, "per-step pacing must poll everyone");
        }
    }
}

#[test]
fn faulted_runs_replay_identically_across_modes_and_seeds() {
    // Fault randomness comes from its own salted streams of the master
    // seed, so a faulted run is as pure a function of (scenario, seed) as a
    // clean one: the full RunStats — channel trace, the erased / jammed /
    // churn_events fault counters, *and* the driver-recorded recovery
    // counters (retries, votes_overturned, ring_repairs, regional_repairs,
    // fallback_rounds) — must replay exactly, for both collision modes,
    // under each fault class.
    let spec = TopologySpec::ClusterChain { clusters: 4, size: 4 };
    let plans = [
        ("erasure", FaultPlan::none().with_erasure(0.15)),
        ("jammer", FaultPlan::none().with_jammer(5, 3, 1)),
        ("churn", FaultPlan::none().with_churn(2, 0.01, 0.05)),
    ];
    let mut recovery_fired = false;
    for (class, plan) in &plans {
        for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
            for seed in 0..4u64 {
                let run = || {
                    Scenario::new(spec.clone(), Workload::Single { payload: 3 })
                        .collision_mode(mode)
                        .seed(seed)
                        .faults(plan.clone())
                        .run()
                };
                let (a, b) = (run(), run());
                assert_eq!(
                    a.completion_round, b.completion_round,
                    "completion diverged ({class}, {mode:?}, seed {seed})"
                );
                assert_eq!(a.stats, b.stats, "RunStats diverged ({class}, {mode:?}, seed {seed})");
                assert_eq!(
                    a.phases, b.phases,
                    "phase accounting diverged ({class}, {mode:?}, seed {seed})"
                );
                let fired = match *class {
                    "erasure" => a.stats.erased,
                    "jammer" => a.stats.jammed,
                    _ => a.stats.churn_events,
                };
                assert!(fired > 0, "{class} never fired ({mode:?}, seed {seed}): {:?}", a.stats);
                recovery_fired |= a.stats.retries
                    + a.stats.votes_overturned
                    + a.stats.ring_repairs
                    + a.stats.regional_repairs
                    + a.stats.fallback_rounds
                    > 0;
            }
        }
    }
    assert!(recovery_fired, "no run in the sweep exercised the recovery machinery");
}

#[test]
fn single_recovery_segment_pacing_equals_per_step() {
    // The recovery machinery (status-beep voting, handoff retries, the
    // no-knowledge fallback) runs through the same segment scheduler as the
    // clean pipeline, so the wake fast path must replay the per-step faulted
    // run exactly — through the fallback transition — with identical
    // recovery counters.
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let plan = FaultPlan::none().with_jammer(5, 3, 1).with_erasure(0.15);
    let mut recovery_fired = false;
    for seed in 0..4u64 {
        let run = |pacing| {
            broadcast_single_faulted(
                &g,
                NodeId::new(0),
                9,
                &params,
                seed,
                CollisionMode::Detection,
                pacing,
                &plan,
            )
        };
        let (seg, step) = (run(Pacing::Segment), run(Pacing::PerStep));
        assert_eq!(
            seg.completion_round, step.completion_round,
            "completion diverged (seed {seed})"
        );
        assert_eq!(
            paced_semantic(&seg.stats),
            paced_semantic(&step.stats),
            "trace diverged (seed {seed})"
        );
        assert_eq!(seg.phases, step.phases, "phase accounting diverged (seed {seed})");
        assert_eq!(
            recovery_tuple(&seg.stats),
            recovery_tuple(&step.stats),
            "recovery counters diverged (seed {seed})"
        );
        recovery_fired |= recovery_tuple(&seg.stats) != (0, 0, 0, 0, 0);
    }
    assert!(recovery_fired, "no seed exercised the recovery machinery");
}

/// Every driver-recorded recovery counter, as one comparable tuple:
/// (retries, votes_overturned, ring_repairs, regional_repairs,
/// fallback_rounds).
fn recovery_tuple(stats: &radio_sim::RunStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.retries,
        stats.votes_overturned,
        stats.ring_repairs,
        stats.regional_repairs,
        stats.fallback_rounds,
    )
}

#[test]
fn multi_recovery_segment_pacing_equals_per_step() {
    // Same invariant for the Theorem 1.3 pipeline, with the measured-erasure
    // fec-repair adaptation active on a lossy channel.
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i * 7 + 1, 16)).collect();
    let plan = FaultPlan::none().with_erasure(0.15);
    let opts = MultiRunOpts::new(BatchMode::FullK).with_fec_repair(2);
    let mut recovery_fired = false;
    for seed in 0..4u64 {
        let run = |pacing| {
            broadcast_unknown_faulted(
                &g,
                NodeId::new(0),
                &msgs,
                &params,
                seed,
                opts.with_pacing(pacing),
                &plan,
            )
        };
        let (seg, step) = (run(Pacing::Segment), run(Pacing::PerStep));
        assert_eq!(
            seg.completion_round, step.completion_round,
            "completion diverged (seed {seed})"
        );
        assert_eq!(
            paced_semantic(&seg.stats),
            paced_semantic(&step.stats),
            "trace diverged (seed {seed})"
        );
        assert_eq!(seg.phases, step.phases, "phase accounting diverged (seed {seed})");
        assert_eq!(
            recovery_tuple(&seg.stats),
            recovery_tuple(&step.stats),
            "recovery counters diverged (seed {seed})"
        );
        recovery_fired |= recovery_tuple(&seg.stats) != (0, 0, 0, 0, 0);
    }
    assert!(recovery_fired, "no seed exercised the recovery machinery");
}

#[test]
fn single_message_deterministic() {
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let a = broadcast_single(&g, NodeId::new(0), 5, &params, 42).completion_round;
    let b = broadcast_single(&g, NodeId::new(0), 5, &params, 42).completion_round;
    let c = broadcast_single(&g, NodeId::new(0), 5, &params, 43).completion_round;
    assert_eq!(a, b);
    assert!(a.is_some() && c.is_some());
}

#[test]
fn single_message_deterministic_across_modes_and_seeds() {
    // The adaptive driver's phase decisions feed off channel-level
    // quiescence, so the *entire trace* — completion round and the full
    // RunStats (rounds, transmissions, deliveries, collisions, skips) — must
    // be a pure function of (graph, params, mode, master seed). Without CD
    // the wave can jam (completion None); the trace must still replay.
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
        for seed in 0..8u64 {
            let a = broadcast_single_in_mode(&g, NodeId::new(0), 9, &params, seed, mode);
            let b = broadcast_single_in_mode(&g, NodeId::new(0), 9, &params, seed, mode);
            assert_eq!(
                a.completion_round, b.completion_round,
                "completion diverged ({mode:?}, seed {seed})"
            );
            assert_eq!(a.stats, b.stats, "RunStats diverged ({mode:?}, seed {seed})");
            assert_eq!(a.phases, b.phases, "phase accounting diverged ({mode:?}, seed {seed})");
            if mode == CollisionMode::Detection {
                assert!(a.completion_round.is_some(), "seed {seed} failed under CD");
            }
        }
    }
}

#[test]
fn single_message_seeds_differ_somewhere() {
    // Different master seeds must actually produce different traces (the
    // streams are split per node, so this guards against seed plumbing bugs).
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let traces: Vec<_> = (0..8u64)
        .map(|seed| broadcast_single(&g, NodeId::new(0), 9, &params, seed).stats)
        .collect();
    assert!(traces.windows(2).any(|w| w[0] != w[1]), "all 8 seeds produced identical traces");
}

#[test]
fn known_topology_deterministic() {
    let g = generators::grid(5, 4);
    let params = Params::scaled(20);
    let msgs: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(i, 16)).collect();
    let run = |seed| {
        broadcast_known(
            &g,
            NodeId::new(0),
            &msgs,
            &params,
            seed,
            KnownRunOpts::new().with_max_rounds(500_000),
        )
        .completion_round
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn unknown_topology_deterministic() {
    let g = generators::grid(4, 4);
    let params = Params::scaled(16);
    let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i, 16)).collect();
    let run = |seed| {
        broadcast_unknown(&g, NodeId::new(0), &msgs, &params, seed, BatchMode::FullK)
            .completion_round
    };
    assert_eq!(run(9), run(9));
}
