//! A run is a pure function of (graph, protocol, master seed).

use broadcast::multi_message::{broadcast_known, broadcast_unknown, BatchMode};
use broadcast::schedule::{EmptyBehavior, SlowKey};
use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::NodeId;
use rlnc::gf2::BitVec;

#[test]
fn single_message_deterministic() {
    let g = generators::cluster_chain(4, 5);
    let params = Params::scaled(20);
    let a = broadcast_single(&g, NodeId::new(0), 5, &params, 42).completion_round;
    let b = broadcast_single(&g, NodeId::new(0), 5, &params, 42).completion_round;
    let c = broadcast_single(&g, NodeId::new(0), 5, &params, 43).completion_round;
    assert_eq!(a, b);
    assert!(a.is_some() && c.is_some());
}

#[test]
fn known_topology_deterministic() {
    let g = generators::grid(5, 4);
    let params = Params::scaled(20);
    let msgs: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(i, 16)).collect();
    let run = |seed| {
        broadcast_known(
            &g,
            NodeId::new(0),
            &msgs,
            &params,
            seed,
            SlowKey::VirtualDistance,
            EmptyBehavior::Silent,
            500_000,
        )
        .completion_round
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn unknown_topology_deterministic() {
    let g = generators::grid(4, 4);
    let params = Params::scaled(16);
    let msgs: Vec<BitVec> = (0..3u64).map(|i| BitVec::from_u64(i, 16)).collect();
    let run = |seed| {
        broadcast_unknown(&g, NodeId::new(0), &msgs, &params, seed, BatchMode::FullK)
            .completion_round
    };
    assert_eq!(run(9), run(9));
}
