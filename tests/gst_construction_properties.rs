//! Property tests: distributed and centralized GST constructions on random
//! graphs, checked by the verifier.

use broadcast::construction::{ConstructionSchedule, GstConstructionNode};
use broadcast::Params;
use gst::{build_gst, verify_gst, BuildConfig, GstViolation};
use proptest::prelude::*;
use radio_sim::graph::{generators, Traversal};
use radio_sim::rng::stream_rng;
use radio_sim::{CollisionMode, NodeId, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn centralized_gst_is_always_valid(n in 8usize..60, p in 0.05f64..0.3, seed in 0u64..1000) {
        let mut rng = stream_rng(seed, 0);
        let g = generators::gnp_connected(n, p, &mut rng);
        let (tree, report) = build_gst(&g, &[NodeId::new(0)], &mut rng, &BuildConfig::for_nodes(n));
        let violations = verify_gst(&g, &tree, &[NodeId::new(0)]);
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
        prop_assert_eq!(report.fallback_assignments, 0);
        prop_assert!(tree.max_rank() <= radio_sim::graph::ceil_log2(n));
    }

    #[test]
    fn centralized_gst_valid_on_trees(n in 4usize..80, seed in 0u64..1000) {
        let mut rng = stream_rng(seed, 1);
        let g = generators::random_tree(n, &mut rng);
        let (tree, _) = build_gst(&g, &[NodeId::new(0)], &mut rng, &BuildConfig::for_nodes(n));
        let violations = verify_gst(&g, &tree, &[NodeId::new(0)]);
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
    }
}

#[test]
fn distributed_construction_structurally_sound_on_random_graphs() {
    // Hard guarantees even with scaled constants: spanning tree with real
    // neighbors as parents and no orphans. Rank softness is bounded.
    let mut soft_total = 0usize;
    let mut nodes_total = 0usize;
    for seed in 0..5u64 {
        let mut rng = stream_rng(seed, 2);
        let g = generators::gnp_connected(36, 0.12, &mut rng);
        let params = Params::scaled(36);
        let layering = g.bfs(NodeId::new(0));
        let sched = ConstructionSchedule::new(&params, layering.max_level().max(1));
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
            GstConstructionNode::new(&params, sched, id.raw(), layering.level(id))
        });
        sim.run(sched.total_rounds() + 1);
        let labels: Vec<_> = sim.nodes().iter().map(|n| n.labels()).collect();
        let tree = gst::Gst::new(
            labels.iter().map(|l| l.level).collect(),
            labels.iter().map(|l| l.rank).collect(),
            labels.iter().map(|l| l.parent).collect(),
        )
        .expect("well-shaped");
        let violations = verify_gst(&g, &tree, &[NodeId::new(0)]);
        for v in &violations {
            match v {
                GstViolation::NotSpanning { .. }
                | GstViolation::UnexpectedRoot { .. }
                | GstViolation::ParentNotNeighbor { .. }
                | GstViolation::WrongLevel { .. } => {
                    panic!("hard violation at seed {seed}: {v}");
                }
                _ => soft_total += 1,
            }
        }
        nodes_total += g.node_count();
        assert_eq!(sim.nodes().iter().filter(|n| n.stats().orphaned).count(), 0);
    }
    assert!(soft_total * 20 <= nodes_total, "too many soft violations: {soft_total}/{nodes_total}");
}
