//! The virtual stretch graph `G'` and virtual distances (Section 3.2).
//!
//! `G'` contains every edge of `G` (in both directions) plus a directed *fast
//! edge* from each stretch head to every node further down its stretch. The
//! *virtual distance* `d_u` is the directed distance from the root set in
//! `G'`. The paper's MMV schedule keys its slow transmissions on `d_u`
//! instead of the BFS level — the change that makes the schedule
//! multi-message viable — and Lemma 3.4 bounds `d_u ≤ 2⌈log2 n⌉`.

use crate::tree::Gst;
use radio_sim::{Graph, NodeId};
use std::collections::VecDeque;

/// Virtual distances of every node from the root set in `G'`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualDistances {
    d: Vec<u32>,
}

/// Distance marking nodes unreachable in `G'` (cannot happen for nodes the
/// tree spans, but kept explicit for partial trees).
pub const UNREACHABLE: u32 = u32::MAX;

impl VirtualDistances {
    /// Computes virtual distances for `gst` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn compute(graph: &Graph, gst: &Gst) -> Self {
        assert_eq!(graph.node_count(), gst.node_count(), "graph/tree size mismatch");
        let n = graph.node_count();

        // Fast edges: head -> each node strictly below it on its stretch.
        let mut fast_targets: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for stretch in gst.stretches() {
            if stretch.len() > 1 {
                fast_targets[stretch.head().index()] = stretch.nodes[1..].to_vec();
            }
        }

        let mut d = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();
        for root in gst.roots() {
            d[root.index()] = 0;
            queue.push_back(root);
        }
        while let Some(u) = queue.pop_front() {
            let du = d[u.index()];
            for &v in graph.neighbors(u) {
                if d[v.index()] == UNREACHABLE {
                    d[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
            for &v in &fast_targets[u.index()] {
                if d[v.index()] == UNREACHABLE {
                    d[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        VirtualDistances { d }
    }

    /// The virtual distance of `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> u32 {
        self.d[v.index()]
    }

    /// All distances, indexed by node.
    pub fn as_slice(&self) -> &[u32] {
        &self.d
    }

    /// The largest finite virtual distance.
    pub fn max(&self) -> u32 {
        self.d.iter().copied().filter(|&x| x != UNREACHABLE).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::compute_ranks;
    use radio_sim::graph::generators;

    fn gst_for_path(n: usize) -> (Graph, Gst) {
        let g = generators::path(n);
        let level: Vec<u32> = (0..n as u32).collect();
        let parent: Vec<Option<u32>> = (0..n as u32).map(|v| v.checked_sub(1)).collect();
        let rank = compute_ranks(&parent);
        (g, Gst::new(level, rank, parent).unwrap())
    }

    #[test]
    fn path_collapses_to_distance_one() {
        // A path is a single rank-1 stretch: the head reaches every node in
        // one fast edge, so d <= 1 everywhere past the root.
        let (g, gst) = gst_for_path(16);
        let vd = VirtualDistances::compute(&g, &gst);
        assert_eq!(vd.get(NodeId::new(0)), 0);
        for v in 1..16 {
            assert_eq!(vd.get(NodeId::new(v)), 1, "node {v}");
        }
        assert_eq!(vd.max(), 1);
    }

    #[test]
    fn star_distances_are_graph_distances() {
        let g = generators::star(5);
        let level = vec![0, 1, 1, 1, 1];
        let parent = vec![None, Some(0), Some(0), Some(0), Some(0)];
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        let vd = VirtualDistances::compute(&g, &gst);
        // Center rank 2, leaves rank 1: all stretches trivial, so G' = G.
        assert_eq!(vd.as_slice(), &[0, 1, 1, 1, 1]);
    }

    #[test]
    fn lemma_3_4_bound_on_binary_tree() {
        // Virtual distance is at most 2*ceil(log2 n) on any valid GST.
        let n = 63usize;
        let g = generators::binary_tree(n);
        let level: Vec<u32> = (0..n)
            .map(|i| {
                let mut l = 0;
                let mut v = i;
                while v > 0 {
                    v = (v - 1) / 2;
                    l += 1;
                }
                l
            })
            .collect();
        let parent: Vec<Option<u32>> =
            (0..n).map(|i| if i == 0 { None } else { Some(((i - 1) / 2) as u32) }).collect();
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        let vd = VirtualDistances::compute(&g, &gst);
        let bound = 2 * radio_sim::graph::ceil_log2(n);
        assert!(vd.max() <= bound, "max {} exceeds bound {}", vd.max(), bound);
    }

    #[test]
    fn virtual_distance_never_exceeds_graph_distance() {
        let (g, gst) = gst_for_path(10);
        let vd = VirtualDistances::compute(&g, &gst);
        use radio_sim::graph::Traversal;
        let bfs = g.bfs(NodeId::new(0));
        for v in g.node_ids() {
            assert!(vd.get(v) <= bfs.level(v));
        }
    }

    #[test]
    fn multi_root_distances_start_at_zero() {
        let g = generators::path(4);
        // Roots 0 and 3? Levels must be BFS-consistent per tree assembly:
        // build a forest with roots 0 and 2: 1 child of 0, 3 child of 2.
        let level = vec![0, 1, 0, 1];
        let parent = vec![None, Some(0), None, Some(2)];
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        let vd = VirtualDistances::compute(&g, &gst);
        assert_eq!(vd.get(NodeId::new(0)), 0);
        assert_eq!(vd.get(NodeId::new(2)), 0);
        assert_eq!(vd.get(NodeId::new(1)), 1);
        assert_eq!(vd.get(NodeId::new(3)), 1);
    }
}
