//! The GST verifier: the test oracle every construction is checked against.
//!
//! [`verify_gst`] checks, for a candidate [`Gst`] over a graph:
//!
//! 1. **Spanning**: every node reachable from the root set has a parent (or is
//!    a root);
//! 2. **BFS**: `level(v)` equals the hop distance from the root set, and every
//!    parent is a graph neighbor one level up;
//! 3. **Ranking rule**: ranks follow the inductive rule of Section 2.1;
//! 4. **Collision-freeness** (the paper's defining property): the edges
//!    between same-rank children and their same-rank parents form an induced
//!    matching between consecutive levels;
//! 5. **Stretch reception** (operational strengthening, see the crate docs):
//!    an in-stretch node must not have a *second* fast-transmitting same-rank
//!    neighbor on the previous level, otherwise the wave pipelining of
//!    Proposition 3.6 would collide.

use crate::ranking::compute_ranks;
use crate::tree::Gst;
use radio_sim::graph::Traversal;
use radio_sim::{Graph, NodeId};
use std::fmt;

/// A violation found by [`verify_gst`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GstViolation {
    /// A reachable node has no parent and is not a root.
    NotSpanning {
        /// The orphaned node.
        node: NodeId,
    },
    /// A node declares itself a root without being in the intended root set.
    UnexpectedRoot {
        /// The self-declared root.
        node: NodeId,
    },
    /// `level(v)` is not the BFS distance from the root set.
    WrongLevel {
        /// The offending node.
        node: NodeId,
        /// The label the tree carries.
        labelled: u32,
        /// The true BFS distance.
        actual: u32,
    },
    /// A parent that is not a graph neighbor.
    ParentNotNeighbor {
        /// The child.
        node: NodeId,
        /// Its claimed parent.
        parent: NodeId,
    },
    /// A rank that differs from the inductive ranking rule.
    WrongRank {
        /// The offending node.
        node: NodeId,
        /// The label the tree carries.
        labelled: u32,
        /// The rank the rule derives.
        actual: u32,
    },
    /// Two same-rank parent edges that are not independent: `child2` is
    /// adjacent to `parent1` (all four nodes sharing one rank).
    CollisionFreeness {
        /// First matched child.
        child1: NodeId,
        /// First matched parent.
        parent1: NodeId,
        /// Second matched child, adjacent to `parent1`.
        child2: NodeId,
        /// Second matched parent.
        parent2: NodeId,
    },
    /// An in-stretch node with a second same-rank fast-transmitting neighbor
    /// one level up: its stretch reception would collide.
    StretchReception {
        /// The listening in-stretch node.
        node: NodeId,
        /// Its in-stretch parent.
        parent: NodeId,
        /// The interfering fast transmitter.
        interferer: NodeId,
    },
}

impl fmt::Display for GstViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GstViolation::NotSpanning { node } => write!(f, "{node} is reachable but orphaned"),
            GstViolation::UnexpectedRoot { node } => {
                write!(f, "{node} declares itself a root but is not in the root set")
            }
            GstViolation::WrongLevel { node, labelled, actual } => {
                write!(f, "{node} labelled level {labelled} but BFS distance is {actual}")
            }
            GstViolation::ParentNotNeighbor { node, parent } => {
                write!(f, "{node} claims non-neighbor parent {parent}")
            }
            GstViolation::WrongRank { node, labelled, actual } => {
                write!(f, "{node} labelled rank {labelled} but rule derives {actual}")
            }
            GstViolation::CollisionFreeness { child1, parent1, child2, parent2 } => write!(
                f,
                "induced matching violated: ({child1}->{parent1}) and ({child2}->{parent2}) \
                 with {child2} adjacent to {parent1}"
            ),
            GstViolation::StretchReception { node, parent, interferer } => write!(
                f,
                "{node} receives its stretch wave from {parent} but {interferer} also \
                 fast-transmits next to it"
            ),
        }
    }
}

/// Checks `gst` against `graph` with the intended root set `roots`,
/// returning all violations found (empty means the tree is a valid GST).
///
/// # Panics
///
/// Panics if `gst.node_count() != graph.node_count()` or `roots` is empty.
pub fn verify_gst(graph: &Graph, gst: &Gst, roots: &[NodeId]) -> Vec<GstViolation> {
    assert_eq!(graph.node_count(), gst.node_count(), "graph/tree size mismatch");
    assert!(!roots.is_empty(), "root set must be non-empty");
    let mut violations = Vec::new();
    let n = graph.node_count();
    let root_set = {
        let mut v = vec![false; n];
        for r in roots {
            v[r.index()] = true;
        }
        v
    };
    for v in gst.roots() {
        if !root_set[v.index()] {
            violations.push(GstViolation::UnexpectedRoot { node: v });
        }
    }

    // 1 & 2: spanning + BFS levels + parent adjacency.
    let layering = graph.bfs_multi(roots);
    for v in graph.node_ids() {
        if !layering.is_reachable(v) {
            continue; // unreachable nodes are outside the tree's scope
        }
        let actual = layering.level(v);
        if gst.level(v) != actual {
            violations.push(GstViolation::WrongLevel { node: v, labelled: gst.level(v), actual });
        }
        match gst.parent(v) {
            None => {
                if actual != 0 {
                    violations.push(GstViolation::NotSpanning { node: v });
                }
            }
            Some(p) => {
                if !graph.has_edge(v, p) {
                    violations.push(GstViolation::ParentNotNeighbor { node: v, parent: p });
                }
            }
        }
    }

    // 3: the ranking rule.
    let derived = compute_ranks(gst.parents());
    for v in graph.node_ids() {
        if layering.is_reachable(v) && gst.rank(v) != derived[v.index()] {
            violations.push(GstViolation::WrongRank {
                node: v,
                labelled: gst.rank(v),
                actual: derived[v.index()],
            });
        }
    }

    // 4: collision-freeness (induced matching of same-rank parent edges).
    // M = { (u, parent(u)) : rank(u) == rank(parent(u)) }. For u in M with
    // parent v, no *other* matched child u2 (same rank, same level) may be
    // adjacent to v.
    for v in graph.node_ids() {
        let Some(p) = gst.parent(v) else { continue };
        if gst.rank(v) != gst.rank(p) {
            continue;
        }
        // v is matched to p at rank r. Look for matched children adjacent to p.
        let r = gst.rank(v);
        for &u2 in graph.neighbors(p) {
            if u2 == v || gst.rank(u2) != r || gst.level(u2) != gst.level(v) {
                continue;
            }
            let Some(p2) = gst.parent(u2) else { continue };
            if p2 != p && gst.rank(p2) == r {
                violations.push(GstViolation::CollisionFreeness {
                    child1: v,
                    parent1: p,
                    child2: u2,
                    parent2: p2,
                });
            }
        }
    }

    // 5: stretch reception. For every in-stretch listener v with parent p,
    // no other fast transmitter of the same rank may sit one level up.
    for v in graph.node_ids() {
        let Some(p) = gst.parent(v) else { continue };
        if gst.rank(v) != gst.rank(p) {
            continue;
        }
        for &w in graph.neighbors(v) {
            if w != p
                && gst.level(w) + 1 == gst.level(v)
                && gst.rank(w) == gst.rank(v)
                && gst.is_fast_transmitter(w)
            {
                violations.push(GstViolation::StretchReception {
                    node: v,
                    parent: p,
                    interferer: w,
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Gst;
    use radio_sim::graph::generators;

    fn path_gst(n: usize) -> (Graph, Gst) {
        let g = generators::path(n);
        let level: Vec<u32> = (0..n as u32).collect();
        let parent: Vec<Option<u32>> = (0..n as u32).map(|v| v.checked_sub(1)).collect();
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        (g, gst)
    }

    #[test]
    fn valid_path_gst_passes() {
        let (g, gst) = path_gst(8);
        assert!(verify_gst(&g, &gst, &[NodeId::new(0)]).is_empty());
    }

    #[test]
    fn star_gst_passes() {
        let g = generators::star(6);
        let level = vec![0, 1, 1, 1, 1, 1];
        let parent = vec![None, Some(0), Some(0), Some(0), Some(0), Some(0)];
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        assert!(verify_gst(&g, &gst, &[NodeId::new(0)]).is_empty());
    }

    #[test]
    fn wrong_level_flagged() {
        let g = generators::path(4);
        // Claim node 3 is at level 2 via parent 1 (not its neighbor).
        let level = vec![0, 1, 2, 2];
        let parent = vec![None, Some(0), Some(1), Some(1)];
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        let violations = verify_gst(&g, &gst, &[NodeId::new(0)]);
        assert!(violations.iter().any(|v| matches!(v, GstViolation::WrongLevel { .. })));
        assert!(violations.iter().any(|v| matches!(v, GstViolation::ParentNotNeighbor { .. })));
    }

    #[test]
    fn wrong_rank_flagged() {
        let (g, gst) = path_gst(4);
        // Tamper: bump node 2's rank.
        let mut rank = gst.ranks().to_vec();
        rank[2] = 2;
        let bad = Gst::new(gst.levels().to_vec(), rank, gst.parents().to_vec()).unwrap();
        let violations = verify_gst(&g, &bad, &[NodeId::new(0)]);
        assert!(violations.iter().any(|v| matches!(v, GstViolation::WrongRank { .. })));
    }

    #[test]
    fn orphan_flagged() {
        let g = generators::path(3);
        // Node 2 pretends to be a root (level 0 with no parent) — BFS says 2.
        let level = vec![0, 1, 0];
        let parent = vec![None, Some(0), None];
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        let violations = verify_gst(&g, &gst, &[NodeId::new(0)]);
        assert!(violations.iter().any(|v| matches!(v, GstViolation::NotSpanning { .. })));
    }

    #[test]
    fn collision_freeness_violation_flagged() {
        // C4 with a chord layout:
        //   s(0) - a(1), s - b(2); a - x(3), b - x ; plus a second child y(4) of a
        //   and z(5) of b to force ranks.
        // Build a tree where a and b both have rank 1 via single rank-1 children
        // on level 2, and x (child of a, rank 1) is adjacent to b (rank 1).
        let g = Graph::from_edges(
            4,
            [
                (0, 1), // s-a
                (0, 2), // s-b
                (1, 3), // a-x
                (2, 3), // b-x
            ],
        )
        .unwrap();
        // Tree: x child of a. Then a rank 1 (one rank-1 child), b leaf rank 1.
        // x (rank 1, level 2) is adjacent to b (rank 1, level 1) — but b has no
        // matched child, so the induced matching is fine; b is not a fast
        // transmitter (no child), so stretch reception is fine too.
        let level = vec![0, 1, 1, 2];
        let parent = vec![None, Some(0), Some(0), Some(1)];
        let rank = compute_ranks(&parent);
        let gst = Gst::new(level, rank, parent).unwrap();
        assert!(verify_gst(&g, &gst, &[NodeId::new(0)]).is_empty());

        // Now extend: give b a matched rank-1 child x2 adjacent to a.
        let g = Graph::from_edges(
            6,
            [
                (0, 1), // s-a
                (0, 2), // s-b
                (1, 3), // a-x
                (2, 3), // b-x   (x adjacent to the other parent)
                (2, 4), // b-x2
                (1, 5), // a-aux neighbor (unused)
            ],
        )
        .unwrap();
        let level = vec![0, 1, 1, 2, 2, 2];
        let parent = vec![None, Some(0), Some(0), Some(1), Some(2), Some(1)];
        let rank = compute_ranks(&parent);
        // a has two rank-1 children (3 and 5) -> rank 2; that breaks the
        // scenario, so drop node 5's edge into the tree by making it b's child?
        // Instead: attach 5 under node 3 won't keep levels. Simplest: remove
        // node 5 from the tree by making the graph smaller.
        let _ = (level, parent, rank);
        let g2 = Graph::from_edges(
            5,
            [
                (0, 1), // s-a
                (0, 2), // s-b
                (1, 3), // a-x
                (2, 3), // b-x
                (2, 4), // b-x2
            ],
        )
        .unwrap();
        let level = vec![0, 1, 1, 2, 2];
        let parent = vec![None, Some(0), Some(0), Some(1), Some(2)];
        let rank = compute_ranks(&parent);
        // ranks: x,x2 leaves =1; a has one rank-1 child -> 1; b has one -> 1;
        // s has two rank-1 children -> 2.
        let gst = Gst::new(level, rank, parent).unwrap();
        let violations = verify_gst(&g2, &gst, &[NodeId::new(0)]);
        assert!(
            violations.iter().any(|v| matches!(v, GstViolation::CollisionFreeness { .. })),
            "expected collision-freeness violation, got {violations:?}"
        );
        assert!(
            violations.iter().any(|v| matches!(v, GstViolation::StretchReception { .. })),
            "expected stretch-reception violation, got {violations:?}"
        );
        let _ = g;
    }

    #[test]
    fn violation_display_nonempty() {
        let v = GstViolation::NotSpanning { node: NodeId::new(2) };
        assert!(v.to_string().contains("v2"));
    }
}
