//! The inductive ranking rule of ranked BFS trees (Section 2.1).
//!
//! > Each leaf of `T` gets rank 1. Consider node `v` with all children ranked,
//! > and let `r` be the maximum child rank. If `v` has exactly one child of
//! > rank `r`, `v` gets rank `r`; with two or more children of rank `r`, `v`
//! > gets rank `r + 1`.

/// Computes ranks for a forest given `parents[v]` (`None` for roots).
///
/// Nodes are processed children-before-parents; the forest may have any
/// number of roots. Returns `ranks[v] >= 1` for every node.
///
/// # Panics
///
/// Panics if the parent pointers contain a cycle.
pub fn compute_ranks(parents: &[Option<u32>]) -> Vec<u32> {
    let n = parents.len();
    // Topologically order nodes by processing leaves upward: count children.
    let mut pending_children = vec![0u32; n];
    for p in parents.iter().flatten() {
        pending_children[*p as usize] += 1;
    }
    // (max child rank, multiplicity at that max) accumulated per node.
    let mut best = vec![(0u32, 0u32); n];
    let mut ranks = vec![0u32; n];
    let mut stack: Vec<u32> =
        (0..n as u32).filter(|&v| pending_children[v as usize] == 0).collect();
    let mut processed = 0usize;
    while let Some(v) = stack.pop() {
        processed += 1;
        let (max_rank, multiplicity) = best[v as usize];
        ranks[v as usize] = match multiplicity {
            0 => 1,            // leaf
            1 => max_rank,     // unique maximum child rank
            _ => max_rank + 1, // tied maximum
        };
        if let Some(p) = parents[v as usize] {
            let r = ranks[v as usize];
            let entry = &mut best[p as usize];
            match r.cmp(&entry.0) {
                std::cmp::Ordering::Greater => *entry = (r, 1),
                std::cmp::Ordering::Equal => entry.1 += 1,
                std::cmp::Ordering::Less => {}
            }
            pending_children[p as usize] -= 1;
            if pending_children[p as usize] == 0 {
                stack.push(p);
            }
        }
    }
    assert_eq!(processed, n, "parent pointers contain a cycle");
    ranks
}

/// The maximum rank any ranked tree on `n` nodes can attain:
/// `⌊log2(n + 1)⌋`, since a rank-`r` node needs at least `2^r − 1`
/// descendants (itself included). The paper states the weaker
/// `⌈log2 n⌉` bound.
pub fn max_possible_rank(n: usize) -> u32 {
    if n == 0 {
        return 0;
    }
    (usize::BITS - (n + 1).leading_zeros() - 1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_is_rank_one() {
        assert_eq!(compute_ranks(&[None]), vec![1]);
    }

    #[test]
    fn path_is_all_rank_one() {
        // 0 <- 1 <- 2 <- 3
        let parents = [None, Some(0), Some(1), Some(2)];
        assert_eq!(compute_ranks(&parents), vec![1, 1, 1, 1]);
    }

    #[test]
    fn star_center_gets_rank_two() {
        let parents = [None, Some(0), Some(0), Some(0)];
        assert_eq!(compute_ranks(&parents), vec![2, 1, 1, 1]);
    }

    #[test]
    fn perfect_binary_tree_rank_grows() {
        // 7-node perfect binary tree: root 0, children 1,2; grandchildren 3..7.
        let parents = [None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)];
        let ranks = compute_ranks(&parents);
        assert_eq!(ranks[3..], [1, 1, 1, 1]);
        assert_eq!(ranks[1], 2);
        assert_eq!(ranks[2], 2);
        assert_eq!(ranks[0], 3);
    }

    #[test]
    fn unique_max_propagates_without_increment() {
        // root 0 with children: a rank-2 subtree (1 with leaves 3,4) and leaf 2.
        let parents = [None, Some(0), Some(0), Some(1), Some(1)];
        let ranks = compute_ranks(&parents);
        assert_eq!(ranks[1], 2);
        assert_eq!(ranks[2], 1);
        assert_eq!(ranks[0], 2); // unique max child rank 2 -> rank 2
    }

    #[test]
    fn forest_ranks_each_tree() {
        let parents = [None, Some(0), None, Some(2), Some(2)];
        let ranks = compute_ranks(&parents);
        assert_eq!(ranks, vec![1, 1, 2, 1, 1]);
    }

    #[test]
    fn rank_bound_holds_on_caterpillar() {
        // Spine of 5, each with 2 leaves: ranks stay small.
        let mut parents = vec![None];
        for s in 1..5 {
            parents.push(Some(s as u32 - 1));
        }
        for s in 0..5u32 {
            parents.push(Some(s));
            parents.push(Some(s));
        }
        let ranks = compute_ranks(&parents);
        let max = *ranks.iter().max().unwrap();
        assert!(max <= max_possible_rank(parents.len()));
    }

    #[test]
    fn max_possible_rank_values() {
        assert_eq!(max_possible_rank(1), 1);
        assert_eq!(max_possible_rank(2), 1);
        assert_eq!(max_possible_rank(3), 2);
        assert_eq!(max_possible_rank(6), 2);
        assert_eq!(max_possible_rank(7), 3);
        assert_eq!(max_possible_rank(14), 3);
        assert_eq!(max_possible_rank(15), 4);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let parents = [Some(1), Some(0)];
        let _ = compute_ranks(&parents);
    }
}
