//! The labelled GST structure.

use radio_sim::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised when assembling a [`Gst`] from per-node labels.
///
/// These are *shape* errors (inconsistent labels); semantic GST violations
/// (wrong ranks, collision-freeness breaches) are reported by
/// [`verify_gst`](crate::verify::verify_gst) instead, because constructions
/// under test must be able to produce structurally-sound but *invalid* trees
/// for the verifier to flag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GstShapeError {
    /// Label arrays have inconsistent lengths.
    LengthMismatch,
    /// A root (no parent) has nonzero level, or a non-root has level 0.
    RootLevel {
        /// The offending node.
        node: NodeId,
    },
    /// `level(v) != level(parent(v)) + 1`.
    ParentLevel {
        /// The offending node.
        node: NodeId,
    },
    /// A parent pointer is out of bounds.
    ParentOutOfBounds {
        /// The offending node.
        node: NodeId,
    },
    /// A rank of 0 (ranks start at 1).
    ZeroRank {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for GstShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GstShapeError::LengthMismatch => write!(f, "label arrays have different lengths"),
            GstShapeError::RootLevel { node } => {
                write!(f, "root/level inconsistency at {node}")
            }
            GstShapeError::ParentLevel { node } => {
                write!(f, "parent level is not one less at {node}")
            }
            GstShapeError::ParentOutOfBounds { node } => {
                write!(f, "parent pointer out of bounds at {node}")
            }
            GstShapeError::ZeroRank { node } => write!(f, "rank 0 at {node}"),
        }
    }
}

impl Error for GstShapeError {}

/// One fast stretch: a maximal same-rank path down the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stretch {
    /// The common rank of all stretch nodes.
    pub rank: u32,
    /// The nodes of the stretch, from the top (closest to the root) down.
    /// Always non-empty; a trivial stretch has a single node.
    pub nodes: Vec<NodeId>,
}

impl Stretch {
    /// Number of nodes on the stretch.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Stretches are never empty; provided for `len`/`is_empty` symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the stretch is a single node.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The first (topmost) node.
    pub fn head(&self) -> NodeId {
        self.nodes[0]
    }

    /// The last (deepest) node.
    pub fn tail(&self) -> NodeId {
        *self.nodes.last().expect("stretch is non-empty")
    }
}

/// A gathering spanning tree (or forest): per-node levels, ranks and parents.
///
/// A distributed GST construction must leave each node knowing four items
/// (Section 2.1): its level, its rank, its parent's id and its parent's rank.
/// `Gst` is exactly that knowledge, collected; [`Gst::parent_rank`] and
/// [`Gst::is_stretch_start`] derive the stretch structure from it.
#[derive(Clone, PartialEq, Eq)]
pub struct Gst {
    level: Vec<u32>,
    rank: Vec<u32>,
    parent: Vec<Option<u32>>,
    /// Children lists, derived from `parent`.
    children: Vec<Vec<NodeId>>,
}

impl Gst {
    /// Assembles a GST from per-node labels.
    ///
    /// # Errors
    ///
    /// Returns a [`GstShapeError`] when the labels are structurally
    /// inconsistent (see the enum's docs). Semantic validity against a graph
    /// is checked separately by [`verify_gst`](crate::verify::verify_gst).
    pub fn new(
        level: Vec<u32>,
        rank: Vec<u32>,
        parent: Vec<Option<u32>>,
    ) -> Result<Self, GstShapeError> {
        let n = level.len();
        if rank.len() != n || parent.len() != n {
            return Err(GstShapeError::LengthMismatch);
        }
        for v in 0..n {
            let node = NodeId::new(v);
            match parent[v] {
                None => {
                    if level[v] != 0 {
                        return Err(GstShapeError::RootLevel { node });
                    }
                }
                Some(p) => {
                    if p as usize >= n {
                        return Err(GstShapeError::ParentOutOfBounds { node });
                    }
                    if level[v] == 0 {
                        return Err(GstShapeError::RootLevel { node });
                    }
                    if level[p as usize] + 1 != level[v] {
                        return Err(GstShapeError::ParentLevel { node });
                    }
                }
            }
            if rank[v] == 0 {
                return Err(GstShapeError::ZeroRank { node });
            }
        }
        let mut children = vec![Vec::new(); n];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p as usize].push(NodeId::new(v));
            }
        }
        Ok(Gst { level, rank, parent, children })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.level.len()
    }

    /// BFS level of `v` (0 for roots).
    #[inline]
    pub fn level(&self, v: NodeId) -> u32 {
        self.level[v.index()]
    }

    /// Rank of `v` (at least 1).
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v.index()]
    }

    /// Parent of `v` in the tree, `None` for roots.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()].map(NodeId::from)
    }

    /// Rank of `v`'s parent, `None` for roots.
    #[inline]
    pub fn parent_rank(&self, v: NodeId) -> Option<u32> {
        self.parent[v.index()].map(|p| self.rank[p as usize])
    }

    /// Children of `v`, in id order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Whether `v` is a root (level 0, no parent).
    #[inline]
    pub fn is_root(&self, v: NodeId) -> bool {
        self.parent[v.index()].is_none()
    }

    /// The roots, in id order.
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.node_count()).filter(|&v| self.parent[v].is_none()).map(NodeId::new).collect()
    }

    /// The largest rank in the tree.
    pub fn max_rank(&self) -> u32 {
        self.rank.iter().copied().max().unwrap_or(0)
    }

    /// The largest level in the tree.
    pub fn max_level(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// Whether `v` begins a fast stretch: it is a root or its parent has a
    /// different (necessarily larger) rank.
    #[inline]
    pub fn is_stretch_start(&self, v: NodeId) -> bool {
        self.parent_rank(v) != Some(self.rank(v))
    }

    /// The unique same-rank child of `v` (the next node of `v`'s stretch),
    /// if any.
    ///
    /// By the ranking rule a node can have at most one child of its own rank;
    /// if labels violate that rule (a construction bug), the lowest-id one is
    /// returned and [`verify_gst`](crate::verify::verify_gst) flags it.
    pub fn stretch_child(&self, v: NodeId) -> Option<NodeId> {
        self.children(v).iter().copied().find(|&c| self.rank(c) == self.rank(v))
    }

    /// Whether `v` performs *fast transmissions*: it has a same-rank child to
    /// pipeline waves to. See the crate docs for why end-of-stretch nodes
    /// must stay silent in fast rounds.
    #[inline]
    pub fn is_fast_transmitter(&self, v: NodeId) -> bool {
        self.stretch_child(v).is_some()
    }

    /// Extracts all fast stretches, each listed top-down. Every node appears
    /// in exactly one stretch (trivial stretches included).
    pub fn stretches(&self) -> Vec<Stretch> {
        let mut out = Vec::new();
        for v in 0..self.node_count() {
            let v = NodeId::new(v);
            if !self.is_stretch_start(v) {
                continue;
            }
            let mut nodes = vec![v];
            let mut cur = v;
            while let Some(next) = self.stretch_child(cur) {
                nodes.push(next);
                cur = next;
            }
            out.push(Stretch { rank: self.rank(v), nodes });
        }
        out
    }

    /// Per-node label views, exposed for serialization into protocols.
    pub fn levels(&self) -> &[u32] {
        &self.level
    }

    /// Ranks indexed by node.
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// Raw parent pointers indexed by node.
    pub fn parents(&self) -> &[Option<u32>] {
        &self.parent
    }
}

impl fmt::Debug for Gst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gst")
            .field("nodes", &self.node_count())
            .field("roots", &self.roots().len())
            .field("max_level", &self.max_level())
            .field("max_rank", &self.max_rank())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 7-node example: path 0-1-2 plus star children on 1 and 2.
    ///
    /// ```text
    /// level:   0    1      2
    ///          0 -- 1 -- 2
    ///               |\     \
    ///               (none)  3,4   (children of 2 at level 2)
    /// ```
    fn sample() -> Gst {
        // 0 root; 1 child of 0; 2,3 children of 1; 4 child of 2.
        let level = vec![0, 1, 2, 2, 3];
        let parent = vec![None, Some(0), Some(1), Some(1), Some(2)];
        let rank = crate::ranking::compute_ranks(&parent);
        Gst::new(level, rank, parent).unwrap()
    }

    #[test]
    fn accessors() {
        let g = sample();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.roots(), vec![NodeId::new(0)]);
        assert_eq!(g.level(NodeId::new(4)), 3);
        assert_eq!(g.parent(NodeId::new(4)), Some(NodeId::new(2)));
        assert_eq!(g.parent(NodeId::new(0)), None);
        assert_eq!(g.children(NodeId::new(1)), &[NodeId::new(2), NodeId::new(3)]);
        assert_eq!(g.max_level(), 3);
    }

    #[test]
    fn ranks_and_stretches() {
        let g = sample();
        // 3, 4 leaves rank 1; 2 has one rank-1 child -> rank 1; 1 has children
        // ranks {1, 1} -> rank 2; 0 has one rank-2 child -> rank 2.
        assert_eq!(g.ranks(), &[2, 2, 1, 1, 1]);
        assert_eq!(g.max_rank(), 2);
        assert!(g.is_stretch_start(NodeId::new(0)));
        assert!(!g.is_stretch_start(NodeId::new(1)));
        assert!(g.is_stretch_start(NodeId::new(2)));
        assert!(!g.is_stretch_start(NodeId::new(4)));

        let stretches = g.stretches();
        assert_eq!(stretches.len(), 3);
        let total: usize = stretches.iter().map(Stretch::len).sum();
        assert_eq!(total, 5);
        let big = stretches.iter().find(|s| s.head() == NodeId::new(2)).unwrap();
        assert_eq!(big.nodes, vec![NodeId::new(2), NodeId::new(4)]);
        assert_eq!(big.tail(), NodeId::new(4));
        assert!(!big.is_trivial());
    }

    #[test]
    fn fast_transmitter_requires_same_rank_child() {
        let g = sample();
        assert!(g.is_fast_transmitter(NodeId::new(0))); // child 1 has rank 2
        assert!(g.is_fast_transmitter(NodeId::new(2))); // child 4 has rank 1
        assert!(!g.is_fast_transmitter(NodeId::new(1))); // children rank 1 < 2
        assert!(!g.is_fast_transmitter(NodeId::new(3))); // leaf
        assert!(!g.is_fast_transmitter(NodeId::new(4))); // leaf
    }

    #[test]
    fn multi_root_forest() {
        let level = vec![0, 0, 1, 1];
        let parent = vec![None, None, Some(0), Some(1)];
        let rank = crate::ranking::compute_ranks(&parent);
        let g = Gst::new(level, rank, parent).unwrap();
        assert_eq!(g.roots().len(), 2);
        assert!(g.is_root(NodeId::new(1)));
        assert!(!g.is_root(NodeId::new(2)));
    }

    #[test]
    fn shape_errors() {
        assert_eq!(
            Gst::new(vec![0], vec![1, 1], vec![None]).unwrap_err(),
            GstShapeError::LengthMismatch
        );
        assert!(matches!(
            Gst::new(vec![1], vec![1], vec![None]).unwrap_err(),
            GstShapeError::RootLevel { .. }
        ));
        assert!(matches!(
            Gst::new(vec![0, 0], vec![1, 1], vec![None, Some(0)]).unwrap_err(),
            GstShapeError::RootLevel { .. }
        ));
        assert!(matches!(
            Gst::new(vec![0, 2], vec![1, 1], vec![None, Some(0)]).unwrap_err(),
            GstShapeError::ParentLevel { .. }
        ));
        assert!(matches!(
            Gst::new(vec![0, 1], vec![1, 1], vec![None, Some(9)]).unwrap_err(),
            GstShapeError::ParentOutOfBounds { .. }
        ));
        assert!(matches!(
            Gst::new(vec![0], vec![0], vec![None]).unwrap_err(),
            GstShapeError::ZeroRank { .. }
        ));
    }

    #[test]
    fn shape_error_display() {
        let e = GstShapeError::RootLevel { node: NodeId::new(3) };
        assert!(e.to_string().contains("v3"));
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", sample()).contains("Gst"));
    }
}
