//! # gst — Gathering Spanning Trees
//!
//! Data structures, verification and a centralized construction for the
//! *Gathering Spanning Trees* (GSTs) of Gasieniec, Peleg and Xin, as used by
//! Ghaffari–Haeupler–Khabbazian (Section 2 of the paper).
//!
//! A GST is a BFS tree whose nodes carry *ranks* assigned by the inductive
//! rule (leaves get rank 1; a parent gets the maximum child rank, plus one if
//! that maximum is attained twice), such that the *collision-freeness*
//! property holds: rank-`r` parent edges between consecutive levels form an
//! induced matching. Maximal same-rank root-to-leaf path segments are *fast
//! stretches*; a broadcast can be pipelined down a stretch with one hop per
//! (fast) round, and at most `⌈log2 n⌉` stretch changes separate the source
//! from any node.
//!
//! Provided here:
//!
//! * [`Gst`] — the labelled tree (levels, ranks, parents), with stretch and
//!   children accessors; supports multiple roots (a *GST forest*), which the
//!   paper's ring decomposition needs;
//! * [`ranking`] — the inductive ranking rule as a pure function;
//! * [`verify`] — a full structural verifier used as a test oracle for every
//!   construction (centralized and distributed);
//! * [`centralized`] — an omniscient implementation of the paper's epoch
//!   structure (the Gasieniec–Peleg–Xin role), used in the known-topology
//!   algorithms and as the reference for the distributed construction;
//! * [`virtual_graph`] — the directed stretch graph `G'` and *virtual
//!   distances* of Section 3.2 (`d_u ≤ 2⌈log2 n⌉`, Lemma 3.4).
//!
//! ## Fast-transmission eligibility
//!
//! During implementation we found that the paper's Lemma 3.5 ("no collisions
//! between fast transmissions") requires a refinement: a node whose stretch
//! ends at itself (no same-rank child) must *not* fast-transmit — its wave
//! would serve no stretch descendant, and same-rank childless nodes (e.g.
//! leaves, which all share rank 1) may share neighbors, which would collide.
//! [`Gst::is_fast_transmitter`] encodes this eligibility; the schedule code
//! in the `broadcast` crate uses it, and experiment E13 audits the result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod centralized;
pub mod ranking;
pub mod tree;
pub mod verify;
pub mod virtual_graph;

pub use centralized::{build_gst, BuildConfig, BuildReport};
pub use tree::{Gst, GstShapeError, Stretch};
pub use verify::{verify_gst, GstViolation};
pub use virtual_graph::VirtualDistances;
