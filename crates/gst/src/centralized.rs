//! Centralized GST construction (the role of Gasieniec–Peleg–Xin \[7\]).
//!
//! The paper uses the existence of a GST (for the known-topology results) via
//! the `O(n^2)`-step centralized construction of \[7\]. We implement that role
//! as an *omniscient* version of the paper's own Bipartite Assignment
//! algorithm (Section 2.2.3): the same epoch structure — loner detection,
//! loner-parents recruiting all their neighbors, a random brisk/lazy split of
//! the remaining reds, exactly-one-recruit pairs staying active, marked reds
//! adopting strictly-lower-rank blues — but with *exact* recruiting instead of
//! radio rounds. The collision-freeness argument (Lemma 2.5) applies verbatim,
//! and the same seeded randomness breaks the brisk/lazy symmetry.
//!
//! Randomized symmetry breaking can in principle stall; a configurable epoch
//! budget guards each rank, after which remaining blues are assigned by a
//! fallback (and counted in [`BuildReport::fallback_assignments`], so tests
//! can assert the construction essentially never needs it).

use crate::tree::Gst;
use radio_sim::graph::Traversal;
use radio_sim::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Tuning knobs for [`build_gst`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildConfig {
    /// Epochs allowed per rank before the fallback kicks in.
    /// The paper uses `Θ(log n)`; the default is generous.
    pub max_epochs_per_rank: u32,
}

impl BuildConfig {
    /// A comfortable default for graphs of `n` nodes:
    /// `8·⌈log2 n⌉ + 32` epochs per rank.
    pub fn for_nodes(n: usize) -> Self {
        BuildConfig { max_epochs_per_rank: 8 * radio_sim::graph::ceil_log2(n.max(2)) + 32 }
    }
}

/// Statistics of one construction run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Total epochs executed across all (level, rank) subproblems.
    pub epochs: u64,
    /// Blues assigned by the out-of-budget fallback (0 in healthy runs).
    pub fallback_assignments: u64,
    /// The largest rank assigned.
    pub max_rank: u32,
}

/// Builds a GST (forest) of `graph` rooted at `roots`.
///
/// All nodes must be reachable from `roots`.
///
/// # Panics
///
/// Panics if `roots` is empty, contains duplicates, or some node is
/// unreachable from the root set.
pub fn build_gst(
    graph: &Graph,
    roots: &[NodeId],
    rng: &mut impl Rng,
    config: &BuildConfig,
) -> (Gst, BuildReport) {
    assert!(!roots.is_empty(), "at least one root required");
    let n = graph.node_count();
    let layering = graph.bfs_multi(roots);
    assert_eq!(layering.reachable_count(), n, "every node must be reachable from the root set");
    let layers = layering.layers();
    let max_level = layering.max_level() as usize;

    let mut rank: Vec<Option<u32>> = vec![None; n];
    let mut parent: Vec<Option<u32>> = vec![None; n];
    let mut report = BuildReport::default();

    // Process boundaries from the deepest level towards the roots.
    for l in (1..=max_level).rev() {
        // Any still-unranked node at level l is childless at this point: rank 1.
        for &v in &layers[l] {
            rank[v.index()].get_or_insert(1);
        }
        assign_boundary(
            graph,
            &layers[l - 1],
            &layers[l],
            &mut rank,
            &mut parent,
            rng,
            config,
            &mut report,
        );
    }
    // Rank leftover childless nodes at level 0.
    for &v in &layers[0] {
        rank[v.index()].get_or_insert(1);
    }

    let ranks: Vec<u32> = rank.into_iter().map(|r| r.expect("every node ranked")).collect();
    report.max_rank = ranks.iter().copied().max().unwrap_or(0);
    let levels: Vec<u32> = (0..n).map(|v| layering.level(NodeId::new(v))).collect();
    let gst = Gst::new(levels, ranks, parent).expect("construction yields a well-shaped tree");
    (gst, report)
}

/// Solves the Bipartite Assignment Problem between `reds` (level `l-1`) and
/// `blues` (level `l`), rank by rank from the largest blue rank down.
#[allow(clippy::too_many_arguments)]
fn assign_boundary(
    graph: &Graph,
    reds: &[NodeId],
    blues: &[NodeId],
    rank: &mut [Option<u32>],
    parent: &mut [Option<u32>],
    rng: &mut impl Rng,
    config: &BuildConfig,
    report: &mut BuildReport,
) {
    let n = graph.node_count();
    let is_red = {
        let mut v = vec![false; n];
        for &r in reds {
            v[r.index()] = true;
        }
        v
    };
    let is_blue = {
        let mut v = vec![false; n];
        for &b in blues {
            v[b.index()] = true;
        }
        v
    };

    let max_blue_rank =
        blues.iter().map(|&b| rank[b.index()].expect("blues are ranked")).max().unwrap_or(1);

    for i in (1..=max_blue_rank).rev() {
        let mut unassigned: Vec<NodeId> = blues
            .iter()
            .copied()
            .filter(|&b| rank[b.index()] == Some(i) && parent[b.index()].is_none())
            .collect();
        if unassigned.is_empty() {
            continue;
        }

        // "Identify the red neighbors of the blue nodes with rank i": the
        // active reds for this subproblem.
        let mut active = vec![false; n];
        for &b in &unassigned {
            for &r in graph.neighbors(b) {
                if is_red[r.index()] && rank[r.index()].is_none() {
                    active[r.index()] = true;
                }
            }
        }

        let mut epochs_left = config.max_epochs_per_rank;
        while !unassigned.is_empty() && epochs_left > 0 {
            epochs_left -= 1;
            report.epochs += 1;
            run_epoch(graph, &is_blue, i, &mut unassigned, &mut active, rank, parent, rng);
        }

        // Fallback for the (rare) case the epoch budget ran out.
        for &b in &unassigned {
            let candidates: Vec<NodeId> = graph
                .neighbors(b)
                .iter()
                .copied()
                .filter(|&r| is_red[r.index()] && active[r.index()])
                .collect();
            let chosen = candidates
                .choose(rng)
                .copied()
                .or_else(|| graph.neighbors(b).iter().copied().find(|&r| is_red[r.index()]))
                .expect("blue node has a previous-level neighbor by BFS construction");
            parent[b.index()] = Some(chosen.raw());
            report.fallback_assignments += 1;
            match &mut rank[chosen.index()] {
                slot @ None => *slot = Some(i),
                Some(r) if *r == i => *r = i + 1,
                Some(_) => {}
            }
        }
    }
}

/// One epoch of the assignment algorithm for rank `i` (Section 2.2.3),
/// with exact recruiting.
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    graph: &Graph,
    is_blue: &[bool],
    i: u32,
    unassigned: &mut Vec<NodeId>,
    active: &mut [bool],
    rank: &mut [Option<u32>],
    parent: &mut [Option<u32>],
    rng: &mut impl Rng,
) {
    let n = graph.node_count();

    let active_nbrs = |u: NodeId, active: &[bool]| -> Vec<NodeId> {
        graph.neighbors(u).iter().copied().filter(|&r| active[r.index()]).collect()
    };

    // Stage I: detect loners and loner-parents.
    let mut is_loner_parent = vec![false; n];
    for &u in unassigned.iter() {
        let nbrs = active_nbrs(u, active);
        if nbrs.len() == 1 {
            is_loner_parent[nbrs[0].index()] = true;
        }
    }

    let mut children_count = vec![0u32; n];
    let mut assigned_now = vec![false; n];
    let mut newly_ranked: Vec<NodeId> = Vec::new();

    // Stage II part 1: every blue adjacent to a loner-parent is recruited by
    // a uniformly random adjacent loner-parent. Permanent.
    for &u in unassigned.iter() {
        let lp: Vec<NodeId> =
            active_nbrs(u, active).into_iter().filter(|&r| is_loner_parent[r.index()]).collect();
        if let Some(&v) = lp.choose(rng) {
            parent[u.index()] = Some(v.raw());
            assigned_now[u.index()] = true;
            children_count[v.index()] += 1;
        }
    }
    for v in 0..n {
        if is_loner_parent[v] {
            debug_assert!(children_count[v] >= 1, "loner-parent recruits its loner");
            rank[v] = Some(if children_count[v] == 1 { i } else { i + 1 });
            active[v] = false;
            newly_ranked.push(NodeId::new(v));
        }
    }

    // Brisk/lazy split of the remaining active reds.
    let mut is_brisk = vec![false; n];
    for v in 0..n {
        if active[v] {
            is_brisk[v] = rng.gen_bool(0.5);
        }
    }

    // Parts 2 and 3: recruit with the brisk set, then with the lazy set.
    let mut temporary: Vec<(NodeId, NodeId)> = Vec::new();
    for part_is_brisk in [true, false] {
        // Which blues does each participating red recruit this part?
        let mut recruits: Vec<(NodeId, NodeId)> = Vec::new(); // (blue, red)
        let mut part_count = vec![0u32; n];
        for &u in unassigned.iter() {
            if assigned_now[u.index()] {
                continue;
            }
            let candidates: Vec<NodeId> = active_nbrs(u, active)
                .into_iter()
                .filter(|&r| is_brisk[r.index()] == part_is_brisk)
                .collect();
            if let Some(&v) = candidates.choose(rng) {
                recruits.push((u, v));
                part_count[v.index()] += 1;
            }
        }
        // Settle this part's reds: >=2 recruits -> permanent + rank i+1;
        // exactly 1 -> temporary; 0 recruits -> marked, deactivated, unranked.
        for (u, v) in recruits {
            if part_count[v.index()] >= 2 {
                parent[u.index()] = Some(v.raw());
                assigned_now[u.index()] = true;
            } else {
                temporary.push((u, v));
                assigned_now[u.index()] = true; // inactive for the rest of the epoch
            }
        }
        for v in 0..n {
            if active[v] && is_brisk[v] == part_is_brisk {
                match part_count[v] {
                    0 => active[v] = false, // marked, no rank yet
                    1 => {}                 // temporary pair: stays active
                    _ => {
                        rank[v] = Some(i + 1);
                        active[v] = false;
                        newly_ranked.push(NodeId::new(v));
                    }
                }
            }
        }
    }

    // Stage III: blues of strictly lower rank adjacent to a newly ranked red
    // adopt one of them as parent.
    let mut is_newly_ranked = vec![false; n];
    for &v in &newly_ranked {
        is_newly_ranked[v.index()] = true;
    }
    if !newly_ranked.is_empty() {
        for w in 0..n {
            let w_id = NodeId::new(w);
            if !is_blue[w] || parent[w].is_some() || assigned_now[w] {
                continue;
            }
            let Some(rw) = rank[w] else { continue };
            if rw >= i {
                continue;
            }
            let candidates: Vec<NodeId> = graph
                .neighbors(w_id)
                .iter()
                .copied()
                .filter(|&v| is_newly_ranked[v.index()])
                .collect();
            if let Some(&v) = candidates.choose(rng) {
                parent[w] = Some(v.raw());
            }
        }
    }

    // End of epoch: temporary assignments dissolve (both sides stay active).
    for (u, _v) in temporary {
        assigned_now[u.index()] = false;
    }

    unassigned.retain(|&u| parent[u.index()].is_none());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_gst;
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;

    fn build_and_verify(graph: &Graph, seed: u64) -> (Gst, BuildReport) {
        let mut rng = stream_rng(seed, 0);
        let config = BuildConfig::for_nodes(graph.node_count());
        let (gst, report) = build_gst(graph, &[NodeId::new(0)], &mut rng, &config);
        let violations = verify_gst(graph, &gst, &[NodeId::new(0)]);
        assert!(violations.is_empty(), "violations: {violations:#?}");
        assert_eq!(report.fallback_assignments, 0, "fallback used");
        (gst, report)
    }

    #[test]
    fn path_gst() {
        let g = generators::path(20);
        let (gst, _) = build_and_verify(&g, 1);
        assert_eq!(gst.max_rank(), 1); // a path is one long stretch
    }

    #[test]
    fn star_gst() {
        let g = generators::star(10);
        let (gst, _) = build_and_verify(&g, 2);
        assert_eq!(gst.rank(NodeId::new(0)), 2);
    }

    #[test]
    fn complete_graph_gst() {
        let g = generators::complete(12);
        let (gst, _) = build_and_verify(&g, 3);
        assert_eq!(gst.max_level(), 1);
    }

    #[test]
    fn grid_gst() {
        let g = generators::grid(8, 8);
        let (gst, _) = build_and_verify(&g, 4);
        assert!(gst.max_rank() <= radio_sim::graph::ceil_log2(64));
    }

    #[test]
    fn cluster_chain_gst() {
        let g = generators::cluster_chain(6, 6);
        build_and_verify(&g, 5);
    }

    #[test]
    fn random_graphs_gst_over_seeds() {
        for seed in 0..8 {
            let mut rng = stream_rng(seed, 7);
            let g = generators::gnp_connected(60, 0.08, &mut rng);
            build_and_verify(&g, seed);
        }
    }

    #[test]
    fn unit_disk_gst() {
        let mut rng = stream_rng(11, 0);
        let g = generators::unit_disk(150, 0.15, &mut rng);
        build_and_verify(&g, 11);
    }

    #[test]
    fn rank_bound_holds() {
        for seed in 0..4 {
            let mut rng = stream_rng(seed, 9);
            let g = generators::gnp_connected(128, 0.05, &mut rng);
            let (gst, _) = build_and_verify(&g, seed + 100);
            assert!(
                gst.max_rank() <= radio_sim::graph::ceil_log2(128),
                "rank {} exceeds paper bound",
                gst.max_rank()
            );
        }
    }

    #[test]
    fn multi_root_forest_construction() {
        let g = generators::grid(6, 6);
        let roots = vec![NodeId::new(0), NodeId::new(5)];
        let mut rng = stream_rng(3, 3);
        let (gst, report) = build_gst(&g, &roots, &mut rng, &BuildConfig::for_nodes(36));
        assert_eq!(report.fallback_assignments, 0);
        assert_eq!(gst.roots(), roots);
        let violations = verify_gst(&g, &gst, &roots);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::grid(5, 5);
        let build = |seed| {
            let mut rng = stream_rng(seed, 0);
            build_gst(&g, &[NodeId::new(0)], &mut rng, &BuildConfig::for_nodes(25)).0
        };
        assert_eq!(build(5), build(5));
    }

    #[test]
    #[should_panic(expected = "reachable")]
    fn disconnected_graph_panics() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut rng = stream_rng(0, 0);
        let _ = build_gst(&g, &[NodeId::new(0)], &mut rng, &BuildConfig::for_nodes(4));
    }

    #[test]
    #[should_panic(expected = "at least one root")]
    fn empty_roots_panics() {
        let g = generators::path(3);
        let mut rng = stream_rng(0, 0);
        let _ = build_gst(&g, &[], &mut rng, &BuildConfig::for_nodes(3));
    }
}
