//! Per-round and per-run channel statistics.

use std::fmt;

/// Channel activity in a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Nodes that transmitted.
    pub transmitters: usize,
    /// Listeners that received a packet (exactly one transmitting neighbor).
    pub deliveries: usize,
    /// Listeners whose channel collided (two or more transmitting neighbors),
    /// counted *before* the collision-detection mode maps the observation.
    pub collisions: usize,
    /// Listeners that heard silence.
    pub silent: usize,
    /// Observe calls skipped by the sparse fast path
    /// (see `Protocol::SILENCE_IS_NOOP`); 0 on the dense path.
    pub observe_skips: usize,
    /// Act calls skipped by the wake-list fast path
    /// (see `Protocol::WAKE_HINTS`); 0 on the dense path.
    pub act_skips: usize,
    /// Packet copies erased by the fault layer (per receiving edge); 0
    /// without a fault plan.
    pub erased: usize,
    /// Jam injections (one per neighbor of each active jammer); 0 without a
    /// fault plan.
    pub jammed: usize,
    /// Topology fault events this round: node/edge churn toggles plus
    /// mobility re-samples; 0 without a fault plan.
    pub churn_events: usize,
}

/// Aggregated statistics over a whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rounds simulated so far.
    pub rounds: u64,
    /// Total transmissions.
    pub transmissions: u64,
    /// Total successful packet deliveries.
    pub deliveries: u64,
    /// Total collision observations (pre-mode mapping).
    pub collisions: u64,
    /// Total observe calls skipped by the sparse fast path.
    pub observe_skips: u64,
    /// Total act calls skipped by the wake-list fast path.
    pub act_skips: u64,
    /// Fully-idle rounds fast-forwarded in `O(1)` (no `act`/`observe` call at
    /// all; the rounds are still counted in [`RunStats::rounds`] and in the
    /// skip totals, so a fast-forwarded run reports the same semantic trace
    /// as one that stepped every round).
    pub idle_fastforward: u64,
    /// Total packet copies erased by the fault layer.
    pub erased: u64,
    /// Total jam injections.
    pub jammed: u64,
    /// Total topology fault events (churn toggles + mobility re-samples).
    pub churn_events: u64,
    /// Phase handoffs an adaptive driver re-published with backoff after
    /// their confirmation window exhausted. Driver-recorded (no per-round
    /// channel event backs it); 0 without a fault plan.
    pub retries: u64,
    /// Status-round verdicts an adaptive driver's majority vote overturned
    /// relative to the single-round decision. Driver-recorded; 0 without a
    /// fault plan.
    pub votes_overturned: u64,
    /// Rounds an adaptive driver spent in its no-knowledge Decay fallback
    /// phase. Driver-recorded; 0 without a fault plan.
    pub fallback_rounds: u64,
    /// Rung-1 recovery ladder firings: ring-local repairs (re-running one
    /// failed ring's construction + dissemination with fresh budget).
    /// Driver-recorded; 0 without a fault plan.
    pub ring_repairs: u64,
    /// Rung-2 recovery ladder firings: regional re-dissemination across the
    /// failed ring ± 1. Driver-recorded; 0 without a fault plan.
    pub regional_repairs: u64,
}

impl RunStats {
    /// Folds one round's stats into the totals.
    pub fn absorb(&mut self, r: RoundStats) {
        self.rounds += 1;
        self.transmissions += r.transmitters as u64;
        self.deliveries += r.deliveries as u64;
        self.collisions += r.collisions as u64;
        self.observe_skips += r.observe_skips as u64;
        self.act_skips += r.act_skips as u64;
        self.erased += r.erased as u64;
        self.jammed += r.jammed as u64;
        self.churn_events += r.churn_events as u64;
    }

    /// Folds `rounds` fully-idle rounds (of an `n`-node network) into the
    /// totals in one step — the bulk accounting of the wake-list
    /// fast-forward. Every skipped round contributes exactly what stepping it
    /// would have: `n` skipped observes and `n` skipped acts.
    pub fn absorb_idle(&mut self, rounds: u64, n: usize) {
        self.rounds += rounds;
        self.observe_skips += rounds * n as u64;
        self.act_skips += rounds * n as u64;
        self.idle_fastforward += rounds;
    }

    /// Deliveries per transmission — a utilization figure of merit.
    pub fn delivery_ratio(&self) -> f64 {
        if self.transmissions == 0 {
            return 0.0;
        }
        self.deliveries as f64 / self.transmissions as f64
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} tx, {} delivered, {} collisions (delivery ratio {:.3})",
            self.rounds,
            self.transmissions,
            self.deliveries,
            self.collisions,
            self.delivery_ratio()
        )?;
        if self.retries
            + self.votes_overturned
            + self.fallback_rounds
            + self.ring_repairs
            + self.regional_repairs
            > 0
        {
            write!(
                f,
                ", recovery: {} retries, {} votes overturned, {} ring repairs, \
                 {} regional repairs, {} fallback rounds",
                self.retries,
                self.votes_overturned,
                self.ring_repairs,
                self.regional_repairs,
                self.fallback_rounds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut run = RunStats::default();
        run.absorb(RoundStats {
            transmitters: 3,
            deliveries: 2,
            collisions: 1,
            erased: 2,
            jammed: 4,
            churn_events: 1,
            ..RoundStats::default()
        });
        run.absorb(RoundStats {
            transmitters: 1,
            deliveries: 1,
            silent: 4,
            erased: 1,
            ..RoundStats::default()
        });
        assert_eq!(run.erased, 3);
        assert_eq!(run.jammed, 4);
        assert_eq!(run.churn_events, 1);
        assert_eq!(run.rounds, 2);
        assert_eq!(run.transmissions, 4);
        assert_eq!(run.deliveries, 3);
        assert_eq!(run.collisions, 1);
    }

    #[test]
    fn delivery_ratio_handles_zero() {
        assert_eq!(RunStats::default().delivery_ratio(), 0.0);
        let mut run = RunStats::default();
        run.absorb(RoundStats { transmitters: 4, deliveries: 2, ..RoundStats::default() });
        assert!((run.delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_nonempty() {
        assert!(RunStats::default().to_string().contains("rounds"));
    }
}
