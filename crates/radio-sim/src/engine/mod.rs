//! The synchronous round engine.

pub mod faults;

use crate::graph::{Graph, Topology};
use crate::ids::NodeId;
use crate::model::{Action, CollisionMode, Observation, Packet};
use crate::rng;
use crate::trace::{RoundStats, RunStats};
use faults::{FaultPlan, FaultState};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// A wake hint returned by [`Protocol::next_wake`]: the earliest future round
/// in which this node might do something in `act`.
///
/// See [`Protocol::next_wake`] for the exact contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// The node must be polled in the very next round.
    Now,
    /// The node is guaranteed inert (listen, no RNG draw, no state change)
    /// in every round before the given round.
    At(u64),
    /// The node is inert until an observation changes its state.
    Idle,
}

/// How often [`Simulator::run_until_with`] evaluates its `done` predicate.
///
/// The predicate receives all node states, so a typical "is everyone
/// finished?" closure is an `O(n)` scan — calling it every round makes the
/// *driver* cost `O(n)` per round even when the round itself was cheap
/// (sparse/wake fast paths). The policy bounds that overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DoneCheck {
    /// Evaluate after every simulated round (the historical behavior of
    /// [`Simulator::run_until`]). Exact completion rounds, `O(n)` per round.
    EveryRound,
    /// Evaluate every `k`-th simulated round (and on the final round of the
    /// budget). The reported completion round may overshoot the true one by
    /// up to `k - 1` rounds.
    Every(u64),
    /// Evaluate only after rounds that delivered a packet or a collision to
    /// some listener — the only rounds in which *listener* state can change.
    /// Exact for predicates that depend on what nodes have received (the
    /// common "all informed/decoded" shape); a predicate that can flip when a
    /// node merely *transmits* needs [`DoneCheck::EveryRound`] instead.
    OnDelivery,
}

/// A per-node protocol state machine.
///
/// The engine calls [`Protocol::act`] on every node at the start of each
/// round, resolves the radio channel, then calls [`Protocol::observe`] on
/// every node with the outcome. Both calls receive the node's private RNG
/// stream, so runs are deterministic in the master seed.
///
/// A node knows only what a real radio node would: its own state, its id (if
/// the implementation stores it at construction), and the observations it has
/// made. The engine never leaks topology through this trait.
pub trait Protocol {
    /// Packet type carried on the channel.
    type Msg: Clone;

    /// Declares that [`Protocol::observe`] is a no-op for
    /// [`Observation::Silence`] and [`Observation::SelfTransmit`]: it neither
    /// changes state nor draws from the RNG for those observations.
    ///
    /// When `true`, the engine takes a *sparse* fast path that resolves the
    /// channel by iterating only the active transmitters' out-edges and skips
    /// the `O(n)` per-round observe sweep — nodes that would have observed
    /// silence (and transmitters, which would observe `SelfTransmit`) are not
    /// called at all. Rounds where almost everyone is silent then cost
    /// `O(active)` instead of `O(n)` on the observe side, which dominates the
    /// near-silent tail rounds of adaptive broadcast runs.
    ///
    /// [`RoundStats`]/[`RunStats`] are identical on both paths; the skipped
    /// calls are reported in [`RoundStats::observe_skips`].
    const SILENCE_IS_NOOP: bool = false;

    /// Declares that [`Protocol::next_wake`] returns meaningful hints.
    ///
    /// When `true` **and** [`Protocol::SILENCE_IS_NOOP`] is `true`, the
    /// engine keeps a bucketed wake-queue and calls [`Protocol::act`] only on
    /// nodes whose wake round has arrived; runs of rounds in which *every*
    /// node is asleep are fast-forwarded in `O(1)` by
    /// [`Simulator::run`]/[`Simulator::run_until`]. Skipped `act` calls are
    /// reported in [`RoundStats::act_skips`], fast-forwarded rounds in
    /// [`RunStats::idle_fastforward`]; `round`, the semantic
    /// [`RoundStats`]/[`RunStats`] fields and every per-node RNG stream stay
    /// bit-identical to the dense path.
    ///
    /// `SILENCE_IS_NOOP` is required because a sleeping node still receives
    /// its (skippable) silence observations conceptually; only a protocol
    /// that ignores them can be left untouched for a whole sleep interval.
    const WAKE_HINTS: bool = false;

    /// The wake hint: the earliest round `>= round` in which this node's
    /// [`Protocol::act`] might transmit, draw from its RNG, or change state.
    ///
    /// # Contract (with [`Protocol::WAKE_HINTS`] enabled)
    ///
    /// The engine calls this after any event that may have changed the
    /// node's state — construction, an `act` call, or a delivered
    /// message/collision observation — with `round` being the next round to
    /// be simulated. Returning [`Wake::At(r)`](Wake::At) with `r > round`
    /// (or [`Wake::Idle`]) promises that for every round `t` in
    /// `round..r` (resp. every future round), `act(t)` would return
    /// [`Action::Listen`] **without** drawing from the RNG and **without**
    /// mutating any state. The engine then skips those `act` calls entirely.
    ///
    /// The promise only covers the node's current state: as soon as the node
    /// observes a message or collision, the engine re-queries the hint, so
    /// hints never need to anticipate future receptions. Returning
    /// [`Wake::Now`] is always safe (it degenerates to the dense path).
    fn next_wake(&self, round: u64) -> Wake {
        let _ = round;
        Wake::Now
    }

    /// Chooses this node's action for `round` (0-based).
    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<Self::Msg>;

    /// Delivers the channel observation for `round`.
    ///
    /// If [`Protocol::SILENCE_IS_NOOP`] is `true`, this may not be called for
    /// `Silence`/`SelfTransmit` observations — implementations opting in must
    /// not rely on seeing them.
    fn observe(&mut self, round: u64, obs: Observation<Self::Msg>, rng: &mut SmallRng);
}

/// Wraps a protocol with its wake hints disabled: behavior, RNG usage and
/// statistics-relevant output are unchanged, but the engine runs the dense
/// `O(n)`-acts-per-round sweep.
///
/// Exists to A/B the wake-list fast path against the dense path — the
/// equivalence suites run every protocol both ways and assert bit-identical
/// traces.
#[derive(Clone, Debug)]
pub struct DenseWrap<P>(pub P);

impl<P: Protocol> Protocol for DenseWrap<P> {
    type Msg = P::Msg;
    const SILENCE_IS_NOOP: bool = P::SILENCE_IS_NOOP;
    // WAKE_HINTS deliberately left at the default `false`.

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<Self::Msg> {
        self.0.act(round, rng)
    }

    fn observe(&mut self, round: u64, obs: Observation<Self::Msg>, rng: &mut SmallRng) {
        self.0.observe(round, obs, rng);
    }
}

/// A per-round audit callback: receives the round number and the list of
/// `(transmitter, packet)` pairs, before channel resolution.
///
/// Used by experiments that must attribute collisions to schedule phases
/// (e.g. the Lemma 3.5 fast-transmission collision audit). Packets arrive as
/// shared [`Packet`] handles into the round's packet store.
pub type Probe<M> = Box<dyn FnMut(u64, &[(NodeId, Packet<M>)])>;

/// Outcome of one [`Simulator::run_segment`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentRun {
    /// Rounds simulated by this call, including fast-forwarded idle rounds.
    pub rounds: u64,
    /// Packets delivered across those rounds.
    pub deliveries: u64,
    /// `true` iff the call returned early because its last simulated round
    /// delivered a packet (see [`Simulator::run_segment`]'s `stop_on_delivery`).
    pub stopped_on_delivery: bool,
}

/// Deterministic synchronous simulator of the radio network model.
///
/// Generic over its [`Topology`]: the default `T = Graph` simulates a
/// materialized CSR graph exactly as before, while `T = ImplicitGraph`
/// streams neighborhoods on demand so million-node runs never hold `O(m)`
/// adjacency in memory. The executed round sequence, statistics and RNG
/// streams depend only on the neighborhoods a topology reports, so a
/// streamed run is bit-identical to the same run over its materialization.
///
/// See the [crate docs](crate) for the model and a complete example.
pub struct Simulator<P: Protocol, T: Topology = Graph> {
    graph: T,
    mode: CollisionMode,
    nodes: Vec<P>,
    rngs: Vec<SmallRng>,
    round: u64,
    stats: RunStats,
    probe: Option<Probe<P::Msg>>,
    // Scratch buffers, kept across rounds to avoid per-round allocation.
    tx_count: Vec<u32>,
    tx_from: Vec<u32>,
    transmitted: Vec<bool>,
    /// This round's packet store: each transmission is wrapped in a shared
    /// [`Packet`] once, and every delivery hands out an `O(1)` handle clone.
    txs: Vec<(NodeId, Packet<P::Msg>)>,
    /// Nodes whose channel counter was touched this round (sparse path).
    touched: Vec<u32>,
    // Wake-list state (used only when `P::WAKE_HINTS && P::SILENCE_IS_NOOP`).
    /// Per-node scheduled wake round; `WAKE_IDLE` while unscheduled.
    wake_at: Vec<u64>,
    /// Near wake-queue: a timer wheel of [`WHEEL`] slots whose buckets are
    /// recycled across rounds (no steady-state allocation). A wake at round
    /// `t` scheduled while simulating round `r` goes into slot `t % WHEEL`
    /// when `t - r < WHEEL`; since every slot is drained before its round
    /// index repeats, entries can never alias to an earlier round. Entries
    /// whose `wake_at` no longer matches the drained round are stale and
    /// skipped (they only make the idle scan pessimistic, never wrong).
    wheel: Vec<Vec<u32>>,
    /// Far wake-queue: wake round -> nodes, for wakes at least [`WHEEL`]
    /// rounds ahead; drained directly when their round arrives.
    far_wakes: BTreeMap<u64, Vec<u32>>,
    /// Round at which every node is force-woken (see
    /// [`Simulator::wake_all`]); `WAKE_IDLE` when unarmed.
    forced_wake: u64,
    /// Nodes woken this round (scratch).
    awake: Vec<u32>,
    /// Nodes whose hint must be recomputed after this round (scratch).
    dirty: Vec<u32>,
    is_dirty: Vec<bool>,
    /// Adversarial fault state; `None` when constructed without a plan (or
    /// with [`FaultPlan::none`]), in which case every fault hook is skipped
    /// and the engine behaves exactly as it did without the fault layer.
    faults: Option<FaultState>,
}

/// `wake_at` sentinel: no scheduled wake.
const WAKE_IDLE: u64 = u64::MAX;

/// Number of slots in the near wake wheel. Sized to cover the common hint
/// horizons (the pipelines publish work segments of at most a few dozen
/// rounds; parity and schedule-slot hints look 1–12 rounds ahead), so the
/// allocating far queue only sees long sleeps.
const WHEEL: u64 = 64;

impl<P: Protocol, T: Topology> Simulator<P, T> {
    /// Creates a simulator over `graph` with the given collision mode and
    /// master seed; `init` constructs each node's protocol state.
    pub fn new(
        graph: T,
        mode: CollisionMode,
        master_seed: u64,
        init: impl FnMut(NodeId) -> P,
    ) -> Self {
        Self::new_with_faults(graph, mode, master_seed, FaultPlan::none(), init)
    }

    /// Like [`Simulator::new`], but with a seeded adversarial [`FaultPlan`]
    /// applied inside every round (see [`faults`]).
    ///
    /// Fault randomness comes from dedicated streams of `master_seed`
    /// ([`rng::fault_stream_rng`]), disjoint from the per-node protocol
    /// streams: with [`FaultPlan::none`] (or any all-no-op plan) the
    /// protocol trace is bit-identical to [`Simulator::new`].
    ///
    /// # Panics
    ///
    /// Panics if the plan enables churn or mobility and `graph` is not a
    /// materialized [`Graph`]: those fault classes rewrite the topology,
    /// which a streamed topology cannot express. Erasure and jammer faults
    /// work on every topology.
    pub fn new_with_faults(
        graph: T,
        mode: CollisionMode,
        master_seed: u64,
        faults: FaultPlan,
        mut init: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = graph.node_count();
        let faults = (!faults.is_none()).then(|| {
            // Churn masks and mobility re-samples rebuild the graph from its
            // base edge list, so those plans are clamped to materialized
            // topologies; erasure/jammer plans never read base edges.
            let base_edges = if faults.churn.is_some() || faults.mobility.is_some() {
                let g = graph.as_graph().expect(
                    "churn/mobility fault plans rewrite the topology and need a \
                     materialized `Graph`; streamed topologies support erasure \
                     and jammer faults only",
                );
                g.edges().map(|(u, v)| (u.raw(), v.raw())).collect()
            } else {
                Vec::new()
            };
            FaultState::new(faults, master_seed, n, base_edges)
        });
        let nodes: Vec<P> = (0..n).map(|i| init(NodeId::new(i))).collect();
        let rngs: Vec<SmallRng> = (0..n).map(|i| rng::stream_rng(master_seed, i as u64)).collect();
        let mut sim = Simulator {
            graph,
            mode,
            nodes,
            rngs,
            round: 0,
            stats: RunStats::default(),
            probe: None,
            tx_count: vec![0; n],
            tx_from: vec![0; n],
            transmitted: vec![false; n],
            txs: Vec::new(),
            touched: Vec::new(),
            wake_at: Vec::new(),
            wheel: Vec::new(),
            far_wakes: BTreeMap::new(),
            forced_wake: WAKE_IDLE,
            awake: Vec::new(),
            dirty: Vec::new(),
            is_dirty: Vec::new(),
            faults,
        };
        if Self::WAKE_PATH {
            sim.wake_at = vec![WAKE_IDLE; n];
            sim.wheel = (0..WHEEL).map(|_| Vec::new()).collect();
            sim.is_dirty = vec![false; n];
            for i in 0..n {
                sim.schedule(i, 0);
            }
        }
        sim
    }

    /// Whether this protocol engages the wake-list fast path.
    const WAKE_PATH: bool = P::WAKE_HINTS && P::SILENCE_IS_NOOP;

    /// Recomputes node `i`'s wake hint for `next_round` and queues it.
    fn schedule(&mut self, i: usize, next_round: u64) {
        let at = match self.nodes[i].next_wake(next_round) {
            Wake::Now => next_round,
            Wake::At(r) => r.max(next_round),
            Wake::Idle => WAKE_IDLE,
        };
        if self.wake_at[i] == at {
            return;
        }
        self.wake_at[i] = at;
        if at == WAKE_IDLE {
            return;
        }
        if at - next_round < WHEEL {
            self.wheel[(at % WHEEL) as usize].push(i as u32);
        } else {
            self.far_wakes.entry(at).or_default().push(i as u32);
        }
    }

    /// Re-wakes every node for the next simulated round, regardless of its
    /// current hint. `O(1)` to arm; the next [`Simulator::step`] polls all
    /// nodes and recomputes their hints.
    ///
    /// For external drivers that pace nodes through *shared* schedule state
    /// (e.g. the adaptive pipelines' published cursor segments): a node's
    /// wake hint is computed against that shared state, so it is only valid
    /// while the state stands. Calling `wake_all` before every change of the
    /// shared state restores the [`Protocol::next_wake`] contract — hints
    /// never have to anticipate the driver's next move, and sleepers can
    /// answer [`Wake::Idle`] instead of conservatively re-waking at every
    /// boundary. No-op on the dense path.
    pub fn wake_all(&mut self) {
        if Self::WAKE_PATH {
            self.forced_wake = self.round;
        }
    }

    /// Pops every node scheduled to wake at `round` (wheel slot plus due far
    /// buckets) into `awake`, marking them dirty (their hint is consumed).
    /// A pending [`Simulator::wake_all`] wakes everyone instead.
    fn drain_wakeable(&mut self, round: u64) {
        self.awake.clear();
        if self.forced_wake == round {
            self.forced_wake = WAKE_IDLE;
            for i in 0..self.nodes.len() {
                // Supersede any scheduled wake; its queue entries go stale.
                self.wake_at[i] = WAKE_IDLE;
                self.awake.push(i as u32);
                self.mark_dirty(i);
            }
            // Drop this round's queue entries (now stale) so they are not
            // re-examined.
            self.wheel[(round % WHEEL) as usize].clear();
            while self.far_wakes.first_key_value().is_some_and(|(&k, _)| k <= round) {
                self.far_wakes.pop_first();
            }
            return;
        }
        // Near wheel: the slot's bucket is recycled, so steady-state rounds
        // allocate nothing.
        let mut bucket = std::mem::take(&mut self.wheel[(round % WHEEL) as usize]);
        for &i in &bucket {
            let i = i as usize;
            // Skip stale entries (the node was rescheduled since).
            if self.wake_at[i] != round {
                continue;
            }
            self.wake_at[i] = WAKE_IDLE;
            self.awake.push(i as u32);
            self.mark_dirty(i);
        }
        bucket.clear();
        self.wheel[(round % WHEEL) as usize] = bucket;
        while let Some((&key, _)) = self.far_wakes.first_key_value() {
            if key > round {
                break;
            }
            let far = self.far_wakes.remove(&key).expect("key just seen");
            for &i in &far {
                let i = i as usize;
                if self.wake_at[i] != key {
                    continue;
                }
                self.wake_at[i] = WAKE_IDLE;
                self.awake.push(i as u32);
                self.mark_dirty(i);
            }
        }
    }

    fn mark_dirty(&mut self, i: usize) {
        if !self.is_dirty[i] {
            self.is_dirty[i] = true;
            self.dirty.push(i as u32);
        }
    }

    /// Requeues every node whose state may have changed since its hint was
    /// computed. Deferred from the end of the previous round to the start of
    /// `round` (the round about to be simulated or fast-forwarded over) so
    /// that an intervening [`Simulator::wake_all`] makes the recomputation
    /// unnecessary: on forced-wake rounds every node is polled regardless,
    /// and its hint is recomputed afterwards anyway. External drivers that
    /// publish a new shared schedule between every pair of status rounds
    /// thus skip an entire `O(n)` hint sweep per transition.
    fn flush_dirty(&mut self, round: u64) {
        if self.dirty.is_empty() {
            return;
        }
        if self.forced_wake == round {
            for k in 0..self.dirty.len() {
                let i = self.dirty[k] as usize;
                self.is_dirty[i] = false;
            }
        } else {
            for k in 0..self.dirty.len() {
                let i = self.dirty[k] as usize;
                self.is_dirty[i] = false;
                self.schedule(i, round);
            }
        }
        self.dirty.clear();
    }

    /// A lower bound on the next round in which any node is scheduled to
    /// wake (`WAKE_IDLE` if none). Stale wheel entries can make this
    /// pessimistic (an extra empty round is stepped instead of
    /// fast-forwarded), never late: valid entries always lie within the
    /// scanned horizon.
    fn next_wake_round(&self) -> u64 {
        if self.forced_wake != WAKE_IDLE {
            return self.forced_wake;
        }
        let far = self.far_wakes.first_key_value().map_or(WAKE_IDLE, |(&k, _)| k);
        for d in 0..WHEEL {
            let r = self.round + d;
            if r >= far {
                break;
            }
            if !self.wheel[(r % WHEEL) as usize].is_empty() {
                return r;
            }
        }
        far
    }

    /// Number of fully-idle rounds (at most `max`) that can be skipped
    /// without simulating them; `None` when the next round must be stepped.
    /// Fast-forwarding is disabled while an audit probe is installed (the
    /// probe must see every round).
    fn idle_gap(&self, max: u64) -> Option<u64> {
        if !Self::WAKE_PATH || self.probe.is_some() || max == 0 {
            return None;
        }
        let mut next = self.next_wake_round();
        if let Some(f) = &self.faults {
            // Scheduled fault events (jams, churn, mobility) must be stepped,
            // never fast-forwarded over; erasure needs no clamp because
            // fully-idle rounds carry no packets to erase (and hence draw no
            // fault randomness) on any path.
            next = next.min(f.next_event_round(self.round));
        }
        if next <= self.round {
            return None;
        }
        Some((next - self.round).min(max))
    }

    /// Fast-forwards `gap` fully-idle rounds in `O(1)`.
    fn fast_forward(&mut self, gap: u64) {
        self.round += gap;
        self.stats.absorb_idle(gap, self.nodes.len());
    }

    /// Installs a per-round audit probe (replacing any previous one).
    ///
    /// While a probe is installed, the wake-list fast-forward is disabled
    /// (the probe must see every round); `act` calls are still skipped per
    /// the wake hints.
    pub fn set_probe(&mut self, probe: Probe<P::Msg>) {
        self.probe = Some(probe);
    }

    /// Simulates one round; returns its statistics.
    pub fn step(&mut self) -> RoundStats {
        let round = self.round;
        let n = self.nodes.len();

        // Scheduled topology faults (mobility re-sample, node/edge churn)
        // rewrite the graph before anyone acts this round. Node count never
        // changes, so every engine buffer and wake structure stays valid.
        let mut churn_events = 0usize;
        if let Some(f) = self.faults.as_mut() {
            let (rebuilt, events) = f.apply_topology(round, n);
            churn_events = events;
            if let Some(g) = rebuilt {
                // Only churn/mobility plans rebuild, and those are clamped to
                // materialized topologies at construction, so `replace` never
                // hits a streamed topology's panic.
                self.graph.replace(g);
            }
        }

        if Self::WAKE_PATH {
            // Deferred wake-hint recomputation for last round's dirty nodes.
            self.flush_dirty(round);
        }

        // Reset the previous round's transmit flags (O(active), not O(n)).
        for k in 0..self.txs.len() {
            self.transmitted[self.txs[k].0.index()] = false;
        }
        self.txs.clear();
        let mut act_skips = 0usize;
        if Self::WAKE_PATH {
            // Wake-list fast path: poll only nodes whose wake round arrived;
            // every other node is guaranteed (by the `next_wake` contract) to
            // listen without touching its RNG or state.
            self.drain_wakeable(round);
            // Index order keeps the transmit list (and thus probe output and
            // observe order) identical to the dense sweep.
            self.awake.sort_unstable();
            act_skips = n - self.awake.len();
            for idx in 0..self.awake.len() {
                let i = self.awake[idx] as usize;
                match self.nodes[i].act(round, &mut self.rngs[i]) {
                    Action::Transmit(m) => {
                        self.transmitted[i] = true;
                        self.txs.push((NodeId::new(i), Packet::new(m)));
                    }
                    Action::Listen => {}
                }
            }
        } else {
            for i in 0..n {
                match self.nodes[i].act(round, &mut self.rngs[i]) {
                    Action::Transmit(m) => {
                        self.transmitted[i] = true;
                        self.txs.push((NodeId::new(i), Packet::new(m)));
                    }
                    Action::Listen => {}
                }
            }
        }

        if let Some(probe) = &mut self.probe {
            probe(round, &self.txs);
        }

        // Resolve the channel: count transmitting neighbors per node,
        // remembering which counters were touched for the sparse reset.
        // With erasure enabled, each packet copy is dropped independently per
        // receiving edge before it can contribute a delivery or a collision;
        // the Bernoulli draws come from the dedicated erasure stream in a
        // fixed order (transmit list x adjacency), identical on every engine
        // path.
        self.touched.clear();
        let mut erased = 0usize;
        let mut jammed = 0usize;
        {
            // Disjoint field borrows: the topology lends neighborhoods out
            // through `with_neighbors` closures that mutate the channel
            // counters, so both sides are pinned to locals up front.
            let graph = &self.graph;
            let txs = &self.txs;
            let tx_count = &mut self.tx_count;
            let tx_from = &mut self.tx_from;
            let touched = &mut self.touched;
            let mut erasure: Option<(f64, &mut SmallRng)> = match self.faults.as_mut() {
                Some(f) => f.plan.erasure.map(|p| (p, &mut f.erasure_rng)),
                None => None,
            };
            for (t_idx, (sender, _)) in txs.iter().enumerate() {
                graph.with_neighbors(*sender, |nbrs| {
                    for &v in nbrs {
                        if let Some((p, rng)) = erasure.as_mut() {
                            if rng.gen_bool(*p) {
                                erased += 1;
                                continue;
                            }
                        }
                        if tx_count[v.index()] == 0 {
                            touched.push(v.index() as u32);
                        }
                        tx_count[v.index()] += 1;
                        tx_from[v.index()] = t_idx as u32;
                    }
                });
            }

            // Active jammers flood their neighborhood with interference:
            // every neighbor sees two extra virtual transmitters, so its
            // channel resolves to a collision regardless of what (if
            // anything) survived erasure. `tx_from` is never read at counts
            // != 1, so the virtual transmitters need no packet.
            if let Some(f) = self.faults.as_ref() {
                for j in &f.plan.jammers {
                    if !j.active(round) {
                        continue;
                    }
                    graph.with_neighbors(NodeId::new(j.node as usize), |nbrs| {
                        for &v in nbrs {
                            if tx_count[v.index()] == 0 {
                                touched.push(v.index() as u32);
                            }
                            tx_count[v.index()] += 2;
                            jammed += 1;
                        }
                    });
                }
            }
        }

        let mut rstats = RoundStats {
            transmitters: self.txs.len(),
            act_skips,
            erased,
            jammed,
            churn_events,
            ..RoundStats::default()
        };

        if P::SILENCE_IS_NOOP {
            // Sparse fast path: only nodes with a transmitting neighbor can
            // observe anything that matters; everyone else (silent listeners,
            // and transmitters with their `SelfTransmit`) is skipped. The
            // protocol has declared those observations no-ops.
            let mut heard = 0usize;
            for idx in 0..self.touched.len() {
                let i = self.touched[idx] as usize;
                if self.transmitted[i] {
                    continue;
                }
                heard += 1;
                let obs = match self.tx_count[i] {
                    1 => {
                        rstats.deliveries += 1;
                        Observation::Message(self.txs[self.tx_from[i] as usize].1.clone())
                    }
                    _ => {
                        rstats.collisions += 1;
                        if self.mode.has_detection() {
                            Observation::Collision
                        } else {
                            Observation::Silence
                        }
                    }
                };
                self.nodes[i].observe(round, obs, &mut self.rngs[i]);
                if Self::WAKE_PATH {
                    // The observation may have changed this node's state, so
                    // its wake hint must be recomputed.
                    self.mark_dirty(i);
                }
            }
            rstats.silent = n - self.txs.len() - heard;
            rstats.observe_skips = n - heard;
        } else {
            for i in 0..n {
                let obs = if self.transmitted[i] {
                    Observation::SelfTransmit
                } else {
                    match self.tx_count[i] {
                        0 => {
                            rstats.silent += 1;
                            Observation::Silence
                        }
                        1 => {
                            rstats.deliveries += 1;
                            Observation::Message(self.txs[self.tx_from[i] as usize].1.clone())
                        }
                        _ => {
                            rstats.collisions += 1;
                            if self.mode.has_detection() {
                                Observation::Collision
                            } else {
                                Observation::Silence
                            }
                        }
                    }
                };
                self.nodes[i].observe(round, obs, &mut self.rngs[i]);
            }
        }

        // Sparse reset of the counters touched this round.
        for &v in &self.touched {
            self.tx_count[v as usize] = 0;
        }

        // The wake hints of nodes whose state may have changed this round
        // (woken nodes and touched listeners) are recomputed lazily at the
        // start of the next round — see `flush_dirty`.

        self.round += 1;
        self.stats.absorb(rstats);
        rstats
    }

    /// Simulates `rounds` rounds.
    ///
    /// On the wake-list fast path (see [`Protocol::WAKE_HINTS`]), runs of
    /// rounds in which every node is asleep are skipped in `O(1)` instead of
    /// being stepped; `round` and the semantic statistics advance exactly as
    /// if each round had been simulated.
    pub fn run(&mut self, rounds: u64) {
        self.run_segment(rounds, false);
    }

    /// Simulates up to `rounds` rounds as one *work segment*, on the same
    /// fast paths as [`Simulator::run`] (acts cost `O(awake)`, fully-idle
    /// stretches fast-forward in `O(1)`).
    ///
    /// With `stop_on_delivery`, the call returns right after the first round
    /// that delivered a packet — the only kind of round in which *listener*
    /// state can change — so an external driver can batch long stretches of
    /// rounds through the wake fast path and still re-evaluate a
    /// reception-driven completion predicate exactly as if it had stepped
    /// every round (collisions and transmissions never flip such a
    /// predicate; see [`DoneCheck::OnDelivery`] for the analogous policy).
    /// The caller resumes the remainder of the segment with another call.
    ///
    /// The executed round sequence, statistics and per-node RNG streams are
    /// bit-identical to calling [`Simulator::step`] `rounds` times.
    pub fn run_segment(&mut self, rounds: u64, stop_on_delivery: bool) -> SegmentRun {
        let mut out = SegmentRun::default();
        let mut left = rounds;
        while left > 0 {
            if Self::WAKE_PATH {
                self.flush_dirty(self.round);
            }
            if let Some(gap) = self.idle_gap(left) {
                // Idle rounds deliver nothing, so they never trigger a stop.
                self.fast_forward(gap);
                out.rounds += gap;
                left -= gap;
                continue;
            }
            let rstats = self.step();
            out.rounds += 1;
            out.deliveries += rstats.deliveries as u64;
            left -= 1;
            if stop_on_delivery && rstats.deliveries > 0 {
                out.stopped_on_delivery = true;
                break;
            }
        }
        out
    }

    /// Runs until `done` holds (checked after every round) or `max_rounds`
    /// rounds have elapsed *in this call*.
    ///
    /// Equivalent to [`Simulator::run_until_with`] under
    /// [`DoneCheck::EveryRound`]; see there for the predicate-cost
    /// discussion.
    ///
    /// Returns the total round count (i.e. [`Simulator::round`]) at which the
    /// predicate first held, or `None` on timeout.
    pub fn run_until(&mut self, max_rounds: u64, done: impl FnMut(&[P]) -> bool) -> Option<u64> {
        self.run_until_with(max_rounds, DoneCheck::EveryRound, done)
    }

    /// Runs until `done` holds or `max_rounds` rounds have elapsed *in this
    /// call*, evaluating the predicate per the [`DoneCheck`] policy.
    ///
    /// # Predicate cost
    ///
    /// `done` receives every node state, so the usual
    /// `nodes.iter().all(...)` completion predicate costs `O(n)` per
    /// evaluation — under [`DoneCheck::EveryRound`] that makes the driver
    /// `O(n)` per round even when the engine's fast paths made the round
    /// itself `O(active)`. Use [`DoneCheck::OnDelivery`] (exact for
    /// reception-driven predicates) or [`DoneCheck::Every`] to amortize.
    ///
    /// The predicate must be pure in the node states: fully-idle rounds
    /// cannot change any node's state, so the wake-list fast path skips
    /// re-evaluating `done` across them (and fast-forwards the rounds
    /// themselves).
    ///
    /// Returns the total round count at which the predicate first held
    /// (subject to the policy's check granularity), or `None` on timeout.
    pub fn run_until_with(
        &mut self,
        max_rounds: u64,
        check: DoneCheck,
        mut done: impl FnMut(&[P]) -> bool,
    ) -> Option<u64> {
        if done(&self.nodes) {
            return Some(self.round);
        }
        let mut left = max_rounds;
        let mut since_check = 0u64;
        while left > 0 {
            if Self::WAKE_PATH {
                self.flush_dirty(self.round);
            }
            if let Some(gap) = self.idle_gap(left) {
                // Idle rounds change no state, hence never the predicate.
                self.fast_forward(gap);
                left -= gap;
                continue;
            }
            let rstats = self.step();
            left -= 1;
            let check_now = match check {
                DoneCheck::EveryRound => true,
                DoneCheck::Every(k) => {
                    since_check += 1;
                    since_check >= k.max(1) || left == 0
                }
                DoneCheck::OnDelivery => {
                    rstats.deliveries > 0 || rstats.collisions > 0 || left == 0
                }
            };
            if check_now {
                since_check = 0;
                if done(&self.nodes) {
                    return Some(self.round);
                }
            }
        }
        None
    }

    /// The simulated topology (a materialized [`Graph`] under the default
    /// type parameter).
    pub fn graph(&self) -> &T {
        &self.graph
    }

    /// The collision-detection mode.
    pub fn mode(&self) -> CollisionMode {
        self.mode
    }

    /// Number of rounds simulated so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Mutable access to the aggregate statistics, for driver-level recovery
    /// accounting ([`RunStats::retries`], [`RunStats::votes_overturned`],
    /// [`RunStats::fallback_rounds`]) that has no per-round channel event to
    /// be absorbed from.
    pub fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    /// Whether a non-empty [`FaultPlan`] is installed on this simulator.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// All node states, indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The state of node `v`.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Mutable access to node `v` — for injecting work mid-run (e.g. handing
    /// a new message batch to the source).
    ///
    /// On the wake-list fast path the node is conservatively re-woken for
    /// the next round, since external mutation invalidates its wake hint.
    pub fn node_mut(&mut self, v: NodeId) -> &mut P {
        if Self::WAKE_PATH {
            let i = v.index();
            let at = self.round;
            if self.wake_at[i] != at {
                self.wake_at[i] = at;
                self.wheel[(at % WHEEL) as usize].push(i as u32);
            }
        }
        &mut self.nodes[v.index()]
    }

    /// Consumes the simulator, returning the node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<P: Protocol + fmt::Debug, T: Topology + fmt::Debug> fmt::Debug for Simulator<P, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("graph", &self.graph)
            .field("mode", &self.mode)
            .field("round", &self.round)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generators;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Transmits `payload` every round if `active`; records observations.
    #[derive(Debug)]
    struct Beacon {
        active: bool,
        payload: u32,
        seen: Vec<Observation<u32>>,
    }

    impl Beacon {
        fn new(active: bool, payload: u32) -> Self {
            Beacon { active, payload, seen: Vec::new() }
        }
    }

    impl Protocol for Beacon {
        type Msg = u32;
        fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action<u32> {
            if self.active {
                Action::Transmit(self.payload)
            } else {
                Action::Listen
            }
        }
        fn observe(&mut self, _round: u64, obs: Observation<u32>, _rng: &mut SmallRng) {
            self.seen.push(obs);
        }
    }

    #[test]
    fn single_transmitter_delivers() {
        let g = generators::path(3);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 7));
        let stats = sim.step();
        assert_eq!(stats.transmitters, 1);
        assert_eq!(stats.deliveries, 1);
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::packet(7)]);
        assert_eq!(sim.node(NodeId::new(2)).seen, vec![Observation::Silence]);
        assert_eq!(sim.node(NodeId::new(0)).seen, vec![Observation::SelfTransmit]);
    }

    #[test]
    fn two_transmitters_collide_with_detection() {
        // path 0-1-2: 0 and 2 transmit, 1 hears a collision.
        let g = generators::path(3);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() != 1, 9));
        let stats = sim.step();
        assert_eq!(stats.collisions, 1);
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Collision]);
    }

    #[test]
    fn collision_without_detection_is_silence() {
        let g = generators::path(3);
        let mut sim =
            Simulator::new(g, CollisionMode::NoDetection, 0, |id| Beacon::new(id.index() != 1, 9));
        let stats = sim.step();
        // The channel still collided (stats see it) but the node observes silence.
        assert_eq!(stats.collisions, 1);
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Silence]);
    }

    #[test]
    fn transmission_is_not_received_by_non_neighbors() {
        let g = generators::path(4);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 1));
        sim.step();
        assert_eq!(sim.node(NodeId::new(2)).seen, vec![Observation::Silence]);
        assert_eq!(sim.node(NodeId::new(3)).seen, vec![Observation::Silence]);
    }

    #[test]
    fn transmitter_does_not_hear_neighbor() {
        // Both endpoints of an edge transmit: each observes only SelfTransmit.
        let g = generators::path(2);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Beacon::new(true, 3));
        sim.step();
        for v in 0..2 {
            assert_eq!(sim.node(NodeId::new(v)).seen, vec![Observation::SelfTransmit]);
        }
    }

    #[test]
    fn run_until_detects_completion() {
        let g = generators::path(2);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 5));
        let done =
            sim.run_until(10, |nodes| nodes.iter().any(|n| n.seen.iter().any(|o| o.is_message())));
        assert_eq!(done, Some(1));
    }

    #[test]
    fn run_until_immediate_if_already_done() {
        let g = generators::path(2);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Beacon::new(false, 0));
        assert_eq!(sim.run_until(10, |_| true), Some(0));
    }

    #[test]
    fn run_until_times_out() {
        let g = generators::path(2);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Beacon::new(false, 0));
        assert_eq!(sim.run_until(5, |_| false), None);
        assert_eq!(sim.round(), 5);
    }

    #[test]
    fn stats_accumulate_across_rounds() {
        let g = generators::star(5);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 2));
        sim.run(3);
        assert_eq!(sim.stats().rounds, 3);
        assert_eq!(sim.stats().transmissions, 3);
        assert_eq!(sim.stats().deliveries, 3 * 4);
    }

    #[test]
    fn probe_sees_transmitters() {
        let g = generators::path(3);
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 7));
        sim.set_probe(Box::new(move |_round, txs| {
            c2.fetch_add(txs.len(), Ordering::SeqCst);
        }));
        sim.run(4);
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    /// A protocol whose behaviour depends on its RNG, to check determinism.
    #[derive(Debug)]
    struct Rando {
        history: Vec<bool>,
    }
    impl Protocol for Rando {
        type Msg = u8;
        fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action<u8> {
            use rand::Rng;
            let t = rng.gen_bool(0.5);
            self.history.push(t);
            if t {
                Action::Transmit(0)
            } else {
                Action::Listen
            }
        }
        fn observe(&mut self, _r: u64, _o: Observation<u8>, _rng: &mut SmallRng) {}
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed| {
            let g = generators::cycle(8);
            let mut sim =
                Simulator::new(g, CollisionMode::Detection, seed, |_| Rando { history: vec![] });
            sim.run(50);
            sim.into_nodes().into_iter().map(|n| n.history).collect::<Vec<_>>()
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123), run(124));
    }

    /// A decay-ish transmitter that records every packet/collision it hears;
    /// generic over the sparse-path opt-in so both engine paths can run the
    /// same logic and be compared.
    #[derive(Debug)]
    struct NoisyListener<const SPARSE: bool> {
        rate_num: u32,
        heard: Vec<(u64, Option<u8>)>, // (round, Some(packet) | None = collision)
    }

    impl<const SPARSE: bool> Protocol for NoisyListener<SPARSE> {
        type Msg = u8;
        const SILENCE_IS_NOOP: bool = SPARSE;
        fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action<u8> {
            use rand::Rng;
            if rng.gen_bool(f64::from(self.rate_num) / 10.0) {
                Action::Transmit(self.rate_num as u8)
            } else {
                Action::Listen
            }
        }
        fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
            match obs {
                Observation::Message(m) => self.heard.push((round, Some(*m))),
                Observation::Collision => self.heard.push((round, None)),
                Observation::Silence | Observation::SelfTransmit => {}
            }
        }
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        type Heard = Vec<Vec<(u64, Option<u8>)>>;
        fn run<const SPARSE: bool>(mode: CollisionMode) -> (Heard, RunStats) {
            let g = generators::cluster_chain(5, 4);
            let mut sim = Simulator::new(g, mode, 99, |id| NoisyListener::<SPARSE> {
                rate_num: id.raw() % 4,
                heard: vec![],
            });
            sim.run(200);
            let stats = sim.stats().clone();
            (sim.into_nodes().into_iter().map(|n| n.heard).collect(), stats)
        }
        for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
            let (dense_heard, dense_stats) = run::<false>(mode);
            let (sparse_heard, sparse_stats) = run::<true>(mode);
            assert_eq!(dense_heard, sparse_heard, "observations diverge under {mode:?}");
            assert_eq!(
                (dense_stats.rounds, dense_stats.transmissions, dense_stats.deliveries),
                (sparse_stats.rounds, sparse_stats.transmissions, sparse_stats.deliveries),
            );
            assert_eq!(dense_stats.collisions, sparse_stats.collisions);
            assert_eq!(dense_stats.observe_skips, 0, "dense path must not skip");
            assert!(sparse_stats.observe_skips > 0, "sparse path never engaged");
        }
    }

    #[test]
    fn sparse_round_stats_match_dense() {
        // Per-round stats (incl. `silent`) must be identical on both paths.
        let g = generators::star(8);
        let mut dense = Simulator::new(g.clone(), CollisionMode::Detection, 7, |id| {
            NoisyListener::<false> { rate_num: id.raw() % 3, heard: vec![] }
        });
        let mut sparse =
            Simulator::new(g, CollisionMode::Detection, 7, |id| NoisyListener::<true> {
                rate_num: id.raw() % 3,
                heard: vec![],
            });
        for _ in 0..100 {
            let d = dense.step();
            let s = sparse.step();
            assert_eq!(
                (d.transmitters, d.deliveries, d.collisions, d.silent),
                (s.transmitters, s.deliveries, s.collisions, s.silent)
            );
            assert_eq!(s.observe_skips, 8 - d.deliveries - d.collisions);
        }
    }

    /// Beacons every `period` rounds when active; sleeps otherwise. Records
    /// every RNG draw and every reception so the wake and dense paths can be
    /// compared draw-for-draw. Generic over the wake-hint opt-in.
    #[derive(Debug)]
    struct Periodic<const WAKE: bool> {
        period: u64,
        active: bool,
        draws: Vec<u64>,
        heard: Vec<(u64, Option<u8>)>,
    }

    impl<const WAKE: bool> Protocol for Periodic<WAKE> {
        type Msg = u8;
        const SILENCE_IS_NOOP: bool = true;
        const WAKE_HINTS: bool = WAKE;

        fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<u8> {
            if self.active && round % self.period == 0 {
                use rand::Rng;
                self.draws.push(rng.gen());
                Action::Transmit((round % 251) as u8)
            } else {
                Action::Listen
            }
        }

        fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
            match obs {
                Observation::Message(m) => self.heard.push((round, Some(*m))),
                Observation::Collision => self.heard.push((round, None)),
                Observation::Silence | Observation::SelfTransmit => {}
            }
        }

        fn next_wake(&self, round: u64) -> Wake {
            if !self.active {
                return Wake::Idle;
            }
            match round % self.period {
                0 => Wake::Now,
                r => Wake::At(round + self.period - r),
            }
        }
    }

    #[test]
    fn wake_path_matches_dense_path() {
        type Trace = Vec<(Vec<u64>, Vec<(u64, Option<u8>)>)>;
        fn run<const WAKE: bool>(mode: CollisionMode, seed: u64) -> (Trace, RunStats) {
            let g = generators::cluster_chain(4, 4);
            let mut sim = Simulator::new(g, mode, seed, |id| Periodic::<WAKE> {
                period: 1 + u64::from(id.raw() % 5) * 3,
                active: id.index() % 3 != 1,
                draws: vec![],
                heard: vec![],
            });
            sim.run(300);
            let stats = sim.stats().clone();
            (sim.into_nodes().into_iter().map(|n| (n.draws, n.heard)).collect(), stats)
        }
        for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
            for seed in [3u64, 17] {
                let (dense, ds) = run::<false>(mode, seed);
                let (wake, ws) = run::<true>(mode, seed);
                assert_eq!(dense, wake, "trace diverged ({mode:?}, seed {seed})");
                assert_eq!(
                    (ds.rounds, ds.transmissions, ds.deliveries, ds.collisions),
                    (ws.rounds, ws.transmissions, ws.deliveries, ws.collisions),
                    "stats diverged ({mode:?}, seed {seed})"
                );
                assert_eq!(ds.act_skips, 0, "dense path must not skip acts");
                assert!(ws.act_skips > 0, "wake path never skipped an act");
            }
        }
    }

    #[test]
    fn fully_idle_run_is_fast_forwarded() {
        let g = generators::path(64);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Periodic::<true> {
            period: 1,
            active: false,
            draws: vec![],
            heard: vec![],
        });
        sim.run(1_000_000);
        assert_eq!(sim.round(), 1_000_000);
        assert_eq!(sim.stats().rounds, 1_000_000);
        assert_eq!(sim.stats().idle_fastforward, 1_000_000);
        assert_eq!(sim.stats().act_skips, 1_000_000 * 64);
        assert_eq!(sim.stats().observe_skips, 1_000_000 * 64);
    }

    #[test]
    fn fast_forward_lands_on_the_next_wake() {
        // One beacon with a long period: every gap is skipped, every beacon
        // round is simulated, and deliveries match the dense path.
        let g = generators::path(3);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 1, |id| Periodic::<true> {
            period: 1000,
            active: id.index() == 0,
            draws: vec![],
            heard: vec![],
        });
        sim.run(10_000);
        assert_eq!(sim.stats().transmissions, 10);
        assert_eq!(sim.stats().deliveries, 10);
        assert!(sim.stats().idle_fastforward >= 9_900);
        assert_eq!(
            sim.node(NodeId::new(1)).heard.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
            (0..10u64).map(|k| k * 1000).collect::<Vec<_>>()
        );
    }

    /// Sleeps until it hears anything, then beacons every round — checks
    /// that observations re-wake sleeping nodes.
    #[derive(Debug)]
    struct Relay<const WAKE: bool> {
        active: bool,
        informed_at: Option<u64>,
    }

    impl<const WAKE: bool> Protocol for Relay<WAKE> {
        type Msg = u8;
        const SILENCE_IS_NOOP: bool = true;
        const WAKE_HINTS: bool = WAKE;
        fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action<u8> {
            if self.active {
                Action::Transmit(1)
            } else {
                Action::Listen
            }
        }
        fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
            if obs.is_signal() && !self.active {
                self.active = true;
                self.informed_at = Some(round);
            }
        }
        fn next_wake(&self, _round: u64) -> Wake {
            if self.active {
                Wake::Now
            } else {
                Wake::Idle
            }
        }
    }

    #[test]
    fn observation_rewakes_sleeping_nodes() {
        fn informed<const WAKE: bool>() -> Vec<Option<u64>> {
            let g = generators::path(12);
            let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |id| Relay::<WAKE> {
                active: id.index() == 0,
                informed_at: None,
            });
            sim.run(40);
            sim.into_nodes().into_iter().map(|n| n.informed_at).collect()
        }
        let dense = informed::<false>();
        let wake = informed::<true>();
        assert_eq!(dense, wake);
        // The wave must actually have propagated.
        assert_eq!(wake[11], Some(10));
    }

    #[test]
    fn node_mut_rewakes_a_sleeper() {
        let g = generators::path(2);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Relay::<true> {
            active: false,
            informed_at: None,
        });
        sim.run(100);
        assert_eq!(sim.stats().transmissions, 0);
        sim.node_mut(NodeId::new(0)).active = true;
        sim.run(5);
        // Node 0 beacons all 5 rounds; node 1 hears it at round 100 and
        // relays for the remaining 4.
        assert_eq!(sim.stats().transmissions, 9, "mutated node was not re-woken");
        assert_eq!(sim.node(NodeId::new(1)).informed_at, Some(100));
    }

    #[test]
    fn run_until_with_on_delivery_is_exact_for_reception() {
        fn completion(check: DoneCheck) -> Option<u64> {
            let g = generators::path(8);
            let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |id| Relay::<true> {
                active: id.index() == 0,
                informed_at: None,
            });
            sim.run_until_with(100, check, |ns| ns.iter().all(|n| n.active))
        }
        let exact = completion(DoneCheck::EveryRound);
        assert_eq!(completion(DoneCheck::OnDelivery), exact);
        // Interval checking may overshoot by < k.
        let coarse = completion(DoneCheck::Every(16)).unwrap();
        assert!(coarse >= exact.unwrap() && coarse < exact.unwrap() + 16);
    }

    #[test]
    fn run_until_fast_forwards_idle_tails() {
        // All nodes informed after 3 rounds; predicate never true -> the
        // remaining budget must be fast-forwarded, not stepped.
        let g = generators::path(4);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |id| Periodic::<true> {
            period: 1,
            active: id.index() == 0,
            draws: vec![],
            heard: vec![],
        });
        sim.node_mut(NodeId::new(0)).active = false;
        let res = sim.run_until(50_000, |_| false);
        assert_eq!(res, None);
        assert_eq!(sim.round(), 50_000);
        // Round 0 is stepped (the node_mut wake); everything after is idle.
        assert_eq!(sim.stats().idle_fastforward, 49_999);
    }

    #[test]
    fn sparse_reset_leaves_no_residue() {
        // Alternate transmitting/silent rounds; silent rounds must see clean
        // counters (all Silence, no stale deliveries).
        #[derive(Debug)]
        struct EvenTx;
        impl Protocol for EvenTx {
            type Msg = u8;
            fn act(&mut self, round: u64, _rng: &mut SmallRng) -> Action<u8> {
                if round % 2 == 0 {
                    Action::Transmit(1)
                } else {
                    Action::Listen
                }
            }
            fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
                if round % 2 == 1 {
                    assert_eq!(obs, Observation::Silence, "stale counter at round {round}");
                }
            }
        }
        let g = generators::complete(6);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| EvenTx);
        sim.run(10);
    }

    // ---- adversarial fault layer ----

    /// The full trace of a `Rando` run (every RNG draw of every node), with
    /// the given fault plan.
    fn rando_trace(plan: FaultPlan, seed: u64) -> (Vec<Vec<bool>>, RunStats) {
        let g = generators::cluster_chain(4, 4);
        let mut sim = Simulator::new_with_faults(g, CollisionMode::Detection, seed, plan, |_| {
            Rando { history: vec![] }
        });
        sim.run(80);
        let stats = sim.stats().clone();
        (sim.into_nodes().into_iter().map(|n| n.history).collect(), stats)
    }

    #[test]
    fn noop_fault_plans_are_trace_identical() {
        // Fault randomness lives on its own salted streams: a plan that draws
        // fault randomness but never fires (erasure at p = 0, churn at p = 0)
        // must leave every protocol draw — and the whole trace — untouched.
        let baseline = rando_trace(FaultPlan::none(), 7);
        for noop in [
            FaultPlan::none().with_erasure(0.0),
            FaultPlan::none().with_churn(1, 0.0, 0.0),
            FaultPlan::none().with_erasure(0.0).with_churn(3, 0.0, 0.0),
        ] {
            assert_eq!(rando_trace(noop.clone(), 7), baseline, "plan {} perturbed", noop.label());
        }
    }

    #[test]
    fn erasure_at_p1_blocks_every_delivery() {
        let g = generators::path(3);
        let plan = FaultPlan::none().with_erasure(1.0);
        let mut sim = Simulator::new_with_faults(g, CollisionMode::Detection, 0, plan, |id| {
            Beacon::new(id.index() == 0, 7)
        });
        let stats = sim.step();
        assert_eq!(stats.transmitters, 1);
        assert_eq!(stats.deliveries, 0);
        assert_eq!(stats.erased, 1, "one copy to one neighbor, erased");
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Silence]);
    }

    #[test]
    fn jammer_collides_its_neighborhood() {
        // path 0-1-2 with a jammer at node 1 and nobody transmitting: both
        // neighbors observe a collision (with detection) or silence (without);
        // the host node itself is unaffected.
        for (mode, expect) in [
            (CollisionMode::Detection, Observation::Collision),
            (CollisionMode::NoDetection, Observation::Silence),
        ] {
            let g = generators::path(3);
            let plan = FaultPlan::none().with_jammer(1, 1, 0);
            let mut sim = Simulator::new_with_faults(g, mode, 0, plan, |_| Beacon::new(false, 0));
            let stats = sim.step();
            assert_eq!(stats.transmitters, 0);
            assert_eq!(stats.jammed, 2);
            assert_eq!(stats.collisions, 2);
            assert_eq!(sim.node(NodeId::new(0)).seen, vec![expect.clone()]);
            assert_eq!(sim.node(NodeId::new(2)).seen, vec![expect.clone()]);
            assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Silence]);
        }
    }

    #[test]
    fn jam_beats_a_clean_delivery() {
        // Node 0 transmits to 1; a jammer co-located with 2 turns 1's clean
        // reception into a collision.
        let g = generators::path(3);
        let plan = FaultPlan::none().with_jammer(2, 1, 0);
        let mut sim = Simulator::new_with_faults(g, CollisionMode::Detection, 0, plan, |id| {
            Beacon::new(id.index() == 0, 9)
        });
        let stats = sim.step();
        assert_eq!(stats.deliveries, 0);
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Collision]);
    }

    #[test]
    fn fault_counters_accumulate_in_run_stats() {
        let plan =
            FaultPlan::none().with_erasure(0.5).with_jammer(0, 4, 1).with_churn(5, 0.05, 0.05);
        let (_, stats) = rando_trace(plan, 3);
        assert!(stats.erased > 0, "no erasures over 80 half-rate rounds");
        assert!(stats.jammed > 0, "jammer never fired");
        assert!(stats.churn_events > 0, "churn never toggled");
    }

    #[test]
    fn wake_path_matches_dense_path_under_faults() {
        // The wake-vs-dense bit-identity must survive every fault class: the
        // idle-gap clamp steps all scheduled fault rounds, and erasure draws
        // happen only in rounds both paths step.
        type Trace = Vec<(Vec<u64>, Vec<(u64, Option<u8>)>)>;
        fn run<const WAKE: bool>(
            mode: CollisionMode,
            seed: u64,
            plan: FaultPlan,
        ) -> (Trace, RunStats) {
            let g = generators::cluster_chain(4, 4);
            let mut sim = Simulator::new_with_faults(g, mode, seed, plan, |id| Periodic::<WAKE> {
                period: 1 + u64::from(id.raw() % 5) * 3,
                active: id.index() % 3 != 1,
                draws: vec![],
                heard: vec![],
            });
            sim.run(300);
            let stats = sim.stats().clone();
            (sim.into_nodes().into_iter().map(|n| (n.draws, n.heard)).collect(), stats)
        }
        let plans = [
            FaultPlan::none().with_erasure(0.2),
            FaultPlan::none().with_jammer(5, 13, 4),
            FaultPlan::none().with_churn(9, 0.02, 0.05),
            FaultPlan::none().with_erasure(0.1).with_jammer(2, 7, 0).with_churn(11, 0.01, 0.03),
        ];
        for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
            for plan in &plans {
                let (dense, ds) = run::<false>(mode, 17, plan.clone());
                let (wake, ws) = run::<true>(mode, 17, plan.clone());
                assert_eq!(dense, wake, "trace diverged ({mode:?}, {})", plan.label());
                // `act_skips`/`idle_fastforward` legitimately differ between
                // the paths; every semantic field must not.
                assert_eq!(
                    (ds.rounds, ds.transmissions, ds.deliveries, ds.collisions),
                    (ws.rounds, ws.transmissions, ws.deliveries, ws.collisions),
                    "stats diverged ({mode:?}, {})",
                    plan.label()
                );
                assert_eq!(
                    (ds.erased, ds.jammed, ds.churn_events),
                    (ws.erased, ws.jammed, ws.churn_events),
                    "fault counters diverged ({mode:?}, {})",
                    plan.label()
                );
                assert!(ws.act_skips > 0, "wake path never skipped ({})", plan.label());
            }
        }
    }

    #[test]
    fn jam_rounds_are_stepped_and_rewake_sleepers() {
        // All nodes idle except the jam schedule: the wake path must step
        // every jam round (not fast-forward over it), and the induced
        // collision must re-wake a sleeping Relay exactly as on the dense
        // path.
        fn informed<const WAKE: bool>() -> (Vec<Option<u64>>, RunStats) {
            let g = generators::path(4);
            let plan = FaultPlan::none().with_jammer(0, 100, 50);
            let mut sim =
                Simulator::new_with_faults(
                    g,
                    CollisionMode::Detection,
                    0,
                    plan,
                    |_| Relay::<WAKE> { active: false, informed_at: None },
                );
            sim.run(500);
            let stats = sim.stats().clone();
            (sim.into_nodes().into_iter().map(|n| n.informed_at).collect(), stats)
        }
        let (dense, ds) = informed::<false>();
        let (wake, ws) = informed::<true>();
        assert_eq!(dense, wake);
        assert_eq!(ds.jammed, ws.jammed);
        // The jam at round 50 wakes node 1 (node 0's only neighbor), which
        // then beacons and floods the path.
        assert_eq!(wake[1], Some(50));
        assert!(wake[3].is_some());
        assert!(ws.idle_fastforward > 0, "idle stretches between jams not fast-forwarded");
    }

    #[test]
    fn churned_out_edge_stops_delivery() {
        // Deterministic churn (p = 1 every round): both nodes of a 2-path
        // toggle down at round 1, so the beacon's packets stop arriving.
        let g = generators::path(2);
        let plan = FaultPlan::none().with_churn(1, 0.0, 1.0);
        let mut sim = Simulator::new_with_faults(g, CollisionMode::Detection, 0, plan, |id| {
            Beacon::new(id.index() == 0, 5)
        });
        let first = sim.step(); // round 0: no churn yet, clean delivery
        assert_eq!(first.deliveries, 1);
        let second = sim.step(); // round 1: the only edge toggles down
        assert_eq!(second.churn_events, 1);
        assert_eq!(second.deliveries, 0);
        let third = sim.step(); // round 2: it toggles back up
        assert_eq!(third.deliveries, 1);
    }

    #[test]
    fn mobility_resamples_on_epoch_boundaries() {
        let g = generators::path(24);
        let plan = FaultPlan::none().with_mobility(0.5, 8);
        let mut sim = Simulator::new_with_faults(g, CollisionMode::Detection, 4, plan, |_| Rando {
            history: vec![],
        });
        let before: Vec<_> = sim.graph().edges().collect();
        sim.run(9); // rounds 0..=8: the round-8 step applies the first epoch
        let after: Vec<_> = sim.graph().edges().collect();
        assert_ne!(before, after, "epoch boundary did not re-sample the topology");
        assert_eq!(sim.graph().node_count(), 24);
        assert!(sim.stats().churn_events >= 1);
    }
}
