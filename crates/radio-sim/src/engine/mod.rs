//! The synchronous round engine.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::model::{Action, CollisionMode, Observation};
use crate::rng;
use crate::trace::{RoundStats, RunStats};
use rand::rngs::SmallRng;
use std::fmt;

/// A per-node protocol state machine.
///
/// The engine calls [`Protocol::act`] on every node at the start of each
/// round, resolves the radio channel, then calls [`Protocol::observe`] on
/// every node with the outcome. Both calls receive the node's private RNG
/// stream, so runs are deterministic in the master seed.
///
/// A node knows only what a real radio node would: its own state, its id (if
/// the implementation stores it at construction), and the observations it has
/// made. The engine never leaks topology through this trait.
pub trait Protocol {
    /// Packet type carried on the channel.
    type Msg: Clone;

    /// Declares that [`Protocol::observe`] is a no-op for
    /// [`Observation::Silence`] and [`Observation::SelfTransmit`]: it neither
    /// changes state nor draws from the RNG for those observations.
    ///
    /// When `true`, the engine takes a *sparse* fast path that resolves the
    /// channel by iterating only the active transmitters' out-edges and skips
    /// the `O(n)` per-round observe sweep — nodes that would have observed
    /// silence (and transmitters, which would observe `SelfTransmit`) are not
    /// called at all. Rounds where almost everyone is silent then cost
    /// `O(active)` instead of `O(n)` on the observe side, which dominates the
    /// near-silent tail rounds of adaptive broadcast runs.
    ///
    /// [`RoundStats`]/[`RunStats`] are identical on both paths; the skipped
    /// calls are reported in [`RoundStats::observe_skips`].
    const SILENCE_IS_NOOP: bool = false;

    /// Chooses this node's action for `round` (0-based).
    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<Self::Msg>;

    /// Delivers the channel observation for `round`.
    ///
    /// If [`Protocol::SILENCE_IS_NOOP`] is `true`, this may not be called for
    /// `Silence`/`SelfTransmit` observations — implementations opting in must
    /// not rely on seeing them.
    fn observe(&mut self, round: u64, obs: Observation<Self::Msg>, rng: &mut SmallRng);
}

/// A per-round audit callback: receives the round number and the list of
/// `(transmitter, packet)` pairs, before channel resolution.
///
/// Used by experiments that must attribute collisions to schedule phases
/// (e.g. the Lemma 3.5 fast-transmission collision audit).
pub type Probe<M> = Box<dyn FnMut(u64, &[(NodeId, M)])>;

/// Deterministic synchronous simulator of the radio network model.
///
/// See the [crate docs](crate) for the model and a complete example.
pub struct Simulator<P: Protocol> {
    graph: Graph,
    mode: CollisionMode,
    nodes: Vec<P>,
    rngs: Vec<SmallRng>,
    round: u64,
    stats: RunStats,
    probe: Option<Probe<P::Msg>>,
    // Scratch buffers, kept across rounds to avoid per-round allocation.
    tx_count: Vec<u32>,
    tx_from: Vec<u32>,
    transmitted: Vec<bool>,
    txs: Vec<(NodeId, P::Msg)>,
    /// Nodes whose channel counter was touched this round (sparse path).
    touched: Vec<u32>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over `graph` with the given collision mode and
    /// master seed; `init` constructs each node's protocol state.
    pub fn new(
        graph: Graph,
        mode: CollisionMode,
        master_seed: u64,
        mut init: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = graph.node_count();
        let nodes: Vec<P> = (0..n).map(|i| init(NodeId::new(i))).collect();
        let rngs: Vec<SmallRng> = (0..n).map(|i| rng::stream_rng(master_seed, i as u64)).collect();
        Simulator {
            graph,
            mode,
            nodes,
            rngs,
            round: 0,
            stats: RunStats::default(),
            probe: None,
            tx_count: vec![0; n],
            tx_from: vec![0; n],
            transmitted: vec![false; n],
            txs: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Installs a per-round audit probe (replacing any previous one).
    pub fn set_probe(&mut self, probe: Probe<P::Msg>) {
        self.probe = Some(probe);
    }

    /// Simulates one round; returns its statistics.
    pub fn step(&mut self) -> RoundStats {
        let round = self.round;
        let n = self.nodes.len();

        self.txs.clear();
        for i in 0..n {
            self.transmitted[i] = false;
            match self.nodes[i].act(round, &mut self.rngs[i]) {
                Action::Transmit(m) => {
                    self.transmitted[i] = true;
                    self.txs.push((NodeId::new(i), m));
                }
                Action::Listen => {}
            }
        }

        if let Some(probe) = &mut self.probe {
            probe(round, &self.txs);
        }

        // Resolve the channel: count transmitting neighbors per node,
        // remembering which counters were touched for the sparse reset.
        self.touched.clear();
        for (t_idx, (sender, _)) in self.txs.iter().enumerate() {
            for &v in self.graph.neighbors(*sender) {
                if self.tx_count[v.index()] == 0 {
                    self.touched.push(v.index() as u32);
                }
                self.tx_count[v.index()] += 1;
                self.tx_from[v.index()] = t_idx as u32;
            }
        }

        let mut rstats = RoundStats { transmitters: self.txs.len(), ..RoundStats::default() };

        if P::SILENCE_IS_NOOP {
            // Sparse fast path: only nodes with a transmitting neighbor can
            // observe anything that matters; everyone else (silent listeners,
            // and transmitters with their `SelfTransmit`) is skipped. The
            // protocol has declared those observations no-ops.
            let mut heard = 0usize;
            for idx in 0..self.touched.len() {
                let i = self.touched[idx] as usize;
                if self.transmitted[i] {
                    continue;
                }
                heard += 1;
                let obs = match self.tx_count[i] {
                    1 => {
                        rstats.deliveries += 1;
                        Observation::Message(self.txs[self.tx_from[i] as usize].1.clone())
                    }
                    _ => {
                        rstats.collisions += 1;
                        if self.mode.has_detection() {
                            Observation::Collision
                        } else {
                            Observation::Silence
                        }
                    }
                };
                self.nodes[i].observe(round, obs, &mut self.rngs[i]);
            }
            rstats.silent = n - self.txs.len() - heard;
            rstats.observe_skips = n - heard;
        } else {
            for i in 0..n {
                let obs = if self.transmitted[i] {
                    Observation::SelfTransmit
                } else {
                    match self.tx_count[i] {
                        0 => {
                            rstats.silent += 1;
                            Observation::Silence
                        }
                        1 => {
                            rstats.deliveries += 1;
                            Observation::Message(self.txs[self.tx_from[i] as usize].1.clone())
                        }
                        _ => {
                            rstats.collisions += 1;
                            if self.mode.has_detection() {
                                Observation::Collision
                            } else {
                                Observation::Silence
                            }
                        }
                    }
                };
                self.nodes[i].observe(round, obs, &mut self.rngs[i]);
            }
        }

        // Sparse reset of the counters touched this round.
        for &v in &self.touched {
            self.tx_count[v as usize] = 0;
        }

        self.round += 1;
        self.stats.absorb(rstats);
        rstats
    }

    /// Simulates `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until `done` holds (checked after every round) or `max_rounds`
    /// rounds have elapsed *in this call*.
    ///
    /// Returns the total round count (i.e. [`Simulator::round`]) at which the
    /// predicate first held, or `None` on timeout.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut done: impl FnMut(&[P]) -> bool,
    ) -> Option<u64> {
        if done(&self.nodes) {
            return Some(self.round);
        }
        for _ in 0..max_rounds {
            self.step();
            if done(&self.nodes) {
                return Some(self.round);
            }
        }
        None
    }

    /// The simulated graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The collision-detection mode.
    pub fn mode(&self) -> CollisionMode {
        self.mode
    }

    /// Number of rounds simulated so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// All node states, indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The state of node `v`.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Mutable access to node `v` — for injecting work mid-run (e.g. handing
    /// a new message batch to the source).
    pub fn node_mut(&mut self, v: NodeId) -> &mut P {
        &mut self.nodes[v.index()]
    }

    /// Consumes the simulator, returning the node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<P: Protocol + fmt::Debug> fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("graph", &self.graph)
            .field("mode", &self.mode)
            .field("round", &self.round)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generators;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Transmits `payload` every round if `active`; records observations.
    #[derive(Debug)]
    struct Beacon {
        active: bool,
        payload: u32,
        seen: Vec<Observation<u32>>,
    }

    impl Beacon {
        fn new(active: bool, payload: u32) -> Self {
            Beacon { active, payload, seen: Vec::new() }
        }
    }

    impl Protocol for Beacon {
        type Msg = u32;
        fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action<u32> {
            if self.active {
                Action::Transmit(self.payload)
            } else {
                Action::Listen
            }
        }
        fn observe(&mut self, _round: u64, obs: Observation<u32>, _rng: &mut SmallRng) {
            self.seen.push(obs);
        }
    }

    #[test]
    fn single_transmitter_delivers() {
        let g = generators::path(3);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 7));
        let stats = sim.step();
        assert_eq!(stats.transmitters, 1);
        assert_eq!(stats.deliveries, 1);
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Message(7)]);
        assert_eq!(sim.node(NodeId::new(2)).seen, vec![Observation::Silence]);
        assert_eq!(sim.node(NodeId::new(0)).seen, vec![Observation::SelfTransmit]);
    }

    #[test]
    fn two_transmitters_collide_with_detection() {
        // path 0-1-2: 0 and 2 transmit, 1 hears a collision.
        let g = generators::path(3);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() != 1, 9));
        let stats = sim.step();
        assert_eq!(stats.collisions, 1);
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Collision]);
    }

    #[test]
    fn collision_without_detection_is_silence() {
        let g = generators::path(3);
        let mut sim =
            Simulator::new(g, CollisionMode::NoDetection, 0, |id| Beacon::new(id.index() != 1, 9));
        let stats = sim.step();
        // The channel still collided (stats see it) but the node observes silence.
        assert_eq!(stats.collisions, 1);
        assert_eq!(sim.node(NodeId::new(1)).seen, vec![Observation::Silence]);
    }

    #[test]
    fn transmission_is_not_received_by_non_neighbors() {
        let g = generators::path(4);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 1));
        sim.step();
        assert_eq!(sim.node(NodeId::new(2)).seen, vec![Observation::Silence]);
        assert_eq!(sim.node(NodeId::new(3)).seen, vec![Observation::Silence]);
    }

    #[test]
    fn transmitter_does_not_hear_neighbor() {
        // Both endpoints of an edge transmit: each observes only SelfTransmit.
        let g = generators::path(2);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Beacon::new(true, 3));
        sim.step();
        for v in 0..2 {
            assert_eq!(sim.node(NodeId::new(v)).seen, vec![Observation::SelfTransmit]);
        }
    }

    #[test]
    fn run_until_detects_completion() {
        let g = generators::path(2);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 5));
        let done =
            sim.run_until(10, |nodes| nodes.iter().any(|n| n.seen.iter().any(|o| o.is_message())));
        assert_eq!(done, Some(1));
    }

    #[test]
    fn run_until_immediate_if_already_done() {
        let g = generators::path(2);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Beacon::new(false, 0));
        assert_eq!(sim.run_until(10, |_| true), Some(0));
    }

    #[test]
    fn run_until_times_out() {
        let g = generators::path(2);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| Beacon::new(false, 0));
        assert_eq!(sim.run_until(5, |_| false), None);
        assert_eq!(sim.round(), 5);
    }

    #[test]
    fn stats_accumulate_across_rounds() {
        let g = generators::star(5);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 2));
        sim.run(3);
        assert_eq!(sim.stats().rounds, 3);
        assert_eq!(sim.stats().transmissions, 3);
        assert_eq!(sim.stats().deliveries, 3 * 4);
    }

    #[test]
    fn probe_sees_transmitters() {
        let g = generators::path(3);
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let mut sim =
            Simulator::new(g, CollisionMode::Detection, 0, |id| Beacon::new(id.index() == 0, 7));
        sim.set_probe(Box::new(move |_round, txs| {
            c2.fetch_add(txs.len(), Ordering::SeqCst);
        }));
        sim.run(4);
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    /// A protocol whose behaviour depends on its RNG, to check determinism.
    #[derive(Debug)]
    struct Rando {
        history: Vec<bool>,
    }
    impl Protocol for Rando {
        type Msg = u8;
        fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action<u8> {
            use rand::Rng;
            let t = rng.gen_bool(0.5);
            self.history.push(t);
            if t {
                Action::Transmit(0)
            } else {
                Action::Listen
            }
        }
        fn observe(&mut self, _r: u64, _o: Observation<u8>, _rng: &mut SmallRng) {}
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed| {
            let g = generators::cycle(8);
            let mut sim =
                Simulator::new(g, CollisionMode::Detection, seed, |_| Rando { history: vec![] });
            sim.run(50);
            sim.into_nodes().into_iter().map(|n| n.history).collect::<Vec<_>>()
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123), run(124));
    }

    /// A decay-ish transmitter that records every packet/collision it hears;
    /// generic over the sparse-path opt-in so both engine paths can run the
    /// same logic and be compared.
    #[derive(Debug)]
    struct NoisyListener<const SPARSE: bool> {
        rate_num: u32,
        heard: Vec<(u64, Option<u8>)>, // (round, Some(packet) | None = collision)
    }

    impl<const SPARSE: bool> Protocol for NoisyListener<SPARSE> {
        type Msg = u8;
        const SILENCE_IS_NOOP: bool = SPARSE;
        fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action<u8> {
            use rand::Rng;
            if rng.gen_bool(f64::from(self.rate_num) / 10.0) {
                Action::Transmit(self.rate_num as u8)
            } else {
                Action::Listen
            }
        }
        fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
            match obs {
                Observation::Message(m) => self.heard.push((round, Some(m))),
                Observation::Collision => self.heard.push((round, None)),
                Observation::Silence | Observation::SelfTransmit => {}
            }
        }
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        type Heard = Vec<Vec<(u64, Option<u8>)>>;
        fn run<const SPARSE: bool>(mode: CollisionMode) -> (Heard, RunStats) {
            let g = generators::cluster_chain(5, 4);
            let mut sim = Simulator::new(g, mode, 99, |id| NoisyListener::<SPARSE> {
                rate_num: id.raw() % 4,
                heard: vec![],
            });
            sim.run(200);
            let stats = sim.stats().clone();
            (sim.into_nodes().into_iter().map(|n| n.heard).collect(), stats)
        }
        for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
            let (dense_heard, dense_stats) = run::<false>(mode);
            let (sparse_heard, sparse_stats) = run::<true>(mode);
            assert_eq!(dense_heard, sparse_heard, "observations diverge under {mode:?}");
            assert_eq!(
                (dense_stats.rounds, dense_stats.transmissions, dense_stats.deliveries),
                (sparse_stats.rounds, sparse_stats.transmissions, sparse_stats.deliveries),
            );
            assert_eq!(dense_stats.collisions, sparse_stats.collisions);
            assert_eq!(dense_stats.observe_skips, 0, "dense path must not skip");
            assert!(sparse_stats.observe_skips > 0, "sparse path never engaged");
        }
    }

    #[test]
    fn sparse_round_stats_match_dense() {
        // Per-round stats (incl. `silent`) must be identical on both paths.
        let g = generators::star(8);
        let mut dense = Simulator::new(g.clone(), CollisionMode::Detection, 7, |id| {
            NoisyListener::<false> { rate_num: id.raw() % 3, heard: vec![] }
        });
        let mut sparse =
            Simulator::new(g, CollisionMode::Detection, 7, |id| NoisyListener::<true> {
                rate_num: id.raw() % 3,
                heard: vec![],
            });
        for _ in 0..100 {
            let d = dense.step();
            let s = sparse.step();
            assert_eq!(
                (d.transmitters, d.deliveries, d.collisions, d.silent),
                (s.transmitters, s.deliveries, s.collisions, s.silent)
            );
            assert_eq!(s.observe_skips, 8 - d.deliveries - d.collisions);
        }
    }

    #[test]
    fn sparse_reset_leaves_no_residue() {
        // Alternate transmitting/silent rounds; silent rounds must see clean
        // counters (all Silence, no stale deliveries).
        #[derive(Debug)]
        struct EvenTx;
        impl Protocol for EvenTx {
            type Msg = u8;
            fn act(&mut self, round: u64, _rng: &mut SmallRng) -> Action<u8> {
                if round % 2 == 0 {
                    Action::Transmit(1)
                } else {
                    Action::Listen
                }
            }
            fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
                if round % 2 == 1 {
                    assert_eq!(obs, Observation::Silence, "stale counter at round {round}");
                }
            }
        }
        let g = generators::complete(6);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |_| EvenTx);
        sim.run(10);
    }
}
