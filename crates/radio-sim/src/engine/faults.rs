//! Seeded adversarial channel faults.
//!
//! A [`FaultPlan`] is a declarative, per-round adversary applied inside the
//! [`Simulator`](super::Simulator) act/observe path. Four fault classes are
//! modelled, all deterministic in the run's master seed:
//!
//! * **erasure** — every transmitted packet copy is erased independently per
//!   receiving edge with probability `p` (a per-edge Bernoulli channel; an
//!   erased copy contributes neither a delivery nor a collision at that
//!   receiver);
//! * **jamming** — designated [`Jammer`] nodes host a co-located interferer
//!   that injects energy on a fixed schedule: every neighbor of an active
//!   jammer sees two extra virtual transmitters that round, so its channel
//!   resolves to a collision (observed as `⊤` with collision detection,
//!   silence without);
//! * **churn** — on a fixed period, every node and every base edge
//!   independently *toggles* between up and down (a down node's radio is
//!   disconnected: it keeps executing its protocol but no packets cross its
//!   edges in either direction);
//! * **mobility** — the deployment is mobile: every `epoch` rounds all node
//!   positions are re-sampled uniformly in the unit square and the topology
//!   is rebuilt as a unit-disk graph of the given radius.
//!
//! Fault randomness is drawn from dedicated RNG streams derived with a salt
//! distinct from the protocol streams (see [`crate::rng::fault_stream_rng`]),
//! so a run with [`FaultPlan::none`] — or any all-no-op plan — executes a
//! protocol trace bit-identical to a run without the fault layer.

use crate::graph::{generators, Graph};
use crate::rng;
use rand::rngs::SmallRng;
use rand::Rng;

/// `u64::MAX` sentinel: the plan schedules no (further) topology/jam event.
pub(crate) const NO_EVENT: u64 = u64::MAX;

/// A jammer: a co-located interferer at `node` that is active in every round
/// `r` with `r % period == offset`.
///
/// The host node's own protocol keeps running unaffected (the jammer is
/// modelled as a separate device at the same position); the interference
/// hits the host's *neighbors*, whose channel collides for that round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Jammer {
    /// The node the jammer is co-located with.
    pub node: u32,
    /// Activation period in rounds (`>= 1`).
    pub period: u64,
    /// Activation phase within the period (`< period`).
    pub offset: u64,
}

impl Jammer {
    /// Whether the jammer injects interference in `round`.
    #[inline]
    pub fn active(&self, round: u64) -> bool {
        round % self.period == self.offset
    }

    /// The first active round `>= round`.
    fn next_active(&self, round: u64) -> u64 {
        let rem = round % self.period;
        if rem <= self.offset {
            round + (self.offset - rem)
        } else {
            round + (self.period - rem) + self.offset
        }
    }
}

/// Periodic node/edge churn: every `period` rounds (at rounds `period`,
/// `2·period`, …) each node toggles its up/down state with probability
/// `node_p` and each base edge with probability `edge_p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Churn {
    /// Rounds between churn events (`>= 1`; `1` = per-round churn).
    pub period: u64,
    /// Per-event toggle probability of each node.
    pub node_p: f64,
    /// Per-event toggle probability of each base edge.
    pub edge_p: f64,
}

/// Mobile unit-disk deployment: every `epoch` rounds (at rounds `epoch`,
/// `2·epoch`, …) all positions are re-sampled uniformly in the unit square
/// and the topology becomes the unit-disk graph of the given radius
/// (isolated components stitched, exactly like
/// [`generators::unit_disk`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mobility {
    /// Unit-disk connection radius.
    pub radius: f64,
    /// Rounds between re-samplings (`>= 1`).
    pub epoch: u64,
}

/// A declarative, seeded per-round adversary. Build with [`FaultPlan::none`]
/// plus the `with_*` setters; hand to
/// [`Simulator::new_with_faults`](super::Simulator::new_with_faults).
///
/// All fault randomness comes from dedicated streams of the run's master
/// seed ([`crate::rng::fault_stream_rng`]), independent of every protocol
/// stream: enabling one fault class never shifts another's draws, and a
/// no-op plan leaves the protocol trace bit-identical.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-edge packet erasure probability, if enabled.
    pub erasure: Option<f64>,
    /// Scheduled jammer nodes.
    pub jammers: Vec<Jammer>,
    /// Periodic node/edge churn, if enabled.
    pub churn: Option<Churn>,
    /// Mobile unit-disk re-sampling, if enabled.
    pub mobility: Option<Mobility>,
}

impl FaultPlan {
    /// The empty plan: no faults. Guaranteed bit-identical traces to a
    /// simulator constructed without the fault layer.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Enables per-edge packet erasure with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_erasure(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "erasure probability {p} out of [0, 1]");
        self.erasure = Some(p);
        self
    }

    /// Adds a jammer at `node`, active whenever `round % period == offset`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `offset >= period`.
    pub fn with_jammer(mut self, node: u32, period: u64, offset: u64) -> Self {
        assert!(period >= 1, "jammer period must be >= 1");
        assert!(offset < period, "jammer offset {offset} must be < period {period}");
        self.jammers.push(Jammer { node, period, offset });
        self
    }

    /// Enables periodic node/edge churn.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or a probability is not in `[0, 1]`.
    pub fn with_churn(mut self, period: u64, node_p: f64, edge_p: f64) -> Self {
        assert!(period >= 1, "churn period must be >= 1");
        assert!((0.0..=1.0).contains(&node_p), "node churn probability {node_p} out of [0, 1]");
        assert!((0.0..=1.0).contains(&edge_p), "edge churn probability {edge_p} out of [0, 1]");
        self.churn = Some(Churn { period, node_p, edge_p });
        self
    }

    /// Enables mobile unit-disk re-sampling every `epoch` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `epoch == 0` or `radius <= 0`.
    pub fn with_mobility(mut self, radius: f64, epoch: u64) -> Self {
        assert!(epoch >= 1, "mobility epoch must be >= 1");
        assert!(radius > 0.0, "mobility radius must be positive");
        self.mobility = Some(Mobility { radius, epoch });
        self
    }

    /// Whether this is the empty plan (no fault class enabled).
    ///
    /// Note: a plan with e.g. erasure at `p = 0` is *not* `is_none()` — it
    /// draws (and discards) fault randomness, but still executes the same
    /// protocol trace.
    pub fn is_none(&self) -> bool {
        self.erasure.is_none()
            && self.jammers.is_empty()
            && self.churn.is_none()
            && self.mobility.is_none()
    }

    /// A stable machine-readable label (joined into scenario labels and the
    /// perf bench's JSON descriptors): `none`, or `+`-joined fault terms
    /// like `erase(0.05)+jam(n3,p2+0)+churn(1,n0.005,e0.01)+mobile(r0.2,e64)`.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if let Some(p) = self.erasure {
            parts.push(format!("erase({p})"));
        }
        for j in &self.jammers {
            parts.push(format!("jam(n{},p{}+{})", j.node, j.period, j.offset));
        }
        if let Some(c) = self.churn {
            parts.push(format!("churn({},n{},e{})", c.period, c.node_p, c.edge_p));
        }
        if let Some(m) = self.mobility {
            parts.push(format!("mobile(r{},e{})", m.radius, m.epoch));
        }
        parts.join("+")
    }
}

/// Fault RNG sub-stream indices (of [`crate::rng::fault_stream_rng`]). Each
/// fault class owns a stream, so enabling one class never shifts another's
/// draw sequence.
const STREAM_ERASURE: u64 = 0;
const STREAM_CHURN: u64 = 1;
const STREAM_MOBILITY: u64 = 2;

/// Live fault state of one simulator: the plan plus its RNG streams and the
/// up/down masks over the current base topology.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) erasure_rng: SmallRng,
    churn_rng: SmallRng,
    mobility_rng: SmallRng,
    /// The fault-free topology churn masks apply to (re-sampled by
    /// mobility).
    base_edges: Vec<(u32, u32)>,
    node_down: Vec<bool>,
    edge_down: Vec<bool>,
}

impl FaultState {
    /// Builds the fault state for a simulator over an `n`-node topology
    /// seeded with `master_seed`. `base_edges` is the fault-free edge list
    /// that churn masks and mobility re-samples apply to; plans without
    /// either class never read it, so the engine passes an empty list (and
    /// streamed topologies, which cannot harvest one, stay supported for
    /// erasure/jammer plans).
    ///
    /// # Panics
    ///
    /// Panics if a jammer's node is out of bounds for the topology.
    pub(crate) fn new(
        plan: FaultPlan,
        master_seed: u64,
        n: usize,
        base_edges: Vec<(u32, u32)>,
    ) -> Self {
        for j in &plan.jammers {
            assert!(
                (j.node as usize) < n,
                "jammer node {} out of bounds for {n}-node graph",
                j.node
            );
        }
        let edge_down = vec![false; base_edges.len()];
        FaultState {
            plan,
            erasure_rng: rng::fault_stream_rng(master_seed, STREAM_ERASURE),
            churn_rng: rng::fault_stream_rng(master_seed, STREAM_CHURN),
            mobility_rng: rng::fault_stream_rng(master_seed, STREAM_MOBILITY),
            base_edges,
            node_down: vec![false; n],
            edge_down,
        }
    }

    /// The earliest round `>= round` with a scheduled (non-erasure) fault
    /// event — a jam, churn or mobility round — or [`NO_EVENT`]. Such rounds
    /// must be stepped, never fast-forwarded: jams can wake sleepers and
    /// churn/mobility must draw their randomness in round order. Erasure
    /// needs no clamp (it only draws when somebody transmits, and
    /// fast-forwarded rounds are transmission-free on every path).
    pub(crate) fn next_event_round(&self, round: u64) -> u64 {
        let mut next = NO_EVENT;
        for j in &self.plan.jammers {
            next = next.min(j.next_active(round));
        }
        if let Some(c) = self.plan.churn {
            next = next.min(next_multiple(round, c.period));
        }
        if let Some(m) = self.plan.mobility {
            next = next.min(next_multiple(round, m.epoch));
        }
        next
    }

    /// Applies the topology faults scheduled for `round` (mobility first,
    /// then churn), returning the rebuilt current graph (if any flip or
    /// re-sample happened) and the number of churn events (mask toggles +
    /// re-samples).
    pub(crate) fn apply_topology(&mut self, round: u64, n: usize) -> (Option<Graph>, usize) {
        let mut events = 0usize;
        let mut rebuild = false;
        if let Some(m) = self.plan.mobility {
            if round > 0 && round % m.epoch == 0 {
                let g = generators::unit_disk(n, m.radius, &mut self.mobility_rng);
                self.base_edges = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
                // New edges, fresh masks; node outages persist across moves.
                self.edge_down = vec![false; self.base_edges.len()];
                events += 1;
                rebuild = true;
            }
        }
        if let Some(c) = self.plan.churn {
            if round > 0 && round % c.period == 0 {
                // Fixed draw order — nodes 0..n, then base edges in order —
                // so the churn stream is identical on every engine path.
                for i in 0..n {
                    if self.churn_rng.gen_bool(c.node_p) {
                        self.node_down[i] = !self.node_down[i];
                        events += 1;
                        rebuild = true;
                    }
                }
                for e in 0..self.base_edges.len() {
                    if self.churn_rng.gen_bool(c.edge_p) {
                        self.edge_down[e] = !self.edge_down[e];
                        events += 1;
                        rebuild = true;
                    }
                }
            }
        }
        let graph = rebuild.then(|| self.current_graph(n));
        (graph, events)
    }

    /// The current topology: the base edges minus down edges and edges with
    /// a down endpoint. Node count never changes, so every engine buffer
    /// stays valid.
    pub(crate) fn current_graph(&self, n: usize) -> Graph {
        Graph::from_edges(
            n,
            self.base_edges.iter().enumerate().filter_map(|(e, &(u, v))| {
                (!self.edge_down[e] && !self.node_down[u as usize] && !self.node_down[v as usize])
                    .then_some((u, v))
            }),
        )
        .expect("base edges are valid for n nodes")
    }
}

/// The smallest positive multiple of `period` that is `>= round`.
fn next_multiple(round: u64, period: u64) -> u64 {
    round.max(1).div_ceil(period) * period
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Traversal;

    /// Builds a [`FaultState`] over a materialized graph, the way the engine
    /// does for churn/mobility-capable plans.
    fn state(plan: FaultPlan, seed: u64, g: &Graph) -> FaultState {
        let base = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
        FaultState::new(plan, seed, g.node_count(), base)
    }

    #[test]
    fn none_plan_is_none_and_labelled() {
        assert!(FaultPlan::none().is_none());
        assert_eq!(FaultPlan::none().label(), "none");
    }

    #[test]
    fn labels_are_stable() {
        let plan = FaultPlan::none()
            .with_erasure(0.05)
            .with_jammer(3, 2, 0)
            .with_churn(1, 0.005, 0.01)
            .with_mobility(0.2, 64);
        assert_eq!(plan.label(), "erase(0.05)+jam(n3,p2+0)+churn(1,n0.005,e0.01)+mobile(r0.2,e64)");
        assert!(!plan.is_none());
    }

    #[test]
    fn zero_probability_erasure_is_not_none() {
        // It still draws fault randomness (a no-op on the trace, pinned by
        // the engine tests), so the plan is not the empty plan.
        assert!(!FaultPlan::none().with_erasure(0.0).is_none());
    }

    #[test]
    fn jammer_next_active_is_exact() {
        let j = Jammer { node: 0, period: 5, offset: 2 };
        assert_eq!(j.next_active(0), 2);
        assert_eq!(j.next_active(2), 2);
        assert_eq!(j.next_active(3), 7);
        assert_eq!(j.next_active(7), 7);
        assert_eq!(j.next_active(8), 12);
        for r in 0..40 {
            let next = j.next_active(r);
            assert!(next >= r && j.active(next));
            for t in r..next {
                assert!(!j.active(t), "missed activation at {t}");
            }
        }
    }

    #[test]
    fn next_multiple_skips_round_zero() {
        assert_eq!(next_multiple(0, 4), 4);
        assert_eq!(next_multiple(1, 4), 4);
        assert_eq!(next_multiple(4, 4), 4);
        assert_eq!(next_multiple(5, 4), 8);
        assert_eq!(next_multiple(0, 1), 1);
    }

    #[test]
    fn next_event_round_covers_all_classes() {
        let g = generators::path(6);
        let plan = FaultPlan::none().with_jammer(1, 7, 3).with_churn(10, 0.1, 0.1);
        let f = state(plan, 0, &g);
        assert_eq!(f.next_event_round(0), 3);
        assert_eq!(f.next_event_round(4), 10);
        assert_eq!(f.next_event_round(11), 17);
        let none = state(FaultPlan::none().with_erasure(0.5), 0, &g);
        assert_eq!(none.next_event_round(0), NO_EVENT);
    }

    #[test]
    fn churn_masks_rebuild_valid_graphs() {
        let g = generators::cluster_chain(4, 4);
        let n = g.node_count();
        let mut f = state(FaultPlan::none().with_churn(1, 0.2, 0.2), 42, &g);
        for round in 1..50 {
            let (rebuilt, _) = f.apply_topology(round, n);
            if let Some(cur) = rebuilt {
                assert_eq!(cur.node_count(), n);
                // CSR symmetry: every directed arc has its reverse.
                for u in cur.node_ids() {
                    for &v in cur.neighbors(u) {
                        assert!(cur.has_edge(v, u), "asymmetric edge {u:?}-{v:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn down_node_is_isolated() {
        let g = generators::complete(5);
        let n = g.node_count();
        let mut f = state(FaultPlan::none().with_churn(1, 0.0, 0.0), 0, &g);
        f.node_down[2] = true;
        let cur = f.current_graph(n);
        assert_eq!(cur.degree(crate::NodeId::new(2)), 0);
        assert_eq!(cur.degree(crate::NodeId::new(0)), 3);
    }

    #[test]
    fn mobility_resamples_the_base_graph() {
        let g = generators::path(30);
        let n = g.node_count();
        let mut f = state(FaultPlan::none().with_mobility(0.4, 10), 7, &g);
        let (none, _) = f.apply_topology(5, n);
        assert!(none.is_none(), "no epoch boundary at round 5");
        let (some, events) = f.apply_topology(10, n);
        let moved = some.expect("epoch boundary rebuilds");
        assert_eq!(events, 1);
        assert_eq!(moved.node_count(), n);
        assert!(moved.is_connected(), "unit-disk resample is stitched connected");
    }

    #[test]
    fn fault_state_is_deterministic() {
        let g = generators::grid(5, 5);
        let n = g.node_count();
        let plan = FaultPlan::none().with_churn(2, 0.1, 0.1).with_mobility(0.3, 6);
        let run = |seed: u64| {
            let mut f = state(plan.clone(), seed, &g);
            (1..30).map(|r| f.apply_topology(r, n).1).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn jammer_out_of_bounds_is_rejected() {
        let g = generators::path(3);
        state(FaultPlan::none().with_jammer(3, 1, 0), 0, &g);
    }
}
