//! The radio channel model: actions, observations and collision semantics.
//!
//! In every synchronous round each node chooses an [`Action`]: transmit one
//! packet or listen. The engine then derives one [`Observation`] per node:
//!
//! | situation (for a listener)           | with CD                    | without CD |
//! |---------------------------------------|----------------------------|------------|
//! | no neighbor transmits                 | [`Observation::Silence`]   | `Silence`  |
//! | exactly one neighbor transmits        | [`Observation::Message`]   | `Message`  |
//! | two or more neighbors transmit        | [`Observation::Collision`] | `Silence`  |
//!
//! A transmitter always observes [`Observation::SelfTransmit`]: the model is
//! half-duplex, so a transmitting node learns nothing about the channel.
//!
//! Received packets are handed over as [`Packet`] handles into the engine's
//! per-round packet store: delivering a transmission to its listeners costs
//! one reference-count bump per listener, never a payload copy. A consumer
//! that needs the payload by value calls [`Packet::into_inner`], which clones
//! only if the packet is still shared.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// A shared handle to one transmitted packet.
///
/// The engine stores each round's transmissions once and hands every
/// receiver a `Packet` pointing into that store, so channel resolution costs
/// `O(1)` per delivery regardless of payload size (ROADMAP bottleneck (b):
/// large-payload multi-message sweeps used to deep-clone the payload per
/// delivery). Dereferences to the message; [`Packet::into_inner`] recovers an
/// owned value.
pub struct Packet<M>(Rc<M>);

impl<M> Packet<M> {
    /// Wraps an owned message (one allocation; later clones are `O(1)`).
    pub fn new(msg: M) -> Self {
        Packet(Rc::new(msg))
    }

    /// Recovers the owned message, cloning only if the packet is still
    /// shared with the engine's store or another receiver.
    pub fn into_inner(self) -> M
    where
        M: Clone,
    {
        Rc::try_unwrap(self.0).unwrap_or_else(|rc| (*rc).clone())
    }
}

impl<M> Clone for Packet<M> {
    fn clone(&self) -> Self {
        Packet(Rc::clone(&self.0))
    }
}

impl<M> Deref for Packet<M> {
    type Target = M;
    fn deref(&self) -> &M {
        &self.0
    }
}

impl<M: fmt::Debug> fmt::Debug for Packet<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<M: PartialEq> PartialEq for Packet<M> {
    fn eq(&self, other: &Self) -> bool {
        *self.0 == *other.0
    }
}

impl<M: Eq> Eq for Packet<M> {}

/// Whether listeners can distinguish a collision from silence.
///
/// The paper's headline results (Theorems 1.1 and 1.3) require
/// [`CollisionMode::Detection`]; the GST construction (Theorem 2.1) and the
/// known-topology result (Theorem 1.2) work in either mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollisionMode {
    /// Listeners observing ≥ 2 simultaneous neighbor transmissions receive the
    /// special collision symbol `⊤`.
    Detection,
    /// Collisions are indistinguishable from silence.
    NoDetection,
}

impl CollisionMode {
    /// Returns `true` if collision detection is available.
    #[inline]
    pub fn has_detection(self) -> bool {
        matches!(self, CollisionMode::Detection)
    }
}

/// A node's choice for one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<M> {
    /// Broadcast `M` to all neighbors.
    Transmit(M),
    /// Stay silent and sense the channel.
    Listen,
}

impl<M> Action<M> {
    /// Returns `true` for [`Action::Transmit`].
    #[inline]
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit(_))
    }
}

/// What a node observes at the end of one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Observation<M> {
    /// Exactly one neighbor transmitted; its packet was received (a shared
    /// handle into the round's packet store — see [`Packet`]).
    Message(Packet<M>),
    /// Two or more neighbors transmitted (only under
    /// [`CollisionMode::Detection`]).
    Collision,
    /// No neighbor transmitted — or a collision occurred without collision
    /// detection.
    Silence,
    /// This node transmitted and therefore sensed nothing.
    SelfTransmit,
}

impl<M> Observation<M> {
    /// A message observation from an owned payload (wraps it in a fresh
    /// [`Packet`]) — for tests and protocols that re-dispatch a received
    /// sub-message into an inner protocol.
    #[inline]
    pub fn packet(msg: M) -> Self {
        Observation::Message(Packet::new(msg))
    }

    /// Returns the received packet by value, if any (cloning only if still
    /// shared — see [`Packet::into_inner`]).
    #[inline]
    pub fn message(self) -> Option<M>
    where
        M: Clone,
    {
        match self {
            Observation::Message(m) => Some(m.into_inner()),
            _ => None,
        }
    }

    /// Returns `true` if a packet was received.
    #[inline]
    pub fn is_message(&self) -> bool {
        matches!(self, Observation::Message(_))
    }

    /// Returns `true` if the node heard *something* — a packet or a collision.
    ///
    /// This is the "signal" notion used by the collision-wave BFS layering in
    /// the proof of Theorem 1.1: a node joins the wave the first round it
    /// receives a message *or* a collision.
    #[inline]
    pub fn is_signal(&self) -> bool {
        matches!(self, Observation::Message(_) | Observation::Collision)
    }
}

/// Packet-size accounting.
///
/// The model fixes a packet budget of `B = Ω(log n)` bits. Protocol packet
/// types implement this trait so tests can audit that every transmitted packet
/// respects the budget (experiment E14 in `DESIGN.md`).
pub trait PacketBits {
    /// Size of this packet's encoding, in bits.
    fn packet_bits(&self) -> usize;
}

impl PacketBits for u8 {
    fn packet_bits(&self) -> usize {
        8
    }
}

impl PacketBits for u32 {
    fn packet_bits(&self) -> usize {
        32
    }
}

impl PacketBits for u64 {
    fn packet_bits(&self) -> usize {
        64
    }
}

impl<M: PacketBits> PacketBits for Option<M> {
    fn packet_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, PacketBits::packet_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_mode_flags() {
        assert!(CollisionMode::Detection.has_detection());
        assert!(!CollisionMode::NoDetection.has_detection());
    }

    #[test]
    fn action_is_transmit() {
        assert!(Action::Transmit(1u8).is_transmit());
        assert!(!Action::<u8>::Listen.is_transmit());
    }

    #[test]
    fn observation_message_extraction() {
        assert_eq!(Observation::packet(5u8).message(), Some(5));
        assert_eq!(Observation::<u8>::Collision.message(), None);
        assert_eq!(Observation::<u8>::Silence.message(), None);
        assert_eq!(Observation::<u8>::SelfTransmit.message(), None);
    }

    #[test]
    fn signal_includes_collision_but_not_silence() {
        assert!(Observation::packet(0u8).is_signal());
        assert!(Observation::<u8>::Collision.is_signal());
        assert!(!Observation::<u8>::Silence.is_signal());
        assert!(!Observation::<u8>::SelfTransmit.is_signal());
    }

    #[test]
    fn packet_store_shares_without_copying() {
        let p = Packet::new(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(*p, *q);
        assert_eq!(p, q);
        // Shared: into_inner must clone rather than steal from `p`.
        assert_eq!(q.into_inner(), vec![1, 2, 3]);
        // Unique again: into_inner unwraps without cloning.
        assert_eq!(p.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn packet_bits_for_primitives() {
        assert_eq!(7u8.packet_bits(), 8);
        assert_eq!(7u32.packet_bits(), 32);
        assert_eq!(Some(7u32).packet_bits(), 33);
        assert_eq!(None::<u32>.packet_bits(), 1);
    }
}
