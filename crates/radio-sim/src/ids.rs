//! Strongly-typed node identifiers.

use std::fmt;

/// Identifier of a node in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices `0..n`. The newtype keeps them from being mixed
/// up with other integers (round numbers, ranks, levels) in protocol code.
///
/// ```
/// use radio_sim::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node, suitable for indexing `Vec`s.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", NodeId::new(7)), "v7");
        assert_eq!(format!("{:?}", NodeId::new(7)), "NodeId(7)");
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn new_rejects_huge_index() {
        let _ = NodeId::new(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
