//! Undirected graphs in compressed sparse row (CSR) form.
//!
//! Radio networks in the paper are connected, undirected, simple graphs
//! `G = (V, E)`. [`Graph`] stores the adjacency structure immutably in CSR
//! form: cache-friendly neighbor scans are the hot loop of the simulator.

mod builder;
pub mod generators;
mod implicit;
mod topology;
mod traversal;

pub use builder::{GraphBuilder, GraphError};
pub use implicit::ImplicitGraph;
pub use topology::Topology;
pub use traversal::{bfs_layering, BfsLayering, Traversal, UNREACHABLE};

use crate::ids::NodeId;
use std::fmt;

/// An immutable, undirected, simple graph in CSR form.
///
/// Construct one with [`Graph::from_edges`], a [`GraphBuilder`], or the
/// [`generators`] library.
///
/// ```
/// use radio_sim::{Graph, NodeId};
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `adj` with the neighbors of `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted adjacency lists.
    adj: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Edges are undirected; duplicates are merged.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on self-loops or endpoints `>= n`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v))?;
        }
        Ok(b.build())
    }

    pub(crate) fn from_parts(offsets: Vec<u32>, adj: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, adj.len());
        Graph { offsets, adj }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// The neighbors of `v`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `{u, v}` is an edge. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all node ids `0..n`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.node_ids().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.node_count() as f64
    }

    /// `⌈log2 n⌉` for this graph's node count, with a floor of 1.
    ///
    /// This is the quantity the paper writes `log n` in all round bounds and
    /// schedule periods.
    pub fn log2_n(&self) -> u32 {
        ceil_log2(self.node_count().max(2))
    }
}

/// `⌈log2 x⌉` for `x ≥ 1`.
pub fn ceil_log2(x: usize) -> u32 {
    debug_assert!(x >= 1);
    (usize::BITS - x.saturating_sub(1).leading_zeros()).max(1)
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(3)]);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert!(matches!(Graph::from_edges(3, [(1, 1)]), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(matches!(Graph::from_edges(3, [(0, 3)]), Err(GraphError::NodeOutOfBounds { .. })));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn degree_stats() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn log2_n_has_floor_one() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert_eq!(g.log2_n(), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert!(format!("{g:?}").contains("Graph"));
    }
}
