//! BFS layerings, eccentricities and diameter computations.

use super::{Graph, Topology};
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Distance value marking unreachable nodes in a [`BfsLayering`].
pub const UNREACHABLE: u32 = u32::MAX;

/// A BFS layering of a graph from one or more sources.
///
/// Layer (level) `ℓ(v)` is the hop distance from the closest source — the
/// quantity the paper's algorithms attach to every node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsLayering {
    dist: Vec<u32>,
    max_level: u32,
}

impl BfsLayering {
    /// Level of `v`, or [`UNREACHABLE`].
    #[inline]
    pub fn level(&self, v: NodeId) -> u32 {
        self.dist[v.index()]
    }

    /// Whether `v` is reachable from a source.
    #[inline]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()] != UNREACHABLE
    }

    /// The largest finite level (the source eccentricity), 0 if no node is
    /// reachable beyond the sources.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Levels indexed by node.
    #[inline]
    pub fn levels(&self) -> &[u32] {
        &self.dist
    }

    /// All nodes at exactly level `l`, in id order.
    pub fn nodes_at_level(&self, l: u32) -> Vec<NodeId> {
        self.dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == l)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Groups nodes by level: `result[l]` lists the nodes at level `l`.
    pub fn layers(&self) -> Vec<Vec<NodeId>> {
        let mut layers = vec![Vec::new(); self.max_level as usize + 1];
        for (i, &d) in self.dist.iter().enumerate() {
            if d != UNREACHABLE {
                layers[d as usize].push(NodeId::new(i));
            }
        }
        layers
    }

    /// Number of reachable nodes (including sources).
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }
}

/// Traversal algorithms on [`Graph`].
///
/// These are provided as an extension trait so that `Graph` stays a plain
/// data structure while call sites read naturally:
/// `g.bfs(source)`, `g.diameter()`, …
pub trait Traversal {
    /// BFS layering from a single source.
    fn bfs(&self, source: NodeId) -> BfsLayering;

    /// BFS layering from multiple sources (all at level 0).
    fn bfs_multi(&self, sources: &[NodeId]) -> BfsLayering;

    /// Eccentricity of `v`: the largest distance from `v` to any reachable
    /// node.
    fn eccentricity(&self, v: NodeId) -> u32;

    /// Exact diameter via BFS from every node. `O(n·m)` — intended for the
    /// graph sizes used in tests and experiments.
    ///
    /// Returns `None` for an empty or disconnected graph.
    fn diameter(&self) -> Option<u32>;

    /// Whether the graph is connected (vacuously true for `n <= 1`).
    fn is_connected(&self) -> bool;
}

/// BFS layering over any [`Topology`] — the streamed-capable twin of
/// [`Traversal::bfs_multi`]. Distances are order-independent facts of the
/// graph, so for a materialized topology this produces the exact same
/// [`BfsLayering`] as the `Graph` implementation.
pub fn bfs_layering<T: Topology>(topo: &T, sources: &[NodeId]) -> BfsLayering {
    let mut dist = vec![UNREACHABLE; topo.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] == UNREACHABLE {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    let mut max_level = 0;
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        queue.extend(topo.with_neighbors(u, |nbrs| {
            let mut fresh = Vec::new();
            for &v in nbrs {
                if dist[v.index()] == UNREACHABLE {
                    dist[v.index()] = du + 1;
                    max_level = max_level.max(du + 1);
                    fresh.push(v);
                }
            }
            fresh
        }));
    }
    BfsLayering { dist, max_level }
}

impl Traversal for Graph {
    fn bfs(&self, source: NodeId) -> BfsLayering {
        self.bfs_multi(std::slice::from_ref(&source))
    }

    fn bfs_multi(&self, sources: &[NodeId]) -> BfsLayering {
        bfs_layering(self, sources)
    }

    fn eccentricity(&self, v: NodeId) -> u32 {
        self.bfs(v).max_level()
    }

    fn diameter(&self) -> Option<u32> {
        if self.node_count() == 0 || !self.is_connected() {
            return None;
        }
        Some(self.node_ids().map(|v| self.eccentricity(v)).max().unwrap_or(0))
    }

    fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        self.bfs(NodeId(0)).reachable_count() == self.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let l = g.bfs(NodeId(0));
        assert_eq!(l.levels(), &[0, 1, 2, 3, 4]);
        assert_eq!(l.max_level(), 4);
        assert!(l.is_reachable(NodeId(4)));
        assert_eq!(l.nodes_at_level(2), vec![NodeId(2)]);
    }

    #[test]
    fn bfs_from_middle() {
        let g = path(5);
        let l = g.bfs(NodeId(2));
        assert_eq!(l.levels(), &[2, 1, 0, 1, 2]);
        assert_eq!(l.max_level(), 2);
    }

    #[test]
    fn multi_source_bfs() {
        let g = path(5);
        let l = g.bfs_multi(&[NodeId(0), NodeId(4)]);
        assert_eq!(l.levels(), &[0, 1, 2, 1, 0]);
        assert_eq!(l.max_level(), 2);
    }

    #[test]
    fn layers_grouping() {
        let g = path(4);
        let layers = g.bfs(NodeId(0)).layers();
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[3], vec![NodeId(3)]);
    }

    #[test]
    fn unreachable_nodes() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let l = g.bfs(NodeId(0));
        assert!(!l.is_reachable(NodeId(2)));
        assert_eq!(l.reachable_count(), 2);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(path(10).diameter(), Some(9));
        let cycle = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(cycle.diameter(), Some(3));
    }

    #[test]
    fn eccentricity_center_vs_end() {
        let g = path(9);
        assert_eq!(g.eccentricity(NodeId(4)), 4);
        assert_eq!(g.eccentricity(NodeId(0)), 8);
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::from_edges(1, []).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
    }

    #[test]
    fn generic_layering_matches_graph_layering() {
        let implicit = crate::graph::ImplicitGraph::grid(7, 5);
        let dense = crate::graph::generators::grid(7, 5);
        for s in [0u32, 17, 34] {
            let a = bfs_layering(&implicit, &[NodeId(s)]);
            let b = dense.bfs(NodeId(s));
            assert_eq!(a, b, "source {s}");
        }
    }

    #[test]
    fn duplicate_sources_ignored() {
        let g = path(3);
        let l = g.bfs_multi(&[NodeId(0), NodeId(0)]);
        assert_eq!(l.levels(), &[0, 1, 2]);
    }
}
