//! Streamed topologies: neighborhoods computed on demand.
//!
//! An [`ImplicitGraph`] represents a deterministic graph family — Grid,
//! UnitDisk, or Gnp — *implicitly*: instead of materializing `O(m)` CSR
//! adjacency up front, it derives the neighborhood of a node when (and only
//! when) the engine asks for it. GHK's algorithm needs no global topology
//! knowledge, so neither does the simulator: a million-node pipeline run
//! keeps only the spatial index (UnitDisk) and a small ring cache of hot
//! neighborhoods resident.
//!
//! Determinism: every family is a pure function of its parameters. UnitDisk
//! hashes node ids to positions in the unit square with SplitMix64
//! ([`rng::derive_seed`]); Gnp derives one SplitMix64 coin per canonical
//! node pair `(u < v)`. These are *hashed* families — deterministic per
//! `(n, parameter, seed)` and distributionally equivalent to the sequential
//! [`generators`](super::generators) families, but not edge-identical to
//! them (the sequential generators draw positions from a stream RNG and
//! stitch disconnected components, both inherently global operations).
//! [`ImplicitGraph::materialize`] builds the exact CSR graph of the family
//! by an independent (brute-force) construction, which the property suite
//! uses to verify streamed-vs-materialized neighborhood identity. The Grid
//! family *is* edge-identical to [`generators::grid`](super::generators::grid).

use super::topology::Topology;
use super::{generators, Graph};
use crate::ids::NodeId;
use crate::rng;
use std::cell::RefCell;

/// Fewest direct-mapped neighborhood cache slots (power of two). Hot
/// frontier nodes hit their slot and skip recomputation; on conflict the
/// slot is recycled in place (a ring of reusable buffers, no allocation in
/// steady state).
const CACHE_SLOTS: usize = 1024;

/// Most cache slots. The slot count scales as `n / 16` between the two
/// bounds so million-node runs keep a working set comparable to one
/// active construction ring's population, while the cache stays `O(n)`
/// with a small constant (it is counted by
/// [`Topology::resident_bytes`], so the bench's peak-state gate would
/// catch runaway growth).
const MAX_CACHE_SLOTS: usize = 65_536;

/// The graph family an [`ImplicitGraph`] streams.
#[derive(Clone, Debug)]
enum Family {
    /// `w × h` grid, node `(x, y)` at index `y * w + x` — edge-identical to
    /// [`generators::grid`].
    Grid { w: usize, h: usize },
    /// Hashed unit-disk deployment: position of node `i` is
    /// `(unit(derive_seed(seed, 2i)), unit(derive_seed(seed, 2i+1)))`, an
    /// edge whenever two positions are within `radius`.
    UnitDisk { radius: f64, seed: u64, cells_per_axis: usize, index: CellIndex },
    /// Hashed Erdős–Rényi `G(n, p)`: the pair `(u < v)` is an edge iff
    /// `unit(derive_seed(seed, (u << 32) | v)) < p`.
    Gnp { p: f64, seed: u64 },
}

/// CSR bucketing of node ids per spatial cell (UnitDisk only): `O(n)` ids
/// plus one offset per cell, and the hashed positions themselves so a
/// 9-cell scan reads two floats per candidate instead of re-deriving two
/// SplitMix64 words. Positions stay `f64`: [`ImplicitGraph::materialize`]
/// brute-forces the same `f64` coordinates, and streamed-vs-materialized
/// identity is bit-exact only if both sides compare identical floats.
#[derive(Clone, Debug)]
struct CellIndex {
    offsets: Vec<u32>,
    nodes: Vec<u32>,
    positions: Vec<(f64, f64)>,
}

/// One direct-mapped cache slot: the node whose neighborhood the buffer
/// currently holds (`u32::MAX` = empty).
#[derive(Clone, Debug)]
struct Slot {
    key: u32,
    nbrs: Vec<NodeId>,
}

/// A streamed topology: Grid, UnitDisk or Gnp neighborhoods computed on
/// demand, with a small direct-mapped cache for hot (frontier) nodes.
///
/// Implements [`Topology`]; [`Topology::as_graph`] returns `None`, so fault
/// plans that rewrite the topology (churn, mobility) are rejected up front
/// rather than silently materializing.
#[derive(Clone, Debug)]
pub struct ImplicitGraph {
    n: usize,
    family: Family,
    cache: RefCell<Vec<Slot>>,
}

/// Maps a SplitMix64 word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Hashed position of node `i` in the unit square.
#[inline]
fn position(seed: u64, i: u64) -> (f64, f64) {
    (unit_f64(rng::derive_seed(seed, 2 * i)), unit_f64(rng::derive_seed(seed, 2 * i + 1)))
}

/// The SplitMix64 coin for the canonical pair `u < v`, in `[0, 1)`.
#[inline]
fn pair_coin(seed: u64, u: u32, v: u32) -> f64 {
    debug_assert!(u < v);
    unit_f64(rng::derive_seed(seed, (u64::from(u) << 32) | u64::from(v)))
}

impl ImplicitGraph {
    /// Streamed `w × h` grid — edge-identical to [`generators::grid`].
    ///
    /// # Panics
    ///
    /// Panics if `w == 0 || h == 0`.
    pub fn grid(w: usize, h: usize) -> Self {
        assert!(w >= 1 && h >= 1, "grid requires positive dimensions");
        Self::with_family(w * h, Family::Grid { w, h })
    }

    /// Streamed hashed unit-disk deployment: `n` SplitMix64-hashed positions
    /// in the unit square, an edge whenever two are within `radius`.
    ///
    /// Builds the spatial bucket index (`O(n)` ids, one offset per cell) so
    /// a neighborhood query scans 9 cells instead of all nodes. Unlike
    /// [`generators::unit_disk`] no connectivity stitching is applied — pick
    /// a radius above the connectivity threshold for broadcast workloads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `radius <= 0`.
    pub fn unit_disk(n: usize, radius: f64, seed: u64) -> Self {
        assert!(n >= 1, "unit-disk graph requires at least one node");
        assert!(radius > 0.0, "radius must be positive");
        // Cell side >= radius keeps the 3x3 scan sound; capping the axis at
        // ~sqrt(n) bounds the index at O(n) cells for tiny radii.
        let max_axis = (n as f64).sqrt().ceil() as usize + 1;
        let cells_per_axis = ((1.0 / radius) as usize).clamp(1, max_axis);
        let cell_of = |x: f64, y: f64| -> usize {
            let cx = ((x * cells_per_axis as f64) as usize).min(cells_per_axis - 1);
            let cy = ((y * cells_per_axis as f64) as usize).min(cells_per_axis - 1);
            cy * cells_per_axis + cx
        };
        let positions: Vec<(f64, f64)> = (0..n as u64).map(|i| position(seed, i)).collect();
        let mut counts = vec![0u32; cells_per_axis * cells_per_axis + 1];
        for &(x, y) in &positions {
            counts[cell_of(x, y) + 1] += 1;
        }
        for c in 1..counts.len() {
            counts[c] += counts[c - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut nodes = vec![0u32; n];
        for (i, &(x, y)) in positions.iter().enumerate() {
            let c = cell_of(x, y);
            nodes[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        let index = CellIndex { offsets, nodes, positions };
        Self::with_family(n, Family::UnitDisk { radius, seed, cells_per_axis, index })
    }

    /// Streamed hashed `G(n, p)`: one SplitMix64 coin per canonical pair.
    ///
    /// A neighborhood query costs `O(n)` hash evaluations, so this family
    /// suits moderate `n`; Grid and UnitDisk stream at million-node scale.
    /// Unlike [`generators::gnp_connected`] no connectivity stitching is
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `p` is not in `[0, 1]`.
    pub fn gnp(n: usize, p: f64, seed: u64) -> Self {
        assert!(n >= 1, "gnp requires at least one node");
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self::with_family(n, Family::Gnp { p, seed })
    }

    fn with_family(n: usize, family: Family) -> Self {
        // Grid neighborhoods cost four comparisons to recompute, so a
        // minimal cache suffices; the scan-heavy hashed families scale
        // their slot count with n to track ring-sized working sets.
        let scaled = match family {
            Family::Grid { .. } => CACHE_SLOTS,
            Family::UnitDisk { .. } | Family::Gnp { .. } => {
                (n / 16).next_power_of_two().clamp(CACHE_SLOTS, MAX_CACHE_SLOTS)
            }
        };
        let slots = scaled.min(n.next_power_of_two());
        let cache = (0..slots).map(|_| Slot { key: u32::MAX, nbrs: Vec::new() }).collect();
        ImplicitGraph { n, family, cache: RefCell::new(cache) }
    }

    /// Computes the sorted neighborhood of `v` into `out` (no cache).
    fn compute_into(&self, v: u32, out: &mut Vec<NodeId>) {
        out.clear();
        match &self.family {
            Family::Grid { w, h } => {
                let (w, h) = (*w, *h);
                let (x, y) = (v as usize % w, v as usize / w);
                if y > 0 {
                    out.push(NodeId(v - w as u32));
                }
                if x > 0 {
                    out.push(NodeId(v - 1));
                }
                if x + 1 < w {
                    out.push(NodeId(v + 1));
                }
                if y + 1 < h {
                    out.push(NodeId(v + w as u32));
                }
            }
            Family::UnitDisk { radius, cells_per_axis, index, .. } => {
                let cpa = *cells_per_axis;
                let (x, y) = index.positions[v as usize];
                let cx = ((x * cpa as f64) as usize).min(cpa - 1);
                let cy = ((y * cpa as f64) as usize).min(cpa - 1);
                let r2 = radius * radius;
                for dy in cy.saturating_sub(1)..=(cy + 1).min(cpa - 1) {
                    for dx in cx.saturating_sub(1)..=(cx + 1).min(cpa - 1) {
                        let c = dy * cpa + dx;
                        let lo = index.offsets[c] as usize;
                        let hi = index.offsets[c + 1] as usize;
                        for &j in &index.nodes[lo..hi] {
                            if j == v {
                                continue;
                            }
                            let (px, py) = index.positions[j as usize];
                            let (ex, ey) = (px - x, py - y);
                            if ex * ex + ey * ey <= r2 {
                                out.push(NodeId(j));
                            }
                        }
                    }
                }
                out.sort_unstable();
            }
            Family::Gnp { p, seed } => {
                for u in 0..self.n as u32 {
                    if u == v {
                        continue;
                    }
                    let (a, b) = (u.min(v), u.max(v));
                    if pair_coin(*seed, a, b) < *p {
                        out.push(NodeId(u));
                    }
                }
            }
        }
    }

    /// Materializes the exact CSR graph of this family.
    ///
    /// Grid delegates to [`generators::grid`]; UnitDisk and Gnp rebuild the
    /// edge set by an independent brute-force scan over all pairs (`O(n²)` —
    /// intended for the test/verification sizes, not for streaming scale).
    /// The property suite asserts per-node neighborhood identity between
    /// this graph and the streamed queries.
    pub fn materialize(&self) -> Graph {
        match &self.family {
            Family::Grid { w, h } => generators::grid(*w, *h),
            Family::UnitDisk { radius, seed, .. } => {
                let r2 = radius * radius;
                let points: Vec<(f64, f64)> =
                    (0..self.n as u64).map(|i| position(*seed, i)).collect();
                Graph::from_edges(
                    self.n,
                    (0..self.n as u32).flat_map(|i| {
                        let points = &points;
                        ((i + 1)..self.n as u32).filter_map(move |j| {
                            let (ex, ey) = (
                                points[i as usize].0 - points[j as usize].0,
                                points[i as usize].1 - points[j as usize].1,
                            );
                            (ex * ex + ey * ey <= r2).then_some((i, j))
                        })
                    }),
                )
                .expect("hashed disk edges are valid")
            }
            Family::Gnp { p, seed } => Graph::from_edges(
                self.n,
                (0..self.n as u32).flat_map(|i| {
                    ((i + 1)..self.n as u32)
                        .filter(move |&j| pair_coin(*seed, i, j) < *p)
                        .map(move |j| (i, j))
                }),
            )
            .expect("hashed gnp edges are valid"),
        }
    }
}

impl Topology for ImplicitGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.n
    }

    /// Serves `v`'s neighborhood from the direct-mapped cache, recomputing
    /// into the slot's buffer on a miss. `f` must not query this topology
    /// re-entrantly (the engine never does).
    fn with_neighbors<R>(&self, v: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        assert!(v.index() < self.n, "node {v:?} out of bounds for {} nodes", self.n);
        let mut cache = self.cache.borrow_mut();
        let slots = cache.len();
        let slot = &mut cache[v.index() & (slots - 1)];
        if slot.key != v.raw() {
            self.compute_into(v.raw(), &mut slot.nbrs);
            slot.key = v.raw();
        }
        f(&slot.nbrs)
    }

    fn resident_bytes(&self) -> usize {
        let index = match &self.family {
            Family::UnitDisk { index, .. } => {
                std::mem::size_of_val(&index.offsets[..])
                    + std::mem::size_of_val(&index.nodes[..])
                    + std::mem::size_of_val(&index.positions[..])
            }
            Family::Grid { .. } | Family::Gnp { .. } => 0,
        };
        let cache = self.cache.borrow();
        let cached: usize = cache
            .iter()
            .map(|s| {
                std::mem::size_of::<Slot>() + s.nbrs.capacity() * std::mem::size_of::<NodeId>()
            })
            .sum();
        std::mem::size_of::<Self>() + index + cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nbrs(t: &ImplicitGraph, v: u32) -> Vec<NodeId> {
        t.with_neighbors(NodeId(v), <[NodeId]>::to_vec)
    }

    #[test]
    fn grid_is_edge_identical_to_the_materialized_generator() {
        for (w, h) in [(1, 1), (1, 7), (5, 1), (4, 3), (9, 9)] {
            let implicit = ImplicitGraph::grid(w, h);
            let dense = generators::grid(w, h);
            assert_eq!(implicit.node_count(), dense.node_count());
            for v in dense.node_ids() {
                assert_eq!(
                    nbrs(&implicit, v.raw()),
                    dense.neighbors(v),
                    "grid({w},{h}) node {v:?}"
                );
            }
        }
    }

    #[test]
    fn unit_disk_matches_its_materialization() {
        for (n, radius, seed) in [(1, 0.5, 0), (40, 0.25, 7), (120, 0.1, 9), (200, 0.04, 3)] {
            let implicit = ImplicitGraph::unit_disk(n, radius, seed);
            let dense = implicit.materialize();
            for v in dense.node_ids() {
                assert_eq!(
                    nbrs(&implicit, v.raw()),
                    dense.neighbors(v),
                    "unit_disk({n},{radius},{seed}) node {v:?}"
                );
            }
        }
    }

    #[test]
    fn gnp_matches_its_materialization() {
        for (n, p, seed) in [(1, 0.5, 0), (30, 0.0, 1), (30, 1.0, 1), (64, 0.12, 11)] {
            let implicit = ImplicitGraph::gnp(n, p, seed);
            let dense = implicit.materialize();
            for v in dense.node_ids() {
                assert_eq!(nbrs(&implicit, v.raw()), dense.neighbors(v), "gnp({n},{p}) node {v:?}");
            }
        }
    }

    #[test]
    fn neighborhoods_are_symmetric_and_sorted() {
        let t = ImplicitGraph::unit_disk(150, 0.12, 42);
        for v in 0..150u32 {
            let ns = nbrs(&t, v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            for u in ns {
                assert!(nbrs(&t, u.raw()).contains(&NodeId(v)), "asymmetric {v}-{u:?}");
            }
        }
    }

    #[test]
    fn cache_hits_return_identical_neighborhoods() {
        let t = ImplicitGraph::grid(64, 64);
        let first = nbrs(&t, 100);
        // Conflict-map another node into the same slot, then re-query.
        let _ = nbrs(&t, 100 + CACHE_SLOTS as u32);
        assert_eq!(nbrs(&t, 100), first);
    }

    #[test]
    fn streamed_topology_has_no_materialized_graph() {
        assert!(ImplicitGraph::grid(3, 3).as_graph().is_none());
    }

    #[test]
    fn resident_bytes_stay_small() {
        let t = ImplicitGraph::unit_disk(10_000, 0.02, 5);
        // Spatial index (ids + 16 B/node positions) + cache only: O(n), far
        // below the ~16 B/edge CSR cost of a materialized build.
        assert!(t.resident_bytes() < 10_000 * 24 + CACHE_SLOTS * 64);
    }

    #[test]
    fn cache_scales_with_n_but_stays_bounded() {
        // Grids stay at the floor regardless of n; hashed families scale.
        assert_eq!(ImplicitGraph::grid(2, 2).cache.borrow().len(), 4);
        assert_eq!(ImplicitGraph::grid(2000, 2000).cache.borrow().len(), CACHE_SLOTS);
        assert_eq!(ImplicitGraph::unit_disk(10_000, 0.04, 1).cache.borrow().len(), CACHE_SLOTS);
        assert_eq!(ImplicitGraph::unit_disk(200_000, 0.01, 1).cache.borrow().len(), 16_384);
        assert_eq!(
            ImplicitGraph::unit_disk(2_000_000, 0.01, 1).cache.borrow().len(),
            MAX_CACHE_SLOTS
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_query_panics() {
        nbrs(&ImplicitGraph::grid(2, 2), 4);
    }
}
