//! The topology abstraction behind the simulator.
//!
//! [`Topology`] is the minimal interface the round engine needs from a
//! network: a node count and per-node neighborhoods. A materialized
//! [`Graph`] implements it by slicing its CSR arrays; an
//! [`ImplicitGraph`](super::ImplicitGraph) implements it by *computing* each
//! neighborhood on demand, so million-node deployments never pay for `O(m)`
//! adjacency storage. `Arc<Graph>` implements it too, so a facade can hand
//! the same materialized topology to many runs without cloning the CSR.
//!
//! Neighborhoods are exposed through a small-buffer callback
//! ([`Topology::with_neighbors`]) rather than an iterator: the implicit
//! implementation materializes each queried neighborhood into a reusable
//! cache slot and lends it out as a plain `&[NodeId]`, which keeps the
//! engine's hot resolution loop identical on both paths.

use super::Graph;
use crate::ids::NodeId;
use std::sync::Arc;

/// A network topology the round engine can simulate.
///
/// The contract mirrors [`Graph`]: nodes are `0..node_count()`, the
/// neighborhood of `v` is sorted by id, free of duplicates and self-loops,
/// and symmetric (`u ∈ N(v)` iff `v ∈ N(u)`). Implementations must be
/// deterministic: the same topology value always reports the same
/// neighborhoods, so simulation runs stay reproducible bit-for-bit.
pub trait Topology {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Calls `f` with the sorted neighborhood of `v` and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    fn with_neighbors<R>(&self, v: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R;

    /// The materialized CSR graph behind this topology, if there is one.
    ///
    /// Fault plans that rewrite the topology (churn, mobility) and
    /// algorithms that need global structure (e.g. centralized GST
    /// construction) require `Some`; streamed topologies return `None` and
    /// such callers must fail with a clear error instead of silently
    /// materializing.
    fn as_graph(&self) -> Option<&Graph> {
        None
    }

    /// Replaces the topology with a rebuilt materialized graph (churn or
    /// mobility rewrote the network).
    ///
    /// # Panics
    ///
    /// Panics for topologies that cannot be rebuilt; the engine clamps
    /// topology-rewriting fault plans to materialized graphs up front, so
    /// this is unreachable behind [`Simulator`](crate::Simulator).
    fn replace(&mut self, graph: Graph) {
        let _ = graph;
        panic!(
            "this topology cannot be rebuilt: churn/mobility fault plans \
             require a materialized `Graph`"
        );
    }

    /// Estimated resident bytes of the topology representation itself (CSR
    /// arrays, spatial index, neighborhood cache) — the topology term of the
    /// `peak_state_bytes` accounting.
    fn resident_bytes(&self) -> usize;

    /// Degree of `v`.
    fn degree_of(&self, v: NodeId) -> usize {
        self.with_neighbors(v, <[NodeId]>::len)
    }
}

impl Topology for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn with_neighbors<R>(&self, v: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        f(self.neighbors(v))
    }

    fn as_graph(&self) -> Option<&Graph> {
        Some(self)
    }

    fn replace(&mut self, graph: Graph) {
        *self = graph;
    }

    fn resident_bytes(&self) -> usize {
        csr_bytes(self)
    }
}

impl Topology for Arc<Graph> {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn with_neighbors<R>(&self, v: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        f(self.neighbors(v))
    }

    fn as_graph(&self) -> Option<&Graph> {
        Some(self)
    }

    fn replace(&mut self, graph: Graph) {
        // Rebuilds under faults are per-simulator: give this simulator its
        // own copy instead of mutating a topology shared across runs.
        *self = Arc::new(graph);
    }

    fn resident_bytes(&self) -> usize {
        csr_bytes(self)
    }
}

/// Resident bytes of a materialized CSR graph: the offsets array plus both
/// directions of every adjacency entry.
pub(crate) fn csr_bytes(g: &Graph) -> usize {
    (g.node_count() + 1) * std::mem::size_of::<u32>()
        + 2 * g.edge_count() * std::mem::size_of::<NodeId>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generators;

    fn collect<T: Topology>(t: &T, v: NodeId) -> Vec<NodeId> {
        t.with_neighbors(v, <[NodeId]>::to_vec)
    }

    #[test]
    fn graph_topology_matches_direct_access() {
        let g = generators::grid(4, 3);
        for v in g.node_ids() {
            assert_eq!(collect(&g, v), g.neighbors(v).to_vec());
            assert_eq!(Topology::degree_of(&g, v), g.degree(v));
        }
        assert_eq!(Topology::node_count(&g), 12);
        assert!(g.as_graph().is_some());
    }

    #[test]
    fn arc_graph_shares_without_cloning() {
        let g = Arc::new(generators::path(5));
        let h = Arc::clone(&g);
        assert_eq!(Topology::node_count(&h), 5);
        assert_eq!(collect(&h, NodeId::new(1)), vec![NodeId::new(0), NodeId::new(2)]);
        assert!(h.as_graph().is_some());
    }

    #[test]
    fn arc_replace_does_not_mutate_the_shared_graph() {
        let original = Arc::new(generators::path(4));
        let mut mine = Arc::clone(&original);
        mine.replace(generators::star(4));
        assert_eq!(original.degree(NodeId::new(0)), 1, "shared copy untouched");
        assert_eq!(Topology::degree_of(&mine, NodeId::new(0)), 3);
    }

    #[test]
    fn csr_bytes_counts_offsets_and_adjacency() {
        let g = generators::path(4); // 3 edges
        assert_eq!(g.resident_bytes(), 5 * 4 + 6 * 4);
    }
}
