//! Geometric (unit-disk) radio deployments.

use super::random::connect_components;
use crate::graph::{Graph, GraphBuilder};
use rand::Rng;

/// Unit-disk graph: `n` points uniform in the unit square, an edge whenever
/// two points are within `radius`. Isolated components are stitched together
/// by connecting each leftover component to its geometrically closest
/// neighbor component, preserving the deployment's spatial character.
///
/// This is the classical abstraction of a physical radio deployment and the
/// workload behind the paper's practical motivation ("most practical radio
/// networks can detect collisions").
///
/// # Panics
///
/// Panics if `n == 0` or `radius <= 0`.
pub fn unit_disk(n: usize, radius: f64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1, "unit-disk graph requires at least one node");
    assert!(radius > 0.0, "radius must be positive");

    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();

    // Grid-bucket the points so neighbor scans are near-linear.
    let cell = radius.max(1e-9);
    let cells_per_axis = ((1.0 / cell).ceil() as usize).max(1);
    let key = |x: f64, y: f64| -> (usize, usize) {
        (
            ((x / cell) as usize).min(cells_per_axis - 1),
            ((y / cell) as usize).min(cells_per_axis - 1),
        )
    };
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); cells_per_axis * cells_per_axis];
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = key(x, y);
        buckets[cy * cells_per_axis + cx].push(i);
    }

    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = key(x, y);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_axis as i64 || ny >= cells_per_axis as i64 {
                    continue;
                }
                for &j in &buckets[ny as usize * cells_per_axis + nx as usize] {
                    if j <= i {
                        continue;
                    }
                    let (px, py) = points[j];
                    let (ex, ey) = (px - x, py - y);
                    if ex * ex + ey * ey <= r2 {
                        b.add_edge_raw(i, j).expect("valid disk edge");
                    }
                }
            }
        }
    }
    // Deployments below the connectivity threshold are stitched; the stitch
    // edges are random rather than nearest-pair for simplicity — they are a
    // vanishing fraction of edges for any radius of practical interest.
    connect_components(b, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Traversal;
    use crate::rng::stream_rng;

    #[test]
    fn udg_connected_across_radii() {
        for (seed, radius) in [(0u64, 0.05), (1, 0.15), (2, 0.4)] {
            let mut rng = stream_rng(seed, 0);
            let g = unit_disk(200, radius, &mut rng);
            assert!(g.is_connected(), "radius {radius}");
            assert_eq!(g.node_count(), 200);
        }
    }

    #[test]
    fn udg_density_grows_with_radius() {
        let sparse = unit_disk(300, 0.05, &mut stream_rng(7, 0));
        let dense = unit_disk(300, 0.25, &mut stream_rng(7, 0));
        assert!(dense.edge_count() > sparse.edge_count() * 4);
    }

    #[test]
    fn udg_deterministic_per_seed() {
        let a = unit_disk(100, 0.1, &mut stream_rng(5, 0));
        let b = unit_disk(100, 0.1, &mut stream_rng(5, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn udg_matches_bruteforce_edges_for_connected_radius() {
        // With a radius this large the raw disk graph is already connected,
        // so no stitch edges are added and we can compare exactly.
        let mut rng = stream_rng(11, 0);
        let n = 60;
        let points: Vec<(f64, f64)> =
            (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        // Re-generate with the same stream: the generator draws the same
        // points first.
        let g = unit_disk(n, 0.5, &mut stream_rng(11, 0));
        let mut expected = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (points[i].0 - points[j].0, points[i].1 - points[j].1);
                if dx * dx + dy * dy <= 0.25 {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.edge_count(), expected);
    }
}
