//! High-diameter / high-density hybrid families.
//!
//! Broadcast algorithms differ in how their round complexity splits between
//! the diameter term and the contention (log) terms. These families let
//! experiments control both independently:
//!
//! * [`cluster_chain`] — a chain of cliques: diameter `Θ(clusters)` with heavy
//!   local contention; the canonical graph where `O(D + polylog)` algorithms
//!   separate from `O(D · log)` ones;
//! * [`barbell`] / [`lollipop`] — cliques joined by long paths;
//! * [`caterpillar`] — a path with leaf bundles: large diameter, bursty
//!   degree.

use crate::graph::{Graph, GraphBuilder};

/// A chain of `clusters` cliques of size `cluster_size`; consecutive cliques
/// are joined by a single bridge edge between dedicated port nodes.
///
/// Nodes of clique `c` are `c * cluster_size .. (c+1) * cluster_size`; the
/// bridge joins the last node of clique `c` to the first node of clique
/// `c + 1`. Diameter is `2 * clusters - 1` for `cluster_size >= 2` (one hop
/// across each clique plus one bridge hop per boundary).
///
/// # Panics
///
/// Panics if `clusters == 0` or `cluster_size == 0`.
pub fn cluster_chain(clusters: usize, cluster_size: usize) -> Graph {
    assert!(clusters >= 1, "need at least one cluster");
    assert!(cluster_size >= 1, "clusters must be non-empty");
    let n = clusters * cluster_size;
    let mut b = GraphBuilder::new(n);
    for c in 0..clusters {
        let base = c * cluster_size;
        for i in 0..cluster_size {
            for j in (i + 1)..cluster_size {
                b.add_edge_raw(base + i, base + j).expect("valid clique edge");
            }
        }
        if c + 1 < clusters {
            b.add_edge_raw(base + cluster_size - 1, base + cluster_size)
                .expect("valid bridge edge");
        }
    }
    b.build()
}

/// Two cliques of size `clique` joined by a path of `path_len` extra nodes.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn barbell(clique: usize, path_len: usize) -> Graph {
    assert!(clique >= 2, "barbell cliques need at least two nodes");
    let n = 2 * clique + path_len;
    let mut b = GraphBuilder::new(n);
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.add_edge_raw(i, j).expect("valid clique edge");
            b.add_edge_raw(clique + path_len + i, clique + path_len + j)
                .expect("valid clique edge");
        }
    }
    // Path from node (clique-1) through the middle nodes to node (clique+path_len).
    let mut prev = clique - 1;
    for k in 0..path_len {
        b.add_edge_raw(prev, clique + k).expect("valid path edge");
        prev = clique + k;
    }
    b.add_edge_raw(prev, clique + path_len).expect("valid path edge");
    b.build()
}

/// A clique of size `clique` with a pendant path of `path_len` nodes
/// ("lollipop"): node `clique - 1` starts the path.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn lollipop(clique: usize, path_len: usize) -> Graph {
    assert!(clique >= 2, "lollipop clique needs at least two nodes");
    let n = clique + path_len;
    let mut b = GraphBuilder::new(n);
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.add_edge_raw(i, j).expect("valid clique edge");
        }
    }
    let mut prev = clique - 1;
    for k in 0..path_len {
        b.add_edge_raw(prev, clique + k).expect("valid path edge");
        prev = clique + k;
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each carrying `legs` leaves.
///
/// Spine nodes are `0..spine`; the leaves of spine node `s` are
/// `spine + s*legs .. spine + (s+1)*legs`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar requires a spine");
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for s in 0..spine.saturating_sub(1) {
        b.add_edge_raw(s, s + 1).expect("valid spine edge");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge_raw(s, spine + s * legs + l).expect("valid leg edge");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Traversal;

    #[test]
    fn cluster_chain_shape() {
        let g = cluster_chain(5, 4);
        assert_eq!(g.node_count(), 20);
        assert!(g.is_connected());
        // 5 cliques of 6 edges + 4 bridges.
        assert_eq!(g.edge_count(), 5 * 6 + 4);
        assert_eq!(g.diameter(), Some(2 * 5 - 1));
    }

    #[test]
    fn cluster_chain_single_cluster_is_clique() {
        let g = cluster_chain(1, 5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn cluster_chain_unit_clusters_is_path() {
        let g = cluster_chain(6, 1);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.diameter(), Some(5));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3);
        assert_eq!(g.node_count(), 11);
        assert!(g.is_connected());
        // Ends of the path sit 1 hop from their cliques: D = 3 path hops + 1
        // to reach the far side of each clique.
        assert_eq!(g.diameter(), Some(3 + 1 + 1 + 1));
    }

    #[test]
    fn barbell_zero_path_glues_cliques() {
        let g = barbell(3, 0);
        assert!(g.is_connected());
        assert_eq!(g.node_count(), 6);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(5, 4);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.diameter(), Some(5));
        assert!(g.is_connected());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.node_count(), 16);
        assert!(g.is_connected());
        // Leaf on first spine to leaf on last spine.
        assert_eq!(g.diameter(), Some(1 + 3 + 1));
    }

    #[test]
    fn caterpillar_no_legs_is_path() {
        let g = caterpillar(5, 0);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.diameter(), Some(4));
    }
}
