//! Workload graph generators.
//!
//! Every experiment in the reproduction sweeps over graphs from this library:
//!
//! * [`basic`] — deterministic families: paths, cycles, stars, cliques, grids,
//!   tori, hypercubes, balanced binary trees;
//! * [`random`] — seeded random families: connected `G(n,p)`, random trees,
//!   random bipartite graphs;
//! * [`geometric`] — unit-disk graphs, the classical model of physical radio
//!   deployments;
//! * [`clustered`] — high-diameter/high-density hybrids (cluster chains,
//!   barbells, lollipops, caterpillars) that separate the `D`-dependence of
//!   broadcast algorithms from their collision behaviour.
//!
//! All random generators take an explicit RNG so runs stay deterministic.

pub mod basic;
pub mod clustered;
pub mod geometric;
pub mod random;

pub use basic::{binary_tree, complete, cycle, grid, hypercube, path, star, torus};
pub use clustered::{barbell, caterpillar, cluster_chain, lollipop};
pub use geometric::unit_disk;
pub use random::{gnp_connected, random_bipartite, random_tree, Bipartite};
