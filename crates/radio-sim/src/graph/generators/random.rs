//! Seeded random graph families.

use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;
use rand::Rng;

/// Connected Erdős–Rényi graph: samples `G(n, p)` and then links the
/// connected components with uniformly random inter-component edges, so the
/// result is always connected while staying distributionally close to
/// `G(n, p)` for `p` above the connectivity threshold.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn gnp_connected(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1, "gnp requires at least one node");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge_raw(i, j).expect("valid gnp edge");
            }
        }
    }
    connect_components(b, rng)
}

/// Uniform random attachment tree: node `i > 0` attaches to a uniformly
/// random node `< i`. Expected diameter `Θ(log n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1, "tree requires at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge_raw(i, parent).expect("valid tree edge");
    }
    b.build()
}

/// A bipartite graph together with its two sides, as produced by
/// [`random_bipartite`].
///
/// The paper's Recruiting protocol (Lemma 2.3) and Bipartite Assignment
/// Problem (Section 2.2.2) operate on exactly this structure: *red* nodes on
/// one side, *blue* nodes on the other.
#[derive(Clone, Debug)]
pub struct Bipartite {
    /// The underlying graph; reds come first, blues after.
    pub graph: Graph,
    /// Number of red nodes (ids `0..reds`).
    pub reds: usize,
    /// Number of blue nodes (ids `reds..reds+blues`).
    pub blues: usize,
}

impl Bipartite {
    /// Ids of the red side.
    pub fn red_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.reds as u32).map(NodeId::from)
    }

    /// Ids of the blue side.
    pub fn blue_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (self.reds as u32..(self.reds + self.blues) as u32).map(NodeId::from)
    }

    /// Whether `v` is red.
    pub fn is_red(&self, v: NodeId) -> bool {
        v.index() < self.reds
    }
}

/// Random bipartite graph with `reds × blues` nodes and edge probability `p`;
/// every blue node is guaranteed at least one red neighbor (a uniformly random
/// one is added when the `G(n,p)` sample leaves it isolated), matching the
/// precondition of the Bipartite Assignment Problem.
///
/// # Panics
///
/// Panics if either side is empty or `p` is not in `[0, 1]`.
pub fn random_bipartite(reds: usize, blues: usize, p: f64, rng: &mut impl Rng) -> Bipartite {
    assert!(reds >= 1 && blues >= 1, "both sides must be non-empty");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let n = reds + blues;
    let mut b = GraphBuilder::new(n);
    for blue in 0..blues {
        let blue_id = reds + blue;
        let mut has_red = false;
        for red in 0..reds {
            if rng.gen_bool(p) {
                b.add_edge_raw(red, blue_id).expect("valid bipartite edge");
                has_red = true;
            }
        }
        if !has_red {
            let red = rng.gen_range(0..reds);
            b.add_edge_raw(red, blue_id).expect("valid fallback edge");
        }
    }
    Bipartite { graph: b.build(), reds, blues }
}

/// Links the connected components of the graph under construction with random
/// cross-component edges until the graph is connected.
pub(crate) fn connect_components(b: GraphBuilder, rng: &mut impl Rng) -> Graph {
    let g = b.build();
    let n = g.node_count();
    if n <= 1 {
        return g;
    }
    // Union-find over current components.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    let mut components = n;
    let mut extra: Vec<(u32, u32)> = Vec::new();
    for (u, v) in g.edges() {
        let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
        if ru != rv {
            parent[ru] = rv;
            components -= 1;
        }
    }
    while components > 1 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru] = rv;
            components -= 1;
            extra.push((u as u32, v as u32));
        }
    }
    if extra.is_empty() {
        return g;
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.add_edge(u, v).expect("existing edge is valid");
    }
    for (u, v) in extra {
        b.add_edge_raw(u as usize, v as usize).expect("joining edge is valid");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Traversal;
    use crate::rng::stream_rng;

    #[test]
    fn gnp_is_connected_even_when_sparse() {
        for seed in 0..5 {
            let mut rng = stream_rng(seed, 0);
            let g = gnp_connected(64, 0.01, &mut rng);
            assert!(g.is_connected(), "seed {seed}");
            assert_eq!(g.node_count(), 64);
        }
    }

    #[test]
    fn gnp_dense_has_many_edges() {
        let mut rng = stream_rng(1, 0);
        let g = gnp_connected(50, 0.5, &mut rng);
        let expected = 0.5 * (50.0 * 49.0 / 2.0);
        assert!((g.edge_count() as f64) > expected * 0.7);
        assert!((g.edge_count() as f64) < expected * 1.3);
    }

    #[test]
    fn gnp_deterministic_per_seed() {
        let a = gnp_connected(40, 0.1, &mut stream_rng(9, 0));
        let b = gnp_connected(40, 0.1, &mut stream_rng(9, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = stream_rng(3, 0);
        let g = random_tree(100, &mut rng);
        assert_eq!(g.edge_count(), 99);
        assert!(g.is_connected());
    }

    #[test]
    fn bipartite_every_blue_has_red_neighbor() {
        for seed in 0..5 {
            let mut rng = stream_rng(seed, 1);
            let bp = random_bipartite(10, 40, 0.05, &mut rng);
            for blue in bp.blue_ids() {
                assert!(
                    bp.graph.neighbors(blue).iter().any(|&r| bp.is_red(r)),
                    "blue {blue} isolated at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn bipartite_no_same_side_edges() {
        let mut rng = stream_rng(0, 2);
        let bp = random_bipartite(8, 8, 0.5, &mut rng);
        for (u, v) in bp.graph.edges() {
            assert_ne!(bp.is_red(u), bp.is_red(v));
        }
    }

    #[test]
    fn bipartite_side_iterators() {
        let mut rng = stream_rng(0, 3);
        let bp = random_bipartite(3, 4, 0.5, &mut rng);
        assert_eq!(bp.red_ids().len(), 3);
        assert_eq!(bp.blue_ids().len(), 4);
        assert!(bp.is_red(NodeId::new(2)));
        assert!(!bp.is_red(NodeId::new(3)));
    }
}
