//! Deterministic graph families.

use crate::graph::{Graph, GraphBuilder};

/// Path `v0 - v1 - … - v(n-1)`. Diameter `n - 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path requires at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge_raw(i, i + 1).expect("valid path edge");
    }
    b.build()
}

/// Cycle on `n >= 3` nodes. Diameter `⌊n/2⌋`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least three nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge_raw(i, (i + 1) % n).expect("valid cycle edge");
    }
    b.build()
}

/// Star: node 0 is the hub, nodes `1..n` are leaves. Diameter 2.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star requires at least two nodes");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge_raw(0, i).expect("valid star edge");
    }
    b.build()
}

/// Complete graph `K_n`. Diameter 1.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2, "complete graph requires at least two nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge_raw(i, j).expect("valid clique edge");
        }
    }
    b.build()
}

/// `w × h` grid. Node `(x, y)` has index `y * w + x`. Diameter `w + h - 2`.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w >= 1 && h >= 1, "grid requires positive dimensions");
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                b.add_edge_raw(v, v + 1).expect("valid grid edge");
            }
            if y + 1 < h {
                b.add_edge_raw(v, v + w).expect("valid grid edge");
            }
        }
    }
    b.build()
}

/// `w × h` torus (grid with wraparound). Requires `w >= 3 && h >= 3`.
///
/// # Panics
///
/// Panics if `w < 3 || h < 3`.
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus requires dimensions of at least 3");
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            let right = y * w + (x + 1) % w;
            let down = ((y + 1) % h) * w + x;
            b.add_edge_raw(v, right).expect("valid torus edge");
            b.add_edge_raw(v, down).expect("valid torus edge");
        }
    }
    b.build()
}

/// Hypercube of dimension `dim` (so `2^dim` nodes). Diameter `dim`.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim >= 30`.
pub fn hypercube(dim: u32) -> Graph {
    assert!((1..30).contains(&dim), "hypercube dimension must be in 1..30");
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge_raw(v, u).expect("valid hypercube edge");
            }
        }
    }
    b.build()
}

/// Balanced binary tree with `n` nodes; node `i` has children `2i+1`, `2i+2`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n >= 1, "binary tree requires at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge_raw(i, (i - 1) / 2).expect("valid tree edge");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Traversal;
    use crate::NodeId;

    #[test]
    fn path_shape() {
        let g = path(10);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.diameter(), Some(9));
    }

    #[test]
    fn single_node_path() {
        let g = path(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.diameter(), Some(4));
        assert!(g.node_ids().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(NodeId::new(0)), 5);
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 4 * 2 + 3 * 3); // vertical rows + horizontal cols
        assert_eq!(g.diameter(), Some(5));
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 4);
        assert!(g.node_ids().all(|v| g.degree(v) == 4));
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert!(g.node_ids().all(|v| g.degree(v) == 4));
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.diameter(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "cycle requires at least three nodes")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }
}
