//! Incremental, validating graph construction.

use super::Graph;
use crate::ids::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised while building a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge `{v, v}` was added.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// An edge endpoint is not a node of the graph.
    NodeOutOfBounds {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes in the graph under construction.
        node_count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => write!(f, "self-loop at {node}"),
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(f, "node {node} out of bounds for graph with {node_count} nodes")
            }
        }
    }
}

impl Error for GraphError {}

/// Builds a [`Graph`] from edges added one at a time.
///
/// Duplicate edges are merged; self-loops and out-of-range endpoints are
/// rejected eagerly.
///
/// ```
/// use radio_sim::graph::GraphBuilder;
/// use radio_sim::NodeId;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1))?;
/// b.add_edge(NodeId::new(1), NodeId::new(2))?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), radio_sim::graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of nodes of the graph under construction.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if `u == v`; [`GraphError::NodeOutOfBounds`]
    /// if either endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for e in [u, v] {
            if e.index() >= self.n {
                return Err(GraphError::NodeOutOfBounds { node: e, node_count: self.n });
            }
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(self)
    }

    /// Adds `{u, v}` given raw indices. Convenience for generators.
    pub fn add_edge_raw(&mut self, u: usize, v: usize) -> Result<&mut Self, GraphError> {
        self.add_edge(NodeId::new(u), NodeId::new(v))
    }

    /// Finalizes the CSR representation (sorting and deduplicating edges).
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut degree = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut adj = vec![NodeId(0); acc as usize];
        for &(u, v) in &self.edges {
            adj[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            adj[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        // Each node's slice is filled in increasing order of the *other*
        // endpoint for the `u` side, but the `v` side interleaves; sort each
        // slice so `neighbors()` is always sorted (binary-searchable).
        for v in 0..self.n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            adj[lo..hi].sort_unstable();
        }

        Graph::from_parts(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_raw(0, 1).unwrap().add_edge_raw(1, 2).unwrap();
        assert_eq!(b.node_count(), 4);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(5);
        for v in [4usize, 2, 3, 1] {
            b.add_edge_raw(0, v).unwrap();
        }
        let g = b.build();
        let nb: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|v| v.raw()).collect();
        assert_eq!(nb, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId(1)), 0);
    }

    #[test]
    fn zero_node_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn error_display() {
        let e = GraphError::SelfLoop { node: NodeId(3) };
        assert_eq!(e.to_string(), "self-loop at v3");
        let e = GraphError::NodeOutOfBounds { node: NodeId(9), node_count: 4 };
        assert!(e.to_string().contains("out of bounds"));
    }
}
