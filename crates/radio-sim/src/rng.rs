//! Deterministic seed derivation.
//!
//! Every simulation run is driven by a single master seed. Per-node (and
//! per-subsystem) seeds are derived with SplitMix64, which mixes its input
//! thoroughly enough that `derive_seed(s, 0), derive_seed(s, 1), …` behave as
//! independent streams for simulation purposes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 output function: a bijective, well-mixing `u64 -> u64` hash.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from a master seed and a stream index.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Two rounds of splitmix over a combined word: cheap and collision-free in
    // practice for the (master, stream) pairs a simulation uses.
    splitmix64(splitmix64(master ^ 0xA076_1D64_78BD_642F).wrapping_add(splitmix64(stream)))
}

/// Creates the RNG for stream `stream` of master seed `master`.
#[inline]
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

/// Derives a seed for fault-injection stream `stream` of `master`.
///
/// Uses a salt distinct from [`derive_seed`], so the fault layer's streams
/// are disjoint from every protocol stream of the same master seed — drawing
/// fault randomness can never perturb protocol draws, and vice versa.
#[inline]
pub fn derive_fault_seed(master: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(master ^ 0x5851_F42D_4C95_7F2D).wrapping_add(splitmix64(stream)))
}

/// Creates the RNG for fault stream `stream` of master seed `master`.
#[inline]
pub fn fault_stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_fault_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams() {
        let mut seen = HashSet::new();
        for stream in 0..10_000u64 {
            assert!(seen.insert(derive_seed(42, stream)), "collision at {stream}");
        }
    }

    #[test]
    fn derived_seeds_are_distinct_across_masters() {
        let mut seen = HashSet::new();
        for master in 0..10_000u64 {
            assert!(seen.insert(derive_seed(master, 7)), "collision at {master}");
        }
    }

    #[test]
    fn fault_streams_are_disjoint_from_protocol_streams() {
        // The fault salt must keep fault streams off every protocol stream of
        // the same master: no collision across a wide window of indices.
        let mut seen = HashSet::new();
        for stream in 0..10_000u64 {
            assert!(seen.insert(derive_seed(42, stream)));
        }
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(derive_fault_seed(42, stream)),
                "fault stream {stream} collides with a protocol stream"
            );
        }
    }

    #[test]
    fn fault_stream_rng_reproducible() {
        let a: u64 = fault_stream_rng(1, 2).gen();
        let b: u64 = fault_stream_rng(1, 2).gen();
        let c: u64 = stream_rng(1, 2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_rng_reproducible() {
        let a: u64 = stream_rng(1, 2).gen();
        let b: u64 = stream_rng(1, 2).gen();
        let c: u64 = stream_rng(1, 3).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
