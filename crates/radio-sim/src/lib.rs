//! # radio-sim
//!
//! A synchronous radio-network simulator implementing the classical model of
//! Chlamtac–Kutten and Bar-Yehuda–Goldreich–Itai, as used by Ghaffari,
//! Haeupler and Khabbazian in *"Randomized Broadcast in Radio Networks with
//! Collision Detection"* (PODC 2013):
//!
//! * time proceeds in **synchronous rounds**;
//! * in each round every node either **transmits** one packet or **listens**;
//! * a listening node receives a packet iff **exactly one** of its neighbors
//!   transmits in that round;
//! * if two or more neighbors transmit, the listener observes a **collision**
//!   (the special symbol `⊤`) when collision detection is available, and
//!   silence otherwise;
//! * a transmitting node learns nothing about the channel in that round.
//!
//! The crate provides:
//!
//! * [`graph`] — compact undirected graphs ([`Graph`]), a validating builder,
//!   BFS/diameter utilities, and a library of workload
//!   [generators](graph::generators);
//! * [`engine`] — the deterministic round engine ([`Simulator`]) driving any
//!   per-node [`Protocol`] state machine, with an optional seeded
//!   adversary ([`engine::faults`]: erasure, jamming, churn, mobility);
//! * [`model`] — the radio-channel types ([`Action`], [`Observation`],
//!   [`CollisionMode`]);
//! * [`trace`] — per-round and per-run statistics.
//!
//! Determinism: a run is fully determined by the graph, the protocol, and a
//! single `u64` master seed. Per-node random streams are derived with
//! SplitMix64 so runs are reproducible bit-for-bit across platforms.
//!
//! ## Example
//!
//! A one-message flooding protocol (not a radio-efficient one — just a tour of
//! the API):
//!
//! ```
//! use radio_sim::{graph::generators, CollisionMode, Simulator, Protocol};
//! use radio_sim::model::{Action, Observation};
//! use rand::{rngs::SmallRng, Rng};
//!
//! struct Flood { informed: bool }
//!
//! impl Protocol for Flood {
//!     type Msg = u8;
//!     fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action<u8> {
//!         if self.informed && rng.gen_bool(0.3) { Action::Transmit(42) } else { Action::Listen }
//!     }
//!     fn observe(&mut self, _round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
//!         if let Observation::Message(_) = obs { self.informed = true; }
//!     }
//! }
//!
//! let g = generators::path(16);
//! let mut sim = Simulator::new(g, CollisionMode::Detection, 7, |id| Flood {
//!     informed: id.index() == 0,
//! });
//! let done = sim.run_until(10_000, |nodes| nodes.iter().all(|n| n.informed));
//! assert!(done.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod graph;
pub mod ids;
pub mod model;
pub mod rng;
pub mod trace;

pub use engine::faults::{Churn, FaultPlan, Jammer, Mobility};
pub use engine::{DenseWrap, DoneCheck, Protocol, SegmentRun, Simulator, Wake};
pub use graph::{Graph, ImplicitGraph, Topology};
pub use ids::NodeId;
pub use model::{Action, CollisionMode, Observation, Packet};
pub use trace::{RoundStats, RunStats};
