//! Property tests for streamed (implicit) topologies.
//!
//! Four laws, over sampled families, sizes and seeds:
//!
//! * streamed neighborhoods are **bit-identical** to a materialized build of
//!   the same family: `ImplicitGraph::grid` matches `generators::grid`
//!   edge-for-edge, and the hashed families match their own
//!   [`ImplicitGraph::materialize`] (an independent brute-force pair scan,
//!   not the streaming recomputation path);
//! * repeat queries (direct-mapped **cache hits**) return the same slices as
//!   cold queries;
//! * an engine run over a streamed topology produces the **same trace and
//!   statistics** as the identical run over its materialization;
//! * streamed runs are **deterministic**: same (family, graph seed, run
//!   seed) gives the same full trace on every rerun.

use proptest::prelude::*;
use radio_sim::graph::generators;
use radio_sim::model::{Action, CollisionMode, Observation};
use radio_sim::{ImplicitGraph, NodeId, Protocol, RunStats, Simulator, Topology};
use rand::rngs::SmallRng;
use rand::Rng;

/// Collects every neighborhood of `t`, querying each node twice so the
/// second pass exercises the neighborhood cache's hit path.
fn neighborhoods<T: Topology>(t: &T) -> Vec<Vec<NodeId>> {
    let query = |i: usize| t.with_neighbors(NodeId::new(i), |ns| ns.to_vec());
    let cold: Vec<Vec<NodeId>> = (0..t.node_count()).map(query).collect();
    let warm: Vec<Vec<NodeId>> = (0..t.node_count()).map(query).collect();
    assert_eq!(cold, warm, "a cache hit returned a different neighborhood than the cold query");
    cold
}

/// A protocol that exercises both the channel and its RNG stream: transmits
/// with probability 0.3 each round and tallies everything it hears.
#[derive(Debug)]
struct Chatter {
    heard: Vec<(u64, bool)>, // (round, was_message)
}

impl Protocol for Chatter {
    type Msg = u8;
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action<u8> {
        if rng.gen_bool(0.3) {
            Action::Transmit(1)
        } else {
            Action::Listen
        }
    }
    fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
        match obs {
            Observation::Message(_) => self.heard.push((round, true)),
            Observation::Collision => self.heard.push((round, false)),
            Observation::Silence | Observation::SelfTransmit => {}
        }
    }
}

/// Runs `Chatter` over any topology; returns the full reception trace and
/// run statistics.
fn run_chatter_on<T: Topology>(
    topology: T,
    seed: u64,
    rounds: u64,
) -> (Vec<Vec<(u64, bool)>>, RunStats) {
    let mut sim =
        Simulator::new(topology, CollisionMode::Detection, seed, |_| Chatter { heard: Vec::new() });
    sim.run(rounds);
    let stats = sim.stats().clone();
    (sim.into_nodes().into_iter().map(|n| n.heard).collect(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_grid_matches_generator(w in 1usize..12, h in 1usize..12) {
        let streamed = ImplicitGraph::grid(w, h);
        let dense = generators::grid(w, h);
        prop_assert_eq!(neighborhoods(&streamed), neighborhoods(&dense));
    }

    #[test]
    fn streamed_unit_disk_matches_materialization(
        n in 1usize..48,
        radius in 0.05f64..0.5,
        seed in 0u64..1_000_000,
    ) {
        let streamed = ImplicitGraph::unit_disk(n, radius, seed);
        let dense = streamed.materialize();
        prop_assert_eq!(neighborhoods(&streamed), neighborhoods(&dense));
    }

    #[test]
    fn streamed_gnp_matches_materialization(
        n in 1usize..48,
        p in 0.0f64..0.6,
        seed in 0u64..1_000_000,
    ) {
        let streamed = ImplicitGraph::gnp(n, p, seed);
        let dense = streamed.materialize();
        prop_assert_eq!(neighborhoods(&streamed), neighborhoods(&dense));
    }

    #[test]
    fn streamed_engine_run_matches_materialized(
        n in 2usize..32,
        radius in 0.1f64..0.6,
        graph_seed in 0u64..1_000_000,
        run_seed in 0u64..1_000_000,
    ) {
        let streamed = ImplicitGraph::unit_disk(n, radius, graph_seed);
        let dense = streamed.materialize();
        let a = run_chatter_on(streamed, run_seed, 40);
        let b = run_chatter_on(dense, run_seed, 40);
        prop_assert_eq!(a, b, "streamed and materialized runs diverged");
    }

    #[test]
    fn streamed_run_is_deterministic(
        p in 0.05f64..0.4,
        graph_seed in 0u64..1_000_000,
        run_seed in 0u64..1_000_000,
    ) {
        let a = run_chatter_on(ImplicitGraph::gnp(24, p, graph_seed), run_seed, 40);
        let b = run_chatter_on(ImplicitGraph::gnp(24, p, graph_seed), run_seed, 40);
        prop_assert_eq!(a, b, "a streamed rerun diverged from itself");
    }
}
