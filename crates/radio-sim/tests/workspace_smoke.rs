//! Workspace-health smoke test: the simulator must be bit-for-bit
//! deterministic, including through the vendored `rand` stand-in. Two runs
//! with identical seeds must agree on every statistic and every per-node
//! outcome; a different seed must diverge.

use radio_sim::model::{Action, Observation};
use radio_sim::{graph::generators, CollisionMode, Protocol, RunStats, Simulator};
use rand::rngs::SmallRng;
use rand::Rng;

/// A chatty protocol that exercises transmission, delivery, collision and
/// silence paths, and accumulates an order-sensitive digest of what it saw.
struct Gossip {
    holds: bool,
    digest: u64,
}

impl Protocol for Gossip {
    type Msg = u64;

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<u64> {
        if self.holds && rng.gen_bool(0.25) {
            Action::Transmit(round ^ self.digest)
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<u64>, _rng: &mut SmallRng) {
        let tag = match obs {
            Observation::Message(m) => {
                self.holds = true;
                m.wrapping_mul(3)
            }
            Observation::Collision => 1,
            Observation::Silence => 2,
            Observation::SelfTransmit => 3,
        };
        self.digest = self.digest.rotate_left(7) ^ tag ^ round;
    }
}

fn run(seed: u64) -> (RunStats, Vec<u64>) {
    let g = generators::grid(8, 8);
    let mut sim = Simulator::new(g, CollisionMode::Detection, seed, |id| Gossip {
        holds: id.index() == 0,
        digest: 0,
    });
    sim.run(500);
    let stats = sim.stats().clone();
    let digests = sim.into_nodes().iter().map(|n| n.digest).collect();
    (stats, digests)
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let (stats_a, digests_a) = run(42);
    let (stats_b, digests_b) = run(42);
    assert_eq!(stats_a, stats_b, "run statistics diverged across identical seeded runs");
    assert_eq!(digests_a, digests_b, "per-node observations diverged across identical seeds");
    assert!(stats_a.transmissions > 0, "smoke run produced no traffic");
    assert!(stats_a.deliveries > 0, "smoke run delivered nothing");
}

#[test]
fn different_seeds_diverge() {
    let (stats_a, digests_a) = run(42);
    let (stats_c, digests_c) = run(43);
    assert!(
        stats_a != stats_c || digests_a != digests_c,
        "seeds 42 and 43 produced identical runs; seeding is broken"
    );
}
