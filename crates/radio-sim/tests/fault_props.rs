//! Property tests for the adversarial fault layer.
//!
//! Three laws, over sampled plans and seeds:
//!
//! * fault application is **deterministic**: the same (plan, seed) yields the
//!   same full statistics (including fault counters) on every rerun;
//! * erasure at `p = 0` is a **no-op**: it draws (and discards) fault
//!   randomness, leaving the protocol trace identical to no plan at all;
//! * churned topologies stay **valid CSR**: node count fixed, adjacency
//!   symmetric, degrees consistent with the edge count.

use proptest::prelude::*;
use radio_sim::graph::{generators, Graph};
use radio_sim::model::{Action, CollisionMode, Observation};
use radio_sim::{FaultPlan, Protocol, RunStats, Simulator};
use rand::rngs::SmallRng;
use rand::Rng;

/// A protocol that exercises both the channel and its RNG stream: transmits
/// with probability 0.3 each round and tallies everything it hears.
#[derive(Debug)]
struct Chatter {
    heard: Vec<(u64, bool)>, // (round, was_message)
}

impl Protocol for Chatter {
    type Msg = u8;
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action<u8> {
        if rng.gen_bool(0.3) {
            Action::Transmit(1)
        } else {
            Action::Listen
        }
    }
    fn observe(&mut self, round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
        match obs {
            Observation::Message(_) => self.heard.push((round, true)),
            Observation::Collision => self.heard.push((round, false)),
            Observation::Silence | Observation::SelfTransmit => {}
        }
    }
}

/// Runs `Chatter` over a cluster chain with the given plan; returns the full
/// reception trace and run statistics.
fn run_chatter(plan: FaultPlan, seed: u64, rounds: u64) -> (Vec<Vec<(u64, bool)>>, RunStats) {
    let g = generators::cluster_chain(4, 4);
    let mut sim = Simulator::new_with_faults(g, CollisionMode::Detection, seed, plan, |_| {
        Chatter { heard: Vec::new() }
    });
    sim.run(rounds);
    let stats = sim.stats().clone();
    (sim.into_nodes().into_iter().map(|n| n.heard).collect(), stats)
}

/// Asserts the CSR invariants churn must preserve: fixed node count,
/// symmetric sorted adjacency, and a degree sum of twice the edge count.
fn assert_valid_csr(g: &Graph, n: usize) {
    assert_eq!(g.node_count(), n);
    let mut degree_sum = 0usize;
    for u in g.node_ids() {
        let neigh = g.neighbors(u);
        degree_sum += neigh.len();
        for w in neigh.windows(2) {
            assert!(w[0] < w[1], "unsorted/duplicate adjacency at {u:?}");
        }
        for &v in neigh {
            assert!(v.index() < n, "dangling edge {u:?}-{v:?}");
            assert!(g.has_edge(v, u), "asymmetric edge {u:?}-{v:?}");
        }
    }
    assert_eq!(degree_sum, 2 * g.edge_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fault_application_is_deterministic(
        seed in 0u64..1_000_000,
        erasure in 0.0f64..0.5,
        jam_node in 0u32..16,
        jam_period in 1u64..20,
        churn_period in 1u64..12,
        churn_p in 0.0f64..0.2,
    ) {
        let plan = FaultPlan::none()
            .with_erasure(erasure)
            .with_jammer(jam_node, jam_period, jam_period - 1)
            .with_churn(churn_period, churn_p, churn_p);
        let a = run_chatter(plan.clone(), seed, 60);
        let b = run_chatter(plan, seed, 60);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zero_probability_erasure_is_a_noop(seed in 0u64..1_000_000) {
        let clean = run_chatter(FaultPlan::none(), seed, 60);
        let zeroed = run_chatter(FaultPlan::none().with_erasure(0.0), seed, 60);
        prop_assert_eq!(clean.0, zeroed.0, "p = 0 erasure perturbed the trace");
        prop_assert_eq!(zeroed.1.erased, 0);
        prop_assert_eq!(
            (clean.1.transmissions, clean.1.deliveries, clean.1.collisions),
            (zeroed.1.transmissions, zeroed.1.deliveries, zeroed.1.collisions)
        );
    }

    #[test]
    fn churned_graphs_stay_valid_csr(
        seed in 0u64..1_000_000,
        node_p in 0.0f64..0.3,
        edge_p in 0.0f64..0.3,
    ) {
        let n = generators::cluster_chain(4, 4).node_count();
        let plan = FaultPlan::none().with_churn(1, node_p, edge_p);
        let mut sim = Simulator::new_with_faults(
            generators::cluster_chain(4, 4),
            CollisionMode::Detection,
            seed,
            plan,
            |_| Chatter { heard: Vec::new() },
        );
        for _ in 0..40 {
            sim.step();
            assert_valid_csr(sim.graph(), n);
        }
    }

    #[test]
    fn mobile_graphs_stay_valid_csr(seed in 0u64..1_000_000, radius in 0.2f64..0.6) {
        let n = 20usize;
        let plan = FaultPlan::none().with_mobility(radius, 5);
        let mut sim = Simulator::new_with_faults(
            generators::path(n),
            CollisionMode::Detection,
            seed,
            plan,
            |_| Chatter { heard: Vec::new() },
        );
        for _ in 0..25 {
            sim.step();
            assert_valid_csr(sim.graph(), n);
        }
    }
}
