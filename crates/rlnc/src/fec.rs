//! Forward error correction across ring boundaries (Section 3.4).
//!
//! When a batch of `k'` messages has reached the outer boundary of ring `j`,
//! each boundary node emits `Θ(k')` *FEC packets* such that any receiver that
//! collects `Θ(k')` of them — from any mix of senders — can decode the whole
//! batch. A random-linear fountain over `F_2` has exactly this property: each
//! FEC packet is a uniformly random combination of the batch, and `k' + c`
//! random packets decode with probability `≥ 1 − 2^{-c}`.
//!
//! The paper notes FEC here is "a simplified form of network coding as there
//! is no intermediate node": encoders hold the *whole* batch, receivers only
//! collect and decode.

use crate::gf2::BitVec;
use crate::{CodedPacket, Decoder};
use rand::Rng;
use std::fmt;

/// A fountain encoder over one fully-known batch of messages.
#[derive(Clone)]
pub struct FountainEncoder {
    source: Decoder,
}

impl FountainEncoder {
    /// Creates an encoder over `messages` (all the same bit length).
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty or lengths differ.
    pub fn new(messages: &[BitVec]) -> Self {
        assert!(!messages.is_empty(), "fountain needs at least one message");
        FountainEncoder { source: Decoder::with_messages(messages) }
    }

    /// Number of messages in the batch.
    pub fn k(&self) -> usize {
        self.source.k()
    }

    /// Emits one fountain packet: a uniformly random nonzero combination.
    pub fn emit(&self, rng: &mut impl Rng) -> CodedPacket {
        self.source.random_combination(rng).expect("encoder holds at least one message")
    }
}

impl fmt::Debug for FountainEncoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FountainEncoder(k={})", self.k())
    }
}

/// A fountain receiver: collects packets until the batch decodes.
///
/// This is a thin semantic wrapper over [`Decoder`]; it exists so call sites
/// distinguish in-ring RLNC state from boundary FEC state.
#[derive(Clone, Debug)]
pub struct FountainDecoder {
    inner: Decoder,
    received: usize,
}

impl FountainDecoder {
    /// A receiver for a batch of `k` messages of `payload_bits` each.
    pub fn new(k: usize, payload_bits: usize) -> Self {
        FountainDecoder { inner: Decoder::new(k, payload_bits), received: 0 }
    }

    /// Absorbs one received fountain packet; returns `true` if innovative.
    pub fn absorb(&mut self, packet: CodedPacket) -> bool {
        self.received += 1;
        self.inner.insert(packet)
    }

    /// Packets received so far (innovative or not).
    pub fn received(&self) -> usize {
        self.received
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.inner.rank()
    }

    /// Whether the batch can be decoded.
    pub fn is_complete(&self) -> bool {
        self.inner.can_decode()
    }

    /// Decodes the batch, if complete.
    pub fn decode(&self) -> Option<Vec<BitVec>> {
        self.inner.decode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn batch(k: usize) -> Vec<BitVec> {
        (0..k).map(|i| BitVec::from_u64(i as u64 * 3 + 1, 16)).collect()
    }

    #[test]
    fn fountain_decodes_from_any_packets() {
        let msgs = batch(8);
        let enc = FountainEncoder::new(&msgs);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut dec = FountainDecoder::new(8, 16);
        while !dec.is_complete() {
            dec.absorb(enc.emit(&mut rng));
            assert!(dec.received() < 200, "fountain failed to converge");
        }
        assert_eq!(dec.decode().unwrap(), msgs);
    }

    #[test]
    fn fountain_overhead_is_small() {
        // Measure packets needed over many trials: should be close to k
        // (expected overhead < 2 packets for F2 fountains).
        let msgs = batch(16);
        let enc = FountainEncoder::new(&msgs);
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 100;
        let mut total = 0usize;
        for _ in 0..trials {
            let mut dec = FountainDecoder::new(16, 16);
            while !dec.is_complete() {
                dec.absorb(enc.emit(&mut rng));
            }
            total += dec.received();
        }
        let avg = total as f64 / trials as f64;
        assert!(avg < 16.0 + 3.0, "average packets {avg}");
    }

    #[test]
    fn multiple_encoders_mix() {
        // Ring handoff: several boundary nodes encode the same batch; a
        // receiver mixes packets from all of them.
        let msgs = batch(6);
        let encoders: Vec<FountainEncoder> = (0..3).map(|_| FountainEncoder::new(&msgs)).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut dec = FountainDecoder::new(6, 16);
        let mut i = 0;
        while !dec.is_complete() {
            dec.absorb(encoders[i % 3].emit(&mut rng));
            i += 1;
            assert!(i < 200);
        }
        assert_eq!(dec.decode().unwrap(), msgs);
    }

    #[test]
    fn single_message_fountain() {
        let msgs = batch(1);
        let enc = FountainEncoder::new(&msgs);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut dec = FountainDecoder::new(1, 16);
        dec.absorb(enc.emit(&mut rng));
        assert!(dec.is_complete());
        assert_eq!(dec.decode().unwrap(), msgs);
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn empty_batch_panics() {
        let _ = FountainEncoder::new(&[]);
    }
}
