//! Network-coded packets and the incremental RLNC receiver.

use crate::gf2::BitVec;
use rand::Rng;
use std::fmt;

/// A network-coded packet: a coefficient vector `α ∈ F_2^k` together with the
/// payload `Σ α_i · m_i` (Section 3.3.1 of the paper).
///
/// The on-air encoding of a packet is `k` coefficient bits plus the payload
/// bits, which [`CodedPacket::packet_bits`] reports for packet-budget audits.
#[derive(Clone, PartialEq, Eq)]
pub struct CodedPacket {
    coeffs: BitVec,
    payload: BitVec,
}

impl CodedPacket {
    /// Builds a packet from its parts.
    pub fn new(coeffs: BitVec, payload: BitVec) -> Self {
        CodedPacket { coeffs, payload }
    }

    /// The plaintext packet carrying message `i` of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn plaintext(k: usize, i: usize, payload: BitVec) -> Self {
        CodedPacket { coeffs: BitVec::unit(k, i), payload }
    }

    /// The coefficient vector.
    pub fn coeffs(&self) -> &BitVec {
        &self.coeffs
    }

    /// The coded payload.
    pub fn payload(&self) -> &BitVec {
        &self.payload
    }

    /// Number of messages this packet codes over.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Adds `other` into this packet (`F_2` addition of both parts).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn xor_assign(&mut self, other: &CodedPacket) {
        self.coeffs.xor_assign(&other.coeffs);
        self.payload.xor_assign(&other.payload);
    }

    /// On-air size in bits: coefficients + payload.
    pub fn packet_bits(&self) -> usize {
        self.coeffs.len() + self.payload.len()
    }
}

impl fmt::Debug for CodedPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CodedPacket(coeffs={:?}, payload_bits={})", self.coeffs, self.payload.len())
    }
}

/// Incremental RLNC receiver state: the subspace of coefficient vectors
/// received so far, kept in row-echelon form.
///
/// Every node in the paper's multi-message algorithms owns one `Decoder` per
/// generation: received packets are [inserted](Decoder::insert), outgoing
/// packets are drawn with [`Decoder::random_combination`], and the original
/// messages are recovered with [`Decoder::decode`] once the coefficient space
/// has full rank.
#[derive(Clone, Debug)]
pub struct Decoder {
    k: usize,
    payload_bits: usize,
    /// Echelon rows ordered by pivot column; `pivots[i]` is the column of the
    /// leading 1 of `rows[i]`.
    rows: Vec<CodedPacket>,
    pivots: Vec<usize>,
}

impl Decoder {
    /// An empty decoder for `k` messages of `payload_bits` bits each.
    pub fn new(k: usize, payload_bits: usize) -> Self {
        Decoder { k, payload_bits, rows: Vec::new(), pivots: Vec::new() }
    }

    /// A decoder pre-loaded with all `k` original messages — the state of the
    /// *source* node.
    pub fn with_messages(messages: &[BitVec]) -> Self {
        let k = messages.len();
        let payload_bits = messages.first().map_or(0, BitVec::len);
        let mut d = Decoder::new(k, payload_bits);
        for (i, m) in messages.iter().enumerate() {
            assert_eq!(m.len(), payload_bits, "messages must share a length");
            d.insert(CodedPacket::plaintext(k, i, m.clone()));
        }
        d
    }

    /// Number of messages in the generation.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload width in bits.
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// Current rank of the received coefficient space.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Whether the decoder has seen any innovative packet at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a received packet. Returns `true` iff it was *innovative*
    /// (increased the rank).
    ///
    /// # Panics
    ///
    /// Panics if the packet's dimensions do not match the decoder's.
    pub fn insert(&mut self, mut packet: CodedPacket) -> bool {
        assert_eq!(packet.k(), self.k, "coefficient width mismatch");
        assert_eq!(packet.payload().len(), self.payload_bits, "payload width mismatch");
        // Reduce against existing rows.
        loop {
            let Some(lead) = packet.coeffs().first_set() else {
                return false; // reduced to zero: not innovative
            };
            match self.pivots.binary_search(&lead) {
                Ok(idx) => {
                    let row = self.rows[idx].clone();
                    packet.xor_assign(&row);
                }
                Err(idx) => {
                    // New pivot. First clear the pivot columns of later rows
                    // from the packet (they are all > lead, so the lead is
                    // unaffected), keeping *reduced* row-echelon form.
                    for r in idx..self.rows.len() {
                        if packet.coeffs().get(self.pivots[r]) {
                            let row = self.rows[r].clone();
                            packet.xor_assign(&row);
                        }
                    }
                    // Then back-substitute into every row with a 1 in `lead`.
                    for row in &mut self.rows {
                        if row.coeffs().get(lead) {
                            row.xor_assign(&packet);
                        }
                    }
                    self.rows.insert(idx, packet);
                    self.pivots.insert(idx, lead);
                    return true;
                }
            }
        }
    }

    /// Whether all `k` messages can be decoded.
    pub fn can_decode(&self) -> bool {
        self.rank() == self.k
    }

    /// Decodes the original messages, or `None` if the rank is not yet `k`.
    pub fn decode(&self) -> Option<Vec<BitVec>> {
        if !self.can_decode() {
            return None;
        }
        // Rows are in *reduced* echelon form with k pivots, so row i is
        // exactly the unit vector e_i and its payload is message i.
        Some(self.rows.iter().map(|r| r.payload().clone()).collect())
    }

    /// Draws a uniformly random packet from the received span, excluding the
    /// zero combination (a fresh *coded* transmission). Returns `None` if
    /// nothing has been received.
    pub fn random_combination(&self, rng: &mut impl Rng) -> Option<CodedPacket> {
        if self.rows.is_empty() {
            return None;
        }
        let sel = BitVec::random_nonzero(self.rows.len(), rng);
        let mut out = CodedPacket::new(BitVec::zero(self.k), BitVec::zero(self.payload_bits));
        for i in sel.iter_ones() {
            out.xor_assign(&self.rows[i]);
        }
        Some(out)
    }

    /// Whether this node is *infected* by the test vector `μ` in the sense of
    /// the projection analysis (Definition 3.8): some received packet — hence
    /// some basis vector of the span — is not orthogonal to `μ`.
    ///
    /// # Panics
    ///
    /// Panics if `mu.len() != k`.
    pub fn infected_by(&self, mu: &BitVec) -> bool {
        assert_eq!(mu.len(), self.k, "test vector width mismatch");
        self.rows.iter().any(|r| r.coeffs().dot(mu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn messages(k: usize, bits: usize) -> Vec<BitVec> {
        assert!(bits < 64);
        let mask = (1u64 << bits) - 1;
        (0..k).map(|i| BitVec::from_u64((i as u64 + 1).wrapping_mul(0x9E37) & mask, bits)).collect()
    }

    #[test]
    fn source_decoder_is_complete() {
        let msgs = messages(5, 16);
        let d = Decoder::with_messages(&msgs);
        assert!(d.can_decode());
        assert_eq!(d.decode().unwrap(), msgs);
    }

    #[test]
    fn plaintext_insert_decodes() {
        let msgs = messages(3, 16);
        let mut d = Decoder::new(3, 16);
        for (i, m) in msgs.iter().enumerate() {
            assert!(d.insert(CodedPacket::plaintext(3, i, m.clone())));
        }
        assert_eq!(d.decode().unwrap(), msgs);
    }

    #[test]
    fn duplicate_packet_not_innovative() {
        let msgs = messages(3, 16);
        let mut d = Decoder::new(3, 16);
        let p = CodedPacket::plaintext(3, 1, msgs[1].clone());
        assert!(d.insert(p.clone()));
        assert!(!d.insert(p));
        assert_eq!(d.rank(), 1);
    }

    #[test]
    fn zero_packet_not_innovative() {
        let mut d = Decoder::new(3, 8);
        assert!(!d.insert(CodedPacket::new(BitVec::zero(3), BitVec::zero(8))));
    }

    #[test]
    fn coded_relay_chain_decodes() {
        // Source -> relay -> sink over random combinations only.
        let mut rng = SmallRng::seed_from_u64(3);
        let msgs = messages(6, 32);
        let source = Decoder::with_messages(&msgs);
        let mut relay = Decoder::new(6, 32);
        let mut sink = Decoder::new(6, 32);
        let mut sent = 0;
        while !sink.can_decode() {
            sent += 1;
            assert!(sent < 1000, "chain failed to converge");
            if let Some(p) = source.random_combination(&mut rng) {
                relay.insert(p);
            }
            if let Some(p) = relay.random_combination(&mut rng) {
                sink.insert(p);
            }
        }
        assert_eq!(sink.decode().unwrap(), msgs);
    }

    #[test]
    fn random_combination_innovative_with_prob_half() {
        // Proposition 3.9 ingredient: a random combination from a sender that
        // is infected by μ infects the receiver with probability >= 1/2.
        let mut rng = SmallRng::seed_from_u64(9);
        let msgs = messages(8, 8);
        let source = Decoder::with_messages(&msgs);
        let mu = BitVec::random_nonzero(8, &mut rng);
        assert!(source.infected_by(&mu));
        let trials = 2000;
        let mut infected = 0;
        for _ in 0..trials {
            let p = source.random_combination(&mut rng).unwrap();
            if p.coeffs().dot(&mu) {
                infected += 1;
            }
        }
        let frac = infected as f64 / trials as f64;
        assert!(frac > 0.45, "infection fraction {frac} too small");
    }

    #[test]
    fn infected_by_tracks_span_not_rows() {
        let mut d = Decoder::new(4, 4);
        // Insert e0 + e1.
        let mut c = BitVec::unit(4, 0);
        c.xor_assign(&BitVec::unit(4, 1));
        d.insert(CodedPacket::new(c, BitVec::zero(4)));
        // μ = e0 + e1 is orthogonal to the span {0, e0+e1}.
        let mut mu = BitVec::unit(4, 0);
        mu.xor_assign(&BitVec::unit(4, 1));
        assert!(!d.infected_by(&mu));
        // μ = e0 is not orthogonal.
        assert!(d.infected_by(&BitVec::unit(4, 0)));
    }

    #[test]
    fn decode_payload_consistency_under_coding() {
        // Whatever path packets take, decoded payloads equal the originals.
        let mut rng = SmallRng::seed_from_u64(11);
        let msgs = messages(4, 24);
        let source = Decoder::with_messages(&msgs);
        let mut sink = Decoder::new(4, 24);
        while !sink.can_decode() {
            sink.insert(source.random_combination(&mut rng).unwrap());
        }
        assert_eq!(sink.decode().unwrap(), msgs);
    }

    #[test]
    fn packet_bits_accounting() {
        let p = CodedPacket::plaintext(10, 0, BitVec::zero(32));
        assert_eq!(p.packet_bits(), 42);
    }

    #[test]
    fn rank_never_exceeds_k() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut d = Decoder::new(5, 8);
        for _ in 0..50 {
            let p = CodedPacket::new(BitVec::random(5, &mut rng), BitVec::random(8, &mut rng));
            d.insert(p);
        }
        assert!(d.rank() <= 5);
    }

    #[test]
    fn empty_decoder_has_no_combination() {
        let d = Decoder::new(3, 8);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(d.random_combination(&mut rng).is_none());
        assert!(!d.can_decode());
        assert!(d.decode().is_none());
    }
}
