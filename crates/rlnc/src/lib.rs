//! # rlnc
//!
//! Random linear network coding (RLNC) over `F_2`, as used by the
//! multi-message broadcast algorithms of Ghaffari–Haeupler–Khabbazian
//! (Section 3.3 of the paper):
//!
//! * [`gf2`] — bit-packed vectors and matrices over the two-element field,
//!   with Gaussian elimination;
//! * [`CodedPacket`] / [`Decoder`] — network-coded packets (coefficient
//!   vector + payload) and the incremental receiver that decodes once its
//!   coefficient space reaches full rank (Section 3.3.1);
//! * [`fec`] — the random-linear fountain used as forward error correction
//!   across ring boundaries (Section 3.4);
//! * [`generation`] — batching messages into generations of `Θ(log n)` so the
//!   coefficient-vector overhead stays at `O(log n)` bits per packet
//!   (Section 3.4).
//!
//! ## Example
//!
//! ```
//! use rlnc::{gf2::BitVec, Decoder, CodedPacket};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let messages: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(i + 10, 16)).collect();
//!
//! // The source holds all messages; relays recombine what they have.
//! let source = Decoder::with_messages(&messages);
//! let mut sink = Decoder::new(4, 16);
//! while !sink.can_decode() {
//!     let packet = source.random_combination(&mut rng).expect("source is nonempty");
//!     sink.insert(packet);
//! }
//! assert_eq!(sink.decode().unwrap(), messages);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fec;
pub mod generation;
pub mod gf2;
mod packet;

pub use packet::{CodedPacket, Decoder};
