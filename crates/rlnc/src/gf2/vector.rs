//! Bit-packed vectors over `F_2`.

use rand::Rng;
use std::fmt;

/// A fixed-length vector over `F_2`, bit-packed into `u64` limbs.
///
/// Bit `i` of the vector is bit `i % 64` of limb `i / 64`. Trailing bits of
/// the last limb beyond `len` are kept zero (an invariant relied on by
/// [`BitVec::is_zero`] and [`BitVec::dot`]).
///
/// ```
/// use rlnc::gf2::BitVec;
/// let mut v = BitVec::zero(100);
/// v.set(3, true);
/// v.set(99, true);
/// assert_eq!(v.weight(), 2);
/// assert_eq!(v.first_set(), Some(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    limbs: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// The all-zero vector of length `len`.
    pub fn zero(len: usize) -> Self {
        BitVec { limbs: vec![0; len.div_ceil(64)], len }
    }

    /// The `i`-th standard basis vector of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn unit(len: usize, i: usize) -> Self {
        let mut v = BitVec::zero(len);
        v.set(i, true);
        v
    }

    /// A vector of length `len` whose low bits are those of `value`
    /// (little-endian); bits of `value` beyond `len` must be zero.
    ///
    /// # Panics
    ///
    /// Panics if `value` has a set bit at position `>= len`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        if len < 64 {
            assert!(
                len == 0 && value == 0 || value >> len == 0,
                "value does not fit in {len} bits"
            );
        }
        let mut v = BitVec::zero(len.max(1));
        v.len = len;
        if !v.limbs.is_empty() {
            v.limbs[0] = value;
        }
        v
    }

    /// Builds a vector from booleans.
    pub fn from_bools(bits: impl IntoIterator<Item = bool>) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zero(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// A uniformly random vector of length `len`.
    pub fn random(len: usize, rng: &mut impl Rng) -> Self {
        let mut v = BitVec::zero(len);
        for limb in &mut v.limbs {
            *limb = rng.gen();
        }
        v.mask_tail();
        v
    }

    /// A uniformly random *nonzero* vector of length `len >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn random_nonzero(len: usize, rng: &mut impl Rng) -> Self {
        assert!(len >= 1, "cannot draw a nonzero vector of length 0");
        loop {
            let v = BitVec::random(len, rng);
            if !v.is_zero() {
                return v;
            }
        }
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has length 0.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range for length {}", self.len);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range for length {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// In-place addition over `F_2` (`self ^= other`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor_assign");
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a ^= b;
        }
    }

    /// Inner product over `F_2`: the parity of `|self ∧ other|`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch in dot");
        let mut acc = 0u64;
        for (a, b) in self.limbs.iter().zip(&other.limbs) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Whether all bits are zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn weight(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Index of the lowest set bit, if any.
    #[inline]
    pub fn first_set(&self) -> Option<usize> {
        for (w, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return Some(w * 64 + limb.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.limbs.iter().enumerate().flat_map(|(w, &limb)| {
            let mut rest = limb;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(w * 64 + bit)
            })
        })
    }

    /// Zeroes any bits beyond `len` in the last limb.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_and_unit() {
        let z = BitVec::zero(70);
        assert!(z.is_zero());
        assert_eq!(z.len(), 70);
        let u = BitVec::unit(70, 65);
        assert!(!u.is_zero());
        assert_eq!(u.first_set(), Some(65));
        assert_eq!(u.weight(), 1);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zero(130);
        for i in [0usize, 63, 64, 127, 129] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.weight(), 5);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 4);
    }

    #[test]
    fn xor_is_f2_addition() {
        let mut a = BitVec::from_bools([true, false, true, false]);
        let b = BitVec::from_bools([true, true, false, false]);
        a.xor_assign(&b);
        assert_eq!(a, BitVec::from_bools([false, true, true, false]));
        // x + x = 0.
        let mut c = b.clone();
        c.xor_assign(&b);
        assert!(c.is_zero());
    }

    #[test]
    fn dot_is_parity_of_and() {
        let a = BitVec::from_bools([true, true, false, true]);
        let b = BitVec::from_bools([true, false, true, true]);
        // overlap at 0 and 3 -> even parity.
        assert!(!a.dot(&b));
        let c = BitVec::from_bools([true, false, false, false]);
        assert!(a.dot(&c));
    }

    #[test]
    fn from_u64_layout() {
        let v = BitVec::from_u64(0b1011, 8);
        assert!(v.get(0) && v.get(1) && !v.get(2) && v.get(3));
        assert_eq!(v.weight(), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_overflow_panics() {
        let _ = BitVec::from_u64(0b100, 2);
    }

    #[test]
    fn random_respects_tail_mask() {
        let mut rng = SmallRng::seed_from_u64(0);
        for len in [1usize, 7, 63, 64, 65, 100] {
            let v = BitVec::random(len, &mut rng);
            // All set bits must be below len.
            assert!(v.iter_ones().all(|i| i < len), "len {len}");
        }
    }

    #[test]
    fn random_nonzero_never_zero() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(!BitVec::random_nonzero(1, &mut rng).is_zero());
        }
    }

    #[test]
    fn iter_ones_ascending() {
        let mut v = BitVec::zero(200);
        for i in [3usize, 64, 65, 199] {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 64, 65, 199]);
    }

    #[test]
    fn first_set_none_for_zero() {
        assert_eq!(BitVec::zero(10).first_set(), None);
    }

    #[test]
    fn debug_truncates() {
        let v = BitVec::zero(100);
        let s = format!("{v:?}");
        assert!(s.contains("…"));
        assert!(s.starts_with("BitVec[100;"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zero(4);
        let _ = v.get(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let mut a = BitVec::zero(4);
        a.xor_assign(&BitVec::zero(5));
    }
}
