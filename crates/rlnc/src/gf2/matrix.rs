//! Dense matrices over `F_2` with Gaussian elimination.

use super::BitVec;
use std::fmt;

/// A matrix over `F_2` stored as a list of [`BitVec`] rows of equal width.
///
/// ```
/// use rlnc::gf2::{BitMatrix, BitVec};
/// let mut m = BitMatrix::new(3);
/// m.push_row(BitVec::from_bools([true, false, true]));
/// m.push_row(BitVec::from_bools([false, true, true]));
/// m.push_row(BitVec::from_bools([true, true, false])); // = row0 + row1
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    width: usize,
    rows: Vec<BitVec>,
}

impl BitMatrix {
    /// An empty matrix whose rows will have `width` columns.
    pub fn new(width: usize) -> Self {
        BitMatrix { width, rows: Vec::new() }
    }

    /// The identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::new(n);
        for i in 0..n {
            m.push_row(BitVec::unit(n, i));
        }
        m
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the matrix width.
    pub fn push_row(&mut self, row: BitVec) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.rows.push(row);
    }

    /// Row `i`.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[BitVec] {
        &self.rows
    }

    /// The rank of the matrix (destructive elimination on a copy).
    pub fn rank(&self) -> usize {
        let mut work: Vec<BitVec> = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.width {
            // Find a row at or below `rank` with a leading 1 in `col`.
            let Some(pivot) = (rank..work.len()).find(|&r| work[r].get(col)) else {
                continue;
            };
            work.swap(rank, pivot);
            let pivot_row = work[rank].clone();
            for (r, row) in work.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_assign(&pivot_row);
                }
            }
            rank += 1;
            if rank == work.len() {
                break;
            }
        }
        rank
    }

    /// Whether the rows span the full `width`-dimensional space.
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.width
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows.len(), self.width)?;
        for row in &self.rows {
            writeln!(f, "  {row:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_full_rank() {
        assert!(BitMatrix::identity(8).is_full_rank());
        assert_eq!(BitMatrix::identity(8).rank(), 8);
    }

    #[test]
    fn dependent_rows_reduce_rank() {
        let mut m = BitMatrix::new(4);
        let a = BitVec::from_bools([true, true, false, false]);
        let b = BitVec::from_bools([false, false, true, true]);
        let mut c = a.clone();
        c.xor_assign(&b);
        m.push_row(a);
        m.push_row(b);
        m.push_row(c);
        assert_eq!(m.rank(), 2);
        assert!(!m.is_full_rank());
    }

    #[test]
    fn zero_rows_have_rank_zero() {
        let mut m = BitMatrix::new(5);
        m.push_row(BitVec::zero(5));
        m.push_row(BitVec::zero(5));
        assert_eq!(m.rank(), 0);
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::new(3);
        assert_eq!(m.rank(), 0);
        assert_eq!(m.row_count(), 0);
        assert!(!m.is_full_rank());
    }

    #[test]
    fn width_zero_matrix_is_trivially_full_rank() {
        let m = BitMatrix::new(0);
        assert!(m.is_full_rank());
    }

    #[test]
    fn random_square_matrices_rank_statistics() {
        // A random n×n matrix over F2 is full rank with probability
        // ~ prod (1 - 2^-i) ≈ 0.2887; check we land in a plausible band.
        let mut rng = SmallRng::seed_from_u64(42);
        let trials = 200;
        let mut full = 0;
        for _ in 0..trials {
            let mut m = BitMatrix::new(16);
            for _ in 0..16 {
                m.push_row(BitVec::random(16, &mut rng));
            }
            if m.is_full_rank() {
                full += 1;
            }
        }
        let p = full as f64 / trials as f64;
        assert!((0.15..0.45).contains(&p), "full-rank fraction {p}");
    }

    #[test]
    fn rank_bounded_by_dimensions() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut m = BitMatrix::new(4);
        for _ in 0..10 {
            m.push_row(BitVec::random(4, &mut rng));
        }
        assert!(m.rank() <= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut m = BitMatrix::new(4);
        m.push_row(BitVec::zero(5));
    }

    #[test]
    fn debug_shows_dimensions() {
        let m = BitMatrix::identity(2);
        assert!(format!("{m:?}").contains("2x2"));
    }
}
