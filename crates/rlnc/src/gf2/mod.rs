//! Linear algebra over `F_2`, the two-element field.
//!
//! Vectors are bit-packed into `u64` limbs; addition is XOR and the inner
//! product is the parity of the bitwise AND — both are word-parallel.

mod matrix;
mod vector;

pub use matrix::BitMatrix;
pub use vector::BitVec;
