//! Generation (batch) management for coefficient-overhead control.
//!
//! Coding all `k` messages together puts a `k`-bit coefficient vector in every
//! packet, which can exceed the `B = Θ(log n)` packet budget. Section 3.4 of
//! the paper fixes this by *generations*: messages are grouped into batches of
//! `Θ(log n)` and coding happens only within a batch, so the coefficient
//! overhead is `O(log n)` bits.
//!
//! [`GenerationPlan`] is the bookkeeping shared by every node: how many
//! generations exist, which messages belong to which, and per-generation
//! decoder construction.

use crate::gf2::BitVec;
use crate::Decoder;

/// The static partition of `k` messages into generations of size at most `g`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenerationPlan {
    total_messages: usize,
    generation_size: usize,
    payload_bits: usize,
}

impl GenerationPlan {
    /// Plans generations of size `generation_size` over `total_messages`
    /// messages of `payload_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `total_messages == 0` or `generation_size == 0`.
    pub fn new(total_messages: usize, generation_size: usize, payload_bits: usize) -> Self {
        assert!(total_messages >= 1, "need at least one message");
        assert!(generation_size >= 1, "generations must be non-empty");
        GenerationPlan { total_messages, generation_size, payload_bits }
    }

    /// Total number of messages.
    pub fn total_messages(&self) -> usize {
        self.total_messages
    }

    /// Maximum messages per generation.
    pub fn generation_size(&self) -> usize {
        self.generation_size
    }

    /// Payload width in bits.
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// Number of generations.
    pub fn generation_count(&self) -> usize {
        self.total_messages.div_ceil(self.generation_size)
    }

    /// Number of messages in generation `g` (the last may be short).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn len_of(&self, g: usize) -> usize {
        assert!(g < self.generation_count(), "generation {g} out of range");
        let start = g * self.generation_size;
        (self.total_messages - start).min(self.generation_size)
    }

    /// The global message indices `start..end` of generation `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn range_of(&self, g: usize) -> std::ops::Range<usize> {
        let start = g * self.generation_size;
        start..start + self.len_of(g)
    }

    /// The generation containing global message index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= total_messages`.
    pub fn generation_of(&self, i: usize) -> usize {
        assert!(i < self.total_messages, "message {i} out of range");
        i / self.generation_size
    }

    /// A fresh (empty) decoder for generation `g`.
    pub fn decoder_for(&self, g: usize) -> Decoder {
        Decoder::new(self.len_of(g), self.payload_bits)
    }

    /// The source's decoder for generation `g`, pre-loaded from the global
    /// message list.
    ///
    /// # Panics
    ///
    /// Panics if `messages.len() != total_messages` or a message has the wrong
    /// width.
    pub fn source_decoder_for(&self, g: usize, messages: &[BitVec]) -> Decoder {
        assert_eq!(messages.len(), self.total_messages, "message count mismatch");
        Decoder::with_messages(&messages[self.range_of(g)])
    }

    /// Per-packet coefficient overhead in bits (= generation size).
    pub fn coefficient_bits(&self) -> usize {
        self.generation_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let p = GenerationPlan::new(12, 4, 8);
        assert_eq!(p.generation_count(), 3);
        for g in 0..3 {
            assert_eq!(p.len_of(g), 4);
        }
        assert_eq!(p.range_of(1), 4..8);
    }

    #[test]
    fn ragged_last_generation() {
        let p = GenerationPlan::new(10, 4, 8);
        assert_eq!(p.generation_count(), 3);
        assert_eq!(p.len_of(2), 2);
        assert_eq!(p.range_of(2), 8..10);
    }

    #[test]
    fn generation_of_inverts_range_of() {
        let p = GenerationPlan::new(10, 3, 8);
        for i in 0..10 {
            let g = p.generation_of(i);
            assert!(p.range_of(g).contains(&i));
        }
    }

    #[test]
    fn single_generation_when_size_exceeds_total() {
        let p = GenerationPlan::new(5, 100, 8);
        assert_eq!(p.generation_count(), 1);
        assert_eq!(p.len_of(0), 5);
    }

    #[test]
    fn decoders_have_matching_dimensions() {
        let p = GenerationPlan::new(10, 4, 16);
        let d = p.decoder_for(2);
        assert_eq!(d.k(), 2);
        assert_eq!(d.payload_bits(), 16);
    }

    #[test]
    fn source_decoder_contains_generation_messages() {
        let msgs: Vec<BitVec> = (0..10u64).map(|i| BitVec::from_u64(i, 8)).collect();
        let p = GenerationPlan::new(10, 4, 8);
        let d = p.source_decoder_for(1, &msgs);
        assert!(d.can_decode());
        assert_eq!(d.decode().unwrap(), msgs[4..8].to_vec());
    }

    #[test]
    fn coefficient_bits_is_generation_size() {
        let p = GenerationPlan::new(1000, 10, 8);
        assert_eq!(p.coefficient_bits(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn len_of_out_of_range_panics() {
        let p = GenerationPlan::new(4, 2, 8);
        let _ = p.len_of(2);
    }
}
