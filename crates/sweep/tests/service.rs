//! End-to-end tests of the line-oriented scenario server: the happy-path
//! submit → stream → summary round trip, and the edge cases the wire
//! contract promises — malformed lines produce typed errors without
//! killing the loop, cancellation drains cleanly, and concurrent sweeps
//! interleave under correct handles.

use mini_json::Json;
use std::io::{BufReader, Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;
use sweep::SweepPool;

// --- a duplex harness: the test drives the server line by line -----------

/// Feeds the server lines sent over a channel; EOF when the sender drops.
struct ChanReader {
    rx: Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for ChanReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.buf.len() {
            match self.rx.recv() {
                Ok(line) => {
                    self.buf = line.into_bytes();
                    self.buf.push(b'\n');
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // sender dropped: EOF
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Forwards each complete response line back to the test over a channel.
struct ChanWriter {
    tx: Sender<String>,
    pending: Vec<u8>,
}

impl Write for ChanWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.pending.extend_from_slice(bytes);
        while let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.pending.drain(..=nl).collect();
            let line =
                String::from_utf8(line[..line.len() - 1].to_vec()).expect("server wrote non-UTF-8");
            let _ = self.tx.send(line);
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A served session: send request lines with [`Session::send`], read tagged
/// response lines with [`Session::recv`]; dropping the request sender ends
/// intake and drains the server.
struct Session {
    requests: Option<Sender<String>>,
    responses: Receiver<String>,
    server: Option<std::thread::JoinHandle<()>>,
}

impl Session {
    fn start(pool: SweepPool) -> Session {
        let (req_tx, req_rx) = channel::<String>();
        let (resp_tx, resp_rx) = channel::<String>();
        let server = std::thread::spawn(move || {
            let reader = BufReader::new(ChanReader { rx: req_rx, buf: Vec::new(), pos: 0 });
            let writer = ChanWriter { tx: resp_tx, pending: Vec::new() };
            sweep::serve(reader, writer, pool);
        });
        Session { requests: Some(req_tx), responses: resp_rx, server: Some(server) }
    }

    fn send(&self, line: &str) {
        self.requests.as_ref().expect("session closed").send(line.to_string()).unwrap();
    }

    fn recv(&self) -> Json {
        let line =
            self.responses.recv_timeout(Duration::from_secs(120)).expect("server went silent");
        Json::parse(&line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"))
    }

    /// Receives until a response of `kind` arrives, returning it and the
    /// others seen on the way (a sweep may stream outcomes in between).
    fn recv_until(&self, kind: &str) -> (Json, Vec<Json>) {
        let mut skipped = Vec::new();
        loop {
            let resp = self.recv();
            if resp.get("type").and_then(Json::as_str) == Some(kind) {
                return (resp, skipped);
            }
            skipped.push(resp);
        }
    }

    /// Ends intake (EOF) and joins the server, returning every remaining
    /// response line.
    fn finish(mut self) -> Vec<Json> {
        drop(self.requests.take());
        self.server.take().expect("already finished").join().expect("server panicked");
        let mut rest = Vec::new();
        while let Ok(line) = self.responses.try_recv() {
            rest.push(Json::parse(&line).expect("unparseable response"));
        }
        rest
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        drop(self.requests.take());
        if let Some(server) = self.server.take() {
            let _ = server.join();
        }
    }
}

fn kind(resp: &Json) -> &str {
    resp.get("type").and_then(Json::as_str).unwrap_or("<untyped>")
}

const TINY_SUBMIT: &str = r#"{"type":"submit_sweep","id":42,"scenario":{"topology":{"kind":"path","n":8},"workload":{"kind":"decay","payload":7}},"seed_range":{"start":0,"end":6}}"#;

// --- the tests ------------------------------------------------------------

/// The full happy path: submit_ok (with the handle) precedes the stream,
/// one outcome line per job arrives, and sweep_done carries a summary whose
/// aggregates equal the serial sweep's.
#[test]
fn submit_streams_outcomes_and_a_matching_summary() {
    let session = Session::start(SweepPool::new().workers(2));
    session.send(TINY_SUBMIT);
    let first = session.recv();
    assert_eq!(kind(&first), "submit_ok");
    assert_eq!(first.get("id").and_then(Json::as_u64), Some(42));
    assert_eq!(first.get("jobs").and_then(Json::as_u64), Some(6));
    let sweep = first.get("sweep").and_then(Json::as_u64).expect("no handle");

    let (done, outcomes) = session.recv_until("sweep_done");
    assert_eq!(outcomes.len(), 6);
    let mut orders: Vec<u64> = outcomes
        .iter()
        .map(|o| {
            assert_eq!(kind(o), "outcome");
            assert_eq!(o.get("sweep").and_then(Json::as_u64), Some(sweep));
            assert_eq!(o.get("label").and_then(Json::as_str), Some("path(8)/decay"));
            o.get("order").and_then(Json::as_u64).expect("outcome without order")
        })
        .collect();
    orders.sort_unstable();
    assert_eq!(orders, (0..6).collect::<Vec<_>>());

    assert_eq!(done.get("cancelled").and_then(Json::as_bool), Some(false));
    assert_eq!(done.get("completed").and_then(Json::as_u64), Some(6));

    // The streamed summary's aggregates are the serial sweep's.
    let serial = broadcast::Scenario::new(
        broadcast::TopologySpec::Path { n: 8 },
        broadcast::Workload::Baseline(broadcast::Algo::Decay { payload: 7 }),
    )
    .seeds(0..6);
    let digest = &done.get("summary").and_then(Json::as_arr).expect("no summary")[0];
    assert_eq!(digest.get("label").and_then(Json::as_str), Some("path(8)/decay"));
    assert_eq!(digest.get("runs").and_then(Json::as_u64), Some(6));
    assert_eq!(digest.get("worst_rounds").and_then(Json::as_u64), serial.worst_rounds());
    assert_eq!(digest.get("best_rounds").and_then(Json::as_u64), serial.best_rounds());
    assert_eq!(digest.get("mean_rounds").and_then(Json::as_f64), serial.mean_rounds());
}

/// A malformed line produces a typed `malformed_json` error and the loop
/// keeps serving: the very next request round-trips normally.
#[test]
fn malformed_json_is_survivable() {
    let session = Session::start(SweepPool::new().workers(1));
    session.send("{this is not json");
    let err = session.recv();
    assert_eq!(kind(&err), "error");
    assert_eq!(err.get("code").and_then(Json::as_str), Some("malformed_json"));

    session.send(TINY_SUBMIT);
    let ok = session.recv();
    assert_eq!(kind(&ok), "submit_ok");
    let (done, _) = session.recv_until("sweep_done");
    assert_eq!(done.get("completed").and_then(Json::as_u64), Some(6));
}

/// Semantic errors are typed too, echo the request id, and never kill the
/// loop: unknown request types, unknown sweep handles, unsupported
/// workloads.
#[test]
fn bad_requests_are_typed_and_survivable() {
    let session = Session::start(SweepPool::new().workers(1));
    session.send(r#"{"type":"warp","id":5}"#);
    let err = session.recv();
    assert_eq!(kind(&err), "error");
    assert_eq!(err.get("code").and_then(Json::as_str), Some("bad_request"));
    assert_eq!(err.get("id").and_then(Json::as_u64), Some(5));

    session.send(r#"{"type":"status","id":6,"sweep":999}"#);
    let err = session.recv();
    assert_eq!(err.get("code").and_then(Json::as_str), Some("bad_request"));
    assert_eq!(err.get("id").and_then(Json::as_u64), Some(6));

    session.send(
        r#"{"type":"submit_sweep","id":7,"scenario":{"topology":{"kind":"path","n":4},"workload":{"kind":"multi_known"}},"seeds":[0]}"#,
    );
    let err = session.recv();
    assert_eq!(err.get("code").and_then(Json::as_str), Some("unsupported"));

    session.send(TINY_SUBMIT);
    assert_eq!(kind(&session.recv()), "submit_ok");
    session.recv_until("sweep_done");
}

/// Cancelling a running sweep drains it cleanly: cancel_ok answers, the
/// stream stops early, and sweep_done reports `cancelled: true` with
/// exactly as many completions as outcome lines were streamed.
#[test]
fn cancel_mid_sweep_drains_cleanly() {
    let session = Session::start(SweepPool::new().workers(2));
    // 500 corridor jobs: long enough that the cancel (sent after the second
    // outcome line) always lands mid-flight.
    session.send(
        r#"{"type":"submit_sweep","id":1,"scenario":{"topology":{"kind":"cluster_chain","clusters":20,"size":6},"workload":{"kind":"single","payload":9}},"seed_range":{"start":0,"end":500}}"#,
    );
    let first = session.recv();
    assert_eq!(kind(&first), "submit_ok");
    let sweep = first.get("sweep").and_then(Json::as_u64).unwrap();
    let mut streamed = 0u64;
    while streamed < 2 {
        let resp = session.recv();
        assert_eq!(kind(&resp), "outcome");
        streamed += 1;
    }
    session.send(&format!(r#"{{"type":"cancel","id":2,"sweep":{sweep}}}"#));
    let (cancel_ok, outcomes_meanwhile) = session.recv_until("cancel_ok");
    assert_eq!(cancel_ok.get("id").and_then(Json::as_u64), Some(2));
    streamed += outcomes_meanwhile.len() as u64;

    let (done, late_outcomes) = session.recv_until("sweep_done");
    streamed += late_outcomes.len() as u64;
    assert_eq!(done.get("cancelled").and_then(Json::as_bool), Some(true));
    let completed = done.get("completed").and_then(Json::as_u64).unwrap();
    assert_eq!(completed, streamed, "every completed job must have streamed");
    assert!(completed < 500, "cancellation never took effect");

    // After the drain, status reports the sweep done-and-cancelled, and
    // results returns the partial summary.
    session.send(&format!(r#"{{"type":"status","id":3,"sweep":{sweep}}}"#));
    let status = session.recv();
    assert_eq!(kind(&status), "status_ok");
    assert_eq!(status.get("done").and_then(Json::as_bool), Some(true));
    assert_eq!(status.get("cancelled").and_then(Json::as_bool), Some(true));
    assert_eq!(status.get("completed").and_then(Json::as_u64), Some(completed));

    session.send(&format!(r#"{{"type":"results","id":4,"sweep":{sweep}}}"#));
    let results = session.recv();
    assert_eq!(kind(&results), "results_ok");
    let digest = &results.get("summary").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(digest.get("runs").and_then(Json::as_u64), Some(completed));
}

/// Mid-flight, `status` answers with live progress and `results` is a typed
/// not-finished error.
#[test]
fn status_and_results_answer_mid_flight() {
    let session = Session::start(SweepPool::new().workers(2));
    session.send(
        r#"{"type":"submit_sweep","id":1,"scenario":{"topology":{"kind":"cluster_chain","clusters":20,"size":6},"workload":{"kind":"single","payload":9}},"seed_range":{"start":0,"end":500}}"#,
    );
    let first = session.recv();
    let sweep = first.get("sweep").and_then(Json::as_u64).unwrap();
    assert_eq!(kind(&session.recv()), "outcome"); // the sweep is in flight

    session.send(&format!(r#"{{"type":"status","id":2,"sweep":{sweep}}}"#));
    let (status, _) = session.recv_until("status_ok");
    assert_eq!(status.get("done").and_then(Json::as_bool), Some(false));
    assert_eq!(status.get("total").and_then(Json::as_u64), Some(500));

    session.send(&format!(r#"{{"type":"results","id":3,"sweep":{sweep}}}"#));
    let (err, _) = session.recv_until("error");
    assert_eq!(err.get("code").and_then(Json::as_str), Some("bad_request"));
    assert_eq!(err.get("id").and_then(Json::as_u64), Some(3));

    session.send(&format!(r#"{{"type":"cancel","id":4,"sweep":{sweep}}}"#));
    session.recv_until("sweep_done");
}

/// Two sweeps submitted back to back run concurrently: their outcome lines
/// may interleave but every line is tagged with its sweep handle, both
/// handles are distinct, and each stream completes exactly its own jobs.
#[test]
fn concurrent_sweeps_interleave_under_correct_handles() {
    let session = Session::start(SweepPool::new().workers(2));
    session.send(
        r#"{"type":"submit_sweep","id":100,"scenario":{"topology":{"kind":"path","n":8},"workload":{"kind":"decay","payload":1}},"seed_range":{"start":0,"end":20}}"#,
    );
    session.send(
        r#"{"type":"submit_sweep","id":200,"scenario":{"topology":{"kind":"star","n":9},"workload":{"kind":"decay","payload":2}},"seed_range":{"start":0,"end":30}}"#,
    );
    let mut responses = session.finish();
    // Both submit_oks arrive (in request order — the loop acks before
    // spawning), with distinct handles, echoing their request ids.
    let submit_oks: Vec<&Json> = responses.iter().filter(|r| kind(r) == "submit_ok").collect();
    assert_eq!(submit_oks.len(), 2);
    assert_eq!(submit_oks[0].get("id").and_then(Json::as_u64), Some(100));
    assert_eq!(submit_oks[1].get("id").and_then(Json::as_u64), Some(200));
    let first = submit_oks[0].get("sweep").and_then(Json::as_u64).unwrap();
    let second = submit_oks[1].get("sweep").and_then(Json::as_u64).unwrap();
    assert_ne!(first, second);

    // Every outcome line is tagged; per-handle counts and labels are exact.
    let count = |sweep: u64, label: &str| {
        responses
            .iter()
            .filter(|r| kind(r) == "outcome")
            .filter(|r| r.get("sweep").and_then(Json::as_u64) == Some(sweep))
            .inspect(|r| assert_eq!(r.get("label").and_then(Json::as_str), Some(label)))
            .count()
    };
    assert_eq!(count(first, "path(8)/decay"), 20);
    assert_eq!(count(second, "star(9)/decay"), 30);

    // Both sweeps drained to their sweep_done on EOF.
    responses.retain(|r| kind(r) == "sweep_done");
    assert_eq!(responses.len(), 2);
    for done in &responses {
        assert_eq!(done.get("cancelled").and_then(Json::as_bool), Some(false));
    }
}
