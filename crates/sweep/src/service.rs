//! Layer 2: the long-running scenario server.
//!
//! [`serve`] reads one request per line from a reader, answers one tagged
//! JSON object per line on a writer, and runs sweeps on a [`SweepPool`] —
//! each `submit_sweep` on its own scoped thread, so the request loop stays
//! responsive to `status`/`cancel`/`results` (and further submits) while
//! sweeps run. Production wires stdin/stdout; tests wire byte buffers and
//! pipes.
//!
//! Response lines, all tagged with `type`:
//!
//! * `submit_ok {id, sweep, jobs}` — the sweep handle, written **before**
//!   the first outcome so a client can always correlate the stream.
//! * `outcome {sweep, scenario, label, order, seed, completed,
//!   completion_round, cap, rounds, deliveries, collisions}` — one per
//!   finished job, in execution order (arbitrary under stealing; `order`
//!   is the serial position).
//! * `sweep_done {sweep, cancelled, completed, total, summary}` — the end
//!   of a sweep's stream; `summary` holds one merged-matrix digest per
//!   scenario, computed from the shard-merged [`SeedMatrix`]es (so its
//!   aggregates are exactly the serial sweep's).
//! * `status_ok {id, sweep, total, completed, done, cancelled}`,
//!   `cancel_ok {id, sweep}`, `results_ok {id, sweep, summary}` — control
//!   answers.
//! * `error {id?, code, text}` — see [`crate::protocol`]; the loop never
//!   dies on a bad line.
//!
//! EOF on the reader ends intake; in-flight sweeps drain to their
//! `sweep_done` lines before [`serve`] returns (the scope join).

use crate::executor::{SweepObserver, SweepPool, SweepProduct};
use crate::protocol::{parse_request, Request, RequestError};
use broadcast::{Outcome, Scenario, SeedMatrix, SweepJob};
use mini_json::Json;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shared per-sweep state: the request loop reads it for `status`/`results`
/// and flips `cancel`; the sweep's runner thread updates the rest.
#[derive(Debug)]
struct SweepState {
    total: usize,
    completed: AtomicUsize,
    cancel: AtomicBool,
    done: AtomicBool,
    was_cancelled: AtomicBool,
    summary: Mutex<Option<Json>>,
}

impl SweepState {
    fn new(total: usize) -> Self {
        SweepState {
            total,
            completed: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            done: AtomicBool::new(false),
            was_cancelled: AtomicBool::new(false),
            summary: Mutex::new(None),
        }
    }
}

/// Writes one response line and flushes it — a line is the protocol's unit
/// of progress, so a client must never wait on a buffered partial line.
fn send<W: Write>(writer: &Mutex<W>, response: &Json) {
    let mut w = writer.lock().expect("service writer poisoned");
    // An I/O error on the response channel (client hung up) is terminal
    // for the stream but not for in-flight sweeps; drop the line.
    let _ = writeln!(w, "{response}");
    let _ = w.flush();
}

/// Streams a running sweep onto the wire and relays cancellation.
struct StreamObserver<'a, W: Write> {
    sweep: u64,
    state: &'a SweepState,
    writer: &'a Mutex<W>,
}

impl<W: Write + Send> SweepObserver for StreamObserver<'_, W> {
    fn outcome(&self, job: SweepJob, scenario: &Scenario, outcome: &Outcome) {
        self.state.completed.fetch_add(1, Ordering::SeqCst);
        send(self.writer, &outcome_json(self.sweep, job, scenario, outcome));
    }

    fn cancelled(&self) -> bool {
        self.state.cancel.load(Ordering::SeqCst)
    }
}

/// One `outcome` response line.
fn outcome_json(sweep: u64, job: SweepJob, scenario: &Scenario, outcome: &Outcome) -> Json {
    Json::obj([
        ("type", Json::from("outcome")),
        ("sweep", Json::from(sweep)),
        ("scenario", Json::from(job.scenario)),
        ("label", Json::from(scenario.label())),
        ("order", Json::from(job.order)),
        ("seed", Json::from(job.seed)),
        ("completed", Json::from(outcome.completion_round.is_some())),
        ("completion_round", outcome.completion_round.map_or(Json::Null, Json::from)),
        ("cap", Json::from(outcome.cap)),
        ("rounds", Json::from(outcome.stats.rounds)),
        ("deliveries", Json::from(outcome.stats.deliveries)),
        ("collisions", Json::from(outcome.stats.collisions)),
    ])
}

/// One merged-matrix digest of the final summary (one per scenario).
fn matrix_json(matrix: &SeedMatrix) -> Json {
    Json::obj([
        ("label", Json::from(matrix.label.clone())),
        ("runs", Json::from(matrix.len())),
        ("failures", Json::from(matrix.failures())),
        ("all_within_caps", Json::from(matrix.all_within_caps())),
        ("best_rounds", matrix.best_rounds().map_or(Json::Null, Json::from)),
        ("median_rounds", matrix.median_rounds().map_or(Json::Null, Json::from)),
        ("p95_rounds", matrix.p95_rounds().map_or(Json::Null, Json::from)),
        ("worst_rounds", matrix.worst_rounds().map_or(Json::Null, Json::from)),
        ("mean_rounds", matrix.mean_rounds().map_or(Json::Null, Json::from)),
    ])
}

/// Runs one submitted sweep to its `sweep_done` line (the body of a sweep's
/// runner thread).
fn run_sweep<W: Write + Send>(
    sweep: u64,
    product: SweepProduct,
    pool: SweepPool,
    state: &SweepState,
    writer: &Mutex<W>,
) {
    let observer = StreamObserver { sweep, state, writer };
    let matrices = pool.run_observed(&product, &observer);
    let cancelled = state.cancel.load(Ordering::SeqCst);
    let summary = Json::from(matrices.iter().map(matrix_json).collect::<Vec<_>>());
    *state.summary.lock().expect("sweep summary poisoned") = Some(summary.clone());
    state.was_cancelled.store(cancelled, Ordering::SeqCst);
    state.done.store(true, Ordering::SeqCst);
    send(
        writer,
        &Json::obj([
            ("type", Json::from("sweep_done")),
            ("sweep", Json::from(sweep)),
            ("cancelled", Json::from(cancelled)),
            ("completed", Json::from(state.completed.load(Ordering::SeqCst))),
            ("total", Json::from(state.total)),
            ("summary", summary),
        ]),
    );
}

/// A `status_ok` snapshot of a sweep.
fn status_json(id: u64, sweep: u64, state: &SweepState) -> Json {
    Json::obj([
        ("type", Json::from("status_ok")),
        ("id", Json::from(id)),
        ("sweep", Json::from(sweep)),
        ("total", Json::from(state.total)),
        ("completed", Json::from(state.completed.load(Ordering::SeqCst))),
        ("done", Json::from(state.done.load(Ordering::SeqCst))),
        ("cancelled", Json::from(state.was_cancelled.load(Ordering::SeqCst))),
    ])
}

/// Serves requests from `reader` until EOF, answering on `writer`, running
/// sweeps on `pool`. Returns once intake has ended **and** every in-flight
/// sweep has drained to its `sweep_done` line. See the module docs for the
/// wire protocol.
pub fn serve<R: BufRead, W: Write + Send>(reader: R, writer: W, pool: SweepPool) {
    let writer = Mutex::new(writer);
    // Only the request loop touches the registry; runner threads hold their
    // own `Arc` into it.
    let mut sweeps: HashMap<u64, Arc<SweepState>> = HashMap::new();
    let mut next_sweep: u64 = 1;

    std::thread::scope(|scope| {
        for line in reader.lines() {
            let line = match line {
                Ok(line) => line,
                Err(_) => break, // reader died: treat as EOF
            };
            if line.trim().is_empty() {
                continue;
            }
            match parse_request(&line) {
                Err(err) => send(&writer, &err.to_response()),
                Ok(Request::SubmitSweep { id, product }) => {
                    let sweep = next_sweep;
                    next_sweep += 1;
                    let state = Arc::new(SweepState::new(product.job_count()));
                    sweeps.insert(sweep, Arc::clone(&state));
                    // submit_ok goes out before the runner spawns, so the
                    // handle always precedes the sweep's first outcome line.
                    send(
                        &writer,
                        &Json::obj([
                            ("type", Json::from("submit_ok")),
                            ("id", Json::from(id)),
                            ("sweep", Json::from(sweep)),
                            ("jobs", Json::from(product.job_count())),
                        ]),
                    );
                    let writer = &writer;
                    scope.spawn(move || run_sweep(sweep, product, pool, &state, writer));
                }
                Ok(Request::Status { id, sweep }) => match sweeps.get(&sweep) {
                    Some(state) => send(&writer, &status_json(id, sweep, state)),
                    None => send(&writer, &unknown_sweep(id, sweep)),
                },
                Ok(Request::Cancel { id, sweep }) => match sweeps.get(&sweep) {
                    Some(state) => {
                        state.cancel.store(true, Ordering::SeqCst);
                        send(
                            &writer,
                            &Json::obj([
                                ("type", Json::from("cancel_ok")),
                                ("id", Json::from(id)),
                                ("sweep", Json::from(sweep)),
                            ]),
                        );
                    }
                    None => send(&writer, &unknown_sweep(id, sweep)),
                },
                Ok(Request::Results { id, sweep }) => match sweeps.get(&sweep) {
                    None => send(&writer, &unknown_sweep(id, sweep)),
                    Some(state) => {
                        let summary = state.summary.lock().expect("sweep summary poisoned");
                        match summary.as_ref() {
                            Some(summary) => send(
                                &writer,
                                &Json::obj([
                                    ("type", Json::from("results_ok")),
                                    ("id", Json::from(id)),
                                    ("sweep", Json::from(sweep)),
                                    ("summary", summary.clone()),
                                ]),
                            ),
                            None => send(
                                &writer,
                                &RequestError {
                                    code: "bad_request",
                                    text: format!("sweep {sweep} has not finished"),
                                    id: Some(id),
                                }
                                .to_response(),
                            ),
                        }
                    }
                },
            }
        }
        // Scope exit joins every runner: EOF drains in-flight sweeps.
    });
}

/// The `error` line for a handle the server never issued.
fn unknown_sweep(id: u64, sweep: u64) -> Json {
    RequestError {
        code: "bad_request",
        text: format!("unknown sweep handle {sweep}"),
        id: Some(id),
    }
    .to_response()
}
