//! # sweep — the sharded sweep service
//!
//! Every run through the [`broadcast::Scenario`] facade is deterministic and
//! isolated, which makes seed sweeps embarrassingly parallel — yet until
//! this crate they ran serially on one core. `sweep` turns the repo from a
//! batch reproduction into a serving system, in two layers:
//!
//! * **Layer 1 — [`executor`]:** a work-stealing pool on
//!   `std::thread`/`std::sync` ([`SweepPool`]) that fans a
//!   `(TopologySpec × Params × Workload × FaultPlan) × seeds` product
//!   ([`SweepProduct`]) out as independent `Scenario` runs. Each worker
//!   folds its outcomes into shard-local [`SeedMatrix`]es;
//!   [`SeedMatrix::merge`] recombines the shards into a result
//!   **bit-identical to the serial sweep** regardless of worker count or
//!   steal order.
//! * **Layer 2 — [`service`]:** a long-running line-oriented JSON
//!   request/response loop over any reader/writer pair (stdin/stdout in
//!   production) in the maelstrom style: tagged requests
//!   (`submit_sweep`, `status`, `cancel`, `results`), streamed per-outcome
//!   response lines, and a final merged-matrix summary per sweep. The wire
//!   format is hand-rolled over the vendored `mini_json` (the build image
//!   is offline — no serde).
//!
//! ```
//! use broadcast::{Algo, Scenario, TopologySpec, Workload};
//! use sweep::{SweepPool, SweepProduct};
//!
//! let product = SweepProduct::new()
//!     .scenario(Scenario::new(
//!         TopologySpec::Path { n: 12 },
//!         Workload::Baseline(Algo::Decay { payload: 1 }),
//!     ))
//!     .seeds(0..8);
//! let parallel = SweepPool::new().workers(4).run(&product);
//! let serial = product.scenario_list()[0].seeds(0..8);
//! assert_eq!(format!("{parallel:?}"), format!("{:?}", vec![serial]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executor;
pub mod protocol;
pub mod service;

pub use broadcast::{SeedMatrix, SweepJob};
pub use executor::{cross, SweepObserver, SweepPool, SweepProduct};
pub use protocol::{Request, RequestError};
pub use service::serve;
