//! The line-oriented JSON wire protocol of the scenario server.
//!
//! One request per line, one tagged JSON object per response line — the
//! maelstrom/`telephone_line` shape, minus node routing (this server *is*
//! the single node). Requests:
//!
//! | `type` | fields | effect |
//! |---|---|---|
//! | `submit_sweep` | `id`, `scenario` or `scenarios`, `seeds` or `seed_range` | start a sweep; streams `outcome` lines, ends with `sweep_done` |
//! | `status` | `id`, `sweep` | one `status_ok` snapshot |
//! | `cancel` | `id`, `sweep` | drain the sweep cleanly; `cancel_ok` |
//! | `results` | `id`, `sweep` | re-fetch a finished sweep's summary |
//!
//! A scenario object mirrors the [`broadcast::Scenario`] builder:
//!
//! ```json
//! {"topology": {"kind": "cluster_chain", "clusters": 20, "size": 6},
//!  "workload": {"kind": "single", "payload": 57005},
//!  "faults": {"erasure": 0.1},
//!  "round_cap": 100000, "fec_repair": 2, "source": 0}
//! ```
//!
//! Unknown request types, missing fields and out-of-range values produce a
//! typed `error` response (`code`: `malformed_json` | `bad_request` |
//! `unsupported`) and the loop keeps serving — a wire client can never kill
//! the server with a bad line. Errors echo the request `id` whenever the
//! line parsed far enough to have one.

use crate::executor::SweepProduct;
use broadcast::{Algo, BatchMode, Scenario, TopologySpec, Workload};
use mini_json::Json;
use radio_sim::{CollisionMode, FaultPlan, NodeId};
use rlnc::gf2::BitVec;

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// `submit_sweep`: run `product`, streaming outcomes.
    SubmitSweep {
        /// Client-chosen request id, echoed in `submit_ok`.
        id: u64,
        /// The scenarios × seeds to run.
        product: SweepProduct,
    },
    /// `status`: snapshot a sweep's progress.
    Status {
        /// Client-chosen request id.
        id: u64,
        /// Server-assigned sweep handle (from `submit_ok`).
        sweep: u64,
    },
    /// `cancel`: drain a sweep cleanly.
    Cancel {
        /// Client-chosen request id.
        id: u64,
        /// Server-assigned sweep handle.
        sweep: u64,
    },
    /// `results`: re-fetch the final summary of a finished sweep.
    Results {
        /// Client-chosen request id.
        id: u64,
        /// Server-assigned sweep handle.
        sweep: u64,
    },
}

/// A request that could not be served, with the wire error code the
/// response line carries.
#[derive(Clone, Debug)]
pub struct RequestError {
    /// Wire error code: `malformed_json`, `bad_request` or `unsupported`.
    pub code: &'static str,
    /// Human-readable detail.
    pub text: String,
    /// The request id, when the line parsed far enough to have one.
    pub id: Option<u64>,
}

impl RequestError {
    fn bad(id: Option<u64>, text: impl Into<String>) -> Self {
        RequestError { code: "bad_request", text: text.into(), id }
    }

    fn unsupported(id: Option<u64>, text: impl Into<String>) -> Self {
        RequestError { code: "unsupported", text: text.into(), id }
    }

    /// Encodes the error as its wire response line.
    pub fn to_response(&self) -> Json {
        let mut pairs = vec![("type", Json::from("error"))];
        if let Some(id) = self.id {
            pairs.push(("id", Json::from(id)));
        }
        pairs.push(("code", Json::from(self.code)));
        pairs.push(("text", Json::from(self.text.clone())));
        Json::obj(pairs)
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = Json::parse(line).map_err(|e| RequestError {
        code: "malformed_json",
        text: e.to_string(),
        id: None,
    })?;
    let id = value.get("id").and_then(Json::as_u64);
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::bad(id, "missing string field 'type'"))?;
    let id = id.ok_or_else(|| RequestError::bad(None, "missing u64 field 'id'"))?;
    match kind {
        "submit_sweep" => {
            let product = parse_product(&value, id)?;
            Ok(Request::SubmitSweep { id, product })
        }
        "status" | "cancel" | "results" => {
            let sweep = value
                .get("sweep")
                .and_then(Json::as_u64)
                .ok_or_else(|| RequestError::bad(Some(id), "missing u64 field 'sweep'"))?;
            Ok(match kind {
                "status" => Request::Status { id, sweep },
                "cancel" => Request::Cancel { id, sweep },
                _ => Request::Results { id, sweep },
            })
        }
        other => Err(RequestError::bad(Some(id), format!("unknown request type '{other}'"))),
    }
}

/// Decodes the scenarios × seeds of a `submit_sweep`.
fn parse_product(value: &Json, id: u64) -> Result<SweepProduct, RequestError> {
    let mut scenarios = Vec::new();
    match (value.get("scenario"), value.get("scenarios")) {
        (Some(one), None) => scenarios.push(parse_scenario(one, id)?),
        (None, Some(many)) => {
            let items = many
                .as_arr()
                .ok_or_else(|| RequestError::bad(Some(id), "'scenarios' must be an array"))?;
            for item in items {
                scenarios.push(parse_scenario(item, id)?);
            }
        }
        _ => {
            return Err(RequestError::bad(
                Some(id),
                "provide exactly one of 'scenario' or 'scenarios'",
            ))
        }
    }
    if scenarios.is_empty() {
        return Err(RequestError::bad(Some(id), "'scenarios' must not be empty"));
    }
    let seeds = parse_seeds(value, id)?;
    if seeds.is_empty() {
        return Err(RequestError::bad(Some(id), "the seed sequence must not be empty"));
    }
    Ok(SweepProduct::new().scenarios(scenarios).seeds(seeds))
}

/// Decodes `"seeds": [..]` (explicit list — the shape
/// `Scenario::seeds(impl IntoIterator)` exists for) or
/// `"seed_range": {"start": a, "end": b}` (half-open).
fn parse_seeds(value: &Json, id: u64) -> Result<Vec<u64>, RequestError> {
    match (value.get("seeds"), value.get("seed_range")) {
        (Some(list), None) => {
            let items = list
                .as_arr()
                .ok_or_else(|| RequestError::bad(Some(id), "'seeds' must be an array"))?;
            items
                .iter()
                .map(|s| {
                    s.as_u64()
                        .ok_or_else(|| RequestError::bad(Some(id), "'seeds' entries must be u64"))
                })
                .collect()
        }
        (None, Some(range)) => {
            let get = |key: &str| {
                range.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    RequestError::bad(Some(id), format!("'seed_range.{key}' must be u64"))
                })
            };
            let (start, end) = (get("start")?, get("end")?);
            if end < start {
                return Err(RequestError::bad(Some(id), "'seed_range' end < start"));
            }
            if end - start > 1_000_000 {
                return Err(RequestError::bad(Some(id), "'seed_range' wider than 1e6 seeds"));
            }
            Ok((start..end).collect())
        }
        _ => Err(RequestError::bad(Some(id), "provide exactly one of 'seeds' or 'seed_range'")),
    }
}

/// Decodes one scenario object into a [`Scenario`] via the facade builder.
fn parse_scenario(value: &Json, id: u64) -> Result<Scenario, RequestError> {
    let topology = parse_topology(
        value.get("topology").ok_or_else(|| RequestError::bad(Some(id), "missing 'topology'"))?,
        id,
    )?;
    let workload = parse_workload(
        value.get("workload").ok_or_else(|| RequestError::bad(Some(id), "missing 'workload'"))?,
        id,
    )?;
    let mut scenario = Scenario::new(topology, workload);
    if let Some(source) = value.get("source") {
        let source =
            source.as_u64().ok_or_else(|| RequestError::bad(Some(id), "'source' must be u64"))?;
        scenario = scenario.source(NodeId::new(source as usize));
    }
    if let Some(cap) = value.get("round_cap") {
        let cap =
            cap.as_u64().ok_or_else(|| RequestError::bad(Some(id), "'round_cap' must be u64"))?;
        scenario = scenario.round_cap(cap);
    }
    if let Some(r) = value.get("fec_repair") {
        let r =
            r.as_u64().ok_or_else(|| RequestError::bad(Some(id), "'fec_repair' must be u64"))?;
        scenario = scenario.fec_repair(r as u32);
    }
    if let Some(mode) = value.get("collision_mode") {
        scenario = scenario.collision_mode(match mode.as_str() {
            Some("detection") => CollisionMode::Detection,
            Some("no_detection") => CollisionMode::NoDetection,
            _ => {
                return Err(RequestError::bad(
                    Some(id),
                    "'collision_mode' must be 'detection' or 'no_detection'",
                ))
            }
        });
    }
    if let Some(faults) = value.get("faults") {
        scenario = scenario.faults(parse_faults(faults, id)?);
    }
    Ok(scenario)
}

/// Decodes the topology spec. Every declarative family the facade offers is
/// reachable over the wire; only `custom` (a pre-built in-memory graph) is
/// inherently not.
fn parse_topology(value: &Json, id: u64) -> Result<TopologySpec, RequestError> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::bad(Some(id), "topology needs a string 'kind'"))?;
    let need = |key: &str| {
        value.get(key).and_then(Json::as_u64).map(|v| v as usize).ok_or_else(|| {
            RequestError::bad(Some(id), format!("topology '{kind}' needs u64 '{key}'"))
        })
    };
    let need_f = |key: &str| {
        value.get(key).and_then(Json::as_f64).ok_or_else(|| {
            RequestError::bad(Some(id), format!("topology '{kind}' needs number '{key}'"))
        })
    };
    let need_seed = |key: &str| {
        value.get(key).and_then(Json::as_u64).ok_or_else(|| {
            RequestError::bad(Some(id), format!("topology '{kind}' needs u64 '{key}'"))
        })
    };
    Ok(match kind {
        "path" => TopologySpec::Path { n: need("n")? },
        "grid" => TopologySpec::Grid { w: need("w")?, h: need("h")? },
        "star" => TopologySpec::Star { n: need("n")? },
        "cluster_chain" => {
            TopologySpec::ClusterChain { clusters: need("clusters")?, size: need("size")? }
        }
        "binary_tree" => TopologySpec::BinaryTree { n: need("n")? },
        "unit_disk" => TopologySpec::UnitDisk {
            n: need("n")?,
            radius: need_f("radius")?,
            graph_seed: need_seed("graph_seed")?,
        },
        "gnp" => TopologySpec::Gnp {
            n: need("n")?,
            p: need_f("p")?,
            graph_seed: need_seed("graph_seed")?,
        },
        "streamed_grid" => TopologySpec::StreamedGrid { w: need("w")?, h: need("h")? },
        "streamed_unit_disk" => TopologySpec::StreamedUnitDisk {
            n: need("n")?,
            radius: need_f("radius")?,
            graph_seed: need_seed("graph_seed")?,
        },
        "streamed_gnp" => TopologySpec::StreamedGnp {
            n: need("n")?,
            p: need_f("p")?,
            graph_seed: need_seed("graph_seed")?,
        },
        other => {
            return Err(RequestError::unsupported(
                Some(id),
                format!("topology kind '{other}' is not servable"),
            ))
        }
    })
}

/// Decodes the workload. `multi_known` is deliberately not servable: its
/// GST is built centrally from global topology knowledge, which a serving
/// front-end should not pretend to have.
fn parse_workload(value: &Json, id: u64) -> Result<Workload, RequestError> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::bad(Some(id), "workload needs a string 'kind'"))?;
    let payload = || {
        value.get("payload").and_then(Json::as_u64).ok_or_else(|| {
            RequestError::bad(Some(id), format!("workload '{kind}' needs u64 'payload'"))
        })
    };
    Ok(match kind {
        "single" => Workload::Single { payload: payload()? },
        "decay" => Workload::Baseline(Algo::Decay { payload: payload()? }),
        "mmv_decay" => {
            let noise = value.get("noise").and_then(Json::as_bool).unwrap_or(false);
            Workload::Baseline(Algo::MmvDecay { payload: payload()?, noise })
        }
        "multi_unknown" => {
            let bits = value.get("bits").and_then(Json::as_u64).unwrap_or(32) as usize;
            let messages = value
                .get("messages")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    RequestError::bad(Some(id), "'multi_unknown' needs a 'messages' array")
                })?
                .iter()
                .map(|m| {
                    m.as_u64().map(|v| BitVec::from_u64(v, bits)).ok_or_else(|| {
                        RequestError::bad(Some(id), "'messages' entries must be u64")
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            if messages.is_empty() {
                return Err(RequestError::bad(Some(id), "'messages' must not be empty"));
            }
            let batch = match value.get("batch") {
                None => BatchMode::FullK,
                Some(b) if b.as_str() == Some("full_k") => BatchMode::FullK,
                Some(b) => match b.get("generations").and_then(Json::as_u64) {
                    Some(g) if g > 0 => BatchMode::Generations(g as usize),
                    _ => {
                        return Err(RequestError::bad(
                            Some(id),
                            "'batch' must be \"full_k\" or {\"generations\": g>0}",
                        ))
                    }
                },
            };
            Workload::MultiUnknown { messages, batch }
        }
        "multi_known" => {
            return Err(RequestError::unsupported(
                Some(id),
                "workload 'multi_known' builds its GST from global topology \
                 knowledge and is not servable; run it through the Scenario \
                 facade directly",
            ))
        }
        other => {
            return Err(RequestError::unsupported(
                Some(id),
                format!("workload kind '{other}' is not servable"),
            ))
        }
    })
}

/// Decodes a fault-plan object onto [`FaultPlan`]'s builders.
fn parse_faults(value: &Json, id: u64) -> Result<FaultPlan, RequestError> {
    let mut plan = FaultPlan::none();
    if let Some(p) = value.get("erasure") {
        let p = p
            .as_f64()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| RequestError::bad(Some(id), "'erasure' must be in [0, 1]"))?;
        plan = plan.with_erasure(p);
    }
    if let Some(jammers) = value.get("jammers") {
        let items = jammers
            .as_arr()
            .ok_or_else(|| RequestError::bad(Some(id), "'jammers' must be an array"))?;
        for j in items {
            let get = |key: &str| {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| RequestError::bad(Some(id), format!("jammer needs u64 '{key}'")))
            };
            let (node, period) = (get("node")?, get("period")?);
            let offset = j.get("offset").and_then(Json::as_u64).unwrap_or(0);
            if period == 0 {
                return Err(RequestError::bad(Some(id), "jammer 'period' must be > 0"));
            }
            let node = u32::try_from(node)
                .map_err(|_| RequestError::bad(Some(id), "jammer 'node' must fit in u32"))?;
            plan = plan.with_jammer(node, period, offset);
        }
    }
    if let Some(churn) = value.get("churn") {
        let period = churn
            .get("period")
            .and_then(Json::as_u64)
            .filter(|p| *p > 0)
            .ok_or_else(|| RequestError::bad(Some(id), "'churn.period' must be u64 > 0"))?;
        let prob = |key: &str| {
            churn.get(key).and_then(Json::as_f64).filter(|p| (0.0..=1.0).contains(p)).ok_or_else(
                || RequestError::bad(Some(id), format!("'churn.{key}' must be in [0, 1]")),
            )
        };
        plan = plan.with_churn(period, prob("node_p")?, prob("edge_p")?);
    }
    if let Some(mobility) = value.get("mobility") {
        let radius = mobility
            .get("radius")
            .and_then(Json::as_f64)
            .filter(|r| *r > 0.0)
            .ok_or_else(|| RequestError::bad(Some(id), "'mobility.radius' must be > 0"))?;
        let epoch = mobility
            .get("epoch")
            .and_then(Json::as_u64)
            .filter(|e| *e > 0)
            .ok_or_else(|| RequestError::bad(Some(id), "'mobility.epoch' must be u64 > 0"))?;
        plan = plan.with_mobility(radius, epoch);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_submit() {
        let line = r#"{"type":"submit_sweep","id":7,
            "scenario":{"topology":{"kind":"cluster_chain","clusters":20,"size":6},
                        "workload":{"kind":"single","payload":41813},
                        "faults":{"erasure":0.1}},
            "seed_range":{"start":0,"end":8}}"#
            .replace('\n', " ");
        let Request::SubmitSweep { id, product } = parse_request(&line).unwrap() else {
            panic!("wrong request kind");
        };
        assert_eq!(id, 7);
        assert_eq!(product.seed_list(), (0..8).collect::<Vec<_>>());
        assert_eq!(product.scenario_list()[0].label(), "cluster_chain(20x6)/single+erase(0.1)");
    }

    #[test]
    fn parses_explicit_seed_lists_and_scenario_arrays() {
        let line = r#"{"type":"submit_sweep","id":1,
            "scenarios":[
              {"topology":{"kind":"path","n":8},"workload":{"kind":"decay","payload":1}},
              {"topology":{"kind":"grid","w":3,"h":3},
               "workload":{"kind":"multi_unknown","messages":[1,2],"batch":{"generations":2}}}],
            "seeds":[5,3,5]}"#
            .replace('\n', " ");
        let Request::SubmitSweep { product, .. } = parse_request(&line).unwrap() else {
            panic!("wrong request kind");
        };
        assert_eq!(product.scenario_list().len(), 2);
        assert_eq!(product.seed_list(), [5, 3, 5]);
        assert_eq!(product.job_count(), 6);
    }

    #[test]
    fn malformed_json_is_typed() {
        let err = parse_request("{not json").unwrap_err();
        assert_eq!(err.code, "malformed_json");
        assert!(err.to_response().to_string().contains("\"code\":\"malformed_json\""));
    }

    #[test]
    fn bad_requests_echo_the_id() {
        let err = parse_request(r#"{"type":"status","id":9}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert_eq!(err.id, Some(9));
        let err = parse_request(r#"{"type":"warp","id":3}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert_eq!(err.id, Some(3));
    }

    #[test]
    fn multi_known_is_rejected_as_unsupported() {
        let line = r#"{"type":"submit_sweep","id":2,
            "scenario":{"topology":{"kind":"path","n":4},
                        "workload":{"kind":"multi_known"}},
            "seeds":[0]}"#
            .replace('\n', " ");
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code, "unsupported");
    }

    #[test]
    fn control_requests_parse() {
        assert!(matches!(
            parse_request(r#"{"type":"status","id":1,"sweep":4}"#).unwrap(),
            Request::Status { id: 1, sweep: 4 }
        ));
        assert!(matches!(
            parse_request(r#"{"type":"cancel","id":2,"sweep":4}"#).unwrap(),
            Request::Cancel { id: 2, sweep: 4 }
        ));
        assert!(matches!(
            parse_request(r#"{"type":"results","id":3,"sweep":4}"#).unwrap(),
            Request::Results { id: 3, sweep: 4 }
        ));
    }

    #[test]
    fn fault_plan_fields_decode() {
        let line = r#"{"type":"submit_sweep","id":1,
            "scenario":{"topology":{"kind":"grid","w":4,"h":4},
                        "workload":{"kind":"single","payload":1},
                        "faults":{"erasure":0.2,
                                  "jammers":[{"node":3,"period":2,"offset":1}],
                                  "churn":{"period":8,"node_p":0.01,"edge_p":0.02},
                                  "mobility":{"radius":0.4,"epoch":16}}},
            "seeds":[1]}"#
            .replace('\n', " ");
        let Request::SubmitSweep { product, .. } = parse_request(&line).unwrap() else {
            panic!("wrong request kind");
        };
        let label = product.scenario_list()[0].label();
        assert!(label.contains("erase(0.2)"), "label: {label}");
        assert!(label.contains("jam("), "label: {label}");
    }

    #[test]
    fn seed_range_rejects_absurd_widths() {
        let line = r#"{"type":"submit_sweep","id":1,
            "scenario":{"topology":{"kind":"path","n":4},"workload":{"kind":"decay","payload":1}},
            "seed_range":{"start":0,"end":2000000}}"#
            .replace('\n', " ");
        assert_eq!(parse_request(&line).unwrap_err().code, "bad_request");
    }
}
