//! Layer 1: the work-stealing seed-matrix executor.
//!
//! A [`SweepProduct`] is a static job set — every `(scenario, seed)` pair,
//! each an independent deterministic [`Scenario`] run. [`SweepPool`] splits
//! the jobs into chunks, deals the chunks round-robin onto per-worker
//! deques, and lets idle workers steal from the back of a victim's deque
//! (owners pop from the front), so a straggling shard never idles the rest
//! of the pool. No work is ever *produced* at runtime, which keeps
//! termination trivial: a worker exits when every deque is empty.
//!
//! Determinism: each job's [`Outcome`] depends only on `(scenario, seed)`,
//! never on which worker ran it or when; workers fold outcomes into
//! shard-local [`SeedMatrix`]es tagged with serial positions, and
//! [`SeedMatrix::merge`] is order-invariant — so the merged result is
//! bit-identical to [`Scenario::seeds`] run serially, at every worker count
//! and under every steal interleaving. `tests/sweep_parallel.rs` pins this.

use broadcast::{Outcome, Scenario, SeedMatrix, SeedRun, SweepJob, TopologySpec, Workload};
use radio_sim::FaultPlan;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

/// The executor's input: a list of scenarios (each already binding a
/// topology, workload, params and fault plan) crossed with one seed
/// sequence. Build with the chainable setters, then hand to
/// [`SweepPool::run`].
#[derive(Clone, Debug, Default)]
pub struct SweepProduct {
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
}

impl SweepProduct {
    /// An empty product.
    pub fn new() -> Self {
        SweepProduct::default()
    }

    /// Adds one scenario to the product.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Adds several scenarios (e.g. the output of [`cross`]).
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.scenarios.extend(scenarios);
        self
    }

    /// Sets the seed sequence every scenario is swept over — a range
    /// (`0..64`) or an explicit list (what service requests carry).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The scenarios of the product, in submission order.
    pub fn scenario_list(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The seed sequence.
    pub fn seed_list(&self) -> &[u64] {
        &self.seeds
    }

    /// Number of jobs in the product (`scenarios × seeds`).
    pub fn job_count(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// Whether the product has no jobs.
    pub fn is_empty(&self) -> bool {
        self.job_count() == 0
    }

    /// Materializes the job list, scenario-major: all seeds of scenario 0,
    /// then all seeds of scenario 1, … — the order a serial sweep would run.
    pub fn jobs(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for scenario in 0..self.scenarios.len() {
            for (order, &seed) in self.seeds.iter().enumerate() {
                jobs.push(SweepJob { scenario, order: order as u64, seed });
            }
        }
        jobs
    }
}

/// Expands a `topologies × workloads × fault plans` cross product into the
/// scenario list of a [`SweepProduct`] — the bake-off shape: every
/// algorithm on every topology under every channel.
pub fn cross(
    topologies: &[TopologySpec],
    workloads: &[Workload],
    faults: &[FaultPlan],
) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(topologies.len() * workloads.len() * faults.len());
    for topo in topologies {
        for workload in workloads {
            for plan in faults {
                out.push(Scenario::new(topo.clone(), workload.clone()).faults(plan.clone()));
            }
        }
    }
    out
}

/// Hooks into a running sweep. All methods are called from worker threads.
pub trait SweepObserver: Sync {
    /// Called once per completed job, with the job's outcome. Outcomes
    /// arrive in execution order (arbitrary under stealing), tagged with
    /// their serial position via [`SweepJob::order`].
    fn outcome(&self, job: SweepJob, scenario: &Scenario, outcome: &Outcome) {
        let _ = (job, scenario, outcome);
    }

    /// Polled between jobs. Returning `true` drains the sweep cleanly:
    /// in-flight jobs finish (and are observed), no new job starts, and
    /// [`SweepPool::run_observed`] returns the merged partial matrices.
    fn cancelled(&self) -> bool {
        false
    }
}

/// The no-op observer ([`SweepPool::run`]).
impl SweepObserver for () {}

/// A work-stealing sweep pool over `std::thread`. Worker count defaults to
/// [`std::thread::available_parallelism`]; override with
/// [`SweepPool::workers`]. The pool holds no threads between runs — each
/// [`SweepPool::run`] spawns a scoped crew and joins it before returning.
#[derive(Clone, Copy, Debug)]
pub struct SweepPool {
    workers: Option<usize>,
}

impl Default for SweepPool {
    fn default() -> Self {
        SweepPool::new()
    }
}

impl SweepPool {
    /// A pool sized to the machine ([`std::thread::available_parallelism`]).
    pub fn new() -> Self {
        SweepPool { workers: None }
    }

    /// Overrides the worker count (the knob; clamped to at least 1). At one
    /// worker the pool runs the jobs inline on the calling thread — no
    /// spawning, same fold path, same result.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The worker count a run will use.
    pub fn worker_count(&self) -> usize {
        self.workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(1))
    }

    /// Runs the whole product and returns one merged [`SeedMatrix`] per
    /// scenario (in scenario order), bit-identical to calling
    /// [`Scenario::seeds`] on each scenario serially.
    pub fn run(&self, product: &SweepProduct) -> Vec<SeedMatrix> {
        self.run_observed(product, &())
    }

    /// [`SweepPool::run`] with per-outcome streaming and cancellation —
    /// what the service's submit loop drives. On cancellation the returned
    /// matrices hold exactly the jobs that completed (a clean drain, never
    /// a torn run).
    pub fn run_observed(
        &self,
        product: &SweepProduct,
        observer: &(impl SweepObserver + ?Sized),
    ) -> Vec<SeedMatrix> {
        let jobs = product.jobs();
        let workers = self.worker_count().min(jobs.len().max(1));
        let queues = deal_chunks(&jobs, workers);
        let shards: Vec<Vec<SeedMatrix>> = if workers <= 1 {
            vec![run_worker(0, product, &jobs, &queues, observer)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let (jobs, queues) = (&jobs, &queues);
                        scope.spawn(move || run_worker(w, product, jobs, queues, observer))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(shard) => shard,
                        // A worker panicking means a scenario run panicked;
                        // re-raise on the caller rather than return a hole.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };
        let mut merged: Vec<SeedMatrix> =
            product.scenarios.iter().map(|s| SeedMatrix::empty(s.label())).collect();
        for shard in shards {
            for (acc, part) in merged.iter_mut().zip(shard) {
                acc.merge(part);
            }
        }
        merged
    }
}

/// A contiguous slice of the job list — the unit that moves between deques.
type Chunk = Range<usize>;

/// Splits the job list into chunks and deals them round-robin onto one
/// deque per worker. Chunk size balances steal traffic (bigger chunks,
/// fewer lock hits) against balance (smaller chunks steal finer); with a
/// static job set, jobs/(workers·4) capped at 32 keeps several steals'
/// worth available even for short sweeps.
fn deal_chunks(jobs: &[SweepJob], workers: usize) -> Vec<Mutex<VecDeque<Chunk>>> {
    let chunk_size = (jobs.len() / (workers * 4)).clamp(1, 32);
    let queues: Vec<Mutex<VecDeque<Chunk>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, start) in (0..jobs.len()).step_by(chunk_size).enumerate() {
        let chunk = start..(start + chunk_size).min(jobs.len());
        queues[i % workers].lock().expect("sweep queue poisoned").push_back(chunk);
    }
    queues
}

/// One worker: drain the own deque from the front, then steal from the
/// back of the next non-empty victim's; exit when every deque is empty
/// (the job set is static — no new work ever appears) or the observer
/// cancels. Outcomes fold into shard-local matrices, one per scenario.
fn run_worker(
    me: usize,
    product: &SweepProduct,
    jobs: &[SweepJob],
    queues: &[Mutex<VecDeque<Chunk>>],
    observer: &(impl SweepObserver + ?Sized),
) -> Vec<SeedMatrix> {
    let scenarios = &product.scenarios;
    let mut shard: Vec<SeedMatrix> =
        scenarios.iter().map(|s| SeedMatrix::empty(s.label())).collect();
    // Worker-local prepared topologies, built lazily on first use: builds
    // are deterministic, so every worker's copy runs identically; streamed
    // topologies' neighborhood caches are single-threaded by design.
    let mut prepared: Vec<Option<broadcast::PreparedTopology>> = Vec::new();
    prepared.resize_with(scenarios.len(), || None);

    'drain: while !observer.cancelled() {
        let chunk = take_chunk(me, queues);
        let Some(chunk) = chunk else { break };
        for idx in chunk {
            if observer.cancelled() {
                break 'drain;
            }
            let job = jobs[idx];
            let scenario = &scenarios[job.scenario];
            let topo = prepared[job.scenario].get_or_insert_with(|| scenario.prepare());
            let outcome = scenario.run_seed(topo, job.seed);
            observer.outcome(job, scenario, &outcome);
            shard[job.scenario].runs.push(SeedRun { order: job.order, seed: job.seed, outcome });
        }
    }
    shard
}

/// Pops the next chunk: front of the own deque, else the back of the first
/// non-empty victim deque scanning from `me + 1` — the steal.
fn take_chunk(me: usize, queues: &[Mutex<VecDeque<Chunk>>]) -> Option<Chunk> {
    if let Some(chunk) = queues[me].lock().expect("sweep queue poisoned").pop_front() {
        return Some(chunk);
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Some(chunk) = queues[victim].lock().expect("sweep queue poisoned").pop_back() {
            return Some(chunk);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use broadcast::Algo;

    fn decay_path(n: usize) -> Scenario {
        Scenario::new(TopologySpec::Path { n }, Workload::Baseline(Algo::Decay { payload: 7 }))
    }

    /// The full-field comparison: `Debug` formatting covers every field of
    /// every outcome (plans, stats, audit, phases), so equal debug strings
    /// mean bit-identical matrices.
    fn assert_identical(a: &[SeedMatrix], b: &[SeedMatrix]) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn parallel_matches_serial_across_worker_counts() {
        let product =
            SweepProduct::new().scenario(decay_path(10)).scenario(decay_path(17)).seeds(0..12);
        let serial: Vec<SeedMatrix> =
            product.scenario_list().iter().map(|s| s.seeds(0..12)).collect();
        for workers in [1, 2, 3, 8] {
            let parallel = SweepPool::new().workers(workers).run(&product);
            assert_identical(&parallel, &serial);
        }
    }

    #[test]
    fn explicit_seed_lists_sweep_in_order() {
        let seeds = [9u64, 2, 9, 4]; // duplicates allowed: independent runs
        let product = SweepProduct::new().scenario(decay_path(8)).seeds(seeds.iter().copied());
        let parallel = SweepPool::new().workers(2).run(&product);
        let serial = product.scenario_list()[0].seeds(seeds.iter().copied());
        assert_identical(&parallel, &[serial]);
        assert_eq!(
            parallel[0].runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
            seeds.to_vec(),
            "runs must land in sweep order, not sorted-seed order"
        );
    }

    #[test]
    fn cross_expands_the_product() {
        let scenarios = cross(
            &[TopologySpec::Path { n: 6 }, TopologySpec::Star { n: 5 }],
            &[Workload::Baseline(Algo::Decay { payload: 1 }), Workload::Single { payload: 1 }],
            &[FaultPlan::none()],
        );
        assert_eq!(scenarios.len(), 4);
        let labels: Vec<String> = scenarios.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"path(6)/decay".to_string()));
        assert!(labels.contains(&"star(5)/single".to_string()));
    }

    #[test]
    fn empty_product_returns_empty_matrices() {
        let product = SweepProduct::new().scenario(decay_path(5));
        let out = SweepPool::new().workers(4).run(&product);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_empty());
    }

    #[test]
    fn cancellation_drains_cleanly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CancelAfter {
            seen: AtomicUsize,
            limit: usize,
        }
        impl SweepObserver for CancelAfter {
            fn outcome(&self, _: SweepJob, _: &Scenario, _: &Outcome) {
                self.seen.fetch_add(1, Ordering::SeqCst);
            }
            fn cancelled(&self) -> bool {
                self.seen.load(Ordering::SeqCst) >= self.limit
            }
        }
        let product = SweepProduct::new().scenario(decay_path(8)).seeds(0..64);
        let obs = CancelAfter { seen: AtomicUsize::new(0), limit: 5 };
        let out = SweepPool::new().workers(2).run_observed(&product, &obs);
        let ran = out[0].len();
        assert!(ran < 64, "cancellation never took effect");
        assert_eq!(ran, obs.seen.load(std::sync::atomic::Ordering::SeqCst));
        // The partial matrix is still a clean merge: orders strictly
        // ascending, every run complete.
        for pair in out[0].runs.windows(2) {
            assert!(pair[0].order < pair[1].order);
        }
    }

    #[test]
    fn worker_count_defaults_to_the_machine() {
        let pool = SweepPool::new();
        assert!(pool.worker_count() >= 1);
        assert_eq!(pool.workers(0).worker_count(), 1, "zero clamps to one");
        assert_eq!(pool.workers(7).worker_count(), 7);
    }
}
