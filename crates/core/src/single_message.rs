//! Single-message broadcast in `O(D + log^6 n)` rounds with collision
//! detection (Theorem 1.1) — run **adaptively** with phase-completion
//! detection.
//!
//! The pipeline follows the paper's proof:
//!
//! 1. **Collision-wave layering** (needs CD) — every node learns its BFS
//!    distance from the source;
//! 2. **Ring decomposition** — layers are grouped into rings of
//!    [`Params::adaptive_ring_width`] consecutive layers; ring `j`'s roots
//!    are its innermost layer;
//! 3. **Parallel per-ring distributed GST construction** — every ring builds
//!    a GST forest of its induced layering via
//!    [`crate::construction::GstConstructionNode`]; adjacent rings are
//!    interleaved on even/odd rounds
//!    ([`Slotted`](crate::construction::Slotted)-style), which removes the
//!    boundary interference the paper leaves implicit;
//! 4. **Ring-by-ring broadcast** — inside ring `j` the message is broadcast
//!    atop the GST with the schedule of Section 3.2 specialized to one
//!    message and keyed on ring-local *levels* (the Gasieniec–Peleg–Xin
//!    black-box role), then Decay hands the message from ring `j`'s outer
//!    boundary to ring `j+1`'s roots.
//!
//! ## Adaptive phase termination
//!
//! The paper sizes every phase by its worst-case `Θ(·)` formula and runs the
//! windows verbatim; a simulation can instead *detect* phase completion and
//! stop early without weakening the guarantee (the same observation the
//! optimal-broadcast follow-up, Andriambolamalala–Ravelomanana 2017, uses to
//! shave its additive term). Completion is signalled **in-model**, on the
//! radio channel itself: open-ended phases dedicate every
//! [`Params::beep_interval`]-th round as a *status round* in which exactly
//! the nodes with pending work transmit a content-free beep
//! ([`Ghk1Msg::Status`]) —
//!
//! * **wave** — a node beeps iff the frontier reached it since the previous
//!   status round; the phase ends [`Params::quiescence_slack`] silent status
//!   rounds after the frontier stops advancing;
//! * **construction** — blues beep while unassigned, reds while active, so
//!   quiescent rank blocks, epochs and recruiting tails are skipped; the
//!   phase ends when every ring's forest is quiescent;
//! * **broadcast / handoff** — a ring node beeps while uninformed; ring
//!   `j`'s window closes once the ring (in particular its outer boundary) is
//!   informed, and a handoff ends once ring `j+1`'s roots are informed.
//!
//! The driver that advances the shared phase cursor reads *only* the
//! channel-level outcome of status rounds ("did anybody transmit?"), never
//! node state or topology — it plays the part of the `O(D)`-round echo /
//! termination-detection subprotocol such adaptive algorithms run in-band,
//! with the echo cost folded into the status-round accounting. Nodes learn
//! the cursor through a shared [`Step`] cell, modelling the outcome of that
//! same echo; the [`radio_sim::Protocol`] trait stays pure and leaks no
//! topology.
//!
//! The worst case is still enforced: every phase is hard-capped by its
//! paper-sized window, and [`Ghk1Plan::total_rounds`] (the sum of all caps,
//! including the status-round overhead, still `O(D + log^6 n)`) bounds any
//! run — `tests/regression_rounds.rs` asserts it.

use crate::adaptive::{
    answer_cons_probe, cons_status_budget, drive_construction, vote_quiet, Advance, ConsDriver,
    ConsProbe, Ladder, Pacing, Segment, WindowEnd, HANDOFF_RETRIES,
};
use crate::construction::{ConstructionSchedule, GstConstructionNode, GstMsg};
use crate::decay::DecaySchedule;
use crate::layering::{Beep, CollisionWaveLayering};
use crate::params::Params;
use crate::schedule::{
    EmptyBehavior, MmvScheduleNode, SchedAudit, SchedLabels, SchedMsg, ScheduleConfig, SlowKey,
};
use radio_sim::graph::bfs_layering;
use radio_sim::model::PacketBits;
use radio_sim::trace::{RoundStats, RunStats};
use radio_sim::{
    Action, CollisionMode, FaultPlan, Graph, NodeId, Observation, Protocol, Simulator, Topology,
    Wake,
};
use rand::rngs::SmallRng;
use rlnc::gf2::BitVec;
use std::cell::Cell;
use std::rc::Rc;

/// Messages of the Theorem 1.1 pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ghk1Msg {
    /// Collision-wave beep.
    Wave(Beep),
    /// GST-construction traffic.
    Gst(GstMsg),
    /// In-ring broadcast traffic.
    Sched(SchedMsg),
    /// Inter-ring handoff carrying the message payload.
    Handoff(u64),
    /// Content-free status beep of the adaptive termination protocol.
    Status,
}

impl PacketBits for Ghk1Msg {
    fn packet_bits(&self) -> usize {
        3 + match self {
            Ghk1Msg::Wave(b) => b.packet_bits(),
            Ghk1Msg::Gst(m) => m.packet_bits(),
            Ghk1Msg::Sched(m) => m.packet_bits(),
            Ghk1Msg::Handoff(_) => 64,
            Ghk1Msg::Status => 0,
        }
    }
}

/// A position inside one pipeline phase — the adaptive counterpart of the
/// old fixed round partition. Offsets are *virtual*: they count the phase's
/// own work rounds, excluding interleaved status rounds, so every in-phase
/// schedule (wave, slotted construction, MMV broadcast, handoff Decay) sees
/// exactly the round sequence it would under fixed windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhasePos {
    /// Collision-wave layering work round.
    Wave {
        /// Wave round.
        offset: u64,
    },
    /// Parity-slotted parallel GST construction work round: rings with
    /// `ring % 2 == offset % 2` run construction round `offset / 2`.
    Construct {
        /// Slotted construction round.
        offset: u64,
    },
    /// In-ring broadcast work round of `ring`.
    Broadcast {
        /// The active ring.
        ring: u32,
        /// Round within the window.
        offset: u64,
    },
    /// Handoff work round from `ring` to `ring + 1`.
    Handoff {
        /// The transmitting ring.
        ring: u32,
        /// Round within the window.
        offset: u64,
    },
    /// Rung-1 recovery work round: unslotted re-construction of one failed
    /// ring's GST (its nodes shed their construction + schedule state via
    /// the `Ghk1Node::repair_ring` echo first). Only `ring`'s nodes act —
    /// no parity slotting is needed with a single ring running — so `offset`
    /// maps 1:1 onto the construction schedule round.
    RepairConstruct {
        /// The ring under repair.
        ring: u32,
        /// Construction schedule round.
        offset: u64,
    },
    /// Rung-2 recovery work round: regional Decay re-dissemination across
    /// the failed ring ± 1. Holders in the region flood the payload; region
    /// nodes *and* ring-less strays (the churn/mobility victims rung 2
    /// exists for) adopt it.
    Regional {
        /// The center ring of the region.
        ring: u32,
        /// Round within the regional flood.
        offset: u64,
    },
    /// No-knowledge Decay fallback work round (Czumaj–Davies regime): every
    /// holder floods the payload on the Decay schedule, every node adopts it
    /// ring-agnostically. Rung 3 of the recovery ladder — armed by the
    /// driver only on faulted runs after rungs 1–2 failed.
    Fallback {
        /// Round within the fallback phase.
        offset: u64,
    },
}

impl Advance for PhasePos {
    fn advanced(self, delta: u64) -> Self {
        match self {
            PhasePos::Wave { offset } => PhasePos::Wave { offset: offset + delta },
            PhasePos::Construct { offset } => PhasePos::Construct { offset: offset + delta },
            PhasePos::Broadcast { ring, offset } => {
                PhasePos::Broadcast { ring, offset: offset + delta }
            }
            PhasePos::Handoff { ring, offset } => {
                PhasePos::Handoff { ring, offset: offset + delta }
            }
            PhasePos::RepairConstruct { ring, offset } => {
                PhasePos::RepairConstruct { ring, offset: offset + delta }
            }
            PhasePos::Regional { ring, offset } => {
                PhasePos::Regional { ring, offset: offset + delta }
            }
            PhasePos::Fallback { offset } => PhasePos::Fallback { offset: offset + delta },
        }
    }
}

/// What a status round asks: a node transmits a beep iff the predicate holds
/// for it. Construction probes (see [`ConsProbe`]) address ring-local
/// boundaries/ranks, so one probe covers every ring at once (the rings share
/// the cursor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Wave phase: "did the frontier reach you since the last status round?"
    WaveProgress,
    /// A construction status probe (shared with the Theorem 1.3 driver).
    Cons(ConsProbe),
    /// Broadcast window: "a node of `ring` still missing the message?"
    RingUninformed {
        /// The ring whose window is open.
        ring: u32,
    },
    /// Handoff window: "a root of `ring` still missing the message?"
    RootsUninformed {
        /// The *receiving* ring.
        ring: u32,
    },
    /// Rung-1 repair: a construction probe answered *only* by nodes of the
    /// ring under repair (normal [`Probe::Cons`] probes cover every ring at
    /// once; the repair re-runs a single ring's construction).
    RepairCons {
        /// The ring under repair.
        ring: u32,
        /// The construction probe.
        probe: ConsProbe,
    },
    /// Fallback phase: "any node still missing the message?" — ring state is
    /// deliberately ignored, so nodes the faulted wave stranded (no layer, no
    /// ring) still answer.
    Uninformed,
}

/// The shared per-round directive: what kind of round the pipeline is in.
///
/// All nodes observe the same status-round transcript (via the idealized
/// echo, see the module docs), so they all hold the same cursor; the cell
/// materializes that shared knowledge without touching the `Protocol` trait.
///
/// Work rounds are published as whole [`Segment`]s (start round + schedule
/// geometry, set once per batch): nodes resolve a round's [`PhasePos`] from
/// the segment, and their wake hints may sleep them through the rounds of
/// the segment in which they are provably inert — never past its end, so
/// every cursor change finds all nodes awake (see `crate::adaptive`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Before the first round.
    Idle,
    /// A published segment of work rounds of the current phase.
    Work(Segment<PhasePos>),
    /// A status round probing for pending work.
    Status(Probe),
}

/// Shared handle to the pipeline's current [`Step`].
pub type StepCell = Rc<Cell<Step>>;

/// The worst-case phase budgets of the pipeline — the adaptive run's hard
/// caps. [`Ghk1Plan::total_rounds`] is the guaranteed-completion bound of
/// Theorem 1.1 (with the paper's `Θ(·)` constants instantiated by
/// [`Params`], plus the `1/beep_interval` status-round overhead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ghk1Plan {
    /// Diameter bound `D`.
    pub d_bound: u32,
    /// Ring width in layers.
    pub ring_width: u32,
    /// Number of rings.
    pub ring_count: u32,
    /// Per-ring construction schedule (ring-local levels `0..ring_width`).
    pub cons: ConstructionSchedule,
    /// Cap on the wave phase (work + status rounds).
    pub wave_budget: u64,
    /// Cap on construction *work* rounds (2-slotted; rings in parallel).
    pub cons_rounds: u64,
    /// Cap on construction *status* rounds.
    pub cons_status: u64,
    /// Cap on one in-ring broadcast window (work + status rounds).
    pub bcast_window: u64,
    /// Cap on one inter-ring handoff window (work + status rounds).
    pub handoff_window: u64,
}

impl Ghk1Plan {
    /// Builds the plan for diameter bound `d_bound` under `params`.
    pub fn new(params: &Params, d_bound: u32) -> Self {
        let d_bound = d_bound.max(1);
        let ring_width = params.adaptive_ring_width(d_bound).min(d_bound + 1);
        let ring_count = (d_bound + 1).div_ceil(ring_width);
        let cons = ConstructionSchedule::new(params, ring_width - 1);
        let slack = u64::from(params.window_slack);
        let beep = u64::from(params.beep_interval.max(1));
        let l2 = u64::from(params.log_n) * u64::from(params.log_n);
        let d = u64::from(d_bound);

        // Status rounds the construction driver can spend (see
        // `crate::adaptive::cons_status_budget` for the breakdown).
        let cons_status = cons_status_budget(params, &cons);

        let bcast_work = slack * (2 * u64::from(ring_width) + 2 * l2);
        let handoff_work = slack * l2;
        Ghk1Plan {
            d_bound,
            ring_width,
            ring_count,
            cons,
            wave_budget: d + d / beep + beep + u64::from(params.quiescence_slack) + 4,
            cons_rounds: 2 * cons.total_rounds(),
            cons_status,
            bcast_window: bcast_work + bcast_work / beep + 2,
            handoff_window: handoff_work + handoff_work / beep + 2,
        }
    }

    /// Total worst-case pipeline rounds — the hard cap every adaptive run
    /// respects.
    pub fn total_rounds(&self) -> u64 {
        self.wave_budget
            + self.cons_rounds
            + self.cons_status
            + u64::from(self.ring_count) * self.bcast_window
            + u64::from(self.ring_count.saturating_sub(1)) * self.handoff_window
    }
}

/// One node of the Theorem 1.1 pipeline.
///
/// Memory model: the node shell holds only the always-needed state (wave,
/// ring, payload, Decay counters) plus `Rc` handles to the run-wide
/// [`Params`]/[`Ghk1Plan`]; the heavyweight construction and MMV-schedule
/// sub-states are boxed and *phase-scoped* — construction state springs into
/// existence when the node's ring starts constructing and is dropped at
/// finalization (its labels and accounting
/// survive inline), and schedule state lives only while the node's ring is
/// broadcasting (retired by the driver once the ring's handoff closes). At
/// any round, resident state tracks the active frontier instead of
/// accumulating `O(n)` copies of every sub-protocol.
#[derive(Clone, Debug)]
pub struct Ghk1Node {
    id: u32,
    params: Rc<Params>,
    plan: Rc<Ghk1Plan>,
    step: StepCell,
    wave: CollisionWaveLayering,
    /// Frontier reached this node since the last wave status round.
    wave_dirty: bool,
    /// Ring index and ring-local level, known after the wave.
    ring: Option<(u32, u32)>,
    cons: Option<Box<GstConstructionNode>>,
    sched: Option<Box<MmvScheduleNode>>,
    /// Broadcast-schedule labels, extracted when construction state retires.
    labels: Option<SchedLabels>,
    /// Construction accounting kept after the construction state is dropped.
    cons_stats: Option<crate::construction::NodeStats>,
    /// Audit counters absorbed from retired schedule state.
    audit_acc: SchedAudit,
    message: Option<u64>,
    decay: DecaySchedule,
    /// Whether this node emits real segment wake hints ([`Pacing::Segment`])
    /// or answers [`Wake::Now`] every round ([`Pacing::PerStep`]).
    seg_hints: bool,
}

impl Ghk1Node {
    /// A pipeline node; the source holds `message`. All nodes of one run
    /// share the `step` cell (the materialized phase cursor) and the
    /// `params`/`plan` handles (one allocation per run, not per node).
    pub fn new(
        params: Rc<Params>,
        plan: Rc<Ghk1Plan>,
        step: StepCell,
        id: u32,
        message: Option<u64>,
    ) -> Self {
        let decay = DecaySchedule::new(params.decay_phase_len());
        Ghk1Node {
            id,
            params,
            plan,
            step,
            wave: CollisionWaveLayering::new(message.is_some()),
            wave_dirty: false,
            ring: None,
            cons: None,
            sched: None,
            labels: None,
            cons_stats: None,
            audit_acc: SchedAudit::default(),
            message,
            decay,
            seg_hints: true,
        }
    }

    /// Selects how the node answers [`Protocol::next_wake`] (segment hints
    /// vs. the per-step `Wake::Now` regime used by the equivalence suites).
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.seg_hints = pacing == Pacing::Segment;
        self
    }

    /// Whether this node holds (or has decoded) the message.
    pub fn has_message(&self) -> bool {
        self.message.is_some() || self.sched.as_ref().is_some_and(|s| s.is_complete())
    }

    /// The message, once held.
    pub fn message(&self) -> Option<u64> {
        self.message
    }

    /// The node's BFS layer, once learned.
    pub fn layer(&self) -> Option<u32> {
        self.wave.level()
    }

    /// Schedule audit counters from the broadcast phase: the counters
    /// absorbed from retired schedule state plus any still-live schedule.
    pub fn audit(&self) -> SchedAudit {
        let mut a = self.audit_acc;
        if let Some(s) = &self.sched {
            a.absorb(s.audit());
        }
        a
    }

    /// Construction fallback/orphan accounting (kept after the construction
    /// state itself is dropped).
    pub fn construction_stats(&self) -> Option<crate::construction::NodeStats> {
        self.cons.as_ref().map(|c| c.stats()).or(self.cons_stats)
    }

    /// Resident bytes of this node's protocol state, at struct granularity:
    /// the shell plus each live boxed sub-state at its `size_of`. Internal
    /// heap of the sub-states (recruiting buffers, decoder rows) is excluded
    /// on both sides of the streamed-vs-materialized comparison, as are the
    /// engine's own `O(n)` buffers — see the README's memory-model section.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.cons.as_ref().map_or(0, |_| std::mem::size_of::<GstConstructionNode>())
            + self.sched.as_ref().map_or(0, |_| std::mem::size_of::<MmvScheduleNode>())
    }

    /// Harvests the decoded message out of the schedule node, if complete.
    fn harvest(&mut self) {
        if self.message.is_none() {
            if let Some(s) = &self.sched {
                if let Some(decoded) = s.decoder().decode() {
                    let mut value = 0u64;
                    for (b, bit) in (0..64).zip(0..decoded[0].len().min(64)) {
                        if decoded[0].get(bit) {
                            value |= 1 << b;
                        }
                    }
                    self.message = Some(value);
                }
            }
        }
    }

    fn ensure_ring(&mut self) {
        if self.ring.is_none() {
            if let Some(layer) = self.wave.level() {
                let ring = layer / self.plan.ring_width;
                let ring_level = layer % self.plan.ring_width;
                self.ring = Some((ring, ring_level));
            }
        }
    }

    fn ensure_cons(&mut self) {
        self.ensure_ring();
        if self.cons.is_none() {
            if let Some((_, ring_level)) = self.ring {
                self.cons = Some(Box::new(GstConstructionNode::new(
                    &self.params,
                    self.plan.cons,
                    self.id,
                    ring_level,
                )));
            }
        }
    }

    /// Applies the construction epilogue once the phase is announced over
    /// (pending recruiting-part results + the unassigned-blue fallback),
    /// then retires the construction state: the broadcast-schedule labels
    /// and the fallback/orphan accounting move inline and the
    /// [`GstConstructionNode`] itself is dropped. Only repair rungs rebuild
    /// it, from scratch.
    fn finalize_construction(&mut self) {
        if let Some(mut c) = self.cons.take() {
            c.finalize();
            let l = c.labels();
            self.labels = Some(SchedLabels {
                level: l.level,
                rank: l.rank,
                vdist: 0,
                stretch_start: l.is_stretch_start(),
                fast_transmitter: l.has_stretch_child,
                in_stretch: l.in_stretch(),
            });
            self.cons_stats = Some(c.stats());
        }
    }

    /// Absorbs and drops the schedule state (the payload must already be
    /// harvested by the caller when it matters).
    fn retire_sched(&mut self) {
        if let Some(s) = self.sched.take() {
            self.audit_acc.absorb(s.audit());
        }
    }

    /// Driver echo retiring a ring whose broadcast and outgoing handoff
    /// windows have closed: the decoded payload is harvested into the shell
    /// and the ring's schedule state is dropped (audit counters absorbed),
    /// so resident state follows the active ring frontier. Safe because a
    /// retired ring's nodes only ever read `message`/`decay` afterwards, and
    /// every repair path rebuilds through `ensure_*` from scratch.
    fn retire_ring(&mut self, ring: u32) {
        if self.ring.is_some_and(|(r, _)| r == ring) {
            self.harvest();
            self.retire_sched();
        }
    }

    /// Driver echo arming a rung-1 ring repair: nodes of `ring` shed their
    /// construction + schedule state (harvesting any decoded payload first,
    /// so an informed node stays informed) and rebuild from scratch on the
    /// repair rounds; every other ring's GST stays intact.
    fn repair_ring(&mut self, ring: u32) {
        self.ensure_ring();
        if self.ring.is_some_and(|(r, _)| r == ring) {
            self.harvest();
            self.retire_sched();
            self.cons = None;
            self.labels = None;
        }
    }

    /// Construction epilogue of a rung-1 repair, applied only to the
    /// repaired ring (the other rings were finalized after the main
    /// construction phase and must not be re-finalized).
    fn finalize_ring(&mut self, ring: u32) {
        if self.ring.is_some_and(|(r, _)| r == ring) {
            self.finalize_construction();
        }
    }

    fn ensure_sched(&mut self) {
        if self.sched.is_none() {
            // Labels were extracted when the construction state retired
            // (`finalize_construction`), so the schedule springs into
            // existence without the construction node being resident.
            if let (Some(labels), Some((_, _))) = (self.labels, self.ring) {
                let cfg = ScheduleConfig {
                    log_n: self.params.log_n,
                    slow_key: SlowKey::Level,
                    empty: EmptyBehavior::Silent,
                };
                let mut node = MmvScheduleNode::new(cfg, labels, 1, 64);
                if let Some(m) = self.message {
                    node = node.with_messages(&[BitVec::from_u64(m, 64)]);
                }
                self.sched = Some(Box::new(node));
            }
        }
    }

    /// Answers a status-round probe: `true` = transmit a beep.
    fn probe(&mut self, probe: Probe) -> bool {
        match probe {
            Probe::WaveProgress => std::mem::take(&mut self.wave_dirty),
            Probe::RingUninformed { ring } => {
                self.ensure_ring();
                self.ring.is_some_and(|(r, _)| r == ring) && !self.has_message()
            }
            Probe::RootsUninformed { ring } => {
                self.ensure_ring();
                self.ring == Some((ring, 0)) && !self.has_message()
            }
            Probe::Uninformed => !self.has_message(),
            Probe::Cons(p) => {
                self.ensure_cons();
                let Some(c) = self.cons.as_mut() else { return false };
                answer_cons_probe(c, p)
            }
            Probe::RepairCons { ring, probe } => {
                self.ensure_ring();
                if self.ring.is_none_or(|(r, _)| r != ring) {
                    return false;
                }
                self.ensure_cons();
                let Some(c) = self.cons.as_mut() else { return false };
                answer_cons_probe(c, probe)
            }
        }
    }
}

impl Ghk1Node {
    /// The wake hint within a published work segment: the earliest round
    /// `>= round` at which this node's `act` might transmit, draw from its
    /// RNG, or make an observable state change — clamped to the segment end,
    /// so the node is always re-polled when the driver publishes its next
    /// step (status round or new segment).
    fn segment_wake(&self, seg: &Segment<PhasePos>, round: u64) -> Wake {
        let Some(pos) = seg.pos_at(round) else {
            // `round` is past the segment (hints are queried for the round
            // *after* the segment's last one): the driver is about to move
            // the cursor, so the node must be polled.
            return Wake::Now;
        };
        // Sleeps need no clamp to the segment end: the driver force-wakes
        // every node (`Simulator::wake_all`) before each cursor change, so
        // hints only have to be valid while this segment stands.
        let clamp = |r: u64| if r <= round { Wake::Now } else { Wake::At(r) };
        let sleep = Wake::Idle;
        let layered = self.wave.level().is_some();
        match pos {
            PhasePos::Wave { offset } => match self.wave.level() {
                // Re-woken by the frontier's first signal (observation).
                None => sleep,
                Some(l) if u64::from(l) <= offset => Wake::Now,
                Some(l) => clamp(round + (u64::from(l) - offset)),
            },
            PhasePos::Construct { offset } => {
                let Some((ring, _)) = self.ring else {
                    // Layered but ring not derived yet: next act derives it.
                    return if layered { Wake::Now } else { sleep };
                };
                let parity = u64::from(ring % 2);
                let first = if offset % 2 == parity { round } else { round + 1 };
                let Some(cons) = &self.cons else { return Wake::Now };
                // One engine segment never crosses a construction-schedule
                // segment (the driver publishes per sub-segment), so one
                // activity check covers the whole remainder.
                match self.plan.cons.phase((offset + (first - round)) / 2) {
                    Some(ph) if cons.may_act_in(&ph) => clamp(first),
                    Some(_) => sleep,
                    None => sleep,
                }
            }
            PhasePos::Broadcast { ring, offset } => {
                let Some((my_ring, _)) = self.ring else {
                    return if layered { Wake::Now } else { sleep };
                };
                if my_ring != ring {
                    return sleep;
                }
                let Some(s) = &self.sched else { return Wake::Now };
                clamp(round + (s.next_act_round(offset) - offset))
            }
            PhasePos::Handoff { ring, .. } => {
                let Some((my_ring, ring_level)) = self.ring else {
                    return if layered { Wake::Now } else { sleep };
                };
                let outer = my_ring == ring && ring_level == self.plan.ring_width - 1;
                // Outer-boundary holders sample Decay every round (the
                // pending-harvest case — schedule decodable but `message`
                // not yet extracted — is covered by `has_message`).
                if outer && self.has_message() {
                    Wake::Now
                } else {
                    sleep
                }
            }
            PhasePos::RepairConstruct { ring, offset } => {
                let Some((my_ring, _)) = self.ring else {
                    return if layered { Wake::Now } else { sleep };
                };
                if my_ring != ring {
                    return sleep;
                }
                let Some(cons) = &self.cons else { return Wake::Now };
                // Unslotted: the repair segment's offsets are construction
                // schedule rounds directly. One published segment never
                // crosses a schedule segment (the shared skip loop publishes
                // per sub-segment), so one activity check covers the rest.
                match self.plan.cons.phase(offset) {
                    Some(ph) if cons.may_act_in(&ph) => Wake::Now,
                    _ => sleep,
                }
            }
            PhasePos::Regional { ring, .. } => {
                // Region holders sample Decay every round; everyone else
                // sleeps until a payload delivery re-wakes them (adoption
                // happens in `observe`).
                let in_region =
                    self.ring.is_some_and(|(r, _)| r + 1 >= ring && r <= ring.saturating_add(1));
                if in_region && self.has_message() {
                    Wake::Now
                } else {
                    sleep
                }
            }
            PhasePos::Fallback { .. } => {
                // Holders sample Decay every round; everyone else sleeps
                // until a payload delivery re-wakes them (observation marks
                // the node dirty, so an adopting node starts flooding on its
                // next round).
                if self.has_message() {
                    Wake::Now
                } else {
                    sleep
                }
            }
        }
    }
}

impl Protocol for Ghk1Node {
    type Msg = Ghk1Msg;

    // Every sub-protocol this node routes observations into already ignores
    // silence, and status rounds ignore everything non-transmitted.
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;

    /// Segment-derived wake hints (see [`crate::adaptive`]): status and idle
    /// rounds poll everyone; work segments sleep the node through rounds in
    /// which its phase provably keeps it inert, clamped to the segment end.
    fn next_wake(&self, round: u64) -> Wake {
        if !self.seg_hints {
            return Wake::Now;
        }
        match self.step.get() {
            Step::Idle | Step::Status(_) => Wake::Now,
            Step::Work(seg) => self.segment_wake(&seg, round),
        }
    }

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<Ghk1Msg> {
        // Contract check for the wake hints: a node whose hint postponed past
        // this round must not transmit if polled anyway (dense A/B paths).
        let hinted_idle = cfg!(debug_assertions)
            && match self.next_wake(round) {
                Wake::Now => false,
                Wake::At(r) => r > round,
                Wake::Idle => true,
            };
        let action = self.act_inner(round, rng);
        debug_assert!(
            !(hinted_idle && action.is_transmit()),
            "hinted-idle node {} transmitted at round {round}",
            self.id
        );
        action
    }

    fn observe(&mut self, round: u64, obs: Observation<Ghk1Msg>, rng: &mut SmallRng) {
        let pos = match self.step.get() {
            Step::Idle | Step::Status(_) => return,
            Step::Work(seg) => seg.pos_at(round).expect("observation within published segment"),
        };
        match pos {
            PhasePos::Wave { offset } => {
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        Ghk1Msg::Wave(b) => Observation::packet(*b),
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                let was_layered = self.wave.level().is_some();
                self.wave.observe(offset, mapped, rng);
                if !was_layered && self.wave.level().is_some() {
                    self.wave_dirty = true;
                }
            }
            PhasePos::Construct { offset } => {
                let Some((ring, _)) = self.ring else { return };
                if offset % 2 != u64::from(ring % 2) {
                    return;
                }
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        Ghk1Msg::Gst(m) => Observation::packet(*m),
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(c) = self.cons.as_mut() {
                    c.observe(offset / 2, mapped, rng);
                }
            }
            PhasePos::Broadcast { ring, offset } => {
                let Some((my_ring, _)) = self.ring else { return };
                if my_ring != ring {
                    return;
                }
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        Ghk1Msg::Sched(m) => Observation::packet(m.clone()),
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(s) = self.sched.as_mut() {
                    s.observe(offset, mapped, rng);
                }
            }
            PhasePos::Handoff { ring, .. } => {
                let Some((my_ring, ring_level)) = self.ring else { return };
                if my_ring == ring + 1 && ring_level == 0 && self.message.is_none() {
                    if let Observation::Message(p) = &obs {
                        if let Ghk1Msg::Handoff(m) = &**p {
                            self.message = Some(*m);
                        }
                    }
                }
            }
            PhasePos::RepairConstruct { ring, offset } => {
                if self.ring.is_none_or(|(r, _)| r != ring) {
                    return;
                }
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        Ghk1Msg::Gst(m) => Observation::packet(*m),
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(c) = self.cons.as_mut() {
                    c.observe(offset, mapped, rng);
                }
            }
            PhasePos::Regional { ring, .. } => {
                // Region nodes adopt, and so do ring-less strays — the
                // churn/mobility victims the regional rung exists for.
                self.ensure_ring();
                let in_region = match self.ring {
                    Some((r, _)) => r + 1 >= ring && r <= ring.saturating_add(1),
                    None => true,
                };
                if in_region && self.message.is_none() {
                    if let Observation::Message(p) = &obs {
                        if let Ghk1Msg::Handoff(m) = &**p {
                            self.message = Some(*m);
                        }
                    }
                }
            }
            PhasePos::Fallback { .. } => {
                // Ring-agnostic adoption: the whole point of the fallback is
                // reaching nodes the faulted setup phases left without a ring.
                if self.message.is_none() {
                    if let Observation::Message(p) = &obs {
                        if let Ghk1Msg::Handoff(m) = &**p {
                            self.message = Some(*m);
                        }
                    }
                }
            }
        }
    }
}

impl Ghk1Node {
    fn act_inner(&mut self, round: u64, rng: &mut SmallRng) -> Action<Ghk1Msg> {
        let pos = match self.step.get() {
            Step::Idle => return Action::Listen,
            Step::Status(probe) => {
                return if self.probe(probe) {
                    Action::Transmit(Ghk1Msg::Status)
                } else {
                    Action::Listen
                };
            }
            Step::Work(seg) => seg.pos_at(round).expect("act within published segment"),
        };
        match pos {
            PhasePos::Wave { offset } => match self.wave.act(offset, rng) {
                Action::Transmit(b) => Action::Transmit(Ghk1Msg::Wave(b)),
                Action::Listen => Action::Listen,
            },
            PhasePos::Construct { offset } => {
                self.ensure_cons();
                let Some((ring, _)) = self.ring else { return Action::Listen };
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                match self.cons.as_mut().expect("created above").act(offset / 2, rng) {
                    Action::Transmit(m) => Action::Transmit(Ghk1Msg::Gst(m)),
                    Action::Listen => Action::Listen,
                }
            }
            PhasePos::Broadcast { ring, offset } => {
                self.ensure_sched();
                let Some((my_ring, _)) = self.ring else { return Action::Listen };
                if my_ring != ring {
                    return Action::Listen;
                }
                // A late holder (handoff) seeds the schedule decoder lazily.
                if offset == 0 {
                    if let (Some(m), Some(s)) = (self.message, self.sched.as_deref_mut()) {
                        if s.decoder().is_empty() {
                            *s = s.clone().with_messages(&[BitVec::from_u64(m, 64)]);
                        }
                    }
                }
                match self.sched.as_mut().expect("created above").act(offset, rng) {
                    Action::Transmit(m) => Action::Transmit(Ghk1Msg::Sched(m)),
                    Action::Listen => Action::Listen,
                }
            }
            PhasePos::Handoff { ring, offset } => {
                self.harvest();
                let Some((my_ring, ring_level)) = self.ring else { return Action::Listen };
                let outer = my_ring == ring && ring_level == self.plan.ring_width - 1;
                if let Some(m) = self.message {
                    if outer && self.decay.fires(offset, rng) {
                        return Action::Transmit(Ghk1Msg::Handoff(m));
                    }
                }
                Action::Listen
            }
            PhasePos::RepairConstruct { ring, offset } => {
                self.ensure_cons();
                if self.ring.is_none_or(|(r, _)| r != ring) {
                    return Action::Listen;
                }
                let Some(c) = self.cons.as_mut() else { return Action::Listen };
                match c.act(offset, rng) {
                    Action::Transmit(m) => Action::Transmit(Ghk1Msg::Gst(m)),
                    Action::Listen => Action::Listen,
                }
            }
            PhasePos::Regional { ring, offset } => {
                self.harvest();
                let Some((my_ring, _)) = self.ring else { return Action::Listen };
                if my_ring + 1 < ring || my_ring > ring.saturating_add(1) {
                    return Action::Listen;
                }
                if let Some(m) = self.message {
                    if self.decay.fires(offset, rng) {
                        return Action::Transmit(Ghk1Msg::Handoff(m));
                    }
                }
                Action::Listen
            }
            PhasePos::Fallback { offset } => {
                self.harvest();
                if let Some(m) = self.message {
                    if self.decay.fires(offset, rng) {
                        return Action::Transmit(Ghk1Msg::Handoff(m));
                    }
                }
                Action::Listen
            }
        }
    }
}

/// Round accounting of one adaptive run, by phase. Work counters tally the
/// rounds actually spent inside each phase; `status` tallies every dedicated
/// beep round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseRounds {
    /// Collision-wave work rounds.
    pub wave: u64,
    /// Construction work rounds (2-slotted).
    pub construct: u64,
    /// In-ring broadcast work rounds, summed over rings.
    pub broadcast: u64,
    /// Inter-ring handoff work rounds, summed over handoffs.
    pub handoff: u64,
    /// Recovery-ladder work rounds (rung-1 ring-local repair and rung-2
    /// regional re-dissemination); 0 unless a handoff failed on a faulted
    /// run.
    pub repair: u64,
    /// No-knowledge fallback work rounds (0 unless the driver armed the
    /// recovery flood on a faulted run).
    pub fallback: u64,
    /// Status-beep rounds, all phases.
    pub status: u64,
}

impl PhaseRounds {
    /// Total rounds executed.
    pub fn total(&self) -> u64 {
        self.wave
            + self.construct
            + self.broadcast
            + self.handoff
            + self.repair
            + self.fallback
            + self.status
    }

    /// One-time setup cost (layering + GST construction work rounds).
    pub fn setup(&self) -> u64 {
        self.wave + self.construct
    }
}

/// Outcome of a full pipeline run.
#[derive(Clone, Debug)]
pub struct Ghk1Outcome {
    /// Round at which every node held the message, `None` on failure.
    pub completion_round: Option<u64>,
    /// The executed plan (worst-case caps).
    pub plan: Ghk1Plan,
    /// Rounds actually spent, by phase.
    pub phases: PhaseRounds,
    /// Channel statistics of the run.
    pub stats: RunStats,
    /// Aggregated schedule audit.
    pub audit: SchedAudit,
    /// Nodes that used the construction fallback.
    pub fallbacks: usize,
    /// Round at which the driver armed the rung-3 no-knowledge Decay flood,
    /// `None` if the run never fell back that far.
    pub fallback_entry: Option<u64>,
    /// Peak resident bytes of topology plus protocol state, sampled at phase
    /// boundaries (struct-level accounting: topology representation, node
    /// shells, live boxed sub-states; engine buffers and sub-state internal
    /// heap excluded on all paths — see the README's memory-model section).
    pub peak_state_bytes: usize,
}

/// The adaptive pipeline driver: owns the simulator and the shared phase
/// cursor, advances phases on status-round quiescence, and hard-caps every
/// phase at its [`Ghk1Plan`] budget.
struct Driver<T: Topology> {
    sim: Simulator<Ghk1Node, T>,
    step: StepCell,
    plan: Rc<Ghk1Plan>,
    beep: u64,
    quiescence_slack: u32,
    cons_status_left: u64,
    /// Status budget for rung-1 repair construction; refreshed per repair.
    repair_status_left: u64,
    phases: PhaseRounds,
    completion: Option<u64>,
    /// Whether the recovery paths (status voting, handoff retry, the staged
    /// ladder) are armed — true exactly when the simulator carries a fault
    /// plan, so `FaultPlan::none()` runs stay bit-identical by construction.
    recovery: bool,
    /// Rung bookkeeping for the staged recovery ladder.
    ladder: Ladder,
    /// Peak of the phase-boundary node-state samples (see `sample_state`).
    peak_nodes: usize,
}

impl<T: Topology> Driver<T> {
    /// Moves the shared cursor: every cell change force-wakes all nodes
    /// (their hints were computed against the outgoing cell).
    fn publish(&mut self, step: Step) {
        self.sim.wake_all();
        self.step.set(step);
    }

    /// Samples the resident protocol state (an `O(n)` sweep, run only at
    /// phase boundaries) and folds it into the peak. The phase structure
    /// makes boundary sampling exact enough: sub-states are created and
    /// retired only at the boundaries the driver itself publishes.
    fn sample_state(&mut self) {
        let nodes: usize = self.sim.nodes().iter().map(Ghk1Node::resident_bytes).sum();
        self.peak_nodes = self.peak_nodes.max(nodes);
    }

    fn exec(&mut self, step: Step) -> RoundStats {
        self.publish(step);
        let stats = self.sim.step();
        // `has_message` flips only when a packet arrives (a handoff payload
        // or the decoding delivery of the schedule), so the O(n) all-nodes
        // completion scan is needed only after delivery rounds.
        if self.completion.is_none()
            && stats.deliveries > 0
            && self.sim.nodes().iter().all(Ghk1Node::has_message)
        {
            self.completion = Some(self.sim.round());
        }
        stats
    }

    /// Publishes `len` consecutive work rounds starting at phase position
    /// `pos` as one [`Segment`] and runs them through the engine's wake fast
    /// path. Stops after any round that delivered a packet to re-evaluate
    /// completion (exactly the per-step driver's delivery-gated scan), then
    /// resumes the remainder; aborts once complete. Returns the number of
    /// rounds actually executed.
    fn exec_segment(&mut self, pos: PhasePos, len: u64) -> u64 {
        let start = self.sim.round();
        self.publish(Step::Work(Segment { start, len, pos }));
        let mut run = 0u64;
        while run < len && !self.done() {
            let seg = self.sim.run_segment(len - run, true);
            run += seg.rounds;
            if seg.stopped_on_delivery
                && self.completion.is_none()
                && self.sim.nodes().iter().all(Ghk1Node::has_message)
            {
                self.completion = Some(self.sim.round());
            }
        }
        run
    }

    fn done(&self) -> bool {
        self.completion.is_some()
    }

    /// Runs one status round; `true` iff the probe quiesced.
    ///
    /// On a fault-free run the verdict is the single-round channel census
    /// ("did anybody transmit?") — bit-identical to the pre-voting driver.
    /// With faults armed, a fault-touched read is demoted to the channel's
    /// listener-side rendering and majority-voted over a small window of
    /// re-probes (see [`vote_quiet`]); consuming probes (the take-style
    /// wave-progress and new-activation reads) are never re-probed.
    fn quiet(&mut self, probe: Probe) -> bool {
        self.phases.status += 1;
        let first = self.exec(Step::Status(probe));
        if !self.recovery {
            return first.transmitters == 0;
        }
        let votable = !matches!(
            probe,
            Probe::WaveProgress
                | Probe::Cons(ConsProbe::NewActivation)
                | Probe::RepairCons { probe: ConsProbe::NewActivation, .. }
        );
        let v = vote_quiet(first, votable, || {
            self.phases.status += 1;
            // Extra vote rounds stay charged against the construction status
            // budget, so the skip loop's round accounting cannot outgrow its
            // cap just because votes fired.
            match probe {
                Probe::Cons(_) => {
                    self.cons_status_left = self.cons_status_left.saturating_sub(1);
                }
                Probe::RepairCons { .. } => {
                    self.repair_status_left = self.repair_status_left.saturating_sub(1);
                }
                _ => {}
            }
            self.exec(Step::Status(probe))
        });
        if v.overturned {
            self.sim.stats_mut().votes_overturned += 1;
        }
        v.quiet
    }

    /// Rounds left under the plan's worst-case cap — the pool the recovery
    /// paths (handoff retries, the fallback flood) may draw from without
    /// breaking the `completion <= total_rounds` guarantee.
    fn budget_left(&self) -> u64 {
        self.plan.total_rounds().saturating_sub(self.sim.round())
    }

    /// One adaptive open-ended window: a `beep_interval`-round work segment,
    /// one status round, until the probe has stayed quiet for
    /// `quiescence_slack` consecutive status rounds or `budget` (work +
    /// status rounds, including any vote re-probes) is exhausted. The wave,
    /// broadcast, handoff and fallback phases all share this loop.
    fn window(
        &mut self,
        budget: u64,
        probe: Probe,
        pos_at: impl Fn(u64) -> PhasePos,
        count: fn(&mut PhaseRounds) -> &mut u64,
    ) -> WindowEnd {
        let slack = self.quiescence_slack.max(1);
        let start = self.sim.round();
        let mut offset = 0u64;
        let mut quiet_streak = 0u32;
        let spent = |sim: &Simulator<Ghk1Node, T>| sim.round() - start;
        while spent(&self.sim) < budget && !self.done() {
            let run = self.exec_segment(pos_at(offset), self.beep.min(budget - spent(&self.sim)));
            *count(&mut self.phases) += run;
            offset += run;
            if spent(&self.sim) >= budget || self.done() {
                break;
            }
            if self.quiet(probe) {
                quiet_streak += 1;
                if quiet_streak >= slack {
                    return WindowEnd::Quiesced;
                }
            } else {
                quiet_streak = 0;
            }
        }
        if self.done() {
            WindowEnd::Quiesced
        } else {
            WindowEnd::Exhausted
        }
    }

    /// Hooks for the shared construction driver (`crate::adaptive`).
    fn cons_quiet_impl(&mut self, probe: ConsProbe) -> Option<bool> {
        if self.cons_status_left == 0 {
            return None;
        }
        self.cons_status_left -= 1;
        Some(self.quiet(Probe::Cons(probe)))
    }

    /// Rung 1 of the recovery [`Ladder`]: re-run the *failed ring's*
    /// construction and dissemination with fresh budget, keeping every other
    /// ring's GST intact. The failed ring's nodes drop their schedule state
    /// (harvesting any pending delivery first), rebuild it through the shared
    /// quiescence-skipping construction loop restricted to that ring, then
    /// replay the ring's broadcast window and a fresh handoff window — all
    /// drawn from what remains of the worst-case pool. Returns `true` iff the
    /// run completed or the replayed handoff quiesced.
    fn ring_repair(&mut self, ring: u32) -> bool {
        if self.budget_left() == 0 {
            return false;
        }
        self.ladder.ring();
        self.sim.stats_mut().ring_repairs += 1;
        self.repair_status_left = self.plan.cons_status;
        for i in 0..self.sim.nodes().len() {
            self.sim.node_mut(NodeId::new(i)).repair_ring(ring);
        }
        let cons = self.plan.cons;
        drive_construction(&mut RingRepair { drv: self, ring }, cons);
        for i in 0..self.sim.nodes().len() {
            self.sim.node_mut(NodeId::new(i)).finalize_ring(ring);
        }
        if self.done() {
            return true;
        }
        let bcast = self.plan.bcast_window.min(self.budget_left());
        let _ = self.window(
            bcast,
            Probe::RingUninformed { ring },
            |offset| PhasePos::Broadcast { ring, offset },
            |p| &mut p.repair,
        );
        if self.done() {
            return true;
        }
        if ring + 1 >= self.plan.ring_count {
            return false;
        }
        let budget = self.plan.handoff_window.min(self.budget_left());
        self.window(
            budget,
            Probe::RootsUninformed { ring: ring + 1 },
            |offset| PhasePos::Handoff { ring, offset },
            |p| &mut p.repair,
        ) == WindowEnd::Quiesced
    }

    /// Rung 2 of the recovery [`Ladder`]: regional re-dissemination — every
    /// holder in the failed ring ± 1 floods the payload on the Decay
    /// schedule, covering churn/mobility that moved the frontier across ring
    /// boundaries. Budgeted at two handoff windows from the remaining pool.
    fn regional_repair(&mut self, ring: u32) -> bool {
        if self.budget_left() == 0 {
            return false;
        }
        self.ladder.regional();
        self.sim.stats_mut().regional_repairs += 1;
        let budget = (2 * self.plan.handoff_window).min(self.budget_left());
        let probe = if ring + 1 < self.plan.ring_count {
            Probe::RootsUninformed { ring: ring + 1 }
        } else {
            Probe::RingUninformed { ring }
        };
        self.window(budget, probe, |offset| PhasePos::Regional { ring, offset }, |p| &mut p.repair)
            == WindowEnd::Quiesced
    }

    /// Climbs rungs 1–2 for the failed ring; `true` iff a rung recovered the
    /// handoff (or the run completed outright).
    fn climb_ladder(&mut self, ring: u32) -> bool {
        if self.ring_repair(ring) || self.done() {
            return true;
        }
        self.regional_repair(ring) || self.done()
    }

    fn run(mut self) -> Ghk1Outcome {
        if self.sim.nodes().iter().all(Ghk1Node::has_message) {
            self.completion = Some(0);
        }
        if !self.done() {
            // Phase 1: the collision wave, closed `quiescence_slack` silent
            // status rounds after the frontier stops advancing.
            let _ = self.window(
                self.plan.wave_budget,
                Probe::WaveProgress,
                |offset| PhasePos::Wave { offset },
                |p| &mut p.wave,
            );
        }
        if !self.done() {
            // Phase 2: the shared quiescence-skipping construction driver.
            let cons = self.plan.cons;
            drive_construction(&mut self, cons);
        }
        // All rings constructed in parallel, so this is the run's resident
        // peak: every layered node holds live construction state.
        self.sample_state();
        // End-of-construction echo: every node runs its local block epilogue
        // (pending recruiting results + unassigned-blue fallback), then
        // retires its construction state (labels move inline). The fixed
        // schedule reaches this state lazily through later blocks' rounds;
        // the adaptive driver may have skipped those blocks entirely.
        for i in 0..self.sim.nodes().len() {
            self.sim.node_mut(NodeId::new(i)).finalize_construction();
        }
        'rings: for ring in 0..self.plan.ring_count {
            if self.done() {
                break;
            }
            let _ = self.window(
                self.plan.bcast_window,
                Probe::RingUninformed { ring },
                |offset| PhasePos::Broadcast { ring, offset },
                |p| &mut p.broadcast,
            );
            // The ring's schedule state is live now; sample before anything
            // retires it.
            self.sample_state();
            if ring + 1 < self.plan.ring_count && !self.done() {
                // Handoff with retry-and-backoff: a window that exhausts its
                // budget while the receiving roots still beep is a *failed*
                // handoff — re-publish it with a doubled budget (drawn from
                // the worst-case pool) instead of advancing the cursor into
                // a dead phase. Retries exhausting climbs the recovery
                // ladder for *this* ring (rung-1 ring-local repair, then
                // rung-2 regional re-dissemination); only both rungs failing
                // abandons the ring loop toward the rung-3 fallback,
                // preserving the remaining budget.
                let mut budget = self.plan.handoff_window;
                let mut attempt = 0u32;
                // Once the ladder has fired, the channel has already proven
                // persistently degraded — later failed handoffs skip the
                // doubling retry schedule and climb immediately, instead of
                // burning the full backoff pool per ring.
                let max_retries = if self.ladder.ring_attempted() { 0 } else { HANDOFF_RETRIES };
                loop {
                    let end = self.window(
                        budget,
                        Probe::RootsUninformed { ring: ring + 1 },
                        |offset| PhasePos::Handoff { ring, offset },
                        |p| &mut p.handoff,
                    );
                    if end == WindowEnd::Quiesced || !self.recovery {
                        break;
                    }
                    if attempt >= max_retries {
                        if self.climb_ladder(ring) {
                            break;
                        }
                        break 'rings;
                    }
                    attempt += 1;
                    budget = (budget * 2).min(self.budget_left());
                    if budget == 0 {
                        if self.climb_ladder(ring) {
                            break;
                        }
                        break 'rings;
                    }
                    self.sim.stats_mut().retries += 1;
                }
            }
            // Ring `ring` is done transmitting its schedule (its broadcast
            // window closed and its outgoing handoff — if any — resolved):
            // retire its schedule state so resident memory tracks the active
            // frontier. Repair rungs rebuild from scratch if ever needed.
            for i in 0..self.sim.nodes().len() {
                self.sim.node_mut(NodeId::new(i)).retire_ring(ring);
            }
        }

        // Staged-ladder epilogue: a faulted run that ends uninformed climbs
        // any rung it has not yet attempted — anchored at the frontier ring —
        // before the last resort. Rung 3, the no-knowledge Decay fallback
        // (the Czumaj–Davies regime), is reached only after rungs 1–2 both
        // fired and failed: every holder floods the payload on the Decay
        // schedule and every node adopts it without any ring bookkeeping,
        // bounded by what remains of the worst-case cap. True to the
        // no-knowledge regime, there are no status beeps in rung 3: a vote
        // the faults corrupt must not silence the last-resort phase, so only
        // the delivery-gated completion scan (or the cap) ends it.
        if self.recovery && !self.done() {
            let frontier = self.plan.ring_count - 1;
            if !self.ladder.ring_attempted() {
                let _ = self.ring_repair(frontier);
            }
            if !self.done() && !self.ladder.regional_attempted() {
                let _ = self.regional_repair(frontier);
            }
            if !self.done() && self.ladder.may_fall_back() {
                let left = self.budget_left();
                if left > 0 {
                    self.ladder.arm_fallback(self.sim.round());
                    let run = self.exec_segment(PhasePos::Fallback { offset: 0 }, left);
                    self.phases.fallback += run;
                    self.sim.stats_mut().fallback_rounds += run;
                }
            }
        }

        self.sample_state();
        let mut audit = SchedAudit::default();
        let mut fallbacks = 0;
        for n in self.sim.nodes() {
            audit.absorb(n.audit());
            if n.construction_stats().is_some_and(|s| s.fallback_used) {
                fallbacks += 1;
            }
        }
        Ghk1Outcome {
            completion_round: self.completion,
            plan: *self.plan,
            phases: self.phases,
            stats: self.sim.stats().clone(),
            audit,
            fallbacks,
            fallback_entry: self.ladder.fallback_entry(),
            peak_state_bytes: self.sim.graph().resident_bytes() + self.peak_nodes,
        }
    }
}

impl<T: Topology> ConsDriver for Driver<T> {
    fn cons_quiet(&mut self, probe: ConsProbe) -> Option<bool> {
        self.cons_quiet_impl(probe)
    }

    fn cons_run(&mut self, start: u64, len: u64) {
        // One segment covering the whole 2-slotted sub-window; the shared
        // skip loop only ever requests runs within a single construction
        // schedule segment, which is what keeps `may_act_in` hints valid
        // across the batch.
        let run = self.exec_segment(PhasePos::Construct { offset: 2 * start }, 2 * len);
        self.phases.construct += run;
    }

    fn finished(&self) -> bool {
        self.done()
    }
}

/// Rung-1 view of the driver: the shared construction skip loop restricted
/// to one failed ring. Status rounds draw from the repair status budget and
/// work segments are clamped to the remaining worst-case pool, so a repair
/// can never outgrow the plan's cap.
struct RingRepair<'a, T: Topology> {
    drv: &'a mut Driver<T>,
    ring: u32,
}

impl<T: Topology> ConsDriver for RingRepair<'_, T> {
    fn cons_quiet(&mut self, probe: ConsProbe) -> Option<bool> {
        if self.drv.repair_status_left == 0 || self.drv.budget_left() == 0 {
            return None;
        }
        self.drv.repair_status_left -= 1;
        Some(self.drv.quiet(Probe::RepairCons { ring: self.ring, probe }))
    }

    fn cons_run(&mut self, start: u64, len: u64) {
        // Unslotted: the repair schedule replays construction offsets 1:1
        // (no parity interleave — only one ring is rebuilding).
        let len = len.min(self.drv.budget_left());
        if len == 0 {
            return;
        }
        let run = self
            .drv
            .exec_segment(PhasePos::RepairConstruct { ring: self.ring, offset: start }, len);
        self.drv.phases.repair += run;
    }

    fn finished(&self) -> bool {
        self.drv.done()
    }
}

/// Runs Theorem 1.1 end to end on `graph` from `source` under the given
/// collision mode (the theorem needs [`CollisionMode::Detection`]; the
/// no-detection mode exists for determinism and ablation tests — the wave
/// stalls on dense graphs there, and the run reports `None`).
///
/// Thin wrapper over [`broadcast_single_with`] with the production pacing;
/// prefer the [`crate::run::Scenario`] facade for end-to-end experiments.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn broadcast_single_in_mode(
    graph: &Graph,
    source: NodeId,
    payload: u64,
    params: &Params,
    seed: u64,
    mode: CollisionMode,
) -> Ghk1Outcome {
    broadcast_single_with(graph, source, payload, params, seed, mode, Pacing::Segment)
}

/// [`broadcast_single_in_mode`] with an explicit driver [`Pacing`] — the
/// single core path all Theorem 1.1 entry points (including
/// [`crate::run::Scenario`] with [`crate::run::Workload::Single`]) collapse
/// onto.
///
/// [`Pacing::Segment`] (the production default) batches work rounds through
/// the engine's wake-list fast path; [`Pacing::PerStep`] polls every node
/// every round. The two pacings execute bit-identical round sequences —
/// `tests/determinism.rs` pins the full trace equality.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn broadcast_single_with(
    graph: &Graph,
    source: NodeId,
    payload: u64,
    params: &Params,
    seed: u64,
    mode: CollisionMode,
    pacing: Pacing,
) -> Ghk1Outcome {
    broadcast_single_faulted(graph, source, payload, params, seed, mode, pacing, &FaultPlan::none())
}

/// [`broadcast_single_with`] under a seeded adversarial
/// [`FaultPlan`] (see [`radio_sim::engine::faults`]).
///
/// With [`FaultPlan::none`](radio_sim::FaultPlan::none) the run — trace,
/// statistics and RNG streams — is bit-identical to
/// [`broadcast_single_with`]: fault randomness lives on its own seed
/// streams. The plan's initial topology is `graph`; churn and mobility
/// rewrite it as the run proceeds, and the diameter-derived plan is computed
/// from the *initial* topology (the adversary does not get to re-negotiate
/// the round budget).
///
/// # Panics
///
/// Panics if the graph is empty.
#[expect(clippy::too_many_arguments, reason = "explicit-knob variant of broadcast_single_with")]
pub fn broadcast_single_faulted(
    graph: &Graph,
    source: NodeId,
    payload: u64,
    params: &Params,
    seed: u64,
    mode: CollisionMode,
    pacing: Pacing,
    faults: &FaultPlan,
) -> Ghk1Outcome {
    broadcast_single_on(graph.clone(), source, payload, params, seed, mode, pacing, faults)
}

/// The fully generic Theorem 1.1 entry point: runs the pipeline over any
/// [`Topology`] — a materialized [`Graph`], a shared `Arc<Graph>` (no CSR
/// clone per run), or a streamed
/// [`ImplicitGraph`](radio_sim::ImplicitGraph), whose million-node runs
/// never materialize `O(m)` adjacency. All other single-message entry points
/// collapse onto this one.
///
/// The run — trace, statistics, RNG streams, completion round — depends only
/// on the neighborhoods the topology reports, so a streamed run is
/// bit-identical to the same run over its materialization
/// (`tests/streamed_topology.rs` pins this).
///
/// # Panics
///
/// Panics if the topology is empty, or if `faults` enables churn/mobility
/// over a topology that is not a materialized `Graph` (those fault classes
/// rewrite the topology; see [`Simulator::new_with_faults`]).
#[expect(clippy::too_many_arguments, reason = "explicit-knob variant of broadcast_single_with")]
pub fn broadcast_single_on<T: Topology>(
    topology: T,
    source: NodeId,
    payload: u64,
    params: &Params,
    seed: u64,
    mode: CollisionMode,
    pacing: Pacing,
    faults: &FaultPlan,
) -> Ghk1Outcome {
    assert!(topology.node_count() > 0, "graph must be non-empty");
    let d = bfs_layering(&topology, &[source]).max_level();
    let plan = Rc::new(Ghk1Plan::new(params, d.max(1)));
    let params = Rc::new(params.clone());
    let step: StepCell = Rc::new(Cell::new(Step::Idle));
    let sim = Simulator::new_with_faults(topology, mode, seed, faults.clone(), |id| {
        Ghk1Node::new(
            Rc::clone(&params),
            Rc::clone(&plan),
            Rc::clone(&step),
            id.raw(),
            (id == source).then_some(payload),
        )
        .with_pacing(pacing)
    });
    let recovery = sim.has_faults();
    Driver {
        sim,
        step,
        beep: u64::from(params.beep_interval.max(1)),
        quiescence_slack: params.quiescence_slack,
        cons_status_left: plan.cons_status,
        repair_status_left: 0,
        plan,
        phases: PhaseRounds::default(),
        completion: None,
        recovery,
        ladder: Ladder::new(),
        peak_nodes: 0,
    }
    .run()
}

/// Runs Theorem 1.1 end to end on `graph` from `source` (with collision
/// detection, as the theorem requires).
///
/// Thin wrapper over [`broadcast_single_with`]; prefer the
/// [`crate::run::Scenario`] facade for end-to-end experiments.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn broadcast_single(
    graph: &Graph,
    source: NodeId,
    payload: u64,
    params: &Params,
    seed: u64,
) -> Ghk1Outcome {
    broadcast_single_in_mode(graph, source, payload, params, seed, CollisionMode::Detection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;

    fn check_completes(g: Graph, seed: u64) -> Ghk1Outcome {
        let params = Params::scaled(g.node_count());
        let out = broadcast_single(&g, NodeId::new(0), 0xDADA, &params, seed);
        let done = out.completion_round.unwrap_or_else(|| {
            panic!(
                "broadcast did not complete within {} rounds (plan {:?})",
                out.plan.total_rounds(),
                out.plan
            )
        });
        assert!(
            done <= out.plan.total_rounds(),
            "completion {done} exceeds the worst-case cap {}",
            out.plan.total_rounds()
        );
        assert_eq!(out.phases.total(), out.stats.rounds, "phase accounting must match the run");
        out
    }

    #[test]
    fn completes_on_path() {
        check_completes(generators::path(20), 1);
    }

    #[test]
    fn completes_on_star() {
        check_completes(generators::star(16), 2);
    }

    #[test]
    fn completes_on_grid() {
        check_completes(generators::grid(5, 5), 3);
    }

    #[test]
    fn completes_on_cluster_chain() {
        check_completes(generators::cluster_chain(5, 5), 4);
    }

    #[test]
    fn completes_on_random_graph() {
        let mut rng = stream_rng(11, 0);
        let g = generators::gnp_connected(40, 0.1, &mut rng);
        check_completes(g, 5);
    }

    #[test]
    fn completes_with_forced_rings() {
        // Force small rings so the multi-ring path (parallel construction,
        // handoffs) is exercised.
        let g = generators::cluster_chain(8, 4);
        let mut params = Params::scaled(32);
        params.ring_width = Some(4);
        let out = broadcast_single(&g, NodeId::new(0), 99, &params, 6);
        assert!(out.plan.ring_count > 1, "expected multiple rings");
        assert!(
            out.completion_round.is_some(),
            "multi-ring broadcast failed (plan {:?})",
            out.plan
        );
    }

    #[test]
    fn adaptive_run_is_far_below_the_cap() {
        // The whole point of adaptivity: actual rounds ≪ worst-case budget.
        let out = check_completes(generators::cluster_chain(10, 5), 7);
        let done = out.completion_round.unwrap();
        assert!(
            done * 10 <= out.plan.total_rounds(),
            "adaptive run ({done}) should be at least 10x below the cap ({})",
            out.plan.total_rounds()
        );
        assert!(out.phases.status > 0, "no status rounds were spent");
    }

    #[test]
    fn phase_budgets_compose_into_the_cap() {
        let params = Params::scaled(64);
        let plan = Ghk1Plan::new(&params, 10);
        assert!(plan.wave_budget >= 10, "wave budget must cover D rounds");
        assert_eq!(
            plan.total_rounds(),
            plan.wave_budget
                + plan.cons_rounds
                + plan.cons_status
                + u64::from(plan.ring_count) * plan.bcast_window
                + u64::from(plan.ring_count - 1) * plan.handoff_window
        );

        let mut p2 = params.clone();
        p2.ring_width = Some(3);
        let plan2 = Ghk1Plan::new(&p2, 10);
        assert!(plan2.ring_count > 1);
        assert!(
            plan2.cons_rounds < plan.cons_rounds || plan.ring_count > 1,
            "narrow rings must shrink the (parallel) construction budget"
        );
    }

    #[test]
    fn single_node_graph_trivially_done() {
        let g = Graph::from_edges(1, []).unwrap();
        let params = Params::scaled(1);
        let out = broadcast_single(&g, NodeId::new(0), 1, &params, 0);
        assert_eq!(out.completion_round, Some(0));
    }

    #[test]
    fn no_detection_mode_reports_failure_not_panic() {
        // Without CD the wave jams on this diamond; the pipeline must cap
        // out gracefully.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let params = Params::scaled(4);
        let out =
            broadcast_single_in_mode(&g, NodeId::new(0), 1, &params, 0, CollisionMode::NoDetection);
        assert!(out.completion_round.is_none());
        assert!(out.phases.total() <= out.plan.total_rounds());
    }
}
