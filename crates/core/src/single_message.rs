//! Single-message broadcast in `O(D + log^6 n)` rounds with collision
//! detection (Theorem 1.1).
//!
//! The pipeline, exactly as in the paper's proof:
//!
//! 1. **Collision-wave layering** (`D` rounds, needs CD) — every node learns
//!    its BFS distance from the source;
//! 2. **Ring decomposition** — layers are grouped into rings of
//!    [`Params::ring_width_for`] consecutive layers; ring `j`'s roots are its
//!    innermost layer;
//! 3. **Parallel per-ring distributed GST construction** — every ring builds
//!    a GST forest of its induced layering via
//!    [`crate::construction::GstConstructionNode`];
//!    adjacent rings are interleaved on even/odd rounds
//!    ([`Slotted`](crate::construction::Slotted)-style), which removes the
//!    boundary interference the paper leaves implicit;
//! 4. **Ring-by-ring broadcast** — inside ring `j` the message is broadcast
//!    atop the GST with the schedule of Section 3.2 specialized to one
//!    message and keyed on ring-local *levels* (the Gasieniec–Peleg–Xin
//!    black-box role: `O(D' + log^2 n)` per ring; no virtual distances are
//!    needed for `k = 1`), then `Θ(log^2 n)` rounds of Decay hand the message
//!    from ring `j`'s outer boundary to ring `j+1`'s roots.
//!
//! Graphs whose diameter is below `2 log^2 n` use a single ring (the paper's
//! footnote 7), which is the common case at simulation scale; experiment E12
//! forces small rings to exercise the multi-ring machinery.

use crate::construction::{ConstructionSchedule, GstConstructionNode, GstMsg};
use crate::decay::DecaySchedule;
use crate::layering::{Beep, CollisionWaveLayering};
use crate::params::Params;
use crate::schedule::{
    EmptyBehavior, MmvScheduleNode, SchedAudit, SchedLabels, SchedMsg, ScheduleConfig, SlowKey,
};
use radio_sim::model::PacketBits;
use radio_sim::{Action, CollisionMode, Graph, NodeId, Observation, Protocol, Simulator};
use rand::rngs::SmallRng;
use rlnc::gf2::BitVec;

/// Messages of the Theorem 1.1 pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ghk1Msg {
    /// Collision-wave beep.
    Wave(Beep),
    /// GST-construction traffic.
    Gst(GstMsg),
    /// In-ring broadcast traffic.
    Sched(SchedMsg),
    /// Inter-ring handoff carrying the message payload.
    Handoff(u64),
}

impl PacketBits for Ghk1Msg {
    fn packet_bits(&self) -> usize {
        2 + match self {
            Ghk1Msg::Wave(b) => b.packet_bits(),
            Ghk1Msg::Gst(m) => m.packet_bits(),
            Ghk1Msg::Sched(m) => m.packet_bits(),
            Ghk1Msg::Handoff(_) => 64,
        }
    }
}

/// The static phase plan of the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ghk1Plan {
    /// Diameter bound `D` (wave rounds).
    pub d_bound: u32,
    /// Ring width in layers.
    pub ring_width: u32,
    /// Number of rings.
    pub ring_count: u32,
    /// Per-ring construction schedule (ring-local levels `0..ring_width`).
    pub cons: ConstructionSchedule,
    /// Rounds of the (2-slotted) construction phase.
    pub cons_rounds: u64,
    /// Rounds of one in-ring broadcast window.
    pub bcast_window: u64,
    /// Rounds of one inter-ring handoff window.
    pub handoff_window: u64,
}

/// Phases of the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ghk1Phase {
    /// Collision-wave layering.
    Wave {
        /// Round within the wave.
        offset: u64,
    },
    /// Parallel slotted GST construction.
    Construct {
        /// Round within the phase.
        offset: u64,
    },
    /// In-ring broadcast window of `ring`.
    Broadcast {
        /// The active ring.
        ring: u32,
        /// Round within the window.
        offset: u64,
    },
    /// Handoff from `ring` to `ring + 1`.
    Handoff {
        /// The transmitting ring.
        ring: u32,
        /// Round within the window.
        offset: u64,
    },
    /// Pipeline finished.
    Done,
}

impl Ghk1Plan {
    /// Builds the plan for diameter bound `d_bound` under `params`.
    pub fn new(params: &Params, d_bound: u32) -> Self {
        let d_bound = d_bound.max(1);
        let ring_width = params.ring_width_for(d_bound).min(d_bound + 1);
        let ring_count = (d_bound + 1).div_ceil(ring_width);
        let cons = ConstructionSchedule::new(params, ring_width - 1);
        let slack = u64::from(params.window_slack);
        let l2 = u64::from(params.log_n) * u64::from(params.log_n);
        Ghk1Plan {
            d_bound,
            ring_width,
            ring_count,
            cons,
            cons_rounds: 2 * cons.total_rounds(),
            bcast_window: slack * (2 * u64::from(ring_width) + 2 * l2),
            handoff_window: slack * l2,
        }
    }

    /// Total pipeline rounds.
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.d_bound)
            + self.cons_rounds
            + u64::from(self.ring_count) * self.bcast_window
            + u64::from(self.ring_count.saturating_sub(1)) * self.handoff_window
    }

    /// Resolves round `t` to its phase.
    pub fn phase(&self, t: u64) -> Ghk1Phase {
        let mut t = t;
        if t < u64::from(self.d_bound) {
            return Ghk1Phase::Wave { offset: t };
        }
        t -= u64::from(self.d_bound);
        if t < self.cons_rounds {
            return Ghk1Phase::Construct { offset: t };
        }
        t -= self.cons_rounds;
        let cycle = self.bcast_window + self.handoff_window;
        let ring = u32::try_from(t / cycle).expect("fits");
        if ring >= self.ring_count {
            return Ghk1Phase::Done;
        }
        let in_cycle = t % cycle;
        if in_cycle < self.bcast_window {
            Ghk1Phase::Broadcast { ring, offset: in_cycle }
        } else if ring + 1 < self.ring_count {
            Ghk1Phase::Handoff { ring, offset: in_cycle - self.bcast_window }
        } else {
            Ghk1Phase::Done
        }
    }
}

/// One node of the Theorem 1.1 pipeline.
#[derive(Clone, Debug)]
pub struct Ghk1Node {
    id: u32,
    params: Params,
    plan: Ghk1Plan,
    wave: CollisionWaveLayering,
    /// Ring index and ring-local level, known after the wave.
    ring: Option<(u32, u32)>,
    cons: Option<GstConstructionNode>,
    sched: Option<MmvScheduleNode>,
    message: Option<u64>,
    decay: DecaySchedule,
}

impl Ghk1Node {
    /// A pipeline node; the source holds `message`.
    pub fn new(params: &Params, plan: Ghk1Plan, id: u32, message: Option<u64>) -> Self {
        Ghk1Node {
            id,
            params: params.clone(),
            plan,
            wave: CollisionWaveLayering::new(message.is_some()),
            ring: None,
            cons: None,
            sched: None,
            message,
            decay: DecaySchedule::new(params.decay_phase_len()),
        }
    }

    /// Whether this node holds (or has decoded) the message.
    pub fn has_message(&self) -> bool {
        self.message.is_some() || self.sched.as_ref().is_some_and(MmvScheduleNode::is_complete)
    }

    /// The message, once held.
    pub fn message(&self) -> Option<u64> {
        self.message
    }

    /// The node's BFS layer, once learned.
    pub fn layer(&self) -> Option<u32> {
        self.wave.level()
    }

    /// Schedule audit counters from the broadcast phase.
    pub fn audit(&self) -> SchedAudit {
        self.sched.as_ref().map(|s| s.audit()).unwrap_or_default()
    }

    /// Construction fallback/orphan accounting.
    pub fn construction_stats(&self) -> Option<crate::construction::NodeStats> {
        self.cons.as_ref().map(|c| c.stats())
    }

    /// Harvests the decoded message out of the schedule node, if complete.
    fn harvest(&mut self) {
        if self.message.is_none() {
            if let Some(s) = &self.sched {
                if let Some(decoded) = s.decoder().decode() {
                    let mut value = 0u64;
                    for (b, bit) in (0..64).zip(0..decoded[0].len().min(64)) {
                        if decoded[0].get(bit) {
                            value |= 1 << b;
                        }
                    }
                    self.message = Some(value);
                }
            }
        }
    }

    fn ensure_ring(&mut self) {
        if self.ring.is_none() {
            if let Some(layer) = self.wave.level() {
                let ring = layer / self.plan.ring_width;
                let ring_level = layer % self.plan.ring_width;
                self.ring = Some((ring, ring_level));
            }
        }
    }

    fn ensure_cons(&mut self) {
        self.ensure_ring();
        if self.cons.is_none() {
            if let Some((_, ring_level)) = self.ring {
                self.cons = Some(GstConstructionNode::new(
                    &self.params,
                    self.plan.cons,
                    self.id,
                    ring_level,
                ));
            }
        }
    }

    fn ensure_sched(&mut self) {
        if self.sched.is_none() {
            if let (Some(cons), Some((_, _))) = (&self.cons, self.ring) {
                let l = cons.labels();
                let labels = SchedLabels {
                    level: l.level,
                    rank: l.rank,
                    vdist: 0,
                    stretch_start: l.is_stretch_start(),
                    fast_transmitter: l.has_stretch_child,
                    in_stretch: l.in_stretch(),
                };
                let cfg = ScheduleConfig {
                    log_n: self.params.log_n,
                    slow_key: SlowKey::Level,
                    empty: EmptyBehavior::Silent,
                };
                let mut node = MmvScheduleNode::new(cfg, labels, 1, 64);
                if let Some(m) = self.message {
                    node = node.with_messages(&[BitVec::from_u64(m, 64)]);
                }
                self.sched = Some(node);
            }
        }
    }
}

impl Protocol for Ghk1Node {
    type Msg = Ghk1Msg;

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<Ghk1Msg> {
        match self.plan.phase(round) {
            Ghk1Phase::Wave { offset } => match self.wave.act(offset, rng) {
                Action::Transmit(b) => Action::Transmit(Ghk1Msg::Wave(b)),
                Action::Listen => Action::Listen,
            },
            Ghk1Phase::Construct { offset } => {
                self.ensure_cons();
                let Some((ring, _)) = self.ring else { return Action::Listen };
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                match self.cons.as_mut().expect("created above").act(offset / 2, rng) {
                    Action::Transmit(m) => Action::Transmit(Ghk1Msg::Gst(m)),
                    Action::Listen => Action::Listen,
                }
            }
            Ghk1Phase::Broadcast { ring, offset } => {
                self.ensure_sched();
                let Some((my_ring, _)) = self.ring else { return Action::Listen };
                if my_ring != ring {
                    return Action::Listen;
                }
                // A late holder (handoff) seeds the schedule decoder lazily.
                if offset == 0 {
                    if let (Some(m), Some(s)) = (self.message, &mut self.sched) {
                        if s.decoder().is_empty() {
                            *s = s.clone().with_messages(&[BitVec::from_u64(m, 64)]);
                        }
                    }
                }
                match self.sched.as_mut().expect("created above").act(offset, rng) {
                    Action::Transmit(m) => Action::Transmit(Ghk1Msg::Sched(m)),
                    Action::Listen => Action::Listen,
                }
            }
            Ghk1Phase::Handoff { ring, offset } => {
                self.harvest();
                let Some((my_ring, ring_level)) = self.ring else { return Action::Listen };
                let outer = my_ring == ring && ring_level == self.plan.ring_width - 1;
                if let Some(m) = self.message {
                    if outer && self.decay.fires(offset, rng) {
                        return Action::Transmit(Ghk1Msg::Handoff(m));
                    }
                }
                Action::Listen
            }
            Ghk1Phase::Done => {
                self.harvest();
                Action::Listen
            }
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<Ghk1Msg>, rng: &mut SmallRng) {
        match self.plan.phase(round) {
            Ghk1Phase::Wave { offset } => {
                let mapped = match obs {
                    Observation::Message(Ghk1Msg::Wave(b)) => Observation::Message(b),
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                self.wave.observe(offset, mapped, rng);
            }
            Ghk1Phase::Construct { offset } => {
                let Some((ring, _)) = self.ring else { return };
                if offset % 2 != u64::from(ring % 2) {
                    return;
                }
                let mapped = match obs {
                    Observation::Message(Ghk1Msg::Gst(m)) => Observation::Message(m),
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(c) = self.cons.as_mut() {
                    c.observe(offset / 2, mapped, rng);
                }
            }
            Ghk1Phase::Broadcast { ring, offset } => {
                let Some((my_ring, _)) = self.ring else { return };
                if my_ring != ring {
                    return;
                }
                let mapped = match obs {
                    Observation::Message(Ghk1Msg::Sched(m)) => Observation::Message(m),
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(s) = self.sched.as_mut() {
                    s.observe(offset, mapped, rng);
                }
            }
            Ghk1Phase::Handoff { ring, .. } => {
                let Some((my_ring, ring_level)) = self.ring else { return };
                if my_ring == ring + 1 && ring_level == 0 && self.message.is_none() {
                    if let Observation::Message(Ghk1Msg::Handoff(m)) = obs {
                        self.message = Some(m);
                    }
                }
            }
            Ghk1Phase::Done => {}
        }
    }
}

/// Outcome of a full pipeline run.
#[derive(Clone, Debug)]
pub struct Ghk1Outcome {
    /// Round at which every node held the message, `None` on failure.
    pub completion_round: Option<u64>,
    /// The plan that was executed.
    pub plan: Ghk1Plan,
    /// Aggregated schedule audit.
    pub audit: SchedAudit,
    /// Nodes that used the construction fallback.
    pub fallbacks: usize,
}

/// Runs Theorem 1.1 end to end on `graph` from `source`.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn broadcast_single(
    graph: &Graph,
    source: NodeId,
    payload: u64,
    params: &Params,
    seed: u64,
) -> Ghk1Outcome {
    use radio_sim::graph::Traversal;
    assert!(graph.node_count() > 0, "graph must be non-empty");
    let d = graph.bfs(source).max_level();
    let plan = Ghk1Plan::new(params, d.max(1));
    let mut sim = Simulator::new(graph.clone(), CollisionMode::Detection, seed, |id| {
        Ghk1Node::new(params, plan, id.raw(), (id == source).then_some(payload))
    });
    let completion_round =
        sim.run_until(plan.total_rounds() + 1, |nodes| nodes.iter().all(Ghk1Node::has_message));
    let mut audit = SchedAudit::default();
    let mut fallbacks = 0;
    for n in sim.nodes() {
        let a = n.audit();
        audit.fast_collisions_bystander += a.fast_collisions_bystander;
        audit.fast_collisions_in_stretch += a.fast_collisions_in_stretch;
        audit.slow_collisions += a.slow_collisions;
        if n.construction_stats().is_some_and(|s| s.fallback_used) {
            fallbacks += 1;
        }
    }
    Ghk1Outcome { completion_round, plan, audit, fallbacks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;

    fn check_completes(g: Graph, seed: u64) -> Ghk1Outcome {
        let params = Params::scaled(g.node_count());
        let out = broadcast_single(&g, NodeId::new(0), 0xDADA, &params, seed);
        assert!(
            out.completion_round.is_some(),
            "broadcast did not complete within {} rounds (plan {:?})",
            out.plan.total_rounds(),
            out.plan
        );
        out
    }

    #[test]
    fn completes_on_path() {
        check_completes(generators::path(20), 1);
    }

    #[test]
    fn completes_on_star() {
        check_completes(generators::star(16), 2);
    }

    #[test]
    fn completes_on_grid() {
        check_completes(generators::grid(5, 5), 3);
    }

    #[test]
    fn completes_on_cluster_chain() {
        check_completes(generators::cluster_chain(5, 5), 4);
    }

    #[test]
    fn completes_on_random_graph() {
        let mut rng = stream_rng(11, 0);
        let g = generators::gnp_connected(40, 0.1, &mut rng);
        check_completes(g, 5);
    }

    #[test]
    fn completes_with_forced_rings() {
        // Force small rings so the multi-ring path (parallel construction,
        // handoffs) is exercised.
        let g = generators::cluster_chain(8, 4);
        let mut params = Params::scaled(32);
        params.ring_width = Some(4);
        let out = broadcast_single(&g, NodeId::new(0), 99, &params, 6);
        assert!(out.plan.ring_count > 1, "expected multiple rings");
        assert!(
            out.completion_round.is_some(),
            "multi-ring broadcast failed (plan {:?})",
            out.plan
        );
    }

    #[test]
    fn plan_phases_partition_rounds() {
        let params = Params::scaled(64);
        let mut p2 = params.clone();
        p2.ring_width = Some(3);
        let plan = Ghk1Plan::new(&p2, 10);
        assert!(plan.ring_count > 1);
        let mut seen_handoff = false;
        let mut seen_bcast = vec![false; plan.ring_count as usize];
        for t in 0..plan.total_rounds() {
            match plan.phase(t) {
                Ghk1Phase::Broadcast { ring, .. } => seen_bcast[ring as usize] = true,
                Ghk1Phase::Handoff { .. } => seen_handoff = true,
                _ => {}
            }
        }
        assert!(seen_handoff);
        assert!(seen_bcast.iter().all(|&b| b));
        assert_eq!(plan.phase(plan.total_rounds()), Ghk1Phase::Done);
    }

    #[test]
    fn single_node_graph_trivially_done() {
        let g = Graph::from_edges(1, []).unwrap();
        let params = Params::scaled(1);
        let out = broadcast_single(&g, NodeId::new(0), 1, &params, 0);
        assert_eq!(out.completion_round, Some(0));
    }
}
