//! k-message broadcast (Theorems 1.2 and 1.3).
//!
//! * [`broadcast_known`] — **Theorem 1.2**, known topology: every node
//!   computes the same GST and virtual distances locally (no communication),
//!   then the MMV schedule of Section 3.2 runs with RLNC
//!   (`O(D + k log n + log^2 n)` rounds). The slow-key and empty-behavior
//!   knobs expose the E8 ablation (level keying) and the MMV noise stress.
//! * [`GhkMultiNode`] / [`broadcast_unknown`] — **Theorem 1.3**, unknown
//!   topology with collision detection: collision-wave layering → parallel
//!   per-ring distributed GST construction → per-ring distributed
//!   virtual-distance labeling (Lemma 3.10) → dissemination, with message
//!   *batches* pipelined across rings and forward error correction (a random
//!   linear fountain) carrying each batch across ring boundaries
//!   (Section 3.4).
//!
//! Batching: [`BatchMode::FullK`] codes all `k` messages together (simple,
//! `k`-bit coefficient vectors — the packet-budget audit of E14 flags the
//! overhead when `k ≫ log n`); [`BatchMode::Generations`] keeps batches at
//! `Θ(log n)` messages, the paper's coefficient-overhead fix, and pipelines
//! the batches across rings.

use crate::construction::{ConstructionSchedule, GstConstructionNode, GstMsg};
use crate::decay::DecaySchedule;
use crate::layering::{Beep, CollisionWaveLayering};
use crate::params::Params;
use crate::schedule::{
    EmptyBehavior, MmvScheduleNode, SchedAudit, SchedLabels, SchedMsg, ScheduleConfig, SlowKey,
};
use crate::virtual_labels::{VirtualLabelNode, VlMsg, VlSchedule};
use radio_sim::model::PacketBits;
use radio_sim::{Action, CollisionMode, Graph, NodeId, Observation, Protocol, Simulator};
use rand::rngs::SmallRng;
use rlnc::gf2::BitVec;
use rlnc::{CodedPacket, Decoder};

/// Outcome of a multi-message run.
#[derive(Clone, Debug)]
pub struct MultiOutcome {
    /// Round at which every node decoded everything, `None` on timeout.
    pub completion_round: Option<u64>,
    /// Rounds budgeted/executed.
    pub rounds_budget: u64,
    /// Aggregated schedule audit counters.
    pub audit: SchedAudit,
}

/// Theorem 1.2: known-topology k-message broadcast.
///
/// Builds the GST and virtual distances centrally (the shared-knowledge
/// model), then runs the MMV schedule with RLNC until every node decodes all
/// messages or `max_rounds` elapse.
///
/// # Panics
///
/// Panics if `messages` is empty or the graph is empty.
// Every argument is an independent experiment knob the benches sweep; a
// config struct would just push the same eight names one level down.
#[allow(clippy::too_many_arguments)]
pub fn broadcast_known(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    slow_key: SlowKey,
    empty: EmptyBehavior,
    max_rounds: u64,
) -> MultiOutcome {
    assert!(!messages.is_empty(), "need at least one message");
    assert!(graph.node_count() > 0, "graph must be non-empty");
    let k = messages.len();
    let payload_bits = messages[0].len();
    let mut rng = radio_sim::rng::stream_rng(seed, 1000);
    let (tree, _) = gst::build_gst(
        graph,
        &[source],
        &mut rng,
        &gst::BuildConfig::for_nodes(graph.node_count()),
    );
    let vd = gst::VirtualDistances::compute(graph, &tree);
    let cfg = ScheduleConfig { log_n: params.log_n, slow_key, empty };
    let mut sim = Simulator::new(graph.clone(), CollisionMode::NoDetection, seed, |id| {
        let node =
            MmvScheduleNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), k, payload_bits);
        if id == source {
            node.with_messages(messages)
        } else {
            node
        }
    });
    let completion_round =
        sim.run_until(max_rounds, |nodes| nodes.iter().all(MmvScheduleNode::is_complete));
    let mut audit = SchedAudit::default();
    for n in sim.nodes() {
        let a = n.audit();
        audit.fast_collisions_bystander += a.fast_collisions_bystander;
        audit.fast_collisions_in_stretch += a.fast_collisions_in_stretch;
        audit.slow_collisions += a.slow_collisions;
    }
    MultiOutcome { completion_round, rounds_budget: max_rounds, audit }
}

/// How messages are grouped for coding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchMode {
    /// One batch holding all `k` messages.
    FullK,
    /// Batches of at most the given size (the paper's `Θ(log n)`).
    Generations(usize),
}

impl BatchMode {
    fn batch_size(&self, k: usize) -> usize {
        match *self {
            BatchMode::FullK => k,
            BatchMode::Generations(g) => g.max(1).min(k),
        }
    }
}

/// Messages of the Theorem 1.3 pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GhkMMsg {
    /// Collision-wave beep.
    Wave(Beep),
    /// GST construction traffic.
    Gst(GstMsg),
    /// Virtual-labeling traffic.
    Vl(VlMsg),
    /// In-ring dissemination traffic, tagged with its batch.
    Sched {
        /// Batch index.
        batch: u32,
        /// The schedule packet.
        msg: SchedMsg,
    },
    /// Ring-boundary FEC packet of a batch.
    Fec {
        /// Batch index.
        batch: u32,
        /// A fountain packet over the batch.
        packet: CodedPacket,
    },
}

impl PacketBits for GhkMMsg {
    fn packet_bits(&self) -> usize {
        3 + match self {
            GhkMMsg::Wave(b) => b.packet_bits(),
            GhkMMsg::Gst(m) => m.packet_bits(),
            GhkMMsg::Vl(m) => m.packet_bits(),
            GhkMMsg::Sched { msg, .. } => 16 + msg.packet_bits(),
            GhkMMsg::Fec { packet, .. } => 16 + packet.packet_bits(),
        }
    }
}

/// The static phase plan of the Theorem 1.3 pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GhkMultiPlan {
    /// Diameter bound (wave rounds).
    pub d_bound: u32,
    /// Ring width in layers.
    pub ring_width: u32,
    /// Number of rings.
    pub ring_count: u32,
    /// Number of message batches.
    pub batch_count: u32,
    /// Messages per batch (last may be short).
    pub batch_size: u32,
    /// Total messages.
    pub k: u32,
    /// Per-ring construction schedule.
    pub cons: ConstructionSchedule,
    /// Rounds of the 2-slotted construction phase.
    pub cons_rounds: u64,
    /// Per-ring virtual labeling schedule.
    pub vl: VlSchedule,
    /// Rounds of the 2-slotted labeling phase.
    pub vl_rounds: u64,
    /// Rounds of one in-ring dissemination window.
    pub window: u64,
    /// Rounds of one (2-slotted) handoff window.
    pub handoff: u64,
}

/// Phases of the Theorem 1.3 pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhkMultiPhase {
    /// Collision-wave layering.
    Wave {
        /// Round within the wave.
        offset: u64,
    },
    /// Slotted per-ring GST construction.
    Construct {
        /// Round within the phase.
        offset: u64,
    },
    /// Slotted per-ring virtual labeling.
    Label {
        /// Round within the phase.
        offset: u64,
    },
    /// Pipelined dissemination window `w` (ring `j` works on batch `w - j`).
    Disseminate {
        /// Window index.
        window: u32,
        /// Round within the window.
        offset: u64,
    },
    /// Handoff slot after window `w`.
    Handoff {
        /// Window index.
        window: u32,
        /// Round within the handoff.
        offset: u64,
    },
    /// Pipeline finished.
    Done,
}

impl GhkMultiPlan {
    /// Builds the plan for `k` messages under `params`.
    pub fn new(params: &Params, d_bound: u32, k: usize, mode: BatchMode) -> Self {
        let d_bound = d_bound.max(1);
        let ring_width = params.ring_width_for(d_bound).min(d_bound + 1);
        let ring_count = (d_bound + 1).div_ceil(ring_width);
        let batch_size = mode.batch_size(k);
        let batch_count = k.div_ceil(batch_size);
        let cons = ConstructionSchedule::new(params, ring_width - 1);
        let vl = VlSchedule::new(params, ring_width.saturating_sub(1).max(1));
        let slack = u64::from(params.window_slack);
        let l = u64::from(params.log_n);
        let window = slack * (2 * u64::from(ring_width) + 2 * batch_size as u64 * l + 2 * l * l);
        let handoff = 2 * slack * l * (batch_size as u64 + 4);
        GhkMultiPlan {
            d_bound,
            ring_width,
            ring_count,
            batch_count: u32::try_from(batch_count).expect("fits"),
            batch_size: u32::try_from(batch_size).expect("fits"),
            k: u32::try_from(k).expect("fits"),
            cons,
            cons_rounds: 2 * cons.total_rounds(),
            vl,
            vl_rounds: 2 * vl.total_rounds(),
            window,
            handoff,
        }
    }

    /// Number of pipelined windows: every (ring, batch) pair is covered.
    pub fn window_count(&self) -> u32 {
        self.ring_count + self.batch_count - 1
    }

    /// The batch ring `j` works on during window `w`, if any.
    pub fn batch_in_window(&self, window: u32, ring: u32) -> Option<u32> {
        let b = window.checked_sub(ring)?;
        (b < self.batch_count).then_some(b)
    }

    /// Global message indices of batch `b`.
    pub fn batch_range(&self, b: u32) -> std::ops::Range<usize> {
        let start = (b * self.batch_size) as usize;
        let end = ((b + 1) * self.batch_size).min(self.k) as usize;
        start..end
    }

    /// Total pipeline rounds.
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.d_bound)
            + self.cons_rounds
            + self.vl_rounds
            + u64::from(self.window_count()) * (self.window + self.handoff)
    }

    /// Resolves round `t` to its phase.
    pub fn phase(&self, t: u64) -> GhkMultiPhase {
        let mut t = t;
        if t < u64::from(self.d_bound) {
            return GhkMultiPhase::Wave { offset: t };
        }
        t -= u64::from(self.d_bound);
        if t < self.cons_rounds {
            return GhkMultiPhase::Construct { offset: t };
        }
        t -= self.cons_rounds;
        if t < self.vl_rounds {
            return GhkMultiPhase::Label { offset: t };
        }
        t -= self.vl_rounds;
        let cycle = self.window + self.handoff;
        let w = u32::try_from(t / cycle).expect("fits");
        if w >= self.window_count() {
            return GhkMultiPhase::Done;
        }
        let in_cycle = t % cycle;
        if in_cycle < self.window {
            GhkMultiPhase::Disseminate { window: w, offset: in_cycle }
        } else {
            GhkMultiPhase::Handoff { window: w, offset: in_cycle - self.window }
        }
    }
}

/// The schedule instance of the window a node is currently in.
#[derive(Clone, Debug)]
struct ActiveWindow {
    window: u32,
    batch: u32,
    node: MmvScheduleNode,
}

/// Per-batch state of a pipeline node.
#[derive(Clone, Debug, Default)]
struct BatchState {
    decoded: Option<Vec<BitVec>>,
    /// FEC receiver state (ring roots during handoffs).
    fec: Option<Decoder>,
}

/// One node of the Theorem 1.3 pipeline.
#[derive(Clone, Debug)]
pub struct GhkMultiNode {
    id: u32,
    params: Params,
    plan: GhkMultiPlan,
    payload_bits: usize,
    wave: CollisionWaveLayering,
    ring: Option<(u32, u32)>,
    cons: Option<GstConstructionNode>,
    vl: Option<VirtualLabelNode>,
    sched: Option<ActiveWindow>,
    batches: Vec<BatchState>,
    /// Window-drop counter (batch incomplete at window end).
    drops: u64,
    decay: DecaySchedule,
}

impl GhkMultiNode {
    /// A pipeline node; the source holds all `messages`.
    pub fn new(
        params: &Params,
        plan: GhkMultiPlan,
        id: u32,
        payload_bits: usize,
        messages: Option<Vec<BitVec>>,
    ) -> Self {
        let mut batches: Vec<BatchState> =
            (0..plan.batch_count).map(|_| BatchState::default()).collect();
        let is_source = messages.is_some();
        if let Some(msgs) = messages {
            for b in 0..plan.batch_count {
                batches[b as usize].decoded = Some(msgs[plan.batch_range(b)].to_vec());
            }
        }
        GhkMultiNode {
            id,
            params: params.clone(),
            plan,
            payload_bits,
            wave: CollisionWaveLayering::new(is_source),
            ring: None,
            cons: None,
            vl: None,
            sched: None,
            batches,
            drops: 0,
            decay: DecaySchedule::new(params.decay_phase_len()),
        }
    }

    /// Whether every batch is decoded.
    pub fn is_complete(&self) -> bool {
        self.batches.iter().all(|b| b.decoded.is_some())
    }

    /// All decoded messages in order, once complete.
    pub fn messages(&self) -> Option<Vec<BitVec>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::with_capacity(self.plan.k as usize);
        for b in &self.batches {
            out.extend(b.decoded.clone().expect("checked complete"));
        }
        Some(out)
    }

    /// Batches dropped at window boundaries (restart events).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Schedule audit from the current/last window.
    pub fn audit(&self) -> SchedAudit {
        self.sched.as_ref().map(|a| a.node.audit()).unwrap_or_default()
    }

    fn ensure_ring(&mut self) {
        if self.ring.is_none() {
            if let Some(layer) = self.wave.level() {
                self.ring = Some((layer / self.plan.ring_width, layer % self.plan.ring_width));
            }
        }
    }

    fn ensure_cons(&mut self) {
        self.ensure_ring();
        if self.cons.is_none() {
            if let Some((_, ring_level)) = self.ring {
                self.cons = Some(GstConstructionNode::new(
                    &self.params,
                    self.plan.cons,
                    self.id,
                    ring_level,
                ));
            }
        }
    }

    fn ensure_vl(&mut self) {
        if self.vl.is_none() {
            if let Some(cons) = &self.cons {
                self.vl = Some(VirtualLabelNode::new(self.plan.vl, self.id, cons.labels()));
            }
        }
    }

    fn sched_labels(&self) -> Option<SchedLabels> {
        let vl = self.vl.as_ref()?;
        let l = vl.labels();
        Some(SchedLabels {
            level: l.level,
            rank: l.rank,
            // Unlabelled nodes (labeling failure) fall back to the cap.
            vdist: vl.vdist().unwrap_or(2 * self.params.log_n),
            stretch_start: l.is_stretch_start(),
            fast_transmitter: l.has_stretch_child,
            in_stretch: l.in_stretch(),
        })
    }

    /// Starts (or reuses) the schedule node for window `w`.
    fn ensure_window(&mut self, window: u32) {
        let Some((ring, _)) = self.ring else { return };
        if self.sched.as_ref().is_some_and(|a| a.window == window) {
            return;
        }
        // Harvest the previous window first.
        self.harvest_window();
        let Some(batch) = self.plan.batch_in_window(window, ring) else {
            self.sched = None;
            return;
        };
        let Some(labels) = self.sched_labels() else { return };
        let cfg = ScheduleConfig {
            log_n: self.params.log_n,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        };
        let klen = self.plan.batch_range(batch).len();
        let mut node = MmvScheduleNode::new(cfg, labels, klen, self.payload_bits);
        if let Some(decoded) = &self.batches[batch as usize].decoded {
            node = node.with_messages(decoded);
        }
        self.sched = Some(ActiveWindow { window, batch, node });
    }

    /// Stores a completed window's batch, or counts a drop.
    fn harvest_window(&mut self) {
        if let Some(active) = self.sched.take() {
            let slot = &mut self.batches[active.batch as usize];
            if slot.decoded.is_none() {
                match active.node.decoder().decode() {
                    Some(msgs) => slot.decoded = Some(msgs),
                    None => self.drops += 1,
                }
            }
        }
    }

    /// Completes FEC reception for batches whose handoff window ended.
    fn harvest_fec(&mut self, batch: u32) {
        let slot = &mut self.batches[batch as usize];
        if slot.decoded.is_none() {
            if let Some(fec) = &slot.fec {
                if let Some(msgs) = fec.decode() {
                    slot.decoded = Some(msgs);
                }
            }
        }
        slot.fec = None;
    }
}

impl Protocol for GhkMultiNode {
    type Msg = GhkMMsg;

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<GhkMMsg> {
        match self.plan.phase(round) {
            GhkMultiPhase::Wave { offset } => match self.wave.act(offset, rng) {
                Action::Transmit(b) => Action::Transmit(GhkMMsg::Wave(b)),
                Action::Listen => Action::Listen,
            },
            GhkMultiPhase::Construct { offset } => {
                self.ensure_cons();
                let Some((ring, _)) = self.ring else { return Action::Listen };
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                match self.cons.as_mut().expect("created").act(offset / 2, rng) {
                    Action::Transmit(m) => Action::Transmit(GhkMMsg::Gst(m)),
                    Action::Listen => Action::Listen,
                }
            }
            GhkMultiPhase::Label { offset } => {
                self.ensure_vl();
                let Some((ring, _)) = self.ring else { return Action::Listen };
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                match self.vl.as_mut().expect("created").act(offset / 2, rng) {
                    Action::Transmit(m) => Action::Transmit(GhkMMsg::Vl(m)),
                    Action::Listen => Action::Listen,
                }
            }
            GhkMultiPhase::Disseminate { window, offset } => {
                self.ensure_window(window);
                let Some(active) = self.sched.as_mut() else { return Action::Listen };
                let batch = active.batch;
                match active.node.act(offset, rng) {
                    Action::Transmit(msg) => Action::Transmit(GhkMMsg::Sched { batch, msg }),
                    Action::Listen => Action::Listen,
                }
            }
            GhkMultiPhase::Handoff { window, offset } => {
                // Finish the window before handing off.
                self.harvest_window();
                let Some((ring, ring_level)) = self.ring else { return Action::Listen };
                // Slotted by ring parity to keep adjacent handoffs apart.
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                let Some(batch) = self.plan.batch_in_window(window, ring) else {
                    return Action::Listen;
                };
                let outer =
                    ring_level == self.plan.ring_width - 1 && ring + 1 < self.plan.ring_count;
                if !outer {
                    return Action::Listen;
                }
                let Some(decoded) = &self.batches[batch as usize].decoded else {
                    return Action::Listen;
                };
                if self.decay.fires(offset / 2, rng) {
                    let src = Decoder::with_messages(decoded);
                    if let Some(packet) = src.random_combination(rng) {
                        return Action::Transmit(GhkMMsg::Fec { batch, packet });
                    }
                }
                Action::Listen
            }
            GhkMultiPhase::Done => {
                self.harvest_window();
                Action::Listen
            }
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<GhkMMsg>, rng: &mut SmallRng) {
        match self.plan.phase(round) {
            GhkMultiPhase::Wave { offset } => {
                let mapped = match obs {
                    Observation::Message(GhkMMsg::Wave(b)) => Observation::Message(b),
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                self.wave.observe(offset, mapped, rng);
            }
            GhkMultiPhase::Construct { offset } => {
                let Some((ring, _)) = self.ring else { return };
                if offset % 2 != u64::from(ring % 2) {
                    return;
                }
                let mapped = match obs {
                    Observation::Message(GhkMMsg::Gst(m)) => Observation::Message(m),
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(c) = self.cons.as_mut() {
                    c.observe(offset / 2, mapped, rng);
                }
            }
            GhkMultiPhase::Label { offset } => {
                let Some((ring, _)) = self.ring else { return };
                if offset % 2 != u64::from(ring % 2) {
                    return;
                }
                let mapped = match obs {
                    Observation::Message(GhkMMsg::Vl(m)) => Observation::Message(m),
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(v) = self.vl.as_mut() {
                    v.observe(offset / 2, mapped, rng);
                }
            }
            GhkMultiPhase::Disseminate { offset, .. } => {
                let Some(active) = self.sched.as_mut() else { return };
                let mapped = match obs {
                    Observation::Message(GhkMMsg::Sched { batch, msg })
                        if batch == active.batch =>
                    {
                        Observation::Message(msg)
                    }
                    // Other batches' packets are noise for this node.
                    Observation::Message(_) => Observation::Silence,
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                active.node.observe(offset, mapped, rng);
            }
            GhkMultiPhase::Handoff { window, offset } => {
                let Some((ring, ring_level)) = self.ring else { return };
                // Ring roots (level 0) of ring j+1 listen for batch w-(j+1)+1:
                // the batch their predecessor ring just finished = w - (j+1) + 1
                // = w - j ... ring j hands batch (w - j) to ring j+1, whose
                // window for it is w+1. Roots of ring r listen for batch
                // (window - (r - 1)) from ring r-1.
                if ring_level != 0 || ring == 0 {
                    return;
                }
                let Some(batch) = self.plan.batch_in_window(window, ring - 1) else { return };
                if self.batches[batch as usize].decoded.is_some() {
                    return;
                }
                if let Observation::Message(GhkMMsg::Fec { batch: b, packet }) = obs {
                    if b == batch {
                        let klen = self.plan.batch_range(batch).len();
                        let slot = &mut self.batches[batch as usize];
                        let fec =
                            slot.fec.get_or_insert_with(|| Decoder::new(klen, self.payload_bits));
                        fec.insert(packet);
                    }
                }
                // Last handoff round: finalize.
                if offset + 1 == self.plan.handoff {
                    self.harvest_fec(batch);
                }
            }
            GhkMultiPhase::Done => {}
        }
    }
}

/// Runs Theorem 1.3 end to end; returns the outcome plus per-node drop count.
///
/// # Panics
///
/// Panics if `messages` is empty or the graph is empty.
pub fn broadcast_unknown(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    mode: BatchMode,
) -> MultiOutcome {
    use radio_sim::graph::Traversal;
    assert!(!messages.is_empty(), "need at least one message");
    assert!(graph.node_count() > 0, "graph must be non-empty");
    let payload_bits = messages[0].len();
    let d = graph.bfs(source).max_level();
    let plan = GhkMultiPlan::new(params, d.max(1), messages.len(), mode);
    let mut sim = Simulator::new(graph.clone(), CollisionMode::Detection, seed, |id| {
        GhkMultiNode::new(
            params,
            plan,
            id.raw(),
            payload_bits,
            (id == source).then(|| messages.to_vec()),
        )
    });
    let completion_round =
        sim.run_until(plan.total_rounds() + 1, |nodes| nodes.iter().all(GhkMultiNode::is_complete));
    let mut audit = SchedAudit::default();
    for n in sim.nodes() {
        let a = n.audit();
        audit.fast_collisions_bystander += a.fast_collisions_bystander;
        audit.fast_collisions_in_stretch += a.fast_collisions_in_stretch;
        audit.slow_collisions += a.slow_collisions;
    }
    MultiOutcome { completion_round, rounds_budget: plan.total_rounds(), audit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;

    fn msgs(k: usize) -> Vec<BitVec> {
        (0..k as u64).map(|i| BitVec::from_u64(i.wrapping_mul(37) & 0xFFFF, 32)).collect()
    }

    #[test]
    fn known_topology_broadcasts_k_messages() {
        let g = generators::grid(6, 6);
        let params = Params::scaled(36);
        let out = broadcast_known(
            &g,
            NodeId::new(0),
            &msgs(8),
            &params,
            1,
            SlowKey::VirtualDistance,
            EmptyBehavior::Silent,
            300_000,
        );
        assert!(out.completion_round.is_some());
        assert_eq!(out.audit.fast_collisions_in_stretch, 0);
    }

    #[test]
    fn known_topology_payloads_decode_correctly() {
        let g = generators::cluster_chain(4, 5);
        let params = Params::scaled(20);
        let messages = msgs(5);
        // Use the lower-level API to inspect decoded payloads.
        let mut rng = stream_rng(3, 1000);
        let (tree, _) =
            gst::build_gst(&g, &[NodeId::new(0)], &mut rng, &gst::BuildConfig::for_nodes(20));
        let vd = gst::VirtualDistances::compute(&g, &tree);
        let cfg = ScheduleConfig::from_params(&params);
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, 3, |id| {
            let node = MmvScheduleNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), 5, 32);
            if id.index() == 0 {
                node.with_messages(&messages)
            } else {
                node
            }
        });
        let done = sim.run_until(300_000, |nodes| nodes.iter().all(MmvScheduleNode::is_complete));
        assert!(done.is_some());
        for n in sim.nodes() {
            assert_eq!(n.decoder().decode().unwrap(), messages);
        }
    }

    #[test]
    fn unknown_topology_single_ring_full_k() {
        let g = generators::cluster_chain(4, 5);
        let params = Params::scaled(20);
        let out = broadcast_unknown(&g, NodeId::new(0), &msgs(4), &params, 2, BatchMode::FullK);
        assert!(out.completion_round.is_some(), "T1.3 failed within {} rounds", out.rounds_budget);
    }

    #[test]
    fn unknown_topology_on_grid() {
        let g = generators::grid(5, 5);
        let params = Params::scaled(25);
        let out = broadcast_unknown(&g, NodeId::new(0), &msgs(6), &params, 3, BatchMode::FullK);
        assert!(out.completion_round.is_some());
    }

    #[test]
    fn unknown_topology_with_generations_and_rings() {
        // Forced small rings + small generations: exercises batching, FEC
        // handoff and the cross-ring pipeline.
        let g = generators::cluster_chain(8, 3);
        let mut params = Params::scaled(24);
        params.ring_width = Some(4);
        let out =
            broadcast_unknown(&g, NodeId::new(0), &msgs(6), &params, 4, BatchMode::Generations(3));
        assert!(
            out.completion_round.is_some(),
            "pipelined T1.3 failed within {} rounds",
            out.rounds_budget
        );
    }

    #[test]
    fn plan_pipeline_covers_all_ring_batch_pairs() {
        let mut params = Params::scaled(64);
        params.ring_width = Some(3);
        let plan = GhkMultiPlan::new(&params, 11, 10, BatchMode::Generations(4));
        assert!(plan.ring_count > 1);
        assert_eq!(plan.batch_count, 3);
        for ring in 0..plan.ring_count {
            for batch in 0..plan.batch_count {
                let w = ring + batch;
                assert_eq!(plan.batch_in_window(w, ring), Some(batch));
            }
        }
        assert_eq!(plan.batch_in_window(0, 1), None);
        assert_eq!(plan.phase(plan.total_rounds()), GhkMultiPhase::Done);
    }

    #[test]
    fn batch_ranges_partition_messages() {
        let params = Params::scaled(64);
        let plan = GhkMultiPlan::new(&params, 5, 10, BatchMode::Generations(4));
        let mut seen = [false; 10];
        for b in 0..plan.batch_count {
            for i in plan.batch_range(b) {
                assert!(!seen[i], "message {i} in two batches");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
