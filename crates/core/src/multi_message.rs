//! k-message broadcast (Theorems 1.2 and 1.3).
//!
//! * [`broadcast_known`] — **Theorem 1.2**, known topology: every node
//!   computes the same GST and virtual distances locally (no communication),
//!   then the MMV schedule of Section 3.2 runs with RLNC
//!   (`O(D + k log n + log^2 n)` rounds). The slow-key and empty-behavior
//!   knobs expose the E8 ablation (level keying) and the MMV noise stress.
//! * [`GhkMultiNode`] / [`broadcast_unknown`] — **Theorem 1.3**, unknown
//!   topology with collision detection: collision-wave layering → parallel
//!   per-ring distributed GST construction → per-ring distributed
//!   virtual-distance labeling (Lemma 3.10) → dissemination, with message
//!   *batches* pipelined across rings and forward error correction (a random
//!   linear fountain) carrying each batch across ring boundaries
//!   (Section 3.4).
//!
//! Batching: [`BatchMode::FullK`] codes all `k` messages together (simple,
//! `k`-bit coefficient vectors — the packet-budget audit of E14 flags the
//! overhead when `k ≫ log n`); [`BatchMode::Generations`] keeps batches at
//! `Θ(log n)` messages, the paper's coefficient-overhead fix, and pipelines
//! the batches across rings.
//!
//! ## Adaptive phase termination
//!
//! [`broadcast_unknown`] runs the pipeline **adaptively**, porting the
//! quiescence-driven driver PR 2 built for Theorem 1.1 (see the
//! `single_message` module docs for the in-model justification of status
//! rounds and the shared cursor): the wave closes when the frontier stops,
//! construction runs the rank-block skip loop shared through
//! `crate::adaptive`, labeling processes `d` frontiers only while they are
//! alive, dissemination windows close once every ring with an open batch
//! can decode it, and handoff slots collapse to a single probe when the
//! receiving roots already hold the batch. Every phase stays hard-capped by
//! its paper-sized window and [`GhkMultiPlan::total_rounds`] bounds any run.
//!
//! Two structural notes. Batch windows *pipeline* across rings — in window
//! `w`, ring `j` disseminates batch `w − j` while ring `j + 1` receives its
//! handoff — so with adaptive (narrow) rings the whole message stream is in
//! flight across the network at once. And adaptive dissemination windows
//! are 2-slotted by ring parity: adjacent rings work different batches in
//! the same window, and narrow rings put a boundary node's only in-ring
//! neighbor directly next to the following ring's roots, whose slow-slot
//! timing is identical — without the slotting those transmissions collide
//! persistently (the same interference argument that slots the parallel
//! ring constructions).

use crate::adaptive::{
    answer_cons_probe, cons_status_budget, drive_construction, vote_quiet, Advance, ConsDriver,
    ConsProbe, Ladder, LossEstimator, Pacing, Segment, WindowEnd, HANDOFF_RETRIES,
};
use crate::construction::{ConstructionSchedule, GstConstructionNode, GstMsg};
use crate::decay::DecaySchedule;
use crate::layering::{Beep, CollisionWaveLayering};
use crate::params::Params;
use crate::schedule::{
    EmptyBehavior, MmvScheduleNode, SchedAudit, SchedLabels, SchedMsg, ScheduleConfig, SlowKey,
};
use crate::virtual_labels::{VirtualLabelNode, VlMsg, VlSchedule};
use radio_sim::graph::bfs_layering;
use radio_sim::model::PacketBits;
use radio_sim::trace::{RoundStats, RunStats};
use radio_sim::{
    Action, CollisionMode, DoneCheck, FaultPlan, Graph, NodeId, Observation, Protocol, Simulator,
    Topology, Wake,
};
use rand::rngs::SmallRng;
use rlnc::gf2::BitVec;
use rlnc::{CodedPacket, Decoder};
use std::cell::Cell;
use std::rc::Rc;

/// Round accounting of one adaptive Theorem 1.3 run, by phase. Work counters
/// tally rounds actually spent inside each phase; `status` tallies every
/// dedicated beep round. Runs without the adaptive driver still account for
/// every executed round — [`broadcast_known`] has no setup phases, so it
/// reports all its rounds as `disseminate` work — keeping
/// `phases.total() == stats.rounds` an invariant of every entry point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MultiPhaseRounds {
    /// Collision-wave work rounds.
    pub wave: u64,
    /// Construction work rounds (2-slotted).
    pub construct: u64,
    /// Virtual-labeling work rounds (2-slotted).
    pub label: u64,
    /// Dissemination-window work rounds, summed over windows.
    pub disseminate: u64,
    /// Handoff work rounds, summed over handoffs.
    pub handoff: u64,
    /// Recovery-ladder work rounds (rung-1 window replays and rung-2
    /// regional FEC floods); 0 unless a handoff failed on a faulted run.
    pub repair: u64,
    /// No-knowledge Decay fallback rounds (faulted runs whose pipeline failed).
    pub fallback: u64,
    /// Status-beep rounds, all phases.
    pub status: u64,
}

impl MultiPhaseRounds {
    /// Total rounds executed.
    pub fn total(&self) -> u64 {
        self.wave
            + self.construct
            + self.label
            + self.disseminate
            + self.handoff
            + self.repair
            + self.fallback
            + self.status
    }
}

/// Outcome of a multi-message run.
#[derive(Clone, Debug)]
pub struct MultiOutcome {
    /// Round at which every node decoded everything, `None` on timeout.
    pub completion_round: Option<u64>,
    /// Rounds budgeted/executed.
    pub rounds_budget: u64,
    /// Aggregated schedule audit counters.
    pub audit: SchedAudit,
    /// Rounds actually spent by phase (adaptive runs only).
    pub phases: MultiPhaseRounds,
    /// Channel statistics of the run.
    pub stats: RunStats,
    /// Round at which the driver armed the rung-3 no-knowledge Decay flood,
    /// `None` if the run never fell back that far.
    pub fallback_entry: Option<u64>,
    /// Peak resident state over the run, in bytes: the topology's
    /// [`Topology::resident_bytes`] plus the per-node struct-level state
    /// ([`GhkMultiNode::resident_bytes`]), sampled at phase boundaries.
    /// Engine buffers and sub-state-internal heap are excluded on both
    /// sides, so the figure isolates what the lazy per-ring state machine
    /// keeps alive.
    pub peak_state_bytes: usize,
}

/// Knobs of [`broadcast_known`] beyond the graph/source/messages/params/seed
/// core. The defaults mirror the historical call sites: the paper's
/// virtual-distance slow keying, silent empty decoders, a 1M-round cap, and
/// no collision detection (the MMV schedule is analyzed without CD; the
/// other modes exist for ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnownRunOpts {
    /// Slow-pattern keying (the E8 ablation switches to [`SlowKey::Level`]).
    pub slow_key: SlowKey,
    /// Empty-decoder behavior (the MMV noise stress of Lemma 3.3 uses
    /// [`EmptyBehavior::Noise`]).
    pub empty: EmptyBehavior,
    /// Hard round cap of the run (reported as
    /// [`MultiOutcome::rounds_budget`]).
    pub max_rounds: u64,
    /// Collision mode of the channel.
    pub mode: CollisionMode,
}

impl Default for KnownRunOpts {
    fn default() -> Self {
        KnownRunOpts {
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
            max_rounds: 1_000_000,
            mode: CollisionMode::NoDetection,
        }
    }
}

impl KnownRunOpts {
    /// The Theorem 1.2 defaults (see the struct docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the slow-pattern keying.
    pub fn with_slow_key(mut self, slow_key: SlowKey) -> Self {
        self.slow_key = slow_key;
        self
    }

    /// Overrides the empty-decoder behavior.
    pub fn with_empty(mut self, empty: EmptyBehavior) -> Self {
        self.empty = empty;
        self
    }

    /// Overrides the hard round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the collision mode.
    pub fn with_mode(mut self, mode: CollisionMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Theorem 1.2: known-topology k-message broadcast.
///
/// Builds the GST and virtual distances centrally (the shared-knowledge
/// model), then runs the MMV schedule with RLNC until every node decodes all
/// messages or [`KnownRunOpts::max_rounds`] elapse.
///
/// Prefer the [`crate::run::Scenario`] facade for end-to-end experiments;
/// this function is the underlying engine it drives for
/// [`crate::run::Workload::MultiKnown`].
///
/// # Panics
///
/// Panics if `messages` is empty or the graph is empty.
pub fn broadcast_known(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    opts: KnownRunOpts,
) -> MultiOutcome {
    broadcast_known_faulted(graph, source, messages, params, seed, opts, &FaultPlan::none())
}

/// [`broadcast_known`] under a seeded adversarial
/// [`FaultPlan`] (see [`radio_sim::engine::faults`]).
///
/// With [`FaultPlan::none`](radio_sim::FaultPlan::none) the run is
/// bit-identical to [`broadcast_known`]. The GST and virtual distances are
/// built centrally from the *initial* topology (the shared-knowledge model
/// fixes them before the adversary acts); churn and mobility then degrade the
/// live channel against that fixed schedule.
///
/// # Panics
///
/// Panics if `messages` is empty or the graph is empty.
pub fn broadcast_known_faulted(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    opts: KnownRunOpts,
    faults: &FaultPlan,
) -> MultiOutcome {
    assert!(!messages.is_empty(), "need at least one message");
    assert!(graph.node_count() > 0, "graph must be non-empty");
    let k = messages.len();
    let payload_bits = messages[0].len();
    let mut rng = radio_sim::rng::stream_rng(seed, 1000);
    let (tree, _) = gst::build_gst(
        graph,
        &[source],
        &mut rng,
        &gst::BuildConfig::for_nodes(graph.node_count()),
    );
    let vd = gst::VirtualDistances::compute(graph, &tree);
    let cfg = ScheduleConfig { log_n: params.log_n, slow_key: opts.slow_key, empty: opts.empty };
    let mut sim =
        Simulator::new_with_faults(graph.clone(), opts.mode, seed, faults.clone(), |id| {
            let node =
                MmvScheduleNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), k, payload_bits);
            if id == source {
                node.with_messages(messages)
            } else {
                node
            }
        });
    // Completion advances only when a node receives a packet, so the
    // delivery-gated check policy is exact and avoids the O(n) predicate
    // scan in silent rounds.
    let completion_round = sim.run_until_with(opts.max_rounds, DoneCheck::OnDelivery, |nodes| {
        nodes.iter().all(MmvScheduleNode::is_complete)
    });
    let mut audit = SchedAudit::default();
    for n in sim.nodes() {
        audit.absorb(n.audit());
    }
    let stats = sim.stats().clone();
    // Theorem 1.2 has no setup phases: every executed round is schedule-driven
    // dissemination work, so the unified per-phase accounting stays exact
    // (`phases.total() == stats.rounds`) across all three theorems.
    let phases = MultiPhaseRounds { disseminate: stats.rounds, ..MultiPhaseRounds::default() };
    // Theorem 1.2 nodes carry their full schedule state for the whole run
    // (there are no phases to retire through), so the peak is the steady
    // state: the materialized graph plus one schedule shell per node.
    let peak_state_bytes = sim.graph().resident_bytes() + std::mem::size_of_val(sim.nodes());
    MultiOutcome {
        completion_round,
        rounds_budget: opts.max_rounds,
        audit,
        phases,
        stats,
        fallback_entry: None,
        peak_state_bytes,
    }
}

/// The pre-facade eight-positional-argument signature of [`broadcast_known`],
/// kept verbatim so downstream code can migrate on its own schedule.
#[deprecated(note = "use `broadcast_known` with `KnownRunOpts`, or the `run::Scenario` facade")]
#[expect(clippy::too_many_arguments, reason = "legacy signature kept only for compatibility")]
pub fn broadcast_known_legacy(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    slow_key: SlowKey,
    empty: EmptyBehavior,
    max_rounds: u64,
) -> MultiOutcome {
    broadcast_known(
        graph,
        source,
        messages,
        params,
        seed,
        KnownRunOpts { slow_key, empty, max_rounds, ..KnownRunOpts::default() },
    )
}

/// How messages are grouped for coding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchMode {
    /// One batch holding all `k` messages.
    FullK,
    /// Batches of at most the given size (the paper's `Θ(log n)`).
    Generations(usize),
}

impl BatchMode {
    fn batch_size(&self, k: usize) -> usize {
        match *self {
            BatchMode::FullK => k,
            BatchMode::Generations(g) => g.max(1).min(k),
        }
    }
}

/// Messages of the Theorem 1.3 pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GhkMMsg {
    /// Collision-wave beep.
    Wave(Beep),
    /// GST construction traffic.
    Gst(GstMsg),
    /// Virtual-labeling traffic.
    Vl(VlMsg),
    /// In-ring dissemination traffic, tagged with its batch.
    Sched {
        /// Batch index.
        batch: u32,
        /// The schedule packet.
        msg: SchedMsg,
    },
    /// Ring-boundary FEC packet of a batch.
    Fec {
        /// Batch index.
        batch: u32,
        /// A fountain packet over the batch.
        packet: CodedPacket,
    },
    /// Content-free status beep of the adaptive termination protocol.
    Status,
}

impl PacketBits for GhkMMsg {
    fn packet_bits(&self) -> usize {
        3 + match self {
            GhkMMsg::Wave(b) => b.packet_bits(),
            GhkMMsg::Gst(m) => m.packet_bits(),
            GhkMMsg::Vl(m) => m.packet_bits(),
            GhkMMsg::Sched { msg, .. } => 16 + msg.packet_bits(),
            GhkMMsg::Fec { packet, .. } => 16 + packet.packet_bits(),
            GhkMMsg::Status => 0,
        }
    }
}

/// The static phase plan of the Theorem 1.3 pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GhkMultiPlan {
    /// Diameter bound (wave rounds).
    pub d_bound: u32,
    /// Ring width in layers.
    pub ring_width: u32,
    /// Number of rings.
    pub ring_count: u32,
    /// Number of message batches.
    pub batch_count: u32,
    /// Messages per batch (last may be short).
    pub batch_size: u32,
    /// Total messages.
    pub k: u32,
    /// Per-ring construction schedule.
    pub cons: ConstructionSchedule,
    /// Rounds of the 2-slotted construction phase.
    pub cons_rounds: u64,
    /// Per-ring virtual labeling schedule.
    pub vl: VlSchedule,
    /// Rounds of the 2-slotted labeling phase.
    pub vl_rounds: u64,
    /// Rounds of one in-ring dissemination window.
    pub window: u64,
    /// Rounds of one (2-slotted) handoff window.
    pub handoff: u64,
    /// Adaptive cap on the wave phase (work + status rounds).
    pub wave_budget: u64,
    /// Adaptive cap on construction *status* rounds (work rounds are capped
    /// by [`GhkMultiPlan::cons_rounds`]).
    pub cons_status: u64,
    /// Adaptive cap on labeling *status* rounds (work rounds are capped by
    /// [`GhkMultiPlan::vl_rounds`]).
    pub label_status: u64,
    /// Adaptive cap on one dissemination window (work + status rounds).
    pub window_budget: u64,
    /// Adaptive cap on one handoff window (work + status rounds, including
    /// the skip probe that collapses handoffs with nothing pending).
    pub handoff_budget: u64,
}

/// Phases of the Theorem 1.3 pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhkMultiPhase {
    /// Collision-wave layering.
    Wave {
        /// Round within the wave.
        offset: u64,
    },
    /// Slotted per-ring GST construction.
    Construct {
        /// Round within the phase.
        offset: u64,
    },
    /// Slotted per-ring virtual labeling.
    Label {
        /// Round within the phase.
        offset: u64,
    },
    /// Pipelined dissemination window `w` (ring `j` works on batch `w - j`).
    Disseminate {
        /// Window index.
        window: u32,
        /// Round within the window.
        offset: u64,
    },
    /// Handoff slot after window `w`.
    Handoff {
        /// Window index.
        window: u32,
        /// Round within the handoff.
        offset: u64,
    },
    /// Rung-2 regional re-dissemination (faulted runs only): holders in the
    /// rings feeding window `w` (and the ring just behind them) flood coded
    /// packets for the window's batches on the Decay schedule, covering
    /// churn/mobility that moved the frontier across ring boundaries.
    Regional {
        /// The failed window index.
        window: u32,
        /// Round within the regional flood.
        offset: u64,
    },
    /// No-knowledge Decay fallback (faulted runs only): every holder floods
    /// coded packets for one held batch on the Decay schedule, ignoring ring
    /// and window bookkeeping, so nodes the faults stranded outside the
    /// pipeline still decode.
    Fallback {
        /// Round within the fallback.
        offset: u64,
    },
    /// Pipeline finished.
    Done,
}

impl Advance for GhkMultiPhase {
    fn advanced(self, delta: u64) -> Self {
        match self {
            GhkMultiPhase::Wave { offset } => GhkMultiPhase::Wave { offset: offset + delta },
            GhkMultiPhase::Construct { offset } => {
                GhkMultiPhase::Construct { offset: offset + delta }
            }
            GhkMultiPhase::Label { offset } => GhkMultiPhase::Label { offset: offset + delta },
            GhkMultiPhase::Disseminate { window, offset } => {
                GhkMultiPhase::Disseminate { window, offset: offset + delta }
            }
            GhkMultiPhase::Handoff { window, offset } => {
                GhkMultiPhase::Handoff { window, offset: offset + delta }
            }
            GhkMultiPhase::Regional { window, offset } => {
                GhkMultiPhase::Regional { window, offset: offset + delta }
            }
            GhkMultiPhase::Fallback { offset } => {
                GhkMultiPhase::Fallback { offset: offset + delta }
            }
            GhkMultiPhase::Done => GhkMultiPhase::Done,
        }
    }
}

impl GhkMultiPlan {
    /// Builds the plan for `k` messages under `params`, with the fixed
    /// pipeline's ring width ([`Params::ring_width_for`]).
    pub fn new(params: &Params, d_bound: u32, k: usize, mode: BatchMode) -> Self {
        let d_bound = d_bound.max(1);
        Self::build(params, d_bound, k, mode, params.ring_width_for(d_bound))
    }

    /// Builds the plan for the *adaptive* driver, which prefers narrow rings
    /// ([`Params::adaptive_ring_width`]): with pay-as-you-go windows and
    /// handoffs, parallel narrow-ring construction wins exactly as it does
    /// for the adaptive Theorem 1.1 pipeline.
    pub fn new_adaptive(params: &Params, d_bound: u32, k: usize, mode: BatchMode) -> Self {
        let d_bound = d_bound.max(1);
        Self::build(params, d_bound, k, mode, params.adaptive_ring_width(d_bound))
    }

    fn build(params: &Params, d_bound: u32, k: usize, mode: BatchMode, width: u32) -> Self {
        let ring_width = width.min(d_bound + 1).max(2);
        let ring_count = (d_bound + 1).div_ceil(ring_width);
        let batch_size = mode.batch_size(k);
        let batch_count = k.div_ceil(batch_size);
        let cons = ConstructionSchedule::new(params, ring_width - 1);
        let vl = VlSchedule::new(params, ring_width.saturating_sub(1).max(1));
        let slack = u64::from(params.window_slack);
        let l = u64::from(params.log_n);
        let window = slack * (2 * u64::from(ring_width) + 2 * batch_size as u64 * l + 2 * l * l);
        let handoff = 2 * slack * l * (batch_size as u64 + 4);
        let beep = u64::from(params.beep_interval.max(1));
        let d = u64::from(d_bound);
        GhkMultiPlan {
            d_bound,
            ring_width,
            ring_count,
            batch_count: u32::try_from(batch_count).expect("fits"),
            batch_size: u32::try_from(batch_size).expect("fits"),
            k: u32::try_from(k).expect("fits"),
            cons,
            cons_rounds: 2 * cons.total_rounds(),
            vl,
            vl_rounds: 2 * vl.total_rounds(),
            window,
            handoff,
            wave_budget: d + d / beep + beep + u64::from(params.quiescence_slack) + 4,
            cons_status: cons_status_budget(params, &cons),
            label_status: 2 * u64::from(vl.d_values()) + 4,
            // Adaptive dissemination is 2-slotted by ring parity (adjacent
            // rings work different batches in the same window; the slotting
            // keeps their schedules from colliding at ring boundaries, the
            // same interference fix the construction phase uses).
            window_budget: 2 * window + 2 * window / beep + 2,
            handoff_budget: handoff + handoff / beep + 3,
        }
    }

    /// Number of pipelined windows: every (ring, batch) pair is covered.
    pub fn window_count(&self) -> u32 {
        self.ring_count + self.batch_count - 1
    }

    /// The batch ring `j` works on during window `w`, if any.
    pub fn batch_in_window(&self, window: u32, ring: u32) -> Option<u32> {
        let b = window.checked_sub(ring)?;
        (b < self.batch_count).then_some(b)
    }

    /// Global message indices of batch `b`.
    pub fn batch_range(&self, b: u32) -> std::ops::Range<usize> {
        let start = (b * self.batch_size) as usize;
        let end = ((b + 1) * self.batch_size).min(self.k) as usize;
        start..end
    }

    /// Total rounds of the fixed (worst-case) phase layout, which doubles as
    /// the adaptive driver's hard cap: the sum of every phase's work budget
    /// plus the status-round overhead the adaptive run may add. Still
    /// `O(D + k log n + polylog)`.
    pub fn total_rounds(&self) -> u64 {
        self.wave_budget
            + self.cons_rounds
            + self.cons_status
            + self.vl_rounds
            + self.label_status
            + u64::from(self.window_count()) * (self.window_budget + self.handoff_budget)
    }

    /// Total rounds of the fixed phase layout alone (what
    /// [`GhkMultiPlan::phase`] resolves over, excluding adaptive status
    /// overhead).
    pub fn fixed_rounds(&self) -> u64 {
        u64::from(self.d_bound)
            + self.cons_rounds
            + self.vl_rounds
            + u64::from(self.window_count()) * (self.window + self.handoff)
    }

    /// Global round at which the labeling phase ends (fixed layout).
    fn label_end(&self) -> u64 {
        u64::from(self.d_bound) + self.cons_rounds + self.vl_rounds
    }

    /// Global round at which window `w`'s dissemination starts (fixed
    /// layout).
    fn cycle_start(&self, w: u32) -> u64 {
        self.label_end() + u64::from(w) * (self.window + self.handoff)
    }

    /// Resolves round `t` to its phase.
    pub fn phase(&self, t: u64) -> GhkMultiPhase {
        let mut t = t;
        if t < u64::from(self.d_bound) {
            return GhkMultiPhase::Wave { offset: t };
        }
        t -= u64::from(self.d_bound);
        if t < self.cons_rounds {
            return GhkMultiPhase::Construct { offset: t };
        }
        t -= self.cons_rounds;
        if t < self.vl_rounds {
            return GhkMultiPhase::Label { offset: t };
        }
        t -= self.vl_rounds;
        let cycle = self.window + self.handoff;
        let w = u32::try_from(t / cycle).expect("fits");
        if w >= self.window_count() {
            return GhkMultiPhase::Done;
        }
        let in_cycle = t % cycle;
        if in_cycle < self.window {
            GhkMultiPhase::Disseminate { window: w, offset: in_cycle }
        } else {
            GhkMultiPhase::Handoff { window: w, offset: in_cycle - self.window }
        }
    }
}

/// What a Theorem 1.3 status round asks: a node transmits a beep iff the
/// predicate holds for it (see `single_message` for the in-model status-round
/// justification; this pipeline reuses it wholesale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiProbe {
    /// Wave phase: "did the frontier reach you since the last status round?"
    WaveProgress,
    /// A construction status probe (shared with the Theorem 1.1 driver).
    Cons(ConsProbe),
    /// Labeling: "are you still missing your virtual distance?"
    Unlabelled,
    /// Labeling: "is your virtual distance exactly `d`?" — an empty frontier
    /// means no later `d` can label anyone either.
    LabelFrontier {
        /// The frontier distance.
        d: u32,
    },
    /// Dissemination: "does your ring have an (undecodable) batch open in
    /// this window?"
    WindowUninformed {
        /// The open window.
        window: u32,
    },
    /// Handoff: "are you a receiving ring root still missing the batch being
    /// handed off after this window?"
    HandoffPending {
        /// The window whose handoff slot is open.
        window: u32,
    },
    /// Fallback: "are you still missing any batch?" — ring and window state
    /// deliberately ignored so nodes the faults stranded outside the pipeline
    /// (no ring, no labels) still answer.
    Undecoded,
}

/// The shared per-round directive of the adaptive Theorem 1.3 driver: a
/// published [`Segment`] of work rounds (reusing [`GhkMultiPhase`] with
/// *virtual* offsets that exclude status rounds), or a status round.
///
/// All nodes observe the same status-round transcript via the idealized
/// echo (see the `single_message` module docs), so they all hold the same
/// cursor; the cell materializes that shared knowledge without touching the
/// `Protocol` trait. Work segments are set once per batch; cursor-mode wake
/// hints sleep nodes through their provably-inert rounds but never past the
/// segment end (see `crate::adaptive`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiStep {
    /// Before the first round.
    Idle,
    /// A published segment of work rounds.
    Work(Segment<GhkMultiPhase>),
    /// A status round probing for pending work.
    Status(MultiProbe),
}

/// Shared handle to the adaptive pipeline's current [`MultiStep`].
pub type MultiStepCell = Rc<Cell<MultiStep>>;

/// The schedule instance of the window a node is currently in.
#[derive(Clone, Debug)]
struct ActiveWindow {
    window: u32,
    batch: u32,
    node: MmvScheduleNode,
}

/// Per-batch state of a pipeline node.
#[derive(Clone, Debug, Default)]
struct BatchState {
    decoded: Option<Vec<BitVec>>,
    /// FEC receiver state (ring roots during handoffs).
    fec: Option<Decoder>,
}

/// One node of the Theorem 1.3 pipeline.
///
/// Runs in one of two modes: **fixed** (the default) derives its phase from
/// the round number via [`GhkMultiPlan::phase`]; **adaptive**
/// ([`GhkMultiNode::with_cursor`]) reads the shared [`MultiStepCell`] the
/// quiescence-driven driver advances.
#[derive(Clone, Debug)]
pub struct GhkMultiNode {
    id: u32,
    params: Params,
    plan: GhkMultiPlan,
    payload_bits: usize,
    step: Option<MultiStepCell>,
    wave: CollisionWaveLayering,
    /// Frontier reached this node since the last wave status round.
    wave_dirty: bool,
    ring: Option<(u32, u32)>,
    /// Phase-2 construction state; boxed so the shell stays small, built on
    /// demand when the wave reaches the node, and dropped (together with
    /// `vl`) by [`GhkMultiNode::retire_construction`] once labeling ends.
    cons: Option<Box<GstConstructionNode>>,
    /// Phase-3 labeling state; boxed and retired like `cons`.
    vl: Option<Box<VirtualLabelNode>>,
    /// The dissemination labels extracted from `vl` at retirement; windows
    /// read these instead of keeping the labeling machine alive.
    sched_cache: Option<SchedLabels>,
    /// The live window's schedule, built per window and harvested at the
    /// window boundary — never more than one alive per node.
    sched: Option<Box<ActiveWindow>>,
    /// Last dissemination window whose setup (`ensure_window`) ran.
    window_seen: Option<u32>,
    /// Last handoff window whose entry harvest ran.
    handoff_seen: Option<u32>,
    /// `(window, batch)` of FEC reception in progress, harvested at the
    /// first act after that handoff window closes.
    fec_pending: Option<(u32, u32)>,
    /// Audit counters of harvested windows (see [`GhkMultiNode::audit`]).
    audit_acc: SchedAudit,
    batches: Vec<BatchState>,
    /// Window-drop counter (batch incomplete at window end).
    drops: u64,
    decay: DecaySchedule,
    /// Whether cursor mode emits real segment wake hints
    /// ([`Pacing::Segment`]) or `Wake::Now` every round ([`Pacing::PerStep`]).
    seg_hints: bool,
    /// Handoff FEC repair aggressiveness (see [`MultiRunOpts::fec_repair`]);
    /// `0` keeps the paper's full decay-cycle gate.
    fec_repair: u32,
}

impl GhkMultiNode {
    /// A pipeline node; the source holds all `messages`.
    pub fn new(
        params: &Params,
        plan: GhkMultiPlan,
        id: u32,
        payload_bits: usize,
        messages: Option<Vec<BitVec>>,
    ) -> Self {
        let mut batches: Vec<BatchState> =
            (0..plan.batch_count).map(|_| BatchState::default()).collect();
        let is_source = messages.is_some();
        if let Some(msgs) = messages {
            for b in 0..plan.batch_count {
                batches[b as usize].decoded = Some(msgs[plan.batch_range(b)].to_vec());
            }
        }
        GhkMultiNode {
            id,
            params: params.clone(),
            plan,
            payload_bits,
            step: None,
            wave: CollisionWaveLayering::new(is_source),
            wave_dirty: false,
            ring: None,
            cons: None,
            vl: None,
            sched_cache: None,
            sched: None,
            window_seen: None,
            handoff_seen: None,
            fec_pending: None,
            audit_acc: SchedAudit::default(),
            batches,
            drops: 0,
            decay: DecaySchedule::new(params.decay_phase_len()),
            seg_hints: true,
            fec_repair: 0,
        }
    }

    /// Switches the node to adaptive mode: it follows the shared step cell
    /// instead of the round-derived fixed phase layout.
    pub fn with_cursor(mut self, step: MultiStepCell) -> Self {
        self.step = Some(step);
        self
    }

    /// Selects how cursor mode answers [`Protocol::next_wake`] (segment
    /// hints vs. the per-step `Wake::Now` regime of the equivalence suites).
    /// Fixed-plan mode is unaffected.
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.seg_hints = pacing == Pacing::Segment;
        self
    }

    /// Sets the handoff FEC repair aggressiveness (see
    /// [`MultiRunOpts::fec_repair`]). `0` (the default) is bit-identical to
    /// the pre-knob pipeline.
    pub fn with_fec_repair(mut self, fec_repair: u32) -> Self {
        self.fec_repair = fec_repair;
        self
    }

    /// Whether this node can decode every batch — from an already-harvested
    /// slot, a full-rank FEC receiver, or a full-rank window schedule. The
    /// pending decoders are harvested into the slots at the node's next
    /// phase transition (or by the driver's final echo).
    pub fn is_complete(&self) -> bool {
        self.batches.iter().enumerate().all(|(b, s)| {
            s.decoded.is_some()
                || s.fec.as_ref().is_some_and(Decoder::can_decode)
                || self.sched.as_ref().is_some_and(|a| a.batch == b as u32 && a.node.is_complete())
        })
    }

    /// All decoded messages in order, once complete. Batches whose harvest
    /// transition has not run yet are decoded from their pending FEC/window
    /// decoder, matching [`GhkMultiNode::is_complete`].
    pub fn messages(&self) -> Option<Vec<BitVec>> {
        let mut out = Vec::with_capacity(self.plan.k as usize);
        for (b, slot) in self.batches.iter().enumerate() {
            let msgs = match (&slot.decoded, &slot.fec, &self.sched) {
                (Some(d), _, _) => d.clone(),
                (None, Some(fec), _) if fec.can_decode() => fec.decode()?,
                (None, _, Some(a)) if a.batch == b as u32 => a.node.decoder().decode()?,
                _ => return None,
            };
            out.extend(msgs);
        }
        Some(out)
    }

    /// Batches dropped at window boundaries (restart events).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Schedule audit counters, accumulated over every window this node ran
    /// (harvested windows plus the live one).
    pub fn audit(&self) -> SchedAudit {
        let mut a = self.audit_acc;
        if let Some(s) = &self.sched {
            a.absorb(s.node.audit());
        }
        a
    }

    fn ensure_ring(&mut self) {
        if self.ring.is_none() {
            if let Some(layer) = self.wave.level() {
                self.ring = Some((layer / self.plan.ring_width, layer % self.plan.ring_width));
            }
        }
    }

    fn ensure_cons(&mut self) {
        self.ensure_ring();
        if self.cons.is_none() {
            if let Some((_, ring_level)) = self.ring {
                self.cons = Some(Box::new(GstConstructionNode::new(
                    &self.params,
                    self.plan.cons,
                    self.id,
                    ring_level,
                )));
            }
        }
    }

    fn ensure_vl(&mut self) {
        if self.vl.is_none() {
            if let Some(cons) = &self.cons {
                self.vl =
                    Some(Box::new(VirtualLabelNode::new(self.plan.vl, self.id, cons.labels())));
            }
        }
    }

    fn sched_labels(&self) -> Option<SchedLabels> {
        if let Some(cached) = self.sched_cache {
            return Some(cached);
        }
        let vl = self.vl.as_ref()?;
        let l = vl.labels();
        Some(SchedLabels {
            level: l.level,
            rank: l.rank,
            // Unlabelled nodes (labeling failure) fall back to the cap.
            vdist: vl.vdist().unwrap_or(2 * self.params.log_n),
            stretch_start: l.is_stretch_start(),
            fast_transmitter: l.has_stretch_child,
            in_stretch: l.in_stretch(),
        })
    }

    /// Starts (or reuses) the schedule node for window `w`.
    fn ensure_window(&mut self, window: u32) {
        let Some((ring, _)) = self.ring else { return };
        self.window_seen = Some(window);
        if self.sched.as_ref().is_some_and(|a| a.window == window) {
            return;
        }
        // Harvest the previous window first.
        self.harvest_window();
        let Some(batch) = self.plan.batch_in_window(window, ring) else {
            self.sched = None;
            return;
        };
        let Some(labels) = self.sched_labels() else { return };
        let cfg = ScheduleConfig {
            log_n: self.params.log_n,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        };
        let klen = self.plan.batch_range(batch).len();
        let mut node = MmvScheduleNode::new(cfg, labels, klen, self.payload_bits);
        if let Some(decoded) = &self.batches[batch as usize].decoded {
            node = node.with_messages(decoded);
        }
        self.sched = Some(Box::new(ActiveWindow { window, batch, node }));
    }

    /// Stores a completed window's batch, or counts a drop. The window's
    /// audit counters are folded into the node total before the schedule
    /// node is dropped.
    fn harvest_window(&mut self) {
        if let Some(active) = self.sched.take() {
            self.audit_acc.absorb(active.node.audit());
            let slot = &mut self.batches[active.batch as usize];
            if slot.decoded.is_none() {
                match active.node.decoder().decode() {
                    Some(msgs) => slot.decoded = Some(msgs),
                    None => self.drops += 1,
                }
            }
        }
    }

    /// Completes FEC reception for batches whose handoff window ended.
    fn harvest_fec(&mut self, batch: u32) {
        let slot = &mut self.batches[batch as usize];
        if slot.decoded.is_none() {
            if let Some(fec) = &slot.fec {
                if let Some(msgs) = fec.decode() {
                    slot.decoded = Some(msgs);
                }
            }
        }
        slot.fec = None;
    }

    /// Harvests a pending FEC reception once its handoff window is over
    /// (i.e. the current phase is anything but that window's handoff slot).
    /// Runs at the top of every `act`, so the first round of the following
    /// phase finalizes the handoff on both the fixed and adaptive paths.
    fn flush_fec(&mut self, phase: GhkMultiPhase) {
        if let Some((window, batch)) = self.fec_pending {
            let still_open =
                matches!(phase, GhkMultiPhase::Handoff { window: w, .. } if w == window);
            if !still_open {
                self.harvest_fec(batch);
                self.fec_pending = None;
            }
        }
    }

    /// End-of-run echo: harvests every pending decoder into its batch slot
    /// (the phase transitions that normally do this may not come once the
    /// driver stops early).
    fn finalize_run(&mut self) {
        if let Some((_, batch)) = self.fec_pending.take() {
            self.harvest_fec(batch);
        }
        self.harvest_window();
    }

    /// Applies the construction epilogue once the phase is announced over
    /// (pending recruiting-part results + the unassigned-blue fallback).
    fn finalize_construction(&mut self) {
        if let Some(c) = self.cons.as_mut() {
            c.finalize();
        }
    }

    /// Driver echo at the end of the labeling phase: caches the
    /// dissemination labels ([`SchedLabels`]) the windows will read, then
    /// drops the construction and labeling machines. Both are inert from
    /// here on — the driver never publishes `Construct`/`Label` segments
    /// again — so resident state shrinks to the shell plus at most one live
    /// window schedule per node.
    fn retire_construction(&mut self) {
        if self.sched_cache.is_none() {
            self.sched_cache = self.sched_labels();
        }
        self.cons = None;
        self.vl = None;
    }

    /// Struct-level resident state of this node, in bytes: the shell plus
    /// the boxed phase sub-states currently alive and the per-batch slot
    /// table. Sub-state-internal heap (decoder matrices, payload buffers)
    /// is excluded — see the README's "Streaming topologies and memory
    /// model" section for the accounting contract.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.cons.is_some() as usize * size_of::<GstConstructionNode>()
            + self.vl.is_some() as usize * size_of::<VirtualLabelNode>()
            + self.sched.is_some() as usize * size_of::<ActiveWindow>()
            + self.batches.capacity() * size_of::<BatchState>()
    }

    /// Answers a status-round probe: `true` = transmit a beep.
    fn answer(&mut self, probe: MultiProbe) -> bool {
        match probe {
            MultiProbe::WaveProgress => std::mem::take(&mut self.wave_dirty),
            MultiProbe::Cons(p) => {
                self.ensure_cons();
                let Some(c) = self.cons.as_mut() else { return false };
                answer_cons_probe(c, p)
            }
            MultiProbe::Unlabelled => {
                self.ensure_vl();
                self.vl.as_ref().is_some_and(|v| v.vdist().is_none())
            }
            MultiProbe::LabelFrontier { d } => {
                self.vl.as_ref().is_some_and(|v| v.vdist() == Some(d))
            }
            MultiProbe::WindowUninformed { window } => {
                self.ensure_ring();
                let Some((ring, _)) = self.ring else { return false };
                let Some(batch) = self.plan.batch_in_window(window, ring) else {
                    return false;
                };
                let decodable_in_window =
                    self.sched.as_ref().is_some_and(|a| a.window == window && a.node.is_complete());
                self.batches[batch as usize].decoded.is_none() && !decodable_in_window
            }
            MultiProbe::HandoffPending { window } => {
                let Some((ring, ring_level)) = self.ring else { return false };
                if ring_level != 0 || ring == 0 {
                    return false;
                }
                let Some(batch) = self.plan.batch_in_window(window, ring - 1) else {
                    return false;
                };
                let slot = &self.batches[batch as usize];
                slot.decoded.is_none() && !slot.fec.as_ref().is_some_and(Decoder::can_decode)
            }
            MultiProbe::Undecoded => !self.is_complete(),
        }
    }

    /// Driver echo of the measured-erasure adapted handoff repair rate (see
    /// [`MultiRunOpts::fec_repair`]); part of the idealized status-round
    /// knowledge, like the finalize echoes. Never called on fault-free runs.
    fn set_fec_repair(&mut self, fec_repair: u32) {
        self.fec_repair = fec_repair;
    }

    /// Decodes every full-rank pending FEC receiver into its batch slot so
    /// the node relays (instead of merely holding rank) during the fallback.
    fn decode_ready(&mut self) {
        for slot in &mut self.batches {
            if slot.decoded.is_none() {
                if let Some(fec) = &slot.fec {
                    if fec.can_decode() {
                        if let Some(msgs) = fec.decode() {
                            slot.decoded = Some(msgs);
                        }
                    }
                }
            }
        }
    }
}

impl GhkMultiNode {
    /// The cursor-mode wake hint within a published work segment: the
    /// earliest round `>= round` at which this node's `act` might transmit,
    /// draw from its RNG, or make an observable state change — clamped to
    /// the segment end, so the node is re-polled whenever the driver moves
    /// the cursor (see `crate::adaptive`).
    fn segment_wake(&self, seg: &Segment<GhkMultiPhase>, round: u64) -> Wake {
        let Some(pos) = seg.pos_at(round) else {
            // Past the segment: the driver is about to publish its next step.
            return Wake::Now;
        };
        // Sleeps need no clamp to the segment end: the driver force-wakes
        // every node (`Simulator::wake_all`) before each cursor change, so
        // hints only have to be valid while this segment stands.
        let clamp = |r: u64| if r <= round { Wake::Now } else { Wake::At(r) };
        let sleep = Wake::Idle;
        let layered = self.wave.level().is_some();
        // Parity-slotted phases: the first in-parity round and its inner
        // (per-ring) offset.
        let aligned = |offset: u64, parity: u64| {
            let first = if offset % 2 == parity { round } else { round + 1 };
            (first, (offset + (first - round)) / 2)
        };
        match pos {
            GhkMultiPhase::Wave { offset } => match self.wave.level() {
                // Re-woken by the frontier's first signal (observation).
                None => sleep,
                Some(l) if u64::from(l) <= offset => Wake::Now,
                Some(l) => clamp(round + (u64::from(l) - offset)),
            },
            GhkMultiPhase::Construct { offset } => {
                let Some((ring, _)) = self.ring else {
                    return if layered { Wake::Now } else { sleep };
                };
                let (first, inner) = aligned(offset, u64::from(ring % 2));
                let Some(cons) = &self.cons else { return Wake::Now };
                // A published segment never crosses a construction-schedule
                // segment, so one activity check covers the remainder.
                match self.plan.cons.phase(inner) {
                    Some(ph) if cons.may_act_in(&ph) => clamp(first),
                    _ => sleep,
                }
            }
            GhkMultiPhase::Label { offset } => {
                let Some((ring, _)) = self.ring else {
                    return if layered { Wake::Now } else { sleep };
                };
                let parity = u64::from(ring % 2);
                let (_, inner) = aligned(offset, parity);
                let Some(vl) = &self.vl else { return Wake::Now };
                match vl.next_act_round(inner) {
                    Some(next) => clamp(round + (2 * next + parity - offset)),
                    None => sleep,
                }
            }
            GhkMultiPhase::Disseminate { window, offset } => {
                let Some((ring, _)) = self.ring else {
                    return if layered { Wake::Now } else { sleep };
                };
                if self.window_seen != Some(window) || self.fec_pending.is_some() {
                    return Wake::Now; // entry round: setup + pending harvests
                }
                let parity = u64::from(ring % 2);
                let (_, inner) = aligned(offset, parity);
                match &self.sched {
                    Some(a) => {
                        let next = a.node.next_act_round(inner);
                        clamp(round + (2 * next + parity - offset))
                    }
                    None => sleep,
                }
            }
            GhkMultiPhase::Handoff { window, offset } => {
                let Some((ring, ring_level)) = self.ring else {
                    return if layered { Wake::Now } else { sleep };
                };
                if self.handoff_seen != Some(window) {
                    return Wake::Now; // entry round: window harvest
                }
                let sender = ring_level == self.plan.ring_width - 1
                    && ring + 1 < self.plan.ring_count
                    && self
                        .plan
                        .batch_in_window(window, ring)
                        .is_some_and(|b| self.batches[b as usize].decoded.is_some());
                if sender {
                    let (first, _) = aligned(offset, u64::from(ring % 2));
                    clamp(first)
                } else {
                    sleep
                }
            }
            GhkMultiPhase::Regional { window, .. } => {
                // Only region members (rings feeding window `w` plus the
                // ring right behind them) ever transmit; everyone else —
                // including ring-less strays — sleeps until a delivery's
                // observation re-wakes them.
                let Some((ring, _)) = self.ring else { return sleep };
                let own = self.plan.batch_in_window(window, ring);
                let inbound =
                    ring.checked_sub(1).and_then(|r| self.plan.batch_in_window(window, r));
                if own.is_none() && inbound.is_none() {
                    return sleep;
                }
                if self.sched.is_some()
                    || self.fec_pending.is_some()
                    || self.batches.iter().any(|s| {
                        s.decoded.is_some() || s.fec.as_ref().is_some_and(Decoder::can_decode)
                    })
                {
                    Wake::Now
                } else {
                    sleep
                }
            }
            GhkMultiPhase::Fallback { .. } => {
                // Holders (and nodes with pending decoders to finalize) act
                // every round; everyone else sleeps until a delivery's
                // observation re-wakes them.
                if self.sched.is_some()
                    || self.fec_pending.is_some()
                    || self.batches.iter().any(|s| {
                        s.decoded.is_some() || s.fec.as_ref().is_some_and(Decoder::can_decode)
                    })
                {
                    Wake::Now
                } else {
                    sleep
                }
            }
            // The adaptive driver never publishes `Done` segments.
            GhkMultiPhase::Done => Wake::Now,
        }
    }
}

impl Protocol for GhkMultiNode {
    type Msg = GhkMMsg;

    // Every sub-protocol this node routes observations into ignores
    // silence, and status rounds ignore everything non-transmitted.
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;

    /// Wake hints for both modes.
    ///
    /// **Fixed mode** (`round`-derived phases): unlayered nodes idle until
    /// the wave reaches them; parity-slotted phases wake on the node's
    /// parity only; dissemination sleeps between the node's MMV schedule
    /// slots; handoffs wake only the boundary senders (plus one entry round
    /// each for the harvest transitions); `Done` idles once everything is
    /// harvested.
    ///
    /// **Adaptive (cursor) mode**: hints derive from the published
    /// [`Segment`] — same phase logic with virtual offsets, clamped to the
    /// segment end so every cursor change finds the node awake (the old
    /// blanket `Wake::Now` fallback is gone; `tests/determinism.rs` pins the
    /// batched trace against per-step pacing).
    fn next_wake(&self, round: u64) -> Wake {
        if let Some(cell) = &self.step {
            if !self.seg_hints {
                return Wake::Now;
            }
            return match cell.get() {
                MultiStep::Idle | MultiStep::Status(_) => Wake::Now,
                MultiStep::Work(seg) => self.segment_wake(&seg, round),
            };
        }
        let layered = self.wave.level().is_some();
        match self.plan.phase(round) {
            GhkMultiPhase::Wave { .. } => match self.wave.level() {
                Some(l) if u64::from(l) <= round => Wake::Now,
                Some(l) => Wake::At(u64::from(l)),
                None => Wake::Idle,
            },
            GhkMultiPhase::Construct { offset } | GhkMultiPhase::Label { offset } => {
                match self.ring {
                    None if !layered => Wake::Idle,
                    // Layered but ring not derived yet: next act derives it.
                    None => Wake::Now,
                    Some((ring, _)) => {
                        if offset % 2 == u64::from(ring % 2) {
                            Wake::Now
                        } else {
                            Wake::At(round + 1)
                        }
                    }
                }
            }
            GhkMultiPhase::Disseminate { window, offset } => {
                if self.ring.is_none() {
                    return if layered { Wake::Now } else { Wake::Idle };
                }
                if self.window_seen != Some(window) || self.fec_pending.is_some() {
                    return Wake::Now; // entry round: setup + pending harvests
                }
                let handoff_start = self.plan.cycle_start(window) + self.plan.window;
                match &self.sched {
                    Some(a) => {
                        let next = round + (a.node.next_act_round(offset) - offset);
                        Wake::At(next.min(handoff_start))
                    }
                    None => Wake::At(handoff_start),
                }
            }
            GhkMultiPhase::Handoff { window, offset } => {
                if self.ring.is_none() {
                    return if layered { Wake::Now } else { Wake::Idle };
                }
                if self.handoff_seen != Some(window) {
                    return Wake::Now; // entry round: window harvest
                }
                let (ring, ring_level) = self.ring.expect("checked above");
                let sender = ring_level == self.plan.ring_width - 1
                    && ring + 1 < self.plan.ring_count
                    && self
                        .plan
                        .batch_in_window(window, ring)
                        .is_some_and(|b| self.batches[b as usize].decoded.is_some());
                if sender {
                    if offset % 2 == u64::from(ring % 2) {
                        Wake::Now
                    } else {
                        Wake::At(round + 1)
                    }
                } else {
                    Wake::At(self.plan.cycle_start(window + 1))
                }
            }
            // The fixed plan never derives `Regional`/`Fallback` (they exist
            // only for the adaptive driver's recovery segments).
            GhkMultiPhase::Regional { .. } | GhkMultiPhase::Fallback { .. } => Wake::Now,
            GhkMultiPhase::Done => {
                if self.sched.is_none() && self.fec_pending.is_none() {
                    Wake::Idle
                } else {
                    Wake::Now
                }
            }
        }
    }

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<GhkMMsg> {
        // Contract check for the wake hints (both modes): a node whose hint
        // postponed past this round must not transmit if polled anyway
        // (dense/per-step A/B paths poll everyone).
        let hinted_idle = cfg!(debug_assertions)
            && match self.next_wake(round) {
                Wake::Now => false,
                Wake::At(r) => r > round,
                Wake::Idle => true,
            };
        let action = self.act_inner(round, rng);
        debug_assert!(
            !(hinted_idle && action.is_transmit()),
            "hinted-idle node {} transmitted at round {round}",
            self.id
        );
        action
    }

    fn observe(&mut self, round: u64, obs: Observation<GhkMMsg>, rng: &mut SmallRng) {
        self.observe_inner(round, obs, rng);
    }
}

impl GhkMultiNode {
    fn act_inner(&mut self, round: u64, rng: &mut SmallRng) -> Action<GhkMMsg> {
        let phase = match self.step.as_ref().map(|c| c.get()) {
            Some(MultiStep::Idle) => return Action::Listen,
            Some(MultiStep::Status(p)) => {
                return if self.answer(p) {
                    Action::Transmit(GhkMMsg::Status)
                } else {
                    Action::Listen
                };
            }
            Some(MultiStep::Work(seg)) => {
                seg.pos_at(round).expect("act within the published segment")
            }
            None => self.plan.phase(round),
        };
        self.flush_fec(phase);
        match phase {
            GhkMultiPhase::Wave { offset } => match self.wave.act(offset, rng) {
                Action::Transmit(b) => Action::Transmit(GhkMMsg::Wave(b)),
                Action::Listen => Action::Listen,
            },
            GhkMultiPhase::Construct { offset } => {
                self.ensure_cons();
                let Some((ring, _)) = self.ring else { return Action::Listen };
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                match self.cons.as_mut().expect("created").act(offset / 2, rng) {
                    Action::Transmit(m) => Action::Transmit(GhkMMsg::Gst(m)),
                    Action::Listen => Action::Listen,
                }
            }
            GhkMultiPhase::Label { offset } => {
                self.ensure_vl();
                let Some((ring, _)) = self.ring else { return Action::Listen };
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                match self.vl.as_mut().expect("created").act(offset / 2, rng) {
                    Action::Transmit(m) => Action::Transmit(GhkMMsg::Vl(m)),
                    Action::Listen => Action::Listen,
                }
            }
            GhkMultiPhase::Disseminate { window, offset } => {
                self.ensure_window(window);
                // Adaptive windows are 2-slotted by ring parity: adjacent
                // rings work different batches in the same window, and the
                // slotting keeps their schedules from colliding at ring
                // boundaries (narrow rings put e.g. a corner node's only
                // in-ring neighbor right next to the following ring's
                // roots, which share its slow-slot timing).
                let offset = if self.step.is_some() {
                    let Some((ring, _)) = self.ring else { return Action::Listen };
                    if offset % 2 != u64::from(ring % 2) {
                        return Action::Listen;
                    }
                    offset / 2
                } else {
                    offset
                };
                let Some(active) = self.sched.as_mut() else { return Action::Listen };
                let batch = active.batch;
                match active.node.act(offset, rng) {
                    Action::Transmit(msg) => Action::Transmit(GhkMMsg::Sched { batch, msg }),
                    Action::Listen => Action::Listen,
                }
            }
            GhkMultiPhase::Handoff { window, offset } => {
                // Finish the window before handing off.
                self.harvest_window();
                self.handoff_seen = Some(window);
                let Some((ring, ring_level)) = self.ring else { return Action::Listen };
                // Slotted by ring parity to keep adjacent handoffs apart.
                if offset % 2 != u64::from(ring % 2) {
                    return Action::Listen;
                }
                let Some(batch) = self.plan.batch_in_window(window, ring) else {
                    return Action::Listen;
                };
                let outer =
                    ring_level == self.plan.ring_width - 1 && ring + 1 < self.plan.ring_count;
                if !outer {
                    return Action::Listen;
                }
                let Some(decoded) = &self.batches[batch as usize].decoded else {
                    return Action::Listen;
                };
                // With `fec_repair > 0` the decay gate is compressed to its
                // `r` highest-probability slots, so boundary nodes emit
                // fountain repair packets far more often — lossy-channel
                // redundancy. Exactly one `fires` draw either way, keeping
                // the RNG stream aligned (`0` is bit-identical to the
                // pre-knob pipeline).
                let gate_slot = match self.fec_repair {
                    0 => offset / 2,
                    r => (offset / 2) % u64::from(r),
                };
                if self.decay.fires(gate_slot, rng) {
                    let src = Decoder::with_messages(decoded);
                    if let Some(packet) = src.random_combination(rng) {
                        return Action::Transmit(GhkMMsg::Fec { batch, packet });
                    }
                }
                Action::Listen
            }
            GhkMultiPhase::Regional { window, offset } => {
                // Rung-2 recovery: region holders flood the failed window's
                // batches (their own and the one inbound from the previous
                // ring) on the Decay schedule with fountain packets.
                self.harvest_window();
                self.decode_ready();
                let Some((ring, _)) = self.ring else { return Action::Listen };
                let held: Vec<u32> = [
                    self.plan.batch_in_window(window, ring),
                    ring.checked_sub(1).and_then(|r| self.plan.batch_in_window(window, r)),
                ]
                .into_iter()
                .flatten()
                .filter(|&b| self.batches[b as usize].decoded.is_some())
                .collect();
                let Some(&batch) = held.get(offset as usize % held.len().max(1)) else {
                    return Action::Listen;
                };
                if self.decay.fires(offset, rng) {
                    let decoded = self.batches[batch as usize].decoded.as_ref().expect("held");
                    let src = Decoder::with_messages(decoded);
                    if let Some(packet) = src.random_combination(rng) {
                        return Action::Transmit(GhkMMsg::Fec { batch, packet });
                    }
                }
                Action::Listen
            }
            GhkMultiPhase::Fallback { offset } => {
                // No-knowledge recovery: finalize whatever the pipeline left
                // pending, then flood held batches on the Decay schedule with
                // fountain packets — no ring, window, or label bookkeeping.
                self.harvest_window();
                self.decode_ready();
                let held: Vec<u32> = (0..self.plan.batch_count)
                    .filter(|&b| self.batches[b as usize].decoded.is_some())
                    .collect();
                let Some(&batch) = held.get(offset as usize % held.len().max(1)) else {
                    return Action::Listen;
                };
                if self.decay.fires(offset, rng) {
                    let decoded = self.batches[batch as usize].decoded.as_ref().expect("held");
                    let src = Decoder::with_messages(decoded);
                    if let Some(packet) = src.random_combination(rng) {
                        return Action::Transmit(GhkMMsg::Fec { batch, packet });
                    }
                }
                Action::Listen
            }
            GhkMultiPhase::Done => {
                self.harvest_window();
                Action::Listen
            }
        }
    }

    fn observe_inner(&mut self, round: u64, obs: Observation<GhkMMsg>, rng: &mut SmallRng) {
        let phase = match self.step.as_ref().map(|c| c.get()) {
            Some(MultiStep::Idle) | Some(MultiStep::Status(_)) => return,
            Some(MultiStep::Work(seg)) => {
                seg.pos_at(round).expect("observation within the published segment")
            }
            None => self.plan.phase(round),
        };
        match phase {
            GhkMultiPhase::Wave { offset } => {
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        GhkMMsg::Wave(b) => Observation::packet(*b),
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                let was_layered = self.wave.level().is_some();
                self.wave.observe(offset, mapped, rng);
                if !was_layered && self.wave.level().is_some() {
                    self.wave_dirty = true;
                }
            }
            GhkMultiPhase::Construct { offset } => {
                let Some((ring, _)) = self.ring else { return };
                if offset % 2 != u64::from(ring % 2) {
                    return;
                }
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        GhkMMsg::Gst(m) => Observation::packet(*m),
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(c) = self.cons.as_mut() {
                    c.observe(offset / 2, mapped, rng);
                }
            }
            GhkMultiPhase::Label { offset } => {
                let Some((ring, _)) = self.ring else { return };
                if offset % 2 != u64::from(ring % 2) {
                    return;
                }
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        GhkMMsg::Vl(m) => Observation::packet(*m),
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                if let Some(v) = self.vl.as_mut() {
                    v.observe(offset / 2, mapped, rng);
                }
            }
            GhkMultiPhase::Disseminate { offset, .. } => {
                // Mirror the act-side parity slotting of adaptive windows.
                let offset = if self.step.is_some() {
                    let Some((ring, _)) = self.ring else { return };
                    if offset % 2 != u64::from(ring % 2) {
                        return;
                    }
                    offset / 2
                } else {
                    offset
                };
                let Some(active) = self.sched.as_mut() else { return };
                let mapped = match &obs {
                    Observation::Message(p) => match &**p {
                        GhkMMsg::Sched { batch, msg } if *batch == active.batch => {
                            Observation::packet(msg.clone())
                        }
                        // Other batches' packets are noise for this node —
                        // dropped here without ever copying the payload.
                        _ => Observation::Silence,
                    },
                    Observation::Collision => Observation::Collision,
                    Observation::SelfTransmit => Observation::SelfTransmit,
                    _ => Observation::Silence,
                };
                active.node.observe(offset, mapped, rng);
            }
            GhkMultiPhase::Handoff { window, offset: _ } => {
                let Some((ring, ring_level)) = self.ring else { return };
                // Ring roots (level 0) of ring j+1 listen for batch w-(j+1)+1:
                // the batch their predecessor ring just finished = w - (j+1) + 1
                // = w - j ... ring j hands batch (w - j) to ring j+1, whose
                // window for it is w+1. Roots of ring r listen for batch
                // (window - (r - 1)) from ring r-1.
                if ring_level != 0 || ring == 0 {
                    return;
                }
                let Some(batch) = self.plan.batch_in_window(window, ring - 1) else { return };
                if self.batches[batch as usize].decoded.is_some() {
                    return;
                }
                if let Observation::Message(p) = &obs {
                    if let GhkMMsg::Fec { batch: b, packet } = &**p {
                        if *b != batch {
                            return;
                        }
                        let klen = self.plan.batch_range(batch).len();
                        let slot = &mut self.batches[batch as usize];
                        let fec =
                            slot.fec.get_or_insert_with(|| Decoder::new(klen, self.payload_bits));
                        fec.insert(packet.clone());
                        // Harvested at the first act after this handoff
                        // closes (see `flush_fec`).
                        self.fec_pending = Some((window, batch));
                    }
                }
            }
            GhkMultiPhase::Regional { window, .. } => {
                // Region-gated adoption (ring-less strays count as in-region
                // — churn/mobility may have orphaned them mid-pipeline): a
                // member still missing a batch collects its fountain
                // packets, decoding at its next act (`decode_ready`).
                let in_region = match self.ring {
                    Some((r, _)) => {
                        self.plan.batch_in_window(window, r).is_some()
                            || r.checked_sub(1)
                                .and_then(|p| self.plan.batch_in_window(window, p))
                                .is_some()
                    }
                    None => true,
                };
                if !in_region {
                    return;
                }
                if let Observation::Message(p) = &obs {
                    if let GhkMMsg::Fec { batch, packet } = &**p {
                        let klen = self.plan.batch_range(*batch).len();
                        let slot = &mut self.batches[*batch as usize];
                        if slot.decoded.is_none()
                            && !slot.fec.as_ref().is_some_and(Decoder::can_decode)
                        {
                            let fec = slot
                                .fec
                                .get_or_insert_with(|| Decoder::new(klen, self.payload_bits));
                            fec.insert(packet.clone());
                        }
                    }
                }
            }
            GhkMultiPhase::Fallback { .. } => {
                // Ring-agnostic adoption: any node still missing a batch
                // collects fountain packets for it, decoding at its next act
                // (`decode_ready`) so coverage spreads hop by hop.
                if let Observation::Message(p) = &obs {
                    if let GhkMMsg::Fec { batch, packet } = &**p {
                        let klen = self.plan.batch_range(*batch).len();
                        let slot = &mut self.batches[*batch as usize];
                        if slot.decoded.is_none()
                            && !slot.fec.as_ref().is_some_and(Decoder::can_decode)
                        {
                            let fec = slot
                                .fec
                                .get_or_insert_with(|| Decoder::new(klen, self.payload_bits));
                            fec.insert(packet.clone());
                        }
                    }
                }
            }
            GhkMultiPhase::Done => {}
        }
    }
}

/// The adaptive Theorem 1.3 driver: owns the simulator and the shared phase
/// cursor, advances phases on status-round quiescence, and hard-caps every
/// phase at its [`GhkMultiPlan`] budget so [`GhkMultiPlan::total_rounds`]
/// bounds any run.
struct MultiDriver<T: Topology> {
    sim: Simulator<GhkMultiNode, T>,
    step: MultiStepCell,
    plan: GhkMultiPlan,
    beep: u64,
    quiescence_slack: u32,
    cons_status_left: u64,
    label_status_left: u64,
    phases: MultiPhaseRounds,
    completion: Option<u64>,
    /// True exactly when the simulator carries a fault plan — gates voting,
    /// handoff retries, the fec-repair adaptation, and the recovery ladder,
    /// so `FaultPlan::none()` runs stay bit-identical by construction.
    recovery: bool,
    /// Sliding-window estimator driving the handoff FEC repair rate (see
    /// [`LossEstimator`]); sampled once per dissemination window, so repair
    /// relaxes after bursty loss instead of ratcheting up forever.
    loss: LossEstimator,
    /// The repair rate last echoed to the nodes (initially the knob, which
    /// the constructor baked in); echoes only on change.
    fec_echoed: u32,
    /// Rung bookkeeping for the staged recovery ladder.
    ladder: Ladder,
    /// Running peak of the summed per-node resident state (see
    /// [`MultiDriver::sample_state`]).
    peak_nodes: usize,
}

impl<T: Topology> MultiDriver<T> {
    /// Moves the shared cursor: every cell change force-wakes all nodes
    /// (their hints were computed against the outgoing cell).
    fn publish(&mut self, step: MultiStep) {
        self.sim.wake_all();
        self.step.set(step);
    }

    /// Folds the current per-node resident state into the running peak.
    /// Called at phase boundaries (the retirement sweeps and window ends),
    /// where the state high-water marks sit.
    fn sample_state(&mut self) {
        let now: usize = self.sim.nodes().iter().map(GhkMultiNode::resident_bytes).sum();
        self.peak_nodes = self.peak_nodes.max(now);
    }

    fn exec(&mut self, step: MultiStep) -> RoundStats {
        self.publish(step);
        let stats = self.sim.step();
        // Completion is reception-driven (`is_complete`'s pending-decoder
        // arms flip only when a packet is inserted), so the O(n · batches)
        // all-nodes scan is needed only after delivery rounds.
        if self.completion.is_none()
            && stats.deliveries > 0
            && self.sim.nodes().iter().all(GhkMultiNode::is_complete)
        {
            self.completion = Some(self.sim.round());
        }
        stats
    }

    /// Publishes `len` consecutive work rounds starting at phase position
    /// `pos` as one [`Segment`] and runs them through the engine's wake fast
    /// path, stopping after delivery rounds to re-evaluate completion
    /// (exactly the per-step driver's delivery-gated scan). Returns the
    /// number of rounds actually executed.
    fn exec_segment(&mut self, pos: GhkMultiPhase, len: u64) -> u64 {
        let start = self.sim.round();
        self.publish(MultiStep::Work(Segment { start, len, pos }));
        let mut run = 0u64;
        while run < len && !self.done() {
            let seg = self.sim.run_segment(len - run, true);
            run += seg.rounds;
            if seg.stopped_on_delivery
                && self.completion.is_none()
                && self.sim.nodes().iter().all(GhkMultiNode::is_complete)
            {
                self.completion = Some(self.sim.round());
            }
        }
        run
    }

    fn done(&self) -> bool {
        self.completion.is_some()
    }

    /// Runs one status round; `true` iff the driver concludes the probe is
    /// quiet. On fault-free runs this is the omniscient census
    /// (`transmitters == 0`), untouched. On faulted runs a fault-touched
    /// status round is confirmed by majority vote over a small window (see
    /// [`vote_quiet`]); take-style probes that consume dirty flags are never
    /// re-probed.
    fn quiet(&mut self, probe: MultiProbe) -> bool {
        self.phases.status += 1;
        let first = self.exec(MultiStep::Status(probe));
        if !self.recovery {
            return first.transmitters == 0;
        }
        let votable =
            !matches!(probe, MultiProbe::WaveProgress | MultiProbe::Cons(ConsProbe::NewActivation));
        let v = vote_quiet(first, votable, || {
            self.phases.status += 1;
            match probe {
                MultiProbe::Cons(_) => {
                    self.cons_status_left = self.cons_status_left.saturating_sub(1);
                }
                MultiProbe::Unlabelled | MultiProbe::LabelFrontier { .. } => {
                    self.label_status_left = self.label_status_left.saturating_sub(1);
                }
                _ => {}
            }
            self.exec(MultiStep::Status(probe))
        });
        if v.overturned {
            self.sim.stats_mut().votes_overturned += 1;
        }
        v.quiet
    }

    /// Worst-case rounds still available under [`GhkMultiPlan::total_rounds`]
    /// — the shared pool retries and the fallback draw from.
    fn budget_left(&self) -> u64 {
        self.plan.total_rounds().saturating_sub(self.sim.round())
    }

    /// A labeling status round, charged against the labeling status budget.
    fn label_quiet(&mut self, probe: MultiProbe) -> Option<bool> {
        if self.label_status_left == 0 {
            return None;
        }
        self.label_status_left -= 1;
        Some(self.quiet(probe))
    }

    /// One adaptive open-ended window: `beep_interval` work rounds, one
    /// status round, until the probe has stayed quiet for
    /// `quiescence_slack` consecutive status rounds or `budget` (work +
    /// status rounds) is exhausted. With `probe_first`, the probe runs
    /// before any work — a window with nothing pending collapses to a
    /// single status round (the handoff-skip case).
    ///
    /// Spend is measured as the simulator-round delta, so the extra status
    /// rounds a majority vote injects on faulted runs charge this window's
    /// budget (fault-free runs execute exactly the rounds the old per-call
    /// counter did). Returns whether the window ended on quiescence or by
    /// exhausting its budget with the probe still busy — the failed-handoff
    /// signal the retry logic keys on.
    fn window(
        &mut self,
        budget: u64,
        probe: MultiProbe,
        probe_first: bool,
        work: impl Fn(u64) -> GhkMultiPhase,
        count: fn(&mut MultiPhaseRounds) -> &mut u64,
    ) -> WindowEnd {
        let slack = self.quiescence_slack.max(1);
        let mut offset = 0u64;
        let start = self.sim.round();
        let spent = |sim: &Simulator<GhkMultiNode, T>| sim.round() - start;
        let mut quiet_streak = 0u32;
        if probe_first && !self.done() && self.quiet(probe) {
            return WindowEnd::Quiesced;
        }
        while spent(&self.sim) < budget && !self.done() {
            let len = self.beep.min(budget - spent(&self.sim));
            let run = self.exec_segment(work(offset), len);
            *count(&mut self.phases) += run;
            offset += run;
            if spent(&self.sim) >= budget || self.done() {
                break;
            }
            if self.quiet(probe) {
                quiet_streak += 1;
                if quiet_streak >= slack {
                    return WindowEnd::Quiesced;
                }
            } else {
                quiet_streak = 0;
            }
        }
        if self.done() {
            WindowEnd::Quiesced
        } else {
            WindowEnd::Exhausted
        }
    }

    /// Phase 3: adaptive virtual labeling. `d` frontiers are processed in
    /// order; the phase ends early once every node is labelled or a frontier
    /// comes up empty (labels only ever derive `d + 1` from `d`, so an empty
    /// `S_d` means no later substage can label anyone — unlabelled nodes
    /// fall back to the `2·log n` cap exactly as under the fixed schedule).
    fn label(&mut self) {
        let vl = self.plan.vl;
        let per_d = vl.per_d_rounds();
        for d in 0..vl.d_values() {
            if self.done() {
                return;
            }
            match self.label_quiet(MultiProbe::Unlabelled) {
                Some(true) => return, // everyone labelled
                Some(false) => {}
                None => {
                    // Status budget gone: run the rest fixed (cap-bounded).
                    self.label_run(u64::from(d) * per_d, u64::from(vl.d_values() - d) * per_d);
                    return;
                }
            }
            match self.label_quiet(MultiProbe::LabelFrontier { d }) {
                Some(true) => return, // dead frontier: no further progress
                Some(false) => {}
                None => {
                    self.label_run(u64::from(d) * per_d, u64::from(vl.d_values() - d) * per_d);
                    return;
                }
            }
            self.label_run(u64::from(d) * per_d, per_d);
        }
    }

    /// Runs `len` labeling schedule rounds from schedule round `start`,
    /// 2-slotted by ring parity, as one published segment.
    fn label_run(&mut self, start: u64, len: u64) {
        let run = self.exec_segment(GhkMultiPhase::Label { offset: 2 * start }, 2 * len);
        self.phases.label += run;
    }

    /// Rung 1 of the recovery [`Ladder`]: replay the *failed window's*
    /// dissemination (re-seeding each ring's schedule from its decoded
    /// batches — `ensure_window` rebuilds the dropped schedule nodes) and a
    /// fresh handoff window, drawn from the remaining worst-case pool, while
    /// every other window's state stays intact. Returns `true` iff the run
    /// completed or the replayed handoff quiesced.
    fn ring_repair(&mut self, window: u32) -> bool {
        if self.budget_left() == 0 {
            return false;
        }
        self.ladder.ring();
        self.sim.stats_mut().ring_repairs += 1;
        let budget = self.plan.window_budget.min(self.budget_left());
        let _ = self.window(
            budget,
            MultiProbe::WindowUninformed { window },
            false,
            |offset| GhkMultiPhase::Disseminate { window, offset },
            |p| &mut p.repair,
        );
        if self.done() {
            return true;
        }
        let budget = self.plan.handoff_budget.min(self.budget_left());
        self.window(
            budget,
            MultiProbe::HandoffPending { window },
            true,
            |offset| GhkMultiPhase::Handoff { window, offset },
            |p| &mut p.repair,
        ) == WindowEnd::Quiesced
    }

    /// Rung 2 of the recovery [`Ladder`]: regional FEC re-dissemination —
    /// holders in the rings feeding the failed window (plus the ring right
    /// behind them) flood the window's batches with fountain packets,
    /// covering churn/mobility that moved the frontier across ring
    /// boundaries. Budgeted at two handoff windows from the remaining pool.
    fn regional_repair(&mut self, window: u32) -> bool {
        if self.budget_left() == 0 {
            return false;
        }
        self.ladder.regional();
        self.sim.stats_mut().regional_repairs += 1;
        let budget = (2 * self.plan.handoff_budget).min(self.budget_left());
        self.window(
            budget,
            MultiProbe::HandoffPending { window },
            false,
            |offset| GhkMultiPhase::Regional { window, offset },
            |p| &mut p.repair,
        ) == WindowEnd::Quiesced
    }

    /// Climbs rungs 1–2 for the failed window; `true` iff a rung recovered
    /// the handoff (or the run completed outright).
    fn climb_ladder(&mut self, window: u32) -> bool {
        if self.ring_repair(window) || self.done() {
            return true;
        }
        self.regional_repair(window) || self.done()
    }

    fn run(mut self) -> MultiOutcome {
        if self.sim.nodes().iter().all(GhkMultiNode::is_complete) {
            self.completion = Some(0);
        }
        if !self.done() {
            // Phase 1: the collision wave.
            let _ = self.window(
                self.plan.wave_budget,
                MultiProbe::WaveProgress,
                false,
                |offset| GhkMultiPhase::Wave { offset },
                |p| &mut p.wave,
            );
        }
        if !self.done() {
            // Phase 2: parallel per-ring GST construction (shared driver).
            let cons = self.plan.cons;
            drive_construction(&mut self, cons);
        }
        // Sample before the finalize echo: every layered node's construction
        // machine is still alive here.
        self.sample_state();
        // End-of-construction echo (see `single_message::Driver::run`).
        for i in 0..self.sim.nodes().len() {
            self.sim.node_mut(NodeId::new(i)).finalize_construction();
        }
        if !self.done() {
            // Phase 3: adaptive virtual labeling.
            self.label();
        }
        // The run's state peak: construction and labeling machines both
        // alive. The retirement sweep that follows caches the dissemination
        // labels and drops both, so the window phases run on lean shells.
        // The sweep's `node_mut` re-wakes are trace-neutral: every cursor
        // change starts with `wake_all`, so the next step polls all nodes
        // regardless.
        self.sample_state();
        for i in 0..self.sim.nodes().len() {
            self.sim.node_mut(NodeId::new(i)).retire_construction();
        }
        // Phase 4: the batch pipeline. Ring j disseminates batch w - j in
        // window w while ring j + 1 receives its handoff — windows close as
        // soon as every active ring can decode, and handoff slots collapse
        // to one probe when the receiving roots already hold the batch.
        'windows: for w in 0..self.plan.window_count() {
            if self.done() {
                break;
            }
            let _ = self.window(
                self.plan.window_budget,
                MultiProbe::WindowUninformed { window: w },
                false,
                |offset| GhkMultiPhase::Disseminate { window: w, offset },
                |p| &mut p.disseminate,
            );
            if self.done() {
                break;
            }
            // Faulted runs drive the handoff repair rate from the *measured*
            // per-copy erasure rate over a sliding window of recent
            // per-window deltas (see [`LossEstimator`]) instead of the
            // configured knob, echoing it to the nodes only when it changes
            // (never on clean channels, where the estimator is the
            // identity). The windowing lets repair relax once a bursty loss
            // interval ages out of the window.
            if self.recovery {
                let (erased, delivered) = {
                    let s = self.sim.stats();
                    (s.erased, s.deliveries)
                };
                let eff = self.loss.observe(erased, delivered);
                if eff != self.fec_echoed {
                    self.fec_echoed = eff;
                    for i in 0..self.sim.nodes().len() {
                        self.sim.node_mut(NodeId::new(i)).set_fec_repair(eff);
                    }
                }
            }
            // Handoff with retry-and-backoff: a handoff window that exhausts
            // its budget while the receiving roots still beep is a *failed*
            // handoff — re-publish it with a doubled budget (drawn from the
            // worst-case pool) instead of advancing into a dead window.
            // Retries exhausting climbs the recovery ladder for *this*
            // window (rung-1 window replay, then rung-2 regional FEC flood);
            // only both rungs failing abandons the pipeline toward the
            // rung-3 fallback, conserving the remaining budget.
            let mut budget = self.plan.handoff_budget;
            let mut attempt = 0u32;
            // Once the ladder has fired, the channel has already proven
            // persistently degraded — later failed handoffs skip the
            // doubling retry schedule and climb immediately, instead of
            // burning the full backoff pool per window.
            let max_retries = if self.ladder.ring_attempted() { 0 } else { HANDOFF_RETRIES };
            loop {
                let end = self.window(
                    budget,
                    MultiProbe::HandoffPending { window: w },
                    true,
                    |offset| GhkMultiPhase::Handoff { window: w, offset },
                    |p| &mut p.handoff,
                );
                if end == WindowEnd::Quiesced || !self.recovery {
                    break;
                }
                if attempt >= max_retries {
                    if self.climb_ladder(w) {
                        break;
                    }
                    break 'windows;
                }
                attempt += 1;
                budget = (budget * 2).min(self.budget_left());
                if budget == 0 {
                    if self.climb_ladder(w) {
                        break;
                    }
                    break 'windows;
                }
                self.sim.stats_mut().retries += 1;
            }
            // Window boundary: the live schedules are at their largest.
            self.sample_state();
        }
        // Staged-ladder epilogue: a faulted run that ends incomplete climbs
        // any rung it has not yet attempted — anchored at the last window —
        // before the last resort. Rung 3, the no-knowledge Decay fallback
        // (the Czumaj–Davies regime), is reached only after rungs 1–2 both
        // fired and failed: holders flood fountain packets ring-agnostically,
        // bounded by the remaining worst-case budget; stranded nodes (no
        // ring, no labels) finally participate. True to the no-knowledge
        // regime, there are no status beeps in rung 3: a vote the faults
        // corrupt must not silence the last-resort phase, so only the
        // delivery-gated completion scan (or the cap) ends it.
        if self.recovery && !self.done() {
            let frontier = self.plan.window_count().saturating_sub(1);
            if !self.ladder.ring_attempted() {
                let _ = self.ring_repair(frontier);
            }
            if !self.done() && !self.ladder.regional_attempted() {
                let _ = self.regional_repair(frontier);
            }
            if !self.done() && self.ladder.may_fall_back() {
                let left = self.budget_left();
                if left > 0 {
                    self.ladder.arm_fallback(self.sim.round());
                    let run = self.exec_segment(GhkMultiPhase::Fallback { offset: 0 }, left);
                    self.phases.fallback += run;
                    self.sim.stats_mut().fallback_rounds += run;
                }
            }
        }
        // End-of-run echo: harvest every pending decoder into its slot.
        self.sample_state();
        for i in 0..self.sim.nodes().len() {
            self.sim.node_mut(NodeId::new(i)).finalize_run();
        }
        if self.completion.is_none() && self.sim.nodes().iter().all(GhkMultiNode::is_complete) {
            self.completion = Some(self.sim.round());
        }

        // Per-node audits accumulate across window harvests (see
        // `GhkMultiNode::audit`), so summing after the finalize echo sees
        // every window's counters.
        let mut audit = SchedAudit::default();
        for n in self.sim.nodes() {
            audit.absorb(n.audit());
        }
        MultiOutcome {
            completion_round: self.completion,
            rounds_budget: self.plan.total_rounds(),
            audit,
            phases: self.phases,
            stats: self.sim.stats().clone(),
            fallback_entry: self.ladder.fallback_entry(),
            peak_state_bytes: self.sim.graph().resident_bytes() + self.peak_nodes,
        }
    }
}

impl<T: Topology> ConsDriver for MultiDriver<T> {
    fn cons_quiet(&mut self, probe: ConsProbe) -> Option<bool> {
        if self.cons_status_left == 0 {
            return None;
        }
        self.cons_status_left -= 1;
        Some(self.quiet(MultiProbe::Cons(probe)))
    }

    fn cons_run(&mut self, start: u64, len: u64) {
        // One segment per 2-slotted sub-window; the shared skip loop only
        // requests runs within a single construction-schedule segment, which
        // keeps the `may_act_in` wake hints valid across the batch.
        let run = self.exec_segment(GhkMultiPhase::Construct { offset: 2 * start }, 2 * len);
        self.phases.construct += run;
    }

    fn finished(&self) -> bool {
        self.done()
    }
}

/// Runs Theorem 1.3 end to end **adaptively**: the paper's phase windows are
/// kept as hard caps ([`GhkMultiPlan::total_rounds`] bounds every run), but
/// each phase terminates via in-model status beeps as soon as its work is
/// done — dissemination windows end on ring quiescence, handoff slots
/// collapse when the batch already crossed, and construction runs the
/// quiescence-skipping driver shared with Theorem 1.1. Narrow adaptive rings
/// ([`GhkMultiPlan::new_adaptive`]) keep construction parallel and shallow.
///
/// Returns the outcome plus per-node drop count.
///
/// # Panics
///
/// Panics if `messages` is empty or the graph is empty.
pub fn broadcast_unknown(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    mode: BatchMode,
) -> MultiOutcome {
    broadcast_unknown_with(graph, source, messages, params, seed, MultiRunOpts::new(mode))
}

/// Knobs of [`broadcast_unknown_with`] beyond the theorem's defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiRunOpts {
    /// Message batching.
    pub batch: BatchMode,
    /// Collision-detection mode (the theorem needs
    /// [`CollisionMode::Detection`]; `NoDetection` exists for determinism
    /// and ablation tests — the wave jams and the run caps out gracefully).
    pub mode: CollisionMode,
    /// Driver pacing — [`Pacing::PerStep`] reproduces the batched run round
    /// for round with every node polled every round (equivalence suites).
    pub pacing: Pacing,
    /// FEC repair aggressiveness at ring handoffs, for lossy channels.
    ///
    /// `0` (the default) keeps the paper's handoff emission: boundary nodes
    /// gate fountain packets on the full decay cycle. A positive value `r`
    /// compresses that gate to its `r` highest-probability slots, so boundary
    /// nodes emit RLNC repair packets (the in-tree `rlnc` fountain) much more
    /// often — redundancy that buys erasure protection at the dissemination
    /// windows' hand-off seams. The number of RNG draws per slot is
    /// unchanged, so `0` is bit-identical to the pre-knob pipeline.
    pub fec_repair: u32,
}

impl MultiRunOpts {
    /// Theorem 1.3 defaults: collision detection on, segment pacing.
    pub fn new(batch: BatchMode) -> Self {
        MultiRunOpts {
            batch,
            mode: CollisionMode::Detection,
            pacing: Pacing::Segment,
            fec_repair: 0,
        }
    }

    /// Overrides the collision mode.
    pub fn with_mode(mut self, mode: CollisionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the driver pacing.
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Overrides the handoff FEC repair aggressiveness (see
    /// [`MultiRunOpts::fec_repair`]).
    pub fn with_fec_repair(mut self, fec_repair: u32) -> Self {
        self.fec_repair = fec_repair;
        self
    }
}

/// [`broadcast_unknown`] with explicit [`MultiRunOpts`].
///
/// # Panics
///
/// Panics if `messages` is empty or the graph is empty.
pub fn broadcast_unknown_with(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    opts: MultiRunOpts,
) -> MultiOutcome {
    broadcast_unknown_faulted(graph, source, messages, params, seed, opts, &FaultPlan::none())
}

/// [`broadcast_unknown_with`] under a seeded adversarial
/// [`FaultPlan`] (see [`radio_sim::engine::faults`]).
///
/// With [`FaultPlan::none`](radio_sim::FaultPlan::none) the run is
/// bit-identical to [`broadcast_unknown_with`]. The diameter-derived plan is
/// computed from the *initial* topology; pair lossy plans with
/// [`MultiRunOpts::fec_repair`] to buy erasure protection at the ring
/// handoffs.
///
/// # Panics
///
/// Panics if `messages` is empty or the graph is empty.
pub fn broadcast_unknown_faulted(
    graph: &Graph,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    opts: MultiRunOpts,
    faults: &FaultPlan,
) -> MultiOutcome {
    broadcast_unknown_on(graph.clone(), source, messages, params, seed, opts, faults)
}

/// [`broadcast_unknown_faulted`] over any [`Topology`] — the generic entry
/// point the streamed pipelines use.
///
/// A streamed topology (e.g. [`radio_sim::ImplicitGraph`]) produces a run
/// bit-identical to the same topology materialized: neighborhoods are
/// byte-equal, so every transmission resolves identically. What changes is
/// residence — the adjacency is recomputed on demand instead of held in
/// memory, and [`MultiOutcome::peak_state_bytes`] reports the difference.
///
/// # Panics
///
/// Panics if `messages` is empty or the topology is empty, and if `faults`
/// carries a churn or mobility plan while `topology` is not a materialized
/// [`Graph`] (those plans rewrite the adjacency; see
/// [`Simulator::new_with_faults`]).
pub fn broadcast_unknown_on<T: Topology>(
    topology: T,
    source: NodeId,
    messages: &[BitVec],
    params: &Params,
    seed: u64,
    opts: MultiRunOpts,
    faults: &FaultPlan,
) -> MultiOutcome {
    assert!(!messages.is_empty(), "need at least one message");
    assert!(topology.node_count() > 0, "graph must be non-empty");
    let payload_bits = messages[0].len();
    let d = bfs_layering(&topology, &[source]).max_level();
    let plan = GhkMultiPlan::new_adaptive(params, d.max(1), messages.len(), opts.batch);
    let step: MultiStepCell = Rc::new(Cell::new(MultiStep::Idle));
    let sim = Simulator::new_with_faults(topology, opts.mode, seed, faults.clone(), |id| {
        GhkMultiNode::new(
            params,
            plan,
            id.raw(),
            payload_bits,
            (id == source).then(|| messages.to_vec()),
        )
        .with_cursor(Rc::clone(&step))
        .with_pacing(opts.pacing)
        .with_fec_repair(opts.fec_repair)
    });
    let recovery = sim.has_faults();
    MultiDriver {
        sim,
        step,
        plan,
        beep: u64::from(params.beep_interval.max(1)),
        quiescence_slack: params.quiescence_slack,
        cons_status_left: plan.cons_status,
        label_status_left: plan.label_status,
        phases: MultiPhaseRounds::default(),
        completion: None,
        recovery,
        loss: LossEstimator::new(opts.fec_repair),
        fec_echoed: opts.fec_repair,
        ladder: Ladder::new(),
        peak_nodes: 0,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;

    fn msgs(k: usize) -> Vec<BitVec> {
        (0..k as u64).map(|i| BitVec::from_u64(i.wrapping_mul(37) & 0xFFFF, 32)).collect()
    }

    #[test]
    fn known_topology_broadcasts_k_messages() {
        let g = generators::grid(6, 6);
        let params = Params::scaled(36);
        let out = broadcast_known(
            &g,
            NodeId::new(0),
            &msgs(8),
            &params,
            1,
            KnownRunOpts::new().with_max_rounds(300_000),
        );
        assert!(out.completion_round.is_some());
        assert_eq!(out.audit.fast_collisions_in_stretch, 0);
        assert_eq!(out.phases.total(), out.stats.rounds, "phase accounting must match the run");
        assert_eq!(out.phases.disseminate, out.stats.rounds, "T1.2 rounds are all dissemination");
    }

    #[test]
    fn known_topology_payloads_decode_correctly() {
        let g = generators::cluster_chain(4, 5);
        let params = Params::scaled(20);
        let messages = msgs(5);
        // Use the lower-level API to inspect decoded payloads.
        let mut rng = stream_rng(3, 1000);
        let (tree, _) =
            gst::build_gst(&g, &[NodeId::new(0)], &mut rng, &gst::BuildConfig::for_nodes(20));
        let vd = gst::VirtualDistances::compute(&g, &tree);
        let cfg = ScheduleConfig::from_params(&params);
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, 3, |id| {
            let node = MmvScheduleNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), 5, 32);
            if id.index() == 0 {
                node.with_messages(&messages)
            } else {
                node
            }
        });
        let done = sim.run_until(300_000, |nodes| nodes.iter().all(MmvScheduleNode::is_complete));
        assert!(done.is_some());
        for n in sim.nodes() {
            assert_eq!(n.decoder().decode().unwrap(), messages);
        }
    }

    #[test]
    fn unknown_topology_single_ring_full_k() {
        let g = generators::cluster_chain(4, 5);
        let params = Params::scaled(20);
        let out = broadcast_unknown(&g, NodeId::new(0), &msgs(4), &params, 2, BatchMode::FullK);
        assert!(out.completion_round.is_some(), "T1.3 failed within {} rounds", out.rounds_budget);
    }

    #[test]
    fn unknown_topology_on_grid() {
        let g = generators::grid(5, 5);
        let params = Params::scaled(25);
        let out = broadcast_unknown(&g, NodeId::new(0), &msgs(6), &params, 3, BatchMode::FullK);
        assert!(out.completion_round.is_some());
    }

    #[test]
    fn unknown_topology_with_generations_and_rings() {
        // Forced small rings + small generations: exercises batching, FEC
        // handoff and the cross-ring pipeline.
        let g = generators::cluster_chain(8, 3);
        let mut params = Params::scaled(24);
        params.ring_width = Some(4);
        let out =
            broadcast_unknown(&g, NodeId::new(0), &msgs(6), &params, 4, BatchMode::Generations(3));
        assert!(
            out.completion_round.is_some(),
            "pipelined T1.3 failed within {} rounds",
            out.rounds_budget
        );
    }

    #[test]
    fn plan_pipeline_covers_all_ring_batch_pairs() {
        let mut params = Params::scaled(64);
        params.ring_width = Some(3);
        let plan = GhkMultiPlan::new(&params, 11, 10, BatchMode::Generations(4));
        assert!(plan.ring_count > 1);
        assert_eq!(plan.batch_count, 3);
        for ring in 0..plan.ring_count {
            for batch in 0..plan.batch_count {
                let w = ring + batch;
                assert_eq!(plan.batch_in_window(w, ring), Some(batch));
            }
        }
        assert_eq!(plan.batch_in_window(0, 1), None);
        assert_eq!(plan.phase(plan.total_rounds()), GhkMultiPhase::Done);
    }

    #[test]
    fn adaptive_run_is_far_below_the_cap() {
        // The point of the adaptive driver: actual rounds ≪ worst-case cap
        // (the fixed windows used to be executed verbatim).
        let g = generators::cluster_chain(6, 6);
        let params = Params::scaled(36);
        let out = broadcast_unknown(&g, NodeId::new(0), &msgs(8), &params, 11, BatchMode::FullK);
        let done = out.completion_round.expect("completes");
        assert!(done <= out.rounds_budget, "cap violated: {done} > {}", out.rounds_budget);
        assert!(
            done * 10 <= out.rounds_budget,
            "adaptive run ({done}) should be at least 10x below the cap ({})",
            out.rounds_budget
        );
        assert!(out.phases.status > 0, "no status rounds were spent");
        assert_eq!(out.phases.total(), out.stats.rounds, "phase accounting must match the run");
        assert_ne!(
            out.audit,
            SchedAudit::default(),
            "audit counters lost (window harvests must accumulate them)"
        );
    }

    #[test]
    fn fixed_path_wake_hints_match_dense() {
        // The fixed-plan node opts into the wake-list engine; its trace must
        // be identical to the dense sweep.
        use radio_sim::graph::Traversal;
        use radio_sim::DenseWrap;
        let g = generators::cluster_chain(4, 5);
        let params = Params::scaled(20);
        let messages = msgs(4);
        let d = g.bfs(NodeId::new(0)).max_level();
        let plan = GhkMultiPlan::new(&params, d, 4, BatchMode::FullK);
        let make = |id: NodeId| {
            GhkMultiNode::new(
                &params,
                plan,
                id.raw(),
                32,
                (id.index() == 0).then(|| messages.clone()),
            )
        };
        let mut wake = Simulator::new(g.clone(), CollisionMode::Detection, 5, make);
        let mut dense =
            Simulator::new(g.clone(), CollisionMode::Detection, 5, |id| DenseWrap(make(id)));
        wake.run(plan.fixed_rounds() + 1);
        dense.run(plan.fixed_rounds() + 1);
        assert_eq!(
            (wake.stats().transmissions, wake.stats().deliveries, wake.stats().collisions),
            (dense.stats().transmissions, dense.stats().deliveries, dense.stats().collisions),
            "channel trace diverged"
        );
        for (i, (w, d)) in wake.nodes().iter().zip(dense.nodes()).enumerate() {
            assert_eq!(w.messages(), d.0.messages(), "node {i} decoded differently");
            assert_eq!(w.messages().as_deref(), Some(&messages[..]), "node {i} wrong payloads");
        }
        assert!(wake.stats().act_skips > 0, "no act was ever skipped");
        assert_eq!(dense.stats().act_skips, 0);
    }

    #[test]
    fn batch_ranges_partition_messages() {
        let params = Params::scaled(64);
        let plan = GhkMultiPlan::new(&params, 5, 10, BatchMode::Generations(4));
        let mut seen = [false; 10];
        for b in 0..plan.batch_count {
            for i in plan.batch_range(b) {
                assert!(!seen[i], "message {i} in two batches");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
