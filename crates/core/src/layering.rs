//! Distributed BFS layering.
//!
//! Two algorithms from the paper:
//!
//! * [`CollisionWaveLayering`] — the `D`-round layering from the proof of
//!   Theorem 1.1, requiring collision detection: the source transmits in
//!   every round; every node starts transmitting one round after it first
//!   hears a *signal* (message **or** collision), and the round of that first
//!   signal is exactly its BFS distance.
//! * [`DecayLayering`] — the `O(D log^2 n)`-round layering of Section 2.2.2
//!   for the model **without** collision detection: `D` epochs of `Θ(log n)`
//!   Decay phases; a node joins the wave in the epoch after it first receives
//!   a message, and the joining epoch index is its BFS level.

use crate::decay::DecaySchedule;
use crate::params::Params;
use radio_sim::model::PacketBits;
use radio_sim::{Action, Observation, Protocol, Wake};
use rand::rngs::SmallRng;

/// The content-free "beep" packet of the collision wave.
///
/// Any packet works: receivers only use *signal vs. silence*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Beep;

impl PacketBits for Beep {
    fn packet_bits(&self) -> usize {
        1
    }
}

/// The collision-wave layering (with collision detection): after `D` rounds,
/// every node's [`level`](CollisionWaveLayering::level) is its BFS distance
/// from the source.
#[derive(Clone, Debug)]
pub struct CollisionWaveLayering {
    is_source: bool,
    /// Round (1-based) of the first observed signal = the BFS level.
    level: Option<u32>,
}

impl CollisionWaveLayering {
    /// A node of the wave; exactly one node must be the source.
    pub fn new(is_source: bool) -> Self {
        CollisionWaveLayering { is_source, level: is_source.then_some(0) }
    }

    /// The learned BFS level (0 at the source), or `None` if the wave has not
    /// arrived yet.
    pub fn level(&self) -> Option<u32> {
        self.level
    }
}

impl Protocol for CollisionWaveLayering {
    type Msg = Beep;
    // Only signals (messages/collisions) matter; silence is a no-op.
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;

    /// Unlayered nodes are inert until the wave's first signal reaches them
    /// (which re-wakes them); a node layered `l` beeps from round `l` on.
    fn next_wake(&self, round: u64) -> Wake {
        match self.level {
            Some(l) if u64::from(l) <= round => Wake::Now,
            Some(l) => Wake::At(u64::from(l)),
            None => Wake::Idle,
        }
    }

    fn act(&mut self, round: u64, _rng: &mut SmallRng) -> Action<Beep> {
        match self.level {
            // The source transmits in all rounds [1, D]; a node with level l
            // transmits in all rounds [l + 1, D] (it heard the wave at round
            // l, 1-based). `round` here is 0-based: round r is paper round
            // r + 1.
            Some(l) if round >= u64::from(l) => Action::Transmit(Beep),
            _ => Action::Listen,
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<Beep>, _rng: &mut SmallRng) {
        if self.level.is_none() && obs.is_signal() {
            // First signal in 0-based round r = paper round r + 1 = level.
            self.level = Some(u32::try_from(round + 1).expect("level fits u32"));
        }
        let _ = self.is_source;
    }
}

/// Packet of the Decay-based layering: a content-free wave token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveToken;

impl PacketBits for WaveToken {
    fn packet_bits(&self) -> usize {
        1
    }
}

/// The Decay-epoch layering (no collision detection needed):
/// epochs of `Θ(log^2 n)` rounds; a node that first receives the token in
/// epoch `e` has BFS level `e + 1` and participates from epoch `e + 1` on.
#[derive(Clone, Debug)]
pub struct DecayLayering {
    schedule: DecaySchedule,
    epoch_rounds: u64,
    /// Epoch from which this node participates (0 for the source).
    active_from_epoch: Option<u64>,
    level: Option<u32>,
}

impl DecayLayering {
    /// A node of the layering; exactly one node must be the source.
    pub fn new(params: &Params, is_source: bool) -> Self {
        DecayLayering {
            schedule: DecaySchedule::from_params(params),
            epoch_rounds: u64::from(params.decay_step_rounds()),
            active_from_epoch: is_source.then_some(0),
            level: is_source.then_some(0),
        }
    }

    /// The learned BFS level, or `None` while the wave has not arrived.
    pub fn level(&self) -> Option<u32> {
        self.level
    }

    /// Rounds needed to layer a graph of diameter at most `d_bound`.
    pub fn rounds_required(params: &Params, d_bound: u32) -> u64 {
        u64::from(d_bound) * u64::from(params.decay_step_rounds())
    }
}

impl Protocol for DecayLayering {
    type Msg = WaveToken;
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;

    /// A node samples the Decay pattern from the first round of its joining
    /// epoch on; before that (or before the token arrives) it is inert.
    fn next_wake(&self, round: u64) -> Wake {
        match self.active_from_epoch {
            Some(e) => {
                let start = e * self.epoch_rounds;
                if start <= round {
                    Wake::Now
                } else {
                    Wake::At(start)
                }
            }
            None => Wake::Idle,
        }
    }

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<WaveToken> {
        let epoch = round / self.epoch_rounds;
        match self.active_from_epoch {
            Some(e) if epoch >= e && self.schedule.fires(round % self.epoch_rounds, rng) => {
                Action::Transmit(WaveToken)
            }
            _ => Action::Listen,
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<WaveToken>, _rng: &mut SmallRng) {
        if self.level.is_none() && obs.is_message() {
            let epoch = round / self.epoch_rounds;
            self.level = Some(u32::try_from(epoch + 1).expect("level fits u32"));
            self.active_from_epoch = Some(epoch + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::graph::{generators, Traversal};
    use radio_sim::{CollisionMode, NodeId, Simulator};

    fn check_collision_wave(g: radio_sim::Graph, seed: u64) {
        let truth = g.bfs(NodeId::new(0));
        let d = u64::from(truth.max_level());
        let mut sim = Simulator::new(g, CollisionMode::Detection, seed, |id| {
            CollisionWaveLayering::new(id.index() == 0)
        });
        sim.run(d); // exactly D rounds, as the paper promises
        for (i, node) in sim.nodes().iter().enumerate() {
            assert_eq!(node.level(), Some(truth.level(NodeId::new(i))), "node {i} mislabelled");
        }
    }

    #[test]
    fn collision_wave_on_path() {
        check_collision_wave(generators::path(40), 0);
    }

    #[test]
    fn collision_wave_on_grid() {
        check_collision_wave(generators::grid(8, 8), 1);
    }

    #[test]
    fn collision_wave_on_cluster_chain() {
        check_collision_wave(generators::cluster_chain(7, 5), 2);
    }

    #[test]
    fn collision_wave_on_random_graph() {
        for seed in 0..5 {
            let mut rng = radio_sim::rng::stream_rng(seed, 0);
            check_collision_wave(generators::gnp_connected(80, 0.06, &mut rng), seed);
        }
    }

    #[test]
    fn collision_wave_needs_detection() {
        // Without CD, collisions look like silence and the wave stalls on
        // dense graphs where every frontier is jammed. On a clique of >= 3
        // informed... actually with a single source the first round is a
        // clean message; use a diamond where two nodes jam the sink.
        let g = radio_sim::Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let truth_d = 2u64;
        let mut sim = Simulator::new(g, CollisionMode::NoDetection, 0, |id| {
            CollisionWaveLayering::new(id.index() == 0)
        });
        sim.run(truth_d);
        // Node 3 hears only collisions (1 and 2 transmit together) => never
        // layered under NoDetection.
        assert_eq!(sim.node(NodeId::new(3)).level(), None);
    }

    fn check_decay_layering(g: radio_sim::Graph, seed: u64) {
        let truth = g.bfs(NodeId::new(0));
        let params = Params::scaled(g.node_count());
        let rounds = DecayLayering::rounds_required(&params, truth.max_level() + 1);
        let mut sim = Simulator::new(g, CollisionMode::NoDetection, seed, |id| {
            DecayLayering::new(&params, id.index() == 0)
        });
        sim.run(rounds);
        let mut mislabelled = 0usize;
        for (i, node) in sim.nodes().iter().enumerate() {
            if node.level() != Some(truth.level(NodeId::new(i))) {
                mislabelled += 1;
            }
        }
        // Decay layering is whp-correct; with scaled constants allow a tiny
        // miss rate (a missed node gets a *larger* level, never smaller).
        assert!(
            mislabelled * 50 <= sim.nodes().len(),
            "{mislabelled}/{} mislabelled",
            sim.nodes().len()
        );
    }

    #[test]
    fn decay_layering_on_path() {
        check_decay_layering(generators::path(24), 3);
    }

    #[test]
    fn decay_layering_on_cluster_chain() {
        check_decay_layering(generators::cluster_chain(6, 5), 4);
    }

    #[test]
    fn decay_layering_levels_never_too_small() {
        // A node can only receive the token after a neighbor has it, so the
        // learned level can never undershoot the true distance.
        let g = generators::cluster_chain(5, 4);
        let truth = g.bfs(NodeId::new(0));
        let params = Params::scaled(g.node_count());
        let rounds = DecayLayering::rounds_required(&params, truth.max_level() + 1);
        let mut sim = Simulator::new(g, CollisionMode::NoDetection, 5, |id| {
            DecayLayering::new(&params, id.index() == 0)
        });
        sim.run(rounds);
        for (i, node) in sim.nodes().iter().enumerate() {
            if let Some(l) = node.level() {
                assert!(l >= truth.level(NodeId::new(i)), "node {i} undershot");
            }
        }
    }

    #[test]
    fn beep_packets_are_tiny() {
        assert_eq!(Beep.packet_bits(), 1);
        assert_eq!(WaveToken.packet_bits(), 1);
    }
}
