//! Distributed virtual-distance labeling (Lemma 3.10).
//!
//! After the GST construction every node knows its level, rank, parent and
//! parent rank; the multi-message schedule additionally needs the *virtual
//! distance* `d_u` in the stretch graph `G'`. The paper computes the labels
//! recursively over `d = 0, 1, …, 2⌈log2 n⌉ − 1`; given all `d`-labelled
//! nodes (`S_d`), the `d+1` labels are found in two stages:
//!
//! * **Stage 1 (fast edges)** — for each rank `r`, two epochs of `D` rounds:
//!   in epoch 1, stretch *heads* in `S_d` of rank `r` transmit in the round
//!   matching their level; the next stretch node hears its parent and takes
//!   `d + 1`. In epoch 2 the label is pipelined down the stretch, one level
//!   per round. Collision-freeness of the GST keeps these waves clean
//!   (transmitters are gated on having a same-rank child, as in the fast
//!   transmissions of Section 3.2).
//! * **Stage 2 (graph edges)** — `Θ(log n)` Decay phases in which all of
//!   `S_d` transmits; any unlabelled listener takes `d + 1`.
//!
//! A node that is labelled through stage 2 before its stretch wave arrives
//! stops relaying the wave (the paper's procedure shares this property);
//! nodes further down the stretch are then labelled a step later through
//! stage 2, giving a slight *over*-estimate. Labels never underestimate, and
//! the tests bound the excess.

use crate::construction::GstLabels;
use crate::params::Params;
use radio_sim::model::PacketBits;
use radio_sim::{Action, Observation, Protocol};
use rand::rngs::SmallRng;
use rand::Rng;

/// Messages of the labeling protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VlMsg {
    /// Stage-1 stretch wave carrying the sender id (receivers check it is
    /// their parent).
    Wave {
        /// The transmitting node.
        sender: u32,
    },
    /// Stage-2 spread token.
    Spread,
}

impl PacketBits for VlMsg {
    fn packet_bits(&self) -> usize {
        match self {
            VlMsg::Wave { .. } => 1 + 32,
            VlMsg::Spread => 1,
        }
    }
}

/// The static round structure of the labeling run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VlSchedule {
    /// Largest level in the domain (`D` for whole graphs, `W - 1` per ring).
    pub max_level: u32,
    log_n: u32,
    decay_step: u64,
}

/// A resolved position in the labeling schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VlPhase {
    /// Stage 1, `(d, rank, epoch 0|1, round ℓ)`.
    Wave { d: u32, rank: u32, epoch: u8, l: u32 },
    /// Stage 2, `(d, offset)`.
    Spread { d: u32, offset: u64 },
}

impl VlSchedule {
    /// The schedule for a domain with levels `0..=max_level` under `params`.
    pub fn new(params: &Params, max_level: u32) -> Self {
        VlSchedule {
            max_level: max_level.max(1),
            log_n: params.log_n,
            decay_step: u64::from(params.decay_step_rounds()),
        }
    }

    fn per_rank(&self) -> u64 {
        2 * u64::from(self.max_level)
    }

    fn per_d(&self) -> u64 {
        u64::from(self.log_n) * self.per_rank() + self.decay_step
    }

    /// Values of `d` processed: `0 .. 2·⌈log2 n⌉`.
    pub fn d_values(&self) -> u32 {
        2 * self.log_n
    }

    /// Rounds one `d` value's substages occupy (per-rank waves + spread) —
    /// the granularity at which the adaptive Theorem 1.3 driver skips dead
    /// frontiers.
    pub fn per_d_rounds(&self) -> u64 {
        self.per_d()
    }

    /// Total rounds of the labeling run.
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.d_values()) * self.per_d()
    }

    fn phase(&self, t: u64) -> Option<VlPhase> {
        if t >= self.total_rounds() {
            return None;
        }
        let d = u32::try_from(t / self.per_d()).expect("fits");
        let in_d = t % self.per_d();
        let wave_rounds = u64::from(self.log_n) * self.per_rank();
        if in_d < wave_rounds {
            let rank = u32::try_from(in_d / self.per_rank()).expect("fits") + 1;
            let in_rank = in_d % self.per_rank();
            let epoch = u8::try_from(in_rank / u64::from(self.max_level)).expect("fits");
            let l = u32::try_from(in_rank % u64::from(self.max_level)).expect("fits");
            Some(VlPhase::Wave { d, rank, epoch, l })
        } else {
            Some(VlPhase::Spread { d, offset: in_d - wave_rounds })
        }
    }
}

/// One node of the labeling protocol.
#[derive(Clone, Debug)]
pub struct VirtualLabelNode {
    id: u32,
    labels: GstLabels,
    sched: VlSchedule,
    /// The learned virtual distance (0 at roots).
    vdist: Option<u32>,
    /// Set while this node was stage-1 labelled within the current `(d, r)`
    /// substage — it relays the wave in epoch 2.
    wave_tag: Option<(u32, u32)>,
}

impl VirtualLabelNode {
    /// A node with construction `labels`; roots (level 0) start at `d = 0`.
    pub fn new(sched: VlSchedule, id: u32, labels: GstLabels) -> Self {
        VirtualLabelNode {
            id,
            labels,
            sched,
            vdist: (labels.level == 0).then_some(0),
            wave_tag: None,
        }
    }

    /// The learned virtual distance.
    pub fn vdist(&self) -> Option<u32> {
        self.vdist
    }

    /// The underlying construction labels.
    pub fn labels(&self) -> GstLabels {
        self.labels
    }
}

impl Protocol for VirtualLabelNode {
    type Msg = VlMsg;

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<VlMsg> {
        let Some(phase) = self.sched.phase(round) else {
            return Action::Listen;
        };
        match phase {
            VlPhase::Wave { d, rank, epoch, l } => {
                if self.labels.rank != rank
                    || self.labels.level != l
                    || !self.labels.has_stretch_child
                {
                    return Action::Listen;
                }
                let transmits = if epoch == 0 {
                    // Stretch heads labelled exactly d start the wave.
                    self.labels.is_stretch_start() && self.vdist == Some(d)
                } else {
                    // Stage-1 labelled nodes of this substage relay it.
                    self.wave_tag == Some((d, rank))
                };
                if transmits {
                    return Action::Transmit(VlMsg::Wave { sender: self.id });
                }
            }
            VlPhase::Spread { d, offset } => {
                // Only S_d — nodes labelled exactly d — spread.
                if self.vdist == Some(d) && self.decay_fires(offset, rng) {
                    return Action::Transmit(VlMsg::Spread);
                }
            }
        }
        Action::Listen
    }

    fn observe(&mut self, round: u64, obs: Observation<VlMsg>, _rng: &mut SmallRng) {
        let Some(phase) = self.sched.phase(round) else { return };
        let Observation::Message(packet) = obs else { return };
        let msg = *packet;
        match (phase, msg) {
            (VlPhase::Wave { d, rank, epoch: _, l }, VlMsg::Wave { sender })
                if self.vdist.is_none()
                    && self.labels.level == l + 1
                    && self.labels.rank == rank
                    && self.labels.in_stretch()
                    && self.labels.parent == Some(sender) =>
            {
                self.vdist = Some(d + 1);
                self.wave_tag = Some((d, rank));
            }
            (VlPhase::Spread { d, .. }, VlMsg::Spread) if self.vdist.is_none() => {
                self.vdist = Some(d + 1);
            }
            _ => {}
        }
    }
}

impl VirtualLabelNode {
    /// Decay firing for stage-2 spreads.
    fn decay_fires(&self, offset: u64, rng: &mut SmallRng) -> bool {
        let i = (offset % u64::from(self.sched.log_n.max(1))) as i32;
        rng.gen_bool(0.5f64.powi(i))
    }

    /// Wake helper for enclosing pipelines: the first schedule round
    /// `>= from` in which this node's `act` might transmit or draw from its
    /// RNG, or `None` if no such round remains for its *current* state
    /// (receptions re-label the node, and the engine re-queries hints after
    /// every delivered observation).
    ///
    /// Mirrors `act` exactly: an unlabelled node is inert; a node labelled
    /// `d` starts a stage-1 wave in its `(d, rank)` epoch-1 slot (if it
    /// heads a stretch), relays in the epoch-2 slot of the substage that
    /// labelled it, and samples the Decay spread in every round of block
    /// `d`'s stage-2 segment.
    pub fn next_act_round(&self, from: u64) -> Option<u64> {
        let s = &self.sched;
        let per_rank = s.per_rank();
        let per_d = s.per_d();
        let wave_rounds = u64::from(s.log_n) * per_rank;
        let mut best: Option<u64> = None;
        let mut consider = |t: u64| {
            if t >= from {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        };
        if self.labels.has_stretch_child
            && (1..=s.log_n).contains(&self.labels.rank)
            && self.labels.level < s.max_level
        {
            let rank_base =
                |d: u32| u64::from(d) * per_d + u64::from(self.labels.rank - 1) * per_rank;
            if let Some(v) = self.vdist {
                if self.labels.is_stretch_start() && v < s.d_values() {
                    consider(rank_base(v) + u64::from(self.labels.level));
                }
            }
            if let Some((d0, r0)) = self.wave_tag {
                if r0 == self.labels.rank && d0 < s.d_values() {
                    consider(rank_base(d0) + u64::from(s.max_level) + u64::from(self.labels.level));
                }
            }
        }
        if let Some(v) = self.vdist {
            if v < s.d_values() {
                let spread_start = u64::from(v) * per_d + wave_rounds;
                let spread_end = (u64::from(v) + 1) * per_d;
                if from < spread_end {
                    consider(from.max(spread_start));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst::{build_gst, BuildConfig, Gst, VirtualDistances};
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;
    use radio_sim::{CollisionMode, Graph, NodeId, Simulator};

    /// Builds a centralized GST and runs the distributed labeling on it.
    fn run_labeling(g: &Graph, seed: u64) -> (Vec<Option<u32>>, Gst) {
        let mut rng = stream_rng(seed, 2);
        let (gst, _) =
            build_gst(g, &[NodeId::new(0)], &mut rng, &BuildConfig::for_nodes(g.node_count()));
        let params = Params::scaled(g.node_count());
        let sched = VlSchedule::new(&params, gst.max_level());
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
            let labels = GstLabels {
                level: gst.level(id),
                rank: gst.rank(id),
                parent: gst.parent(id).map(|p| p.raw()),
                parent_rank: gst.parent_rank(id),
                has_stretch_child: gst.is_fast_transmitter(id),
            };
            VirtualLabelNode::new(sched, id.raw(), labels)
        });
        sim.run(sched.total_rounds());
        (sim.nodes().iter().map(|n| n.vdist()).collect(), gst)
    }

    fn check(g: &Graph, seed: u64, slack: u32) {
        let (got, gst) = run_labeling(g, seed);
        let truth = VirtualDistances::compute(g, &gst);
        let mut labelled = 0usize;
        for v in g.node_ids() {
            if let Some(d) = got[v.index()] {
                labelled += 1;
                assert!(d >= truth.get(v), "{v} underestimated: {d} < {}", truth.get(v));
                assert!(
                    d <= truth.get(v) + slack,
                    "{v} overestimated: {d} > {} + {slack}",
                    truth.get(v)
                );
            }
        }
        assert_eq!(labelled, g.node_count(), "unlabelled nodes remain");
    }

    #[test]
    fn labels_path() {
        check(&generators::path(24), 1, 1);
    }

    #[test]
    fn labels_star() {
        check(&generators::star(12), 2, 1);
    }

    #[test]
    fn labels_grid() {
        check(&generators::grid(6, 5), 3, 2);
    }

    #[test]
    fn labels_cluster_chain() {
        check(&generators::cluster_chain(5, 5), 4, 2);
    }

    #[test]
    fn labels_random_graphs() {
        for seed in 0..3 {
            let mut rng = stream_rng(seed, 8);
            let g = generators::gnp_connected(40, 0.12, &mut rng);
            check(&g, seed, 2);
        }
    }

    #[test]
    fn schedule_total_rounds() {
        let params = Params::scaled(64);
        let sched = VlSchedule::new(&params, 10);
        assert_eq!(
            sched.total_rounds(),
            u64::from(2 * params.log_n)
                * (u64::from(params.log_n) * 20 + u64::from(params.decay_step_rounds()))
        );
        assert!(sched.phase(sched.total_rounds()).is_none());
        assert!(sched.phase(0).is_some());
    }

    #[test]
    fn next_act_round_never_misses_an_action() {
        // The wake-helper contract: for every `from`, each round strictly
        // before `next_act_round(from)` must be a pure listen that leaves
        // the node's RNG untouched.
        let params = Params::scaled(32);
        let sched = VlSchedule::new(&params, 4);
        let mk = |level, rank, stretch_child, parent_rank| GstLabels {
            level,
            rank,
            parent: (level > 0).then_some(0),
            parent_rank,
            has_stretch_child: stretch_child,
        };
        let configs = [
            mk(0, 2, true, None),
            mk(1, 2, true, Some(2)),
            mk(2, 1, false, Some(2)),
            mk(3, 3, true, Some(1)),
            mk(4, 1, false, Some(1)),
        ];
        for labels in configs {
            for vdist in [None, Some(0), Some(1), Some(3), Some(sched.d_values())] {
                for wave_tag in [None, Some((1u32, labels.rank))] {
                    let mut node = VirtualLabelNode::new(sched, 9, labels);
                    node.vdist = vdist;
                    node.wave_tag = wave_tag;
                    for from in (0..sched.total_rounds()).step_by(7) {
                        let next = node.next_act_round(from);
                        let horizon = next.unwrap_or(sched.total_rounds());
                        assert!(next.is_none_or(|t| t >= from));
                        for t in from..horizon {
                            let mut a = stream_rng(42, t);
                            let mut b = stream_rng(42, t);
                            assert!(
                                matches!(node.act(t, &mut a), Action::Listen),
                                "hinted-inert node acted at {t} (from {from}, {labels:?})"
                            );
                            use rand::Rng;
                            assert_eq!(
                                a.gen::<u64>(),
                                b.gen::<u64>(),
                                "hinted-inert node drew RNG at {t} ({labels:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn roots_start_at_zero() {
        let params = Params::scaled(8);
        let sched = VlSchedule::new(&params, 2);
        let root = VirtualLabelNode::new(
            sched,
            0,
            GstLabels {
                level: 0,
                rank: 2,
                parent: None,
                parent_rank: None,
                has_stretch_child: true,
            },
        );
        assert_eq!(root.vdist(), Some(0));
        let other = VirtualLabelNode::new(
            sched,
            1,
            GstLabels {
                level: 1,
                rank: 1,
                parent: Some(0),
                parent_rank: Some(2),
                has_stretch_child: false,
            },
        );
        assert_eq!(other.vdist(), None);
    }
}
