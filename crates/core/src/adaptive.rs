//! Shared machinery of the adaptive (quiescence-driven) pipeline drivers.
//!
//! PR 2 introduced phase-completion detection for the Theorem 1.1 pipeline:
//! open-ended phases interleave dedicated *status rounds* in which exactly
//! the nodes with pending work transmit a content-free beep, and the driver
//! advances the shared phase cursor once the channel stays silent (see
//! `single_message` for the full in-model justification). The most intricate
//! part — skipping quiescent rank blocks, epochs and recruiting tails of the
//! distributed GST construction — is identical for the Theorem 1.1 and
//! Theorem 1.3 pipelines, so it lives here: [`ConsProbe`] enumerates the
//! construction status probes, [`answer_cons_probe`] evaluates one against a
//! node's construction state, and [`drive_construction`] is the
//! rank-block/epoch/recruiting skip loop, generic over the [`ConsDriver`]
//! hooks each pipeline driver provides.
//!
//! ## Segment pacing
//!
//! PR 4 changed how the drivers pump the simulator. Instead of setting the
//! shared cursor cell and calling `Simulator::step` once per round, a driver
//! now *publishes* a whole [`Segment`] — the simulator round it starts at,
//! its length, and the phase position of its first round — and executes it
//! with `Simulator::run_segment`, which runs on the engine's wake-list fast
//! path (acts cost `O(awake)`; fully-idle stretches fast-forward in `O(1)`).
//! Nodes derive their per-round phase position from the published segment
//! (`pos.advanced(round - start)`), and their `next_wake` hints are *clamped
//! to the segment end*: every node is polled again on the first round after
//! the segment, which is exactly when the driver publishes the next segment
//! or runs a status round. That clamp is the invariant that makes arbitrary
//! driver decisions (probe outcomes, block skips, early phase closure) safe
//! under wake hints — a sleeping node can never miss a cursor change,
//! because every cursor change happens at a round where everyone is awake.
//!
//! Mid-segment completion detection stays exact: `run_segment` stops after
//! any round that delivered a packet (the only rounds in which a
//! reception-driven completion predicate can flip), the driver re-scans, and
//! resumes the remainder. The executed round sequence is bit-identical to
//! per-round stepping — [`Pacing::PerStep`] keeps the old regime available
//! for the equivalence suites.

use crate::construction::{ConstructionSchedule, GstConstructionNode};
use radio_sim::trace::RoundStats;

/// How an adaptive pipeline driver pumps the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pacing {
    /// Publish batched work [`Segment`]s and run them through the engine's
    /// wake-list fast path (the default; rounds cost `O(awake)`).
    #[default]
    Segment,
    /// Poll every node every round (cursor-mode nodes answer `Wake::Now`),
    /// reproducing the pre-segment behavior round for round. Kept for the
    /// segment-vs-per-step equivalence suites and for A/B benchmarks.
    PerStep,
}

/// A phase position that can be advanced by a number of work rounds — the
/// geometry half of a [`Segment`].
pub trait Advance: Copy {
    /// The position `delta` work rounds later (same phase, offset shifted).
    fn advanced(self, delta: u64) -> Self;
}

/// A published run of consecutive work rounds sharing one schedule geometry.
///
/// The driver sets the shared cursor cell to a segment *once*; every node
/// then resolves the phase position of simulator round `r` in
/// `start <= r < start + len` as `pos.advanced(r - start)` and may hint
/// itself asleep up to (but never past) `end()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment<P> {
    /// Simulator round of the segment's first work round.
    pub start: u64,
    /// Number of consecutive work rounds published.
    pub len: u64,
    /// Phase position of round `start`.
    pub pos: P,
}

impl<P: Advance> Segment<P> {
    /// First simulator round *after* the segment — the round at which every
    /// node's clamped wake hint fires and the driver publishes its next step.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// The phase position of simulator round `round`, or `None` outside the
    /// segment.
    pub fn pos_at(&self, round: u64) -> Option<P> {
        (self.start..self.end()).contains(&round).then(|| self.pos.advanced(round - self.start))
    }
}

/// How an adaptive open-ended window closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowEnd {
    /// The status probe quiesced (or the run completed): the phase's work is
    /// done and the cursor may advance.
    Quiesced,
    /// The budget ran out with the probe still busy. Under faults this is a
    /// *failed handoff* — the confirmation the driver was waiting for never
    /// came — and triggers the retry-with-backoff path.
    Exhausted,
}

/// Status reads a majority vote spans: the triggering read plus up to
/// `VOTE_WINDOW - 1` confirmation rounds.
pub const VOTE_WINDOW: u32 = 3;

/// Failed-handoff re-publications (with doubled budgets) before a driver
/// gives up on re-running the window verbatim and climbs the recovery
/// [`Ladder`]. One retry: with a staged ladder behind it, a second verbatim
/// re-run at 4–8× budget is strictly worse than a rung-1 ring-local repair —
/// PR 7's deeper backoff (3 retries, 15× window total) existed only because
/// the sole alternative was the global flood.
pub const HANDOFF_RETRIES: u32 = 1;

/// Shared bookkeeping of the staged recovery ladder.
///
/// When a handoff window exhausts its [`HANDOFF_RETRIES`], the drivers no
/// longer jump straight to the no-knowledge Decay flood; they shed structure
/// *incrementally* (the Czumaj–Davies regime of graceful operation with
/// progressively less knowledge):
///
/// * **rung 1 — ring-local repair**: re-run only the failed ring's
///   construction/dissemination with fresh budget, keeping every other
///   ring's GST intact, then retry the handoff;
/// * **rung 2 — regional re-dissemination**: a Decay flood confined to the
///   failed ring ± 1, covering churn/mobility that moved the frontier out of
///   the ring bookkeeping;
/// * **rung 3 — the global no-knowledge flood**, reached only after rungs
///   1–2 fail, with its entry round recorded.
///
/// The ladder enforces the rung order: the drivers gate each rung on the
/// previous one having been attempted at least once in the run, so the
/// recovery counters (`ring_repairs`, `regional_repairs`, `fallback_rounds`
/// in `RunStats`) are monotone — a nonzero rung-3 count implies nonzero
/// rung-2 and rung-1 counts. Like every recovery path it is armed only under
/// a declared fault plan; `FaultPlan::none()` runs never touch it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ladder {
    ring_attempted: bool,
    regional_attempted: bool,
    fallback_entry: Option<u64>,
}

impl Ladder {
    /// A ladder with no rungs climbed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a rung-1 (ring-local repair) attempt.
    pub fn ring(&mut self) {
        self.ring_attempted = true;
    }

    /// Records a rung-2 (regional re-dissemination) attempt.
    pub fn regional(&mut self) {
        debug_assert!(self.ring_attempted, "rung 2 armed before rung 1 was attempted");
        self.regional_attempted = true;
    }

    /// Whether rung 1 has been attempted in this run.
    pub fn ring_attempted(&self) -> bool {
        self.ring_attempted
    }

    /// Whether rung 2 has been attempted in this run.
    pub fn regional_attempted(&self) -> bool {
        self.regional_attempted
    }

    /// Whether the global flood (rung 3) may be armed: both lower rungs have
    /// been attempted.
    pub fn may_fall_back(&self) -> bool {
        self.ring_attempted && self.regional_attempted
    }

    /// Records the round the rung-3 flood entered (first arming wins).
    pub fn arm_fallback(&mut self, round: u64) {
        debug_assert!(self.may_fall_back(), "rung 3 armed before rungs 1-2 were attempted");
        if self.fallback_entry.is_none() {
            self.fallback_entry = Some(round);
        }
    }

    /// The round the rung-3 flood entered, `None` if the run never fell
    /// back.
    pub fn fallback_entry(&self) -> Option<u64> {
        self.fallback_entry
    }
}

/// Number of recent dissemination-window samples the sliding-window erasure
/// estimator averages over.
pub const LOSS_WINDOW: usize = 4;

/// Sliding-window erasure estimator driving the multi-message pipeline's
/// handoff FEC repair rate.
///
/// PR 7 adapted the `fec_repair` knob to the *cumulative* erased/delivered
/// totals, so the repair schedule ratcheted toward maximum aggression after
/// any bursty interval and never relaxed. This estimator keeps the same
/// gate-compression map ([`windowed_repair`]) but feeds it only the last
/// [`LOSS_WINDOW`] per-window `(erased, delivered)` deltas, so a burst ages
/// out of the estimate after `LOSS_WINDOW` clean windows and the repair
/// schedule relaxes back to the configured knob.
#[derive(Clone, Debug)]
pub struct LossEstimator {
    knob: u32,
    samples: [(u64, u64); LOSS_WINDOW],
    next: usize,
    last: (u64, u64),
}

impl LossEstimator {
    /// An estimator with configured repair ceiling `knob` and an empty
    /// sample window.
    pub fn new(knob: u32) -> Self {
        LossEstimator { knob, samples: [(0, 0); LOSS_WINDOW], next: 0, last: (0, 0) }
    }

    /// Feeds the run's cumulative `(erased, delivered)` totals at a window
    /// boundary; the delta since the previous call becomes one sample,
    /// evicting the oldest. Returns the effective repair rate over the
    /// refreshed window.
    pub fn observe(&mut self, erased: u64, delivered: u64) -> u32 {
        let delta = (erased.saturating_sub(self.last.0), delivered.saturating_sub(self.last.1));
        self.last = (erased, delivered);
        self.samples[self.next] = delta;
        self.next = (self.next + 1) % LOSS_WINDOW;
        self.effective()
    }

    /// The effective repair rate for the current window contents.
    pub fn effective(&self) -> u32 {
        let (erased, delivered) =
            self.samples.iter().fold((0u64, 0u64), |(e, d), s| (e + s.0, d + s.1));
        windowed_repair(self.knob, erased, delivered)
    }
}

/// The gate-compression map from measured erasures to a handoff repair rate:
/// halves `knob` (toward `1`, the most aggressive repair emission) per
/// doubling of `erased` above ~1% of the observed traffic. Clean windows
/// (`erased == 0`) and the paper's full-cycle gate (`knob == 0`) pass
/// through untouched.
pub fn windowed_repair(knob: u32, erased: u64, delivered: u64) -> u32 {
    if knob == 0 || erased == 0 {
        return knob;
    }
    let total = erased + delivered;
    let mut gate = total.div_ceil(100).max(1);
    let mut r = knob;
    while r > 1 && erased >= gate {
        r /= 2;
        gate *= 2;
    }
    r
}

/// Whether a round's status read was touched by a channel-level fault (an
/// erased packet copy or a jam injection) and its verdict is therefore
/// suspect. Topology churn does not corrupt a status read: the transmit
/// census is taken before the channel resolves.
fn fault_touched(r: &RoundStats) -> bool {
    r.erased + r.jammed > 0
}

/// What the channel actually rendered to listeners in a status round: quiet
/// iff nobody heard a packet or a collision. Unlike the transmit census this
/// is what an in-model observer could know on a faulted channel — an erased
/// beep renders quiet, a jam renders busy.
fn rendered_quiet(r: &RoundStats) -> bool {
    r.deliveries + r.collisions == 0
}

/// Outcome of a majority-voted quiescence decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoteOutcome {
    /// The voted verdict: `true` = the probe quiesced.
    pub quiet: bool,
    /// Whether the vote overturned the single-round decision the pre-voting
    /// driver would have taken on `first` alone.
    pub overturned: bool,
}

/// Whether a status read decides its verdict on its own, and if so which.
/// `None` means the read is ambiguous and needs confirmation.
///
/// * A fault-clean read keeps the channel-census verdict
///   (`transmitters == 0`) untouched.
/// * An erasure-only read (`jammed == 0`) that rendered *busy* is
///   authoritative busy: erasure deletes signal but never fabricates it, so
///   audible activity is real. Only an erasure-touched read that rendered
///   quiet is suspect (the beeps may all have been erased).
/// * A jam-touched read decides nothing by itself — jams fabricate
///   collisions, so both renderings are suspect.
fn self_deciding(r: &RoundStats) -> Option<bool> {
    if !fault_touched(r) {
        return Some(r.transmitters == 0);
    }
    (r.jammed == 0 && !rendered_quiet(r)).then_some(false)
}

/// Majority-voted quiescence verdict over a small window of status reads.
///
/// `first` is the status round the caller just executed. A self-deciding
/// read (see `self_deciding`: fault-clean, or audibly busy under
/// erasure-only faults) keeps its verdict untouched — on a run without
/// faults every read is clean, so the voting layer is provably bit-identical
/// to the single-round driver. An ambiguous read is demoted to what the
/// channel actually rendered to listeners and confirmed by up to
/// [`VOTE_WINDOW`]` - 1` re-probes via `revote`: the first self-deciding
/// re-read is authoritative, otherwise the majority of the renderings wins
/// (ties count as busy — the conservative direction, since a busy verdict
/// only keeps the window open).
///
/// `votable` must be `false` for *consuming* probes (the take-style
/// wave-progress and new-activation reads): re-probing them would eat the
/// dirty flag the first read already consumed, so their single-round verdict
/// stands.
pub fn vote_quiet(
    first: RoundStats,
    votable: bool,
    mut revote: impl FnMut() -> RoundStats,
) -> VoteOutcome {
    let census_quiet = first.transmitters == 0;
    if !votable {
        return VoteOutcome { quiet: census_quiet, overturned: false };
    }
    if let Some(quiet) = self_deciding(&first) {
        return VoteOutcome { quiet, overturned: quiet != census_quiet };
    }
    let mut quiet_votes = usize::from(rendered_quiet(&first));
    let mut reads = 1usize;
    let mut authoritative = None;
    while reads < VOTE_WINDOW as usize {
        let r = revote();
        reads += 1;
        if let Some(verdict) = self_deciding(&r) {
            authoritative = Some(verdict);
            break;
        }
        quiet_votes += usize::from(rendered_quiet(&r));
    }
    let quiet = authoritative.unwrap_or(2 * quiet_votes > reads);
    VoteOutcome { quiet, overturned: quiet != census_quiet }
}

/// Construction status probes: what a dedicated status round asks the
/// nodes. Probes address ring-local boundaries/ranks, so one probe covers
/// every ring at once (parallel ring constructions share the phase cursor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsProbe {
    /// "Are you an unassigned blue of this `(boundary, rank)`?"
    OpenBlue {
        /// Ring-local blue level.
        boundary: u32,
        /// Rank subproblem.
        rank: u32,
    },
    /// "An unassigned blue of rank strictly below `rank`?"
    /// (a potential Stage III adopter).
    OpenBlueBelow {
        /// Ring-local blue level.
        boundary: u32,
        /// Rank subproblem.
        rank: u32,
    },
    /// "An active red of this boundary?"
    ActiveRed {
        /// Ring-local blue level.
        boundary: u32,
    },
    /// "Did you activate since the last status round?"
    NewActivation,
    /// "A loner blue with a Stage Ib announcement pending?"
    LonerBlue {
        /// Ring-local blue level.
        boundary: u32,
    },
    /// "A red that would participate in recruiting `part`?"
    PartRed {
        /// Ring-local blue level.
        boundary: u32,
        /// Recruiting part 1–3.
        part: u8,
    },
    /// "A red actually participating in the running part?"
    PartParticipant,
    /// "A blue whose recruiting run is still unresolved?"
    UnresolvedBlue,
    /// "A red ranked this epoch (Stage III announcer)?"
    NewlyRanked {
        /// Ring-local blue level.
        boundary: u32,
    },
}

/// Evaluates a construction status probe against one node's construction
/// state: `true` means the node transmits a beep in that status round.
pub fn answer_cons_probe(c: &mut GstConstructionNode, probe: ConsProbe) -> bool {
    match probe {
        ConsProbe::OpenBlue { boundary, rank } => c.probe_open_blue(boundary, rank),
        ConsProbe::OpenBlueBelow { boundary, rank } => c.probe_open_blue_below(boundary, rank),
        ConsProbe::ActiveRed { boundary } => c.probe_active_red(boundary),
        ConsProbe::NewActivation => c.take_new_activation(),
        ConsProbe::LonerBlue { boundary } => c.probe_loner_blue(boundary),
        ConsProbe::PartRed { boundary, part } => c.probe_part_red(boundary, part),
        ConsProbe::PartParticipant => c.probe_part_participant(),
        ConsProbe::UnresolvedBlue => c.probe_unresolved_blue(),
        ConsProbe::NewlyRanked { boundary } => c.probe_newly_ranked_red(boundary),
    }
}

/// The driver-side hooks [`drive_construction`] needs.
pub trait ConsDriver {
    /// Runs one construction status round for `probe`, charged against the
    /// driver's construction status budget. `Some(true)` iff the channel
    /// stayed silent; `None` once the budget is exhausted (the loop bails
    /// out and the fixed-schedule cap takes over).
    fn cons_quiet(&mut self, probe: ConsProbe) -> Option<bool>;

    /// Runs `len` slotted construction work rounds starting at (unslotted)
    /// schedule round `start`: two simulator rounds per schedule round, one
    /// per ring parity.
    fn cons_run(&mut self, start: u64, len: u64);

    /// Whether the enclosing pipeline already completed (early exit).
    fn finished(&self) -> bool;
}

/// The construction phase driver: parallel per-ring GST construction with
/// quiescence skipping. Rank blocks with no open blues are skipped outright;
/// Identify ends when activations stop; epochs end when every blue is
/// assigned or no red is active; recruiting parts end when no red
/// participates or every blue's run resolved; Stage Ib/III run only when
/// they have announcers (and, for Stage III, adopters).
///
/// The caller is responsible for running the per-node construction epilogue
/// (`GstConstructionNode::finalize`) afterwards — the adaptive loop may have
/// skipped the later blocks through which the fixed schedule reaches that
/// state lazily.
pub fn drive_construction(d: &mut impl ConsDriver, cons: ConstructionSchedule) {
    let iteration = cons.recruit_iteration_rounds();
    let iterations = cons.recruit_rounds() / iteration;
    let phase_len = u64::from(cons.phase_len());
    let ident_phases = cons.decay_step() / phase_len.max(1);
    for boundary in (1..=cons.d_bound).rev() {
        for rank in (1..=cons.max_rank()).rev() {
            if d.finished() {
                return;
            }
            match d.cons_quiet(ConsProbe::OpenBlue { boundary, rank }) {
                Some(true) => continue, // no open blues anywhere: skip block
                Some(false) => {}
                None => return,
            }
            // Identify prologue, phase by phase until activations stop.
            let block = cons.rank_block_start(boundary, rank);
            for ph in 0..ident_phases {
                d.cons_run(block + ph * phase_len, phase_len);
                match d.cons_quiet(ConsProbe::NewActivation) {
                    Some(true) => break,
                    Some(false) => {}
                    None => return,
                }
            }
            for epoch in 0..cons.epochs() {
                match d.cons_quiet(ConsProbe::OpenBlue { boundary, rank }) {
                    Some(true) => break, // every blue assigned
                    Some(false) => {}
                    None => return,
                }
                match d.cons_quiet(ConsProbe::ActiveRed { boundary }) {
                    Some(true) => break, // no red left to assign them
                    Some(false) => {}
                    None => return,
                }
                let e0 = cons.epoch_start(boundary, rank, epoch);
                d.cons_run(e0, 1); // Stage Ia beacons
                match d.cons_quiet(ConsProbe::LonerBlue { boundary }) {
                    Some(true) => {} // no loners: skip Stage Ib
                    Some(false) => d.cons_run(e0 + 1, cons.decay_step()),
                    None => return,
                }
                for part in 1..=3u8 {
                    match d.cons_quiet(ConsProbe::PartRed { boundary, part }) {
                        Some(true) => continue, // no reds for this part
                        Some(false) => {}
                        None => return,
                    }
                    let p0 =
                        e0 + 1 + cons.decay_step() + u64::from(part - 1) * cons.recruit_rounds();
                    for i in 0..iterations {
                        d.cons_run(p0 + i * iteration, iteration);
                        let probe = if i == 0 {
                            ConsProbe::PartParticipant
                        } else {
                            ConsProbe::UnresolvedBlue
                        };
                        match d.cons_quiet(probe) {
                            Some(true) => break,
                            Some(false) => {}
                            None => return,
                        }
                    }
                }
                // Stage III runs only with announcers *and* adopters.
                match d.cons_quiet(ConsProbe::NewlyRanked { boundary }) {
                    Some(true) => continue,
                    Some(false) => {}
                    None => return,
                }
                match d.cons_quiet(ConsProbe::OpenBlueBelow { boundary, rank }) {
                    Some(true) => continue,
                    Some(false) => {}
                    None => return,
                }
                d.cons_run(
                    e0 + 1 + cons.decay_step() + 3 * cons.recruit_rounds(),
                    cons.decay_step(),
                );
            }
        }
    }
}

/// Status rounds the construction driver can spend, per the formula PR 2
/// established: per rank block one rank-skip probe, one per Identify phase,
/// and per epoch the open-blue / active-red / loner probes, per-part gates
/// plus one probe per recruiting iteration, and the two Stage III gates.
pub fn cons_status_budget(params: &crate::params::Params, cons: &ConstructionSchedule) -> u64 {
    let iterations = u64::from(params.recruit_iterations.max(1));
    let per_epoch_status = 5 + 3 * (1 + iterations);
    let per_rank_status =
        1 + u64::from(params.decay_phases) + u64::from(cons.epochs()) * per_epoch_status;
    u64::from(cons.d_bound) * u64::from(params.max_rank()) * per_rank_status
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_rungs_are_monotone() {
        let mut l = Ladder::new();
        assert!(!l.ring_attempted() && !l.regional_attempted() && !l.may_fall_back());
        l.ring();
        assert!(l.ring_attempted() && !l.may_fall_back());
        l.regional();
        assert!(l.may_fall_back());
        assert_eq!(l.fallback_entry(), None);
        l.arm_fallback(42);
        assert_eq!(l.fallback_entry(), Some(42));
        // First arming wins: a re-arm never rewrites the recorded entry.
        l.arm_fallback(99);
        assert_eq!(l.fallback_entry(), Some(42));
    }

    #[test]
    fn windowed_repair_passthrough_cases() {
        assert_eq!(windowed_repair(0, 500, 500), 0);
        assert_eq!(windowed_repair(4, 0, 1000), 4);
        // Below ~1% of traffic the knob is untouched.
        assert_eq!(windowed_repair(4, 5, 995), 4);
    }

    #[test]
    fn windowed_repair_compresses_per_doubling() {
        // 10% erasure over 1000 copies: gate 10 -> 20 -> 40 -> 80 -> 160,
        // erased 100 crosses 10/20/40/80, so an 8-knob halves to 1.
        assert_eq!(windowed_repair(8, 100, 900), 1);
        assert_eq!(windowed_repair(4, 15, 985), 2);
    }

    #[test]
    fn loss_estimator_relaxes_after_a_burst() {
        let mut est = LossEstimator::new(4);
        assert_eq!(est.effective(), 4, "empty window keeps the configured knob");
        // A bursty interval: 20% of copies erased.
        let during_burst = est.observe(200, 800);
        assert!(during_burst < 4, "burst must tighten the repair gate, got {during_burst}");
        // Clean windows afterwards: same cumulative erasure total, fresh
        // deliveries. The cumulative estimator would stay pinned at
        // `during_burst` forever; the sliding window ages the burst out.
        let mut last = during_burst;
        for w in 1..=LOSS_WINDOW as u64 {
            let relaxed = est.observe(200, 800 + w * 1000);
            assert!(relaxed >= last, "repair rate must relax monotonically after the burst");
            last = relaxed;
        }
        assert_eq!(last, 4, "a fully clean window must restore the configured knob");
    }

    #[test]
    fn loss_estimator_matches_windowed_repair_on_window_sums() {
        let mut est = LossEstimator::new(8);
        est.observe(50, 450);
        let eff = est.observe(80, 900);
        // Window holds the deltas (50, 450) and (30, 450).
        assert_eq!(eff, windowed_repair(8, 80, 900));
    }
}
