//! Shared machinery of the adaptive (quiescence-driven) pipeline drivers.
//!
//! PR 2 introduced phase-completion detection for the Theorem 1.1 pipeline:
//! open-ended phases interleave dedicated *status rounds* in which exactly
//! the nodes with pending work transmit a content-free beep, and the driver
//! advances the shared phase cursor once the channel stays silent (see
//! `single_message` for the full in-model justification). The most intricate
//! part — skipping quiescent rank blocks, epochs and recruiting tails of the
//! distributed GST construction — is identical for the Theorem 1.1 and
//! Theorem 1.3 pipelines, so it lives here: [`ConsProbe`] enumerates the
//! construction status probes, [`answer_cons_probe`] evaluates one against a
//! node's construction state, and [`drive_construction`] is the
//! rank-block/epoch/recruiting skip loop, generic over the [`ConsDriver`]
//! hooks each pipeline driver provides.
//!
//! ## Segment pacing
//!
//! PR 4 changed how the drivers pump the simulator. Instead of setting the
//! shared cursor cell and calling `Simulator::step` once per round, a driver
//! now *publishes* a whole [`Segment`] — the simulator round it starts at,
//! its length, and the phase position of its first round — and executes it
//! with `Simulator::run_segment`, which runs on the engine's wake-list fast
//! path (acts cost `O(awake)`; fully-idle stretches fast-forward in `O(1)`).
//! Nodes derive their per-round phase position from the published segment
//! (`pos.advanced(round - start)`), and their `next_wake` hints are *clamped
//! to the segment end*: every node is polled again on the first round after
//! the segment, which is exactly when the driver publishes the next segment
//! or runs a status round. That clamp is the invariant that makes arbitrary
//! driver decisions (probe outcomes, block skips, early phase closure) safe
//! under wake hints — a sleeping node can never miss a cursor change,
//! because every cursor change happens at a round where everyone is awake.
//!
//! Mid-segment completion detection stays exact: `run_segment` stops after
//! any round that delivered a packet (the only rounds in which a
//! reception-driven completion predicate can flip), the driver re-scans, and
//! resumes the remainder. The executed round sequence is bit-identical to
//! per-round stepping — [`Pacing::PerStep`] keeps the old regime available
//! for the equivalence suites.

use crate::construction::{ConstructionSchedule, GstConstructionNode};
use radio_sim::trace::RoundStats;

/// How an adaptive pipeline driver pumps the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pacing {
    /// Publish batched work [`Segment`]s and run them through the engine's
    /// wake-list fast path (the default; rounds cost `O(awake)`).
    #[default]
    Segment,
    /// Poll every node every round (cursor-mode nodes answer `Wake::Now`),
    /// reproducing the pre-segment behavior round for round. Kept for the
    /// segment-vs-per-step equivalence suites and for A/B benchmarks.
    PerStep,
}

/// A phase position that can be advanced by a number of work rounds — the
/// geometry half of a [`Segment`].
pub trait Advance: Copy {
    /// The position `delta` work rounds later (same phase, offset shifted).
    fn advanced(self, delta: u64) -> Self;
}

/// A published run of consecutive work rounds sharing one schedule geometry.
///
/// The driver sets the shared cursor cell to a segment *once*; every node
/// then resolves the phase position of simulator round `r` in
/// `start <= r < start + len` as `pos.advanced(r - start)` and may hint
/// itself asleep up to (but never past) `end()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment<P> {
    /// Simulator round of the segment's first work round.
    pub start: u64,
    /// Number of consecutive work rounds published.
    pub len: u64,
    /// Phase position of round `start`.
    pub pos: P,
}

impl<P: Advance> Segment<P> {
    /// First simulator round *after* the segment — the round at which every
    /// node's clamped wake hint fires and the driver publishes its next step.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// The phase position of simulator round `round`, or `None` outside the
    /// segment.
    pub fn pos_at(&self, round: u64) -> Option<P> {
        (self.start..self.end()).contains(&round).then(|| self.pos.advanced(round - self.start))
    }
}

/// How an adaptive open-ended window closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowEnd {
    /// The status probe quiesced (or the run completed): the phase's work is
    /// done and the cursor may advance.
    Quiesced,
    /// The budget ran out with the probe still busy. Under faults this is a
    /// *failed handoff* — the confirmation the driver was waiting for never
    /// came — and triggers the retry-with-backoff path.
    Exhausted,
}

/// Status reads a majority vote spans: the triggering read plus up to
/// `VOTE_WINDOW - 1` confirmation rounds.
pub const VOTE_WINDOW: u32 = 3;

/// Failed-handoff re-publications (with doubled budgets) before a driver
/// gives up on the phase machinery and arms the no-knowledge fallback.
pub const HANDOFF_RETRIES: u32 = 3;

/// Whether a round's status read was touched by a channel-level fault (an
/// erased packet copy or a jam injection) and its verdict is therefore
/// suspect. Topology churn does not corrupt a status read: the transmit
/// census is taken before the channel resolves.
fn fault_touched(r: &RoundStats) -> bool {
    r.erased + r.jammed > 0
}

/// What the channel actually rendered to listeners in a status round: quiet
/// iff nobody heard a packet or a collision. Unlike the transmit census this
/// is what an in-model observer could know on a faulted channel — an erased
/// beep renders quiet, a jam renders busy.
fn rendered_quiet(r: &RoundStats) -> bool {
    r.deliveries + r.collisions == 0
}

/// Outcome of a majority-voted quiescence decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoteOutcome {
    /// The voted verdict: `true` = the probe quiesced.
    pub quiet: bool,
    /// Whether the vote overturned the single-round decision the pre-voting
    /// driver would have taken on `first` alone.
    pub overturned: bool,
}

/// Whether a status read decides its verdict on its own, and if so which.
/// `None` means the read is ambiguous and needs confirmation.
///
/// * A fault-clean read keeps the channel-census verdict
///   (`transmitters == 0`) untouched.
/// * An erasure-only read (`jammed == 0`) that rendered *busy* is
///   authoritative busy: erasure deletes signal but never fabricates it, so
///   audible activity is real. Only an erasure-touched read that rendered
///   quiet is suspect (the beeps may all have been erased).
/// * A jam-touched read decides nothing by itself — jams fabricate
///   collisions, so both renderings are suspect.
fn self_deciding(r: &RoundStats) -> Option<bool> {
    if !fault_touched(r) {
        return Some(r.transmitters == 0);
    }
    (r.jammed == 0 && !rendered_quiet(r)).then_some(false)
}

/// Majority-voted quiescence verdict over a small window of status reads.
///
/// `first` is the status round the caller just executed. A self-deciding
/// read (see `self_deciding`: fault-clean, or audibly busy under
/// erasure-only faults) keeps its verdict untouched — on a run without
/// faults every read is clean, so the voting layer is provably bit-identical
/// to the single-round driver. An ambiguous read is demoted to what the
/// channel actually rendered to listeners and confirmed by up to
/// [`VOTE_WINDOW`]` - 1` re-probes via `revote`: the first self-deciding
/// re-read is authoritative, otherwise the majority of the renderings wins
/// (ties count as busy — the conservative direction, since a busy verdict
/// only keeps the window open).
///
/// `votable` must be `false` for *consuming* probes (the take-style
/// wave-progress and new-activation reads): re-probing them would eat the
/// dirty flag the first read already consumed, so their single-round verdict
/// stands.
pub fn vote_quiet(
    first: RoundStats,
    votable: bool,
    mut revote: impl FnMut() -> RoundStats,
) -> VoteOutcome {
    let census_quiet = first.transmitters == 0;
    if !votable {
        return VoteOutcome { quiet: census_quiet, overturned: false };
    }
    if let Some(quiet) = self_deciding(&first) {
        return VoteOutcome { quiet, overturned: quiet != census_quiet };
    }
    let mut quiet_votes = usize::from(rendered_quiet(&first));
    let mut reads = 1usize;
    let mut authoritative = None;
    while reads < VOTE_WINDOW as usize {
        let r = revote();
        reads += 1;
        if let Some(verdict) = self_deciding(&r) {
            authoritative = Some(verdict);
            break;
        }
        quiet_votes += usize::from(rendered_quiet(&r));
    }
    let quiet = authoritative.unwrap_or(2 * quiet_votes > reads);
    VoteOutcome { quiet, overturned: quiet != census_quiet }
}

/// Construction status probes: what a dedicated status round asks the
/// nodes. Probes address ring-local boundaries/ranks, so one probe covers
/// every ring at once (parallel ring constructions share the phase cursor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsProbe {
    /// "Are you an unassigned blue of this `(boundary, rank)`?"
    OpenBlue {
        /// Ring-local blue level.
        boundary: u32,
        /// Rank subproblem.
        rank: u32,
    },
    /// "An unassigned blue of rank strictly below `rank`?"
    /// (a potential Stage III adopter).
    OpenBlueBelow {
        /// Ring-local blue level.
        boundary: u32,
        /// Rank subproblem.
        rank: u32,
    },
    /// "An active red of this boundary?"
    ActiveRed {
        /// Ring-local blue level.
        boundary: u32,
    },
    /// "Did you activate since the last status round?"
    NewActivation,
    /// "A loner blue with a Stage Ib announcement pending?"
    LonerBlue {
        /// Ring-local blue level.
        boundary: u32,
    },
    /// "A red that would participate in recruiting `part`?"
    PartRed {
        /// Ring-local blue level.
        boundary: u32,
        /// Recruiting part 1–3.
        part: u8,
    },
    /// "A red actually participating in the running part?"
    PartParticipant,
    /// "A blue whose recruiting run is still unresolved?"
    UnresolvedBlue,
    /// "A red ranked this epoch (Stage III announcer)?"
    NewlyRanked {
        /// Ring-local blue level.
        boundary: u32,
    },
}

/// Evaluates a construction status probe against one node's construction
/// state: `true` means the node transmits a beep in that status round.
pub fn answer_cons_probe(c: &mut GstConstructionNode, probe: ConsProbe) -> bool {
    match probe {
        ConsProbe::OpenBlue { boundary, rank } => c.probe_open_blue(boundary, rank),
        ConsProbe::OpenBlueBelow { boundary, rank } => c.probe_open_blue_below(boundary, rank),
        ConsProbe::ActiveRed { boundary } => c.probe_active_red(boundary),
        ConsProbe::NewActivation => c.take_new_activation(),
        ConsProbe::LonerBlue { boundary } => c.probe_loner_blue(boundary),
        ConsProbe::PartRed { boundary, part } => c.probe_part_red(boundary, part),
        ConsProbe::PartParticipant => c.probe_part_participant(),
        ConsProbe::UnresolvedBlue => c.probe_unresolved_blue(),
        ConsProbe::NewlyRanked { boundary } => c.probe_newly_ranked_red(boundary),
    }
}

/// The driver-side hooks [`drive_construction`] needs.
pub trait ConsDriver {
    /// Runs one construction status round for `probe`, charged against the
    /// driver's construction status budget. `Some(true)` iff the channel
    /// stayed silent; `None` once the budget is exhausted (the loop bails
    /// out and the fixed-schedule cap takes over).
    fn cons_quiet(&mut self, probe: ConsProbe) -> Option<bool>;

    /// Runs `len` slotted construction work rounds starting at (unslotted)
    /// schedule round `start`: two simulator rounds per schedule round, one
    /// per ring parity.
    fn cons_run(&mut self, start: u64, len: u64);

    /// Whether the enclosing pipeline already completed (early exit).
    fn finished(&self) -> bool;
}

/// The construction phase driver: parallel per-ring GST construction with
/// quiescence skipping. Rank blocks with no open blues are skipped outright;
/// Identify ends when activations stop; epochs end when every blue is
/// assigned or no red is active; recruiting parts end when no red
/// participates or every blue's run resolved; Stage Ib/III run only when
/// they have announcers (and, for Stage III, adopters).
///
/// The caller is responsible for running the per-node construction epilogue
/// (`GstConstructionNode::finalize`) afterwards — the adaptive loop may have
/// skipped the later blocks through which the fixed schedule reaches that
/// state lazily.
pub fn drive_construction(d: &mut impl ConsDriver, cons: ConstructionSchedule) {
    let iteration = cons.recruit_iteration_rounds();
    let iterations = cons.recruit_rounds() / iteration;
    let phase_len = u64::from(cons.phase_len());
    let ident_phases = cons.decay_step() / phase_len.max(1);
    for boundary in (1..=cons.d_bound).rev() {
        for rank in (1..=cons.max_rank()).rev() {
            if d.finished() {
                return;
            }
            match d.cons_quiet(ConsProbe::OpenBlue { boundary, rank }) {
                Some(true) => continue, // no open blues anywhere: skip block
                Some(false) => {}
                None => return,
            }
            // Identify prologue, phase by phase until activations stop.
            let block = cons.rank_block_start(boundary, rank);
            for ph in 0..ident_phases {
                d.cons_run(block + ph * phase_len, phase_len);
                match d.cons_quiet(ConsProbe::NewActivation) {
                    Some(true) => break,
                    Some(false) => {}
                    None => return,
                }
            }
            for epoch in 0..cons.epochs() {
                match d.cons_quiet(ConsProbe::OpenBlue { boundary, rank }) {
                    Some(true) => break, // every blue assigned
                    Some(false) => {}
                    None => return,
                }
                match d.cons_quiet(ConsProbe::ActiveRed { boundary }) {
                    Some(true) => break, // no red left to assign them
                    Some(false) => {}
                    None => return,
                }
                let e0 = cons.epoch_start(boundary, rank, epoch);
                d.cons_run(e0, 1); // Stage Ia beacons
                match d.cons_quiet(ConsProbe::LonerBlue { boundary }) {
                    Some(true) => {} // no loners: skip Stage Ib
                    Some(false) => d.cons_run(e0 + 1, cons.decay_step()),
                    None => return,
                }
                for part in 1..=3u8 {
                    match d.cons_quiet(ConsProbe::PartRed { boundary, part }) {
                        Some(true) => continue, // no reds for this part
                        Some(false) => {}
                        None => return,
                    }
                    let p0 =
                        e0 + 1 + cons.decay_step() + u64::from(part - 1) * cons.recruit_rounds();
                    for i in 0..iterations {
                        d.cons_run(p0 + i * iteration, iteration);
                        let probe = if i == 0 {
                            ConsProbe::PartParticipant
                        } else {
                            ConsProbe::UnresolvedBlue
                        };
                        match d.cons_quiet(probe) {
                            Some(true) => break,
                            Some(false) => {}
                            None => return,
                        }
                    }
                }
                // Stage III runs only with announcers *and* adopters.
                match d.cons_quiet(ConsProbe::NewlyRanked { boundary }) {
                    Some(true) => continue,
                    Some(false) => {}
                    None => return,
                }
                match d.cons_quiet(ConsProbe::OpenBlueBelow { boundary, rank }) {
                    Some(true) => continue,
                    Some(false) => {}
                    None => return,
                }
                d.cons_run(
                    e0 + 1 + cons.decay_step() + 3 * cons.recruit_rounds(),
                    cons.decay_step(),
                );
            }
        }
    }
}

/// Status rounds the construction driver can spend, per the formula PR 2
/// established: per rank block one rank-skip probe, one per Identify phase,
/// and per epoch the open-blue / active-red / loner probes, per-part gates
/// plus one probe per recruiting iteration, and the two Stage III gates.
pub fn cons_status_budget(params: &crate::params::Params, cons: &ConstructionSchedule) -> u64 {
    let iterations = u64::from(params.recruit_iterations.max(1));
    let per_epoch_status = 5 + 3 * (1 + iterations);
    let per_rank_status =
        1 + u64::from(params.decay_phases) + u64::from(cons.epochs()) * per_epoch_status;
    u64::from(cons.d_bound) * u64::from(params.max_rank()) * per_rank_status
}
