//! # broadcast — the paper's algorithms
//!
//! Distributed algorithms from Ghaffari, Haeupler, Khabbazian, *"Randomized
//! Broadcast in Radio Networks with Collision Detection"* (PODC 2013):
//!
//! | module | paper reference | result |
//! |--------|-----------------|--------|
//! | [`decay`] | Section 2.2.1, Lemma 2.2, Lemma 3.2 | the BGI Decay primitive and its MMV framing |
//! | [`layering`] | Section 2.2.2 & proof of Thm 1.1 | BFS layering with and without collision detection |
//! | [`recruiting`] | Lemma 2.3 | the Recruiting protocol |
//! | [`construction`] | Theorem 2.1, Sections 2.2.2–2.2.4 | distributed GST construction (Bipartite Assignment) |
//! | [`virtual_labels`] | Lemma 3.10 | distributed virtual-distance labeling |
//! | [`schedule`] | Section 3.2 | the multi-message-viable GST schedule (and the level-keyed ablation) |
//! | [`single_message`] | Theorem 1.1 | single-message broadcast in `O(D + log^6 n)` with CD |
//! | [`multi_message`] | Theorems 1.2 & 1.3 | k-message broadcast with RLNC |
//! | [`params`] | all `Θ(·)` constants | one tunable home for every constant |
//! | [`run`] | — | the [`Scenario`] facade: one declarative front door over every pipeline and baseline |
//!
//! Start from [`run`]: declare a [`TopologySpec`] and a [`Workload`], let
//! [`Scenario`] wire the graph, parameters and driver, and read one unified
//! [`Outcome`]. The per-theorem free functions stay available for callers
//! that need the algorithm-specific outcome types.
//!
//! Every protocol is a per-node state machine implementing
//! [`radio_sim::Protocol`]; nodes act only on local knowledge (their id, their
//! labels once *they* learn them, and what they hear), exactly as the model
//! demands. The test harness assembles global structures (e.g. a
//! [`gst::Gst`]) from per-node states only to *verify* them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod construction;
pub mod decay;
pub mod layering;
pub mod multi_message;
pub mod params;
pub mod recruiting;
pub mod run;
pub mod schedule;
pub mod single_message;
pub mod virtual_labels;

pub use adaptive::Pacing;
pub use multi_message::{BatchMode, KnownRunOpts, MultiRunOpts};
pub use params::Params;
pub use run::{
    Algo, Detail, Outcome, Phases, PreparedTopology, Scenario, SeedMatrix, SeedRun, SweepJob,
    TopologySpec, Workload,
};
pub use schedule::{EmptyBehavior, SlowKey};
