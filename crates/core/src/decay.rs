//! The Decay protocol of Bar-Yehuda, Goldreich and Itai (Section 2.2.1) and
//! its multi-message-viable framing (Section 3.1).
//!
//! Decay is the standard contention-resolution primitive for radio networks:
//! rounds are grouped into phases of `⌈log2 n⌉` rounds, and in the `i`-th
//! round of a phase each participating node transmits with probability
//! `2^{-i}`. Lemma 2.2: a listener with at least one participating neighbor
//! receives a message per phase with probability at least `1/8`.
//!
//! Three things live here:
//!
//! * [`DecaySchedule`] — the probability pattern, reused by every protocol in
//!   this crate that says "run `Θ(log n)` phases of Decay";
//! * [`DecayBroadcast`] — the classical BGI single-message broadcast
//!   (`O(D log n + log^2 n)` rounds), which doubles as the paper's main
//!   baseline;
//! * [`MmvDecayBroadcast`] — the *layered* Decay schedule of Lemma 3.2, in
//!   which a node at distance `l` from the source is prompted in rounds
//!   `r ≡ l + 1 (mod 3)` with probability `2^{-((r-l-1)/3 mod ⌈log n⌉)}` and,
//!   when prompted without holding the message, transmits **noise**. The
//!   paper's backwards analysis shows broadcast still completes in
//!   `O(D log n + log^2 n)` rounds; experiment E7 measures it.

use crate::params::Params;
use radio_sim::model::PacketBits;
use radio_sim::{Action, Observation, Protocol, Wake};
use rand::rngs::SmallRng;
use rand::Rng;

/// The Decay transmission pattern: probability `2^{-(1 + (r mod L))}` at
/// round-in-phase `r` of phases of length `L`.
///
/// ```
/// use broadcast::decay::DecaySchedule;
/// let d = DecaySchedule::new(4);
/// assert_eq!(d.probability(0), 1.0);
/// assert_eq!(d.probability(3), 1.0 / 8.0);
/// assert_eq!(d.probability(4), 1.0); // next phase restarts
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecaySchedule {
    phase_len: u32,
}

impl DecaySchedule {
    /// A schedule with phases of `phase_len >= 1` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len == 0`.
    pub fn new(phase_len: u32) -> Self {
        assert!(phase_len >= 1, "phase length must be positive");
        DecaySchedule { phase_len }
    }

    /// The schedule used by `params` (`phase_len = ⌈log2 n⌉`).
    pub fn from_params(params: &Params) -> Self {
        DecaySchedule::new(params.decay_phase_len())
    }

    /// Phase length in rounds.
    pub fn phase_len(&self) -> u32 {
        self.phase_len
    }

    /// Transmission probability at local round `r` (0-based from the start of
    /// the Decay block): `2^{-(r mod L)}`, starting at 1 as in the original
    /// BGI formulation (the first round of a phase always transmits).
    pub fn probability(&self, r: u64) -> f64 {
        let i = (r % u64::from(self.phase_len)) as u32;
        0.5f64.powi(i as i32)
    }

    /// Samples the transmit decision at local round `r`.
    pub fn fires(&self, r: u64, rng: &mut impl Rng) -> bool {
        rng.gen_bool(self.probability(r))
    }
}

/// Packet of the plain Decay broadcast: the broadcast message itself.
///
/// The payload models the `Θ(B)`-bit broadcast message as an opaque word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecayMsg(pub u64);

impl PacketBits for DecayMsg {
    fn packet_bits(&self) -> usize {
        64
    }
}

/// The classical BGI Decay broadcast: every informed node runs the Decay
/// pattern; uninformed nodes stay silent.
#[derive(Clone, Debug)]
pub struct DecayBroadcast {
    schedule: DecaySchedule,
    message: Option<DecayMsg>,
    /// Round at which this node first learned the message.
    informed_at: Option<u64>,
}

impl DecayBroadcast {
    /// A node of the broadcast; `source_message` is `Some` at the source.
    pub fn new(params: &Params, source_message: Option<DecayMsg>) -> Self {
        DecayBroadcast {
            schedule: DecaySchedule::from_params(params),
            message: source_message,
            informed_at: source_message.map(|_| 0),
        }
    }

    /// Whether this node holds the message.
    pub fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    /// The round at which the message arrived (0 for the source).
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }
}

impl Protocol for DecayBroadcast {
    type Msg = DecayMsg;
    // `observe` reacts to received packets only and never touches the RNG.
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<DecayMsg> {
        match self.message {
            Some(m) if self.schedule.fires(round, rng) => Action::Transmit(m),
            _ => Action::Listen,
        }
    }

    /// Uninformed nodes are inert (no transmission, no RNG draw) until a
    /// packet arrives; informed nodes sample the Decay pattern every round.
    fn next_wake(&self, _round: u64) -> Wake {
        if self.message.is_some() {
            Wake::Now
        } else {
            Wake::Idle
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<DecayMsg>, _rng: &mut SmallRng) {
        if let Observation::Message(m) = obs {
            if self.message.is_none() {
                self.message = Some(*m);
                self.informed_at = Some(round + 1);
            }
        }
    }
}

/// Packet of the MMV-framed layered Decay: either the real message or noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmvDecayMsg {
    /// The broadcast message.
    Payload(u64),
    /// A prompted transmission by a node that does not hold the message.
    Noise,
}

impl PacketBits for MmvDecayMsg {
    fn packet_bits(&self) -> usize {
        1 + 64
    }
}

/// The layered Decay schedule of Lemma 3.2, with optional noise senders.
///
/// Every node must know its BFS distance `l` from the source (delivered by a
/// layering phase in real pipelines; injected directly in experiments). At
/// round `r` a node with distance `l` is *prompted* iff `r ≡ l + 1 (mod 3)`,
/// with probability `2^{-((r - l - 1)/3 mod ⌈log2 n⌉)}`. A prompted holder
/// transmits the message; a prompted non-holder transmits noise when
/// `noise_enabled` (the MMV stress of Lemma 3.2) and stays silent otherwise
/// (the classical layered Decay).
#[derive(Clone, Debug)]
pub struct MmvDecayBroadcast {
    level: u64,
    log_n: u32,
    noise_enabled: bool,
    message: Option<u64>,
    informed_at: Option<u64>,
}

impl MmvDecayBroadcast {
    /// A node at BFS distance `level`; `source_message` is `Some` at the
    /// source (whose `level` must be 0).
    pub fn new(
        params: &Params,
        level: u32,
        noise_enabled: bool,
        source_message: Option<u64>,
    ) -> Self {
        MmvDecayBroadcast {
            level: u64::from(level),
            log_n: params.log_n,
            noise_enabled,
            message: source_message,
            informed_at: source_message.map(|_| 0),
        }
    }

    /// Whether this node holds the message.
    pub fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    /// Round of first reception (0 for the source).
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }

    /// Whether the schedule prompts this node at `round` (1-based internally,
    /// matching the paper's `r ≡ l_v + 1 (mod 3)`), and with what probability.
    fn prompt_probability(&self, round: u64) -> Option<f64> {
        let r = round + 1; // the paper counts rounds from 1
        if r % 3 != (self.level + 1) % 3 {
            return None;
        }
        // Guard against rounds before the node's slot pattern starts.
        if r < self.level + 1 {
            return None;
        }
        let step = (r - self.level - 1) / 3 % u64::from(self.log_n);
        Some(0.5f64.powi(step as i32))
    }

    /// The first round `>= from` in which the schedule prompts this node
    /// (every prompted round draws from the RNG, message or not).
    fn next_prompt(&self, from: u64) -> u64 {
        // Prompted rounds satisfy (round + 1) ≡ level + 1 (mod 3) with
        // round >= level.
        let from = from.max(self.level);
        let target = (self.level + 1) % 3;
        from + (target + 3 - (from + 1) % 3) % 3
    }
}

impl Protocol for MmvDecayBroadcast {
    type Msg = MmvDecayMsg;
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;

    /// Wakes only in prompted rounds (one in three): unprompted rounds
    /// neither transmit nor draw from the RNG.
    fn next_wake(&self, round: u64) -> Wake {
        let next = self.next_prompt(round);
        if next == round {
            Wake::Now
        } else {
            Wake::At(next)
        }
    }

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<MmvDecayMsg> {
        let Some(p) = self.prompt_probability(round) else {
            return Action::Listen;
        };
        if !rng.gen_bool(p) {
            return Action::Listen;
        }
        match self.message {
            Some(m) => Action::Transmit(MmvDecayMsg::Payload(m)),
            None if self.noise_enabled => Action::Transmit(MmvDecayMsg::Noise),
            None => Action::Listen,
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<MmvDecayMsg>, _rng: &mut SmallRng) {
        if let Observation::Message(p) = obs {
            if let MmvDecayMsg::Payload(m) = *p {
                if self.message.is_none() {
                    self.message = Some(m);
                    self.informed_at = Some(round + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::graph::{generators, Traversal};
    use radio_sim::{CollisionMode, NodeId, Simulator};

    #[test]
    fn decay_schedule_probabilities() {
        let d = DecaySchedule::new(3);
        assert_eq!(d.probability(0), 1.0);
        assert_eq!(d.probability(1), 0.5);
        assert_eq!(d.probability(2), 0.25);
        assert_eq!(d.probability(3), 1.0);
        assert_eq!(d.phase_len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_phase_len_panics() {
        let _ = DecaySchedule::new(0);
    }

    fn run_decay(g: radio_sim::Graph, seed: u64) -> Option<u64> {
        let params = Params::scaled(g.node_count());
        let mut sim = Simulator::new(g, CollisionMode::NoDetection, seed, |id| {
            DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(0xFEED)))
        });
        sim.run_until(200_000, |nodes| nodes.iter().all(DecayBroadcast::is_informed))
    }

    #[test]
    fn decay_broadcast_completes_on_path() {
        assert!(run_decay(generators::path(32), 1).is_some());
    }

    #[test]
    fn decay_broadcast_completes_on_clique() {
        assert!(run_decay(generators::complete(64), 2).is_some());
    }

    #[test]
    fn decay_broadcast_completes_on_cluster_chain() {
        assert!(run_decay(generators::cluster_chain(8, 8), 3).is_some());
    }

    #[test]
    fn decay_progress_rate_meets_lemma_2_2() {
        // Star center with many informed leaves: the center must receive with
        // probability >= 1/8 per phase. Measure across phases.
        let n = 65;
        let params = Params::scaled(n);
        let g = generators::star(n);
        let mut sim = Simulator::new(g, CollisionMode::NoDetection, 9, |id| {
            DecayBroadcast::new(&params, (id.index() != 0).then_some(DecayMsg(1)))
        });
        let informed = sim
            .run_until(u64::from(params.decay_phase_len()) * 400, |nodes| nodes[0].is_informed());
        assert!(informed.is_some());
        // Expected phases to inform: <= 8 on average; allow a wide margin.
        let phases = informed.unwrap() / u64::from(params.decay_phase_len()) + 1;
        assert!(phases <= 60, "took {phases} phases");
    }

    #[test]
    fn decay_rounds_scale_with_diameter() {
        let short = run_decay(generators::path(8), 4).unwrap();
        let long = run_decay(generators::path(64), 4).unwrap();
        assert!(long > short, "decay time must grow with D ({short} vs {long})");
    }

    fn run_mmv(noise: bool, seed: u64) -> Option<u64> {
        let g = generators::cluster_chain(6, 6);
        let layering = g.bfs(NodeId::new(0));
        let params = Params::scaled(g.node_count());
        let levels: Vec<u32> = g.node_ids().map(|v| layering.level(v)).collect();
        let mut sim = Simulator::new(g, CollisionMode::NoDetection, seed, |id| {
            MmvDecayBroadcast::new(
                &params,
                levels[id.index()],
                noise,
                (id.index() == 0).then_some(7),
            )
        });
        sim.run_until(500_000, |nodes| nodes.iter().all(MmvDecayBroadcast::is_informed))
    }

    #[test]
    fn mmv_decay_completes_without_noise() {
        assert!(run_mmv(false, 5).is_some());
    }

    #[test]
    fn mmv_decay_completes_with_noise() {
        // Lemma 3.2: noise from non-holders does not prevent completion.
        for seed in 6..10 {
            assert!(run_mmv(true, seed).is_some(), "seed {seed}");
        }
    }

    #[test]
    fn mmv_prompts_respect_level_slots() {
        let params = Params::scaled(64);
        let node = MmvDecayBroadcast::new(&params, 2, false, None);
        // r = round+1 must satisfy r ≡ 3 (mod 3) = 0 (mod 3).
        for round in 0..30u64 {
            let prompted = node.prompt_probability(round).is_some();
            assert_eq!(prompted, (round + 1) % 3 == 0 && round + 1 >= 3, "round {round}");
        }
    }

    #[test]
    fn packet_bits() {
        assert_eq!(DecayMsg(0).packet_bits(), 64);
        assert_eq!(MmvDecayMsg::Noise.packet_bits(), 65);
    }

    #[test]
    fn decay_wake_hints_match_dense_path() {
        use radio_sim::DenseWrap;
        let g = generators::cluster_chain(5, 5);
        let params = Params::scaled(g.node_count());
        for seed in 0..4u64 {
            let mut wake = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
                DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(5)))
            });
            let mut dense = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
                DenseWrap(DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(5))))
            });
            wake.run(2_000);
            dense.run(2_000);
            let wa: Vec<_> = wake.nodes().iter().map(DecayBroadcast::informed_at).collect();
            let da: Vec<_> = dense.nodes().iter().map(|n| n.0.informed_at()).collect();
            assert_eq!(wa, da, "informed rounds diverged (seed {seed})");
            assert_eq!(
                (wake.stats().transmissions, wake.stats().deliveries, wake.stats().collisions),
                (dense.stats().transmissions, dense.stats().deliveries, dense.stats().collisions),
            );
            assert!(wake.stats().act_skips > 0, "uninformed nodes were not skipped");
            assert_eq!(dense.stats().act_skips, 0);
        }
    }

    #[test]
    fn mmv_decay_wake_hints_match_dense_path() {
        use radio_sim::DenseWrap;
        let g = generators::cluster_chain(4, 4);
        let layering = g.bfs(NodeId::new(0));
        let params = Params::scaled(g.node_count());
        let levels: Vec<u32> = g.node_ids().map(|v| layering.level(v)).collect();
        for noise in [false, true] {
            let make = |id: NodeId| {
                MmvDecayBroadcast::new(
                    &params,
                    levels[id.index()],
                    noise,
                    (id.index() == 0).then_some(9),
                )
            };
            let mut wake = Simulator::new(g.clone(), CollisionMode::NoDetection, 7, make);
            let mut dense =
                Simulator::new(g.clone(), CollisionMode::NoDetection, 7, |id| DenseWrap(make(id)));
            wake.run(3_000);
            dense.run(3_000);
            let wa: Vec<_> = wake.nodes().iter().map(MmvDecayBroadcast::informed_at).collect();
            let da: Vec<_> = dense.nodes().iter().map(|n| n.0.informed_at()).collect();
            assert_eq!(wa, da, "informed rounds diverged (noise {noise})");
            assert_eq!(wake.stats().transmissions, dense.stats().transmissions);
            assert!(wake.stats().act_skips > 0, "off-slot rounds were not skipped");
        }
    }

    #[test]
    fn mmv_next_prompt_is_consistent_with_prompting() {
        let params = Params::scaled(64);
        for level in 0..7u32 {
            let node = MmvDecayBroadcast::new(&params, level, false, None);
            for from in 0..60u64 {
                let next = node.next_prompt(from);
                assert!(next >= from);
                assert!(node.prompt_probability(next).is_some(), "level {level} from {from}");
                for t in from..next {
                    assert!(node.prompt_probability(t).is_none(), "missed prompt at {t}");
                }
            }
        }
    }
}
