//! The multi-message-viable (MMV) GST transmission schedule (Section 3.2)
//! combined with random linear network coding (Section 3.3.2).
//!
//! Given a GST with levels `l`, ranks `r` and virtual distances `d`
//! (Lemma 3.10 / [`gst::VirtualDistances`]), every node follows, in round `t`:
//!
//! * **(a) fast transmissions** (even rounds): if
//!   `t ≡ 2(l + 3r) (mod 6⌈log2 n⌉)` the node transmits — a stretch head
//!   emits a fresh coded packet, an in-stretch node relays the packet it
//!   received in the previous fast round. Eligibility requires a same-rank
//!   child (see the `gst` crate docs); Lemma 3.5 makes these collision-free
//!   along stretches.
//! * **(b) slow transmissions** (odd rounds): if `t ≡ 1 + 2d (mod 6)` the
//!   node transmits a fresh coded packet with probability
//!   `2^{-((t-1-2d)/6 mod ⌈log2 n⌉)}`.
//!
//! Keying the slow pattern on the *virtual distance* rather than the BFS
//! level is the paper's crucial change versus Gasieniec–Peleg–Xin: it pushes
//! packets toward stretch *entry points* and makes the schedule provably
//! tolerant of the noise other messages create ([`SlowKey::Level`] keeps the
//! GPX-style keying as the ablation of experiment E8).
//!
//! "Fresh coded packet" means a uniformly random `F_2` combination of
//! everything in the node's [`rlnc::Decoder`] — the universal relay rule of
//! Section 3.3.1. With `k = 1` this schedule degenerates to the
//! `O(D + log^2 n)` single-message broadcast used as the per-ring black box
//! of Theorem 1.1.

use crate::params::Params;
use radio_sim::model::PacketBits;
use radio_sim::{Action, Observation, Protocol, Wake};
use rand::rngs::SmallRng;
use rand::Rng;
use rlnc::gf2::BitVec;
use rlnc::{CodedPacket, Decoder};

/// Which label keys the slow-transmission pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlowKey {
    /// The paper's choice: virtual distance in the stretch graph `G'`.
    VirtualDistance,
    /// The GPX-style ablation: BFS level.
    Level,
}

/// What a scheduled node transmits when its decoder is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmptyBehavior {
    /// Stay silent (the real algorithm: nothing to code over).
    Silent,
    /// Transmit noise (the worst case assumed by the MMV analysis;
    /// used to stress-test Lemma 3.3).
    Noise,
}

/// Static schedule configuration shared by all nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// `⌈log2 n⌉` — the period is `6·log_n`.
    pub log_n: u32,
    /// Slow-pattern keying.
    pub slow_key: SlowKey,
    /// Empty-decoder behavior.
    pub empty: EmptyBehavior,
}

impl ScheduleConfig {
    /// The paper's schedule under `params`.
    pub fn from_params(params: &Params) -> Self {
        ScheduleConfig {
            log_n: params.log_n,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        }
    }

    /// Switches the slow keying (for the E8 ablation).
    pub fn with_slow_key(mut self, key: SlowKey) -> Self {
        self.slow_key = key;
        self
    }

    /// Switches the empty-decoder behavior.
    pub fn with_empty(mut self, empty: EmptyBehavior) -> Self {
        self.empty = empty;
        self
    }

    /// Whether round `t` is the fast slot of a node at level `l`, rank `r`.
    pub fn fast_slot(&self, t: u64, l: u32, r: u32) -> bool {
        let period = u64::from(6 * self.log_n);
        t % period == (2 * (u64::from(l) + 3 * u64::from(r))) % period
    }

    /// The slow-transmission probability at round `t` for slow key `d`,
    /// or `None` when not prompted.
    pub fn slow_prompt(&self, t: u64, d: u32) -> Option<f64> {
        let d = u64::from(d);
        if t < 1 + 2 * d || t % 6 != (1 + 2 * d) % 6 {
            return None;
        }
        let step = ((t - 1 - 2 * d) / 6) % u64::from(self.log_n);
        Some(0.5f64.powi(step as i32))
    }

    /// The first round `>= from` that is the fast slot of `(l, r)`.
    pub fn next_fast_slot(&self, from: u64, l: u32, r: u32) -> u64 {
        let period = u64::from(6 * self.log_n);
        let slot = (2 * (u64::from(l) + 3 * u64::from(r))) % period;
        from + (slot + period - from % period) % period
    }

    /// The first round `>= from` in which slow key `d` is prompted (every
    /// such round draws from the RNG).
    pub fn next_slow_prompt(&self, from: u64, d: u32) -> u64 {
        let start = 1 + 2 * u64::from(d);
        let from = from.max(start);
        from + (start % 6 + 6 - from % 6) % 6
    }
}

/// The GST labels a schedule node needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedLabels {
    /// BFS level within this schedule's domain (ring-local in ring mode).
    pub level: u32,
    /// GST rank.
    pub rank: u32,
    /// Virtual distance (0 at roots).
    pub vdist: u32,
    /// Whether this node heads its fast stretch (emits fresh fast packets).
    pub stretch_start: bool,
    /// Whether this node has a same-rank child (fast-transmission eligible).
    pub fast_transmitter: bool,
    /// Whether this node's parent shares its rank (it expects stretch waves).
    pub in_stretch: bool,
}

impl SchedLabels {
    /// Labels derived from a [`gst::Gst`] and virtual distances.
    pub fn from_gst(gst: &gst::Gst, vd: &gst::VirtualDistances, v: radio_sim::NodeId) -> Self {
        SchedLabels {
            level: gst.level(v),
            rank: gst.rank(v),
            vdist: vd.get(v),
            stretch_start: gst.is_stretch_start(v),
            fast_transmitter: gst.is_fast_transmitter(v),
            in_stretch: gst.parent_rank(v) == Some(gst.rank(v)),
        }
    }
}

/// Packets of the schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedMsg {
    /// A network-coded packet (`fast` tags the slot kind for audits).
    Coded {
        /// Whether this was a fast transmission.
        fast: bool,
        /// The coded payload.
        packet: CodedPacket,
    },
    /// A noise transmission (empty decoder under [`EmptyBehavior::Noise`]).
    Noise,
}

impl PacketBits for SchedMsg {
    fn packet_bits(&self) -> usize {
        match self {
            SchedMsg::Coded { packet, .. } => 1 + packet.packet_bits(),
            SchedMsg::Noise => 1,
        }
    }
}

/// Per-node audit counters (experiment E13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedAudit {
    /// Collisions observed in even (fast) rounds, any listener.
    pub fast_collisions_bystander: u64,
    /// Collisions observed by an in-stretch node in the very round its
    /// parent's wave was due — the harmful case Lemma 3.5 rules out.
    pub fast_collisions_in_stretch: u64,
    /// Collisions observed in odd (slow) rounds.
    pub slow_collisions: u64,
}

impl SchedAudit {
    /// Folds another audit's counters into this one.
    pub fn absorb(&mut self, other: SchedAudit) {
        self.fast_collisions_bystander += other.fast_collisions_bystander;
        self.fast_collisions_in_stretch += other.fast_collisions_in_stretch;
        self.slow_collisions += other.slow_collisions;
    }
}

/// One node running the schedule over a single RLNC generation.
#[derive(Clone, Debug)]
pub struct MmvScheduleNode {
    cfg: ScheduleConfig,
    labels: SchedLabels,
    decoder: Decoder,
    /// Fast packet received in the previous even round, for relaying.
    last_fast: Option<(u64, CodedPacket)>,
    audit: SchedAudit,
}

impl MmvScheduleNode {
    /// A node with `labels` decoding a generation of `k` messages of
    /// `payload_bits` each.
    pub fn new(cfg: ScheduleConfig, labels: SchedLabels, k: usize, payload_bits: usize) -> Self {
        MmvScheduleNode {
            cfg,
            labels,
            decoder: Decoder::new(k, payload_bits),
            last_fast: None,
            audit: SchedAudit::default(),
        }
    }

    /// Pre-loads the source's messages.
    pub fn with_messages(mut self, messages: &[BitVec]) -> Self {
        self.decoder = Decoder::with_messages(messages);
        self
    }

    /// The node's decoder (receivers decode once it has full rank).
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// Whether this node can decode every message.
    pub fn is_complete(&self) -> bool {
        self.decoder.can_decode()
    }

    /// Audit counters.
    pub fn audit(&self) -> SchedAudit {
        self.audit
    }

    /// The node's labels.
    pub fn labels(&self) -> SchedLabels {
        self.labels
    }

    fn fresh_packet(&self, rng: &mut SmallRng, fast: bool) -> Option<SchedMsg> {
        match self.decoder.random_combination(rng) {
            Some(packet) => Some(SchedMsg::Coded { fast, packet }),
            None => match self.cfg.empty {
                EmptyBehavior::Silent => None,
                EmptyBehavior::Noise => Some(SchedMsg::Noise),
            },
        }
    }

    /// Whether `t` is the fast slot in which this node's parent transmits its
    /// stretch wave (i.e. this node's reception slot).
    fn parent_wave_slot(&self, t: u64) -> bool {
        self.labels.in_stretch
            && self.labels.level > 0
            && self.cfg.fast_slot(t, self.labels.level - 1, self.labels.rank)
    }

    /// The first round `>= round` in which this node's `act` can transmit or
    /// draw from its RNG: its slow-prompt slot, and (for fast transmitters)
    /// its fast slot. Public so enclosing pipelines can map it into their
    /// own round spaces.
    pub fn next_act_round(&self, round: u64) -> u64 {
        let key = match self.cfg.slow_key {
            SlowKey::VirtualDistance => self.labels.vdist,
            SlowKey::Level => self.labels.level,
        };
        let slow = self.cfg.next_slow_prompt(round, key);
        if self.labels.fast_transmitter {
            slow.min(self.cfg.next_fast_slot(round, self.labels.level, self.labels.rank))
        } else {
            slow
        }
    }
}

impl Protocol for MmvScheduleNode {
    type Msg = SchedMsg;
    // Silence/self-transmit observations are explicit no-ops in `observe`.
    const SILENCE_IS_NOOP: bool = true;
    const WAKE_HINTS: bool = true;

    /// Sleeps between the node's schedule slots: rounds that are neither its
    /// fast slot nor its slow-prompt slot neither transmit nor draw.
    fn next_wake(&self, round: u64) -> Wake {
        let next = self.next_act_round(round);
        if next == round {
            Wake::Now
        } else {
            Wake::At(next)
        }
    }

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<SchedMsg> {
        if round % 2 == 0 {
            // Fast slots.
            if self.labels.fast_transmitter
                && self.cfg.fast_slot(round, self.labels.level, self.labels.rank)
            {
                let msg = if self.labels.stretch_start {
                    self.fresh_packet(rng, true)
                } else {
                    // Relay the wave received two rounds ago, if any.
                    match &self.last_fast {
                        Some((t, p)) if *t + 2 == round => {
                            Some(SchedMsg::Coded { fast: true, packet: p.clone() })
                        }
                        _ => None,
                    }
                };
                if let Some(m) = msg {
                    return Action::Transmit(m);
                }
            }
            return Action::Listen;
        }
        // Slow slots.
        let key = match self.cfg.slow_key {
            SlowKey::VirtualDistance => self.labels.vdist,
            SlowKey::Level => self.labels.level,
        };
        if let Some(p) = self.cfg.slow_prompt(round, key) {
            if rng.gen_bool(p) {
                if let Some(m) = self.fresh_packet(rng, false) {
                    return Action::Transmit(m);
                }
            }
        }
        Action::Listen
    }

    fn observe(&mut self, round: u64, obs: Observation<SchedMsg>, _rng: &mut SmallRng) {
        match obs {
            // `into_inner` clones only while the packet is still shared with
            // the engine's store; pipeline remaps hand over a unique packet.
            Observation::Message(p) => match p.into_inner() {
                SchedMsg::Coded { fast, packet } => {
                    if fast && round % 2 == 0 {
                        self.last_fast = Some((round, packet.clone()));
                    }
                    self.decoder.insert(packet);
                }
                SchedMsg::Noise => {}
            },
            Observation::Collision => {
                if round % 2 == 0 {
                    if self.parent_wave_slot(round) {
                        self.audit.fast_collisions_in_stretch += 1;
                    } else {
                        self.audit.fast_collisions_bystander += 1;
                    }
                } else {
                    self.audit.slow_collisions += 1;
                }
            }
            Observation::Silence | Observation::SelfTransmit => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst::{build_gst, BuildConfig, VirtualDistances};
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;
    use radio_sim::{CollisionMode, Graph, NodeId, Simulator};

    /// Builds labels for a single-rooted GST of `g`.
    fn labels_for(g: &Graph, seed: u64) -> Vec<SchedLabels> {
        let mut rng = stream_rng(seed, 5);
        let (gst, _) =
            build_gst(g, &[NodeId::new(0)], &mut rng, &BuildConfig::for_nodes(g.node_count()));
        let vd = VirtualDistances::compute(g, &gst);
        g.node_ids().map(|v| SchedLabels::from_gst(&gst, &vd, v)).collect()
    }

    fn run_broadcast(
        g: &Graph,
        k: usize,
        seed: u64,
        key: SlowKey,
        max_rounds: u64,
    ) -> (Option<u64>, SchedAudit) {
        let params = Params::scaled(g.node_count());
        let cfg = ScheduleConfig::from_params(&params).with_slow_key(key);
        let labels = labels_for(g, seed);
        let messages: Vec<BitVec> =
            (0..k as u64).map(|i| BitVec::from_u64(i * 3 + 1, 32)).collect();
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
            let node = MmvScheduleNode::new(cfg, labels[id.index()], k, 32);
            if id.index() == 0 {
                node.with_messages(&messages)
            } else {
                node
            }
        });
        let done =
            sim.run_until(max_rounds, |nodes| nodes.iter().all(MmvScheduleNode::is_complete));
        let mut audit = SchedAudit::default();
        for n in sim.nodes() {
            let a = n.audit();
            audit.fast_collisions_bystander += a.fast_collisions_bystander;
            audit.fast_collisions_in_stretch += a.fast_collisions_in_stretch;
            audit.slow_collisions += a.slow_collisions;
        }
        (done, audit)
    }

    #[test]
    fn single_message_on_path() {
        let g = generators::path(32);
        let (done, audit) = run_broadcast(&g, 1, 1, SlowKey::VirtualDistance, 50_000);
        assert!(done.is_some());
        assert_eq!(audit.fast_collisions_in_stretch, 0, "Lemma 3.5 violated");
    }

    #[test]
    fn single_message_on_cluster_chain() {
        let g = generators::cluster_chain(6, 6);
        let (done, audit) = run_broadcast(&g, 1, 2, SlowKey::VirtualDistance, 50_000);
        assert!(done.is_some());
        assert_eq!(audit.fast_collisions_in_stretch, 0);
    }

    #[test]
    fn multi_message_on_grid() {
        let g = generators::grid(6, 6);
        let (done, audit) = run_broadcast(&g, 8, 3, SlowKey::VirtualDistance, 200_000);
        assert!(done.is_some(), "8-message broadcast timed out");
        assert_eq!(audit.fast_collisions_in_stretch, 0);
    }

    #[test]
    fn multi_message_on_random_graph() {
        let mut rng = stream_rng(7, 0);
        let g = generators::gnp_connected(48, 0.1, &mut rng);
        let (done, _) = run_broadcast(&g, 6, 4, SlowKey::VirtualDistance, 200_000);
        assert!(done.is_some());
    }

    #[test]
    fn multi_message_scales_linearly_in_k() {
        // O(D + k log n + log^2 n): doubling k must not explode the time.
        let g = generators::cluster_chain(4, 6);
        let (t8, _) = run_broadcast(&g, 8, 5, SlowKey::VirtualDistance, 400_000);
        let (t16, _) = run_broadcast(&g, 16, 5, SlowKey::VirtualDistance, 400_000);
        let (t8, t16) = (t8.unwrap() as f64, t16.unwrap() as f64);
        assert!(t16 < t8 * 3.5, "k-scaling superlinear: {t8} -> {t16}");
    }

    #[test]
    fn level_keyed_ablation_still_broadcasts_single() {
        // With one message the level-keyed schedule behaves like GPX.
        let g = generators::cluster_chain(5, 5);
        let (done, _) = run_broadcast(&g, 1, 6, SlowKey::Level, 50_000);
        assert!(done.is_some());
    }

    #[test]
    fn fast_slot_arithmetic() {
        let cfg = ScheduleConfig {
            log_n: 4,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        };
        // Period 24; node at level 2, rank 3: slot 2*(2+9) = 22.
        assert!(cfg.fast_slot(22, 2, 3));
        assert!(cfg.fast_slot(46, 2, 3));
        assert!(!cfg.fast_slot(23, 2, 3));
        assert!(!cfg.fast_slot(20, 2, 3));
    }

    #[test]
    fn slow_prompt_arithmetic() {
        let cfg = ScheduleConfig {
            log_n: 4,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        };
        // d = 1: prompted at t ≡ 3 (mod 6), t >= 3.
        assert_eq!(cfg.slow_prompt(3, 1), Some(1.0));
        assert_eq!(cfg.slow_prompt(9, 1), Some(0.5));
        assert_eq!(cfg.slow_prompt(4, 1), None);
        assert_eq!(cfg.slow_prompt(1, 1), None, "before the pattern starts");
        // Slow prompts only land on odd rounds.
        for t in (0..60).step_by(2) {
            assert_eq!(cfg.slow_prompt(t, 1), None);
        }
    }

    #[test]
    fn fast_slots_only_on_even_rounds() {
        let cfg = ScheduleConfig {
            log_n: 5,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        };
        for t in (1..120).step_by(2) {
            for l in 0..6 {
                for r in 1..5 {
                    assert!(!cfg.fast_slot(t, l, r), "odd round {t} is a fast slot");
                }
            }
        }
    }

    #[test]
    fn noise_mode_transmits_on_empty_decoder() {
        let params = Params::scaled(16);
        let cfg = ScheduleConfig::from_params(&params).with_empty(EmptyBehavior::Noise);
        let labels = SchedLabels {
            level: 1,
            rank: 1,
            vdist: 1,
            stretch_start: true,
            fast_transmitter: true,
            in_stretch: false,
        };
        let mut node = MmvScheduleNode::new(cfg, labels, 1, 8);
        let mut rng = stream_rng(0, 0);
        let mut noises = 0;
        for t in 0..1000 {
            if let Action::Transmit(SchedMsg::Noise) = node.act(t, &mut rng) {
                noises += 1;
            }
        }
        assert!(noises > 0, "noise mode never transmitted");
    }

    #[test]
    fn next_slot_helpers_are_consistent() {
        let cfg = ScheduleConfig {
            log_n: 4,
            slow_key: SlowKey::VirtualDistance,
            empty: EmptyBehavior::Silent,
        };
        for from in 0..80u64 {
            for l in 0..5 {
                for r in 1..4 {
                    let next = cfg.next_fast_slot(from, l, r);
                    assert!(next >= from && cfg.fast_slot(next, l, r));
                    for t in from..next {
                        assert!(!cfg.fast_slot(t, l, r), "missed fast slot at {t}");
                    }
                }
            }
            for d in 0..6 {
                let next = cfg.next_slow_prompt(from, d);
                assert!(next >= from && cfg.slow_prompt(next, d).is_some());
                for t in from..next {
                    assert!(cfg.slow_prompt(t, d).is_none(), "missed slow prompt at {t}");
                }
            }
        }
    }

    #[test]
    fn schedule_wake_hints_match_dense_path() {
        use radio_sim::DenseWrap;
        let g = generators::cluster_chain(5, 5);
        let params = Params::scaled(g.node_count());
        let cfg = ScheduleConfig::from_params(&params);
        let labels = labels_for(&g, 11);
        let messages: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(i * 5 + 2, 32)).collect();
        let make = |id: NodeId| {
            let node = MmvScheduleNode::new(cfg, labels[id.index()], 4, 32);
            if id.index() == 0 {
                node.with_messages(&messages)
            } else {
                node
            }
        };
        for mode in [CollisionMode::Detection, CollisionMode::NoDetection] {
            let mut wake = Simulator::new(g.clone(), mode, 11, make);
            let mut dense = Simulator::new(g.clone(), mode, 11, |id| DenseWrap(make(id)));
            let w = wake.run_until(100_000, |ns| ns.iter().all(MmvScheduleNode::is_complete));
            let d = dense.run_until(100_000, |ns| ns.iter().all(|n| n.0.is_complete()));
            assert_eq!(w, d, "completion diverged under {mode:?}");
            assert_eq!(
                (wake.stats().transmissions, wake.stats().deliveries, wake.stats().collisions),
                (dense.stats().transmissions, dense.stats().deliveries, dense.stats().collisions),
                "channel trace diverged under {mode:?}"
            );
            assert!(wake.stats().act_skips > 0, "between-slot rounds were not skipped");
        }
    }

    #[test]
    fn packet_bits_accounting() {
        let p = CodedPacket::plaintext(4, 0, BitVec::zero(16));
        assert_eq!(SchedMsg::Coded { fast: true, packet: p }.packet_bits(), 1 + 4 + 16);
        assert_eq!(SchedMsg::Noise.packet_bits(), 1);
    }
}
