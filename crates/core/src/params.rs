//! Every `Θ(·)` constant of the paper, in one tunable place.
//!
//! The paper's round bounds hide constants inside `Θ(log n)` phase counts,
//! `Θ(log^2 n)` recruiting iterations and `Θ(log n)` epoch counts. A
//! simulation has to pick them. [`Params`] carries every such choice, with
//! two presets:
//!
//! * [`Params::scaled`] — small constants for experiments. The asymptotic
//!   *shapes* the benches measure are constant-independent; smaller constants
//!   keep sweeps fast while the per-run `whp` guarantees degrade to
//!   "overwhelmingly likely", which the harness *measures* (violation
//!   counters) instead of assuming.
//! * [`Params::faithful`] — constants sized like the proofs ask
//!   (e.g. recruiting really gets `Θ(log^2 n)` iterations). Slow; used by a
//!   few deep tests.

use radio_sim::graph::ceil_log2;

/// All tunable constants, derived from the network-size bound `n`.
///
/// Nodes are assumed to know a polynomial upper bound on `n` (the paper's
/// standard assumption); every field below is computable from that bound, so
/// sharing a `Params` value among nodes models shared knowledge of `n` only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Params {
    /// `⌈log2 n⌉` — the paper's `log n`: Decay phase length, rank cap,
    /// schedule period base.
    pub log_n: u32,
    /// Decay phases run per "`Θ(log n)` phases of Decay" step.
    pub decay_phases: u32,
    /// Recruiting iterations (the paper's `Θ(log^2 n)`).
    pub recruit_iterations: u32,
    /// Epochs per rank in the Bipartite Assignment (the paper's `Θ(log n)`).
    pub assignment_epochs: u32,
    /// Ring width override for the `D/log^4 n` decomposition: `None` derives
    /// it from `D`; `Some(w)` forces rings of `w` layers (used by the ring
    /// experiments).
    pub ring_width: Option<u32>,
    /// Multiplier for broadcast phase windows (`λ` in the proofs): the
    /// per-ring broadcast window is `window_slack * (ring span + log^2 n)`
    /// rounds.
    pub window_slack: u32,
    /// Work rounds between two status-beep rounds of the adaptive
    /// Theorem 1.1 and 1.3 pipelines (see `single_message` /
    /// `multi_message`): every `beep_interval`-th round of an open-ended
    /// phase is a dedicated beep slot in which nodes with pending work
    /// transmit a content-free status beep.
    pub beep_interval: u32,
    /// Consecutive *silent* status rounds required before an open-ended
    /// adaptive phase is declared quiescent and closed — the "fixed slack"
    /// between the frontier stopping and the phase ending.
    pub quiescence_slack: u32,
}

impl Params {
    /// Experiment-friendly constants for a network of at most `n` nodes.
    ///
    /// Retuned for the adaptive Theorem 1.1 pipeline (PR 2): with
    /// phase-completion detection the fixed windows are *caps*, not costs, so
    /// the constants were lowered until the seed test corpus (structured and
    /// random graphs up to a few hundred nodes, all master seeds used by
    /// tier-1) still completes with zero hard construction violations:
    ///
    /// * `decay_phases: 4` — *kept* at four Decay phases per "`Θ(log n)`
    ///   phases" step: three was tried during the retune and breaks the
    ///   zero-violation guarantee of the fixed-schedule construction corpus
    ///   (star/random graphs lose Identify + Stage Ib reliability), and the
    ///   adaptive driver already cuts unneeded phases at run time, so
    ///   lowering the cap bought nothing.
    /// * `assignment_epochs: log_n / 2 + 4` (down from `log_n + 6`) — matches
    ///   the long-standing bench preset; the adaptive driver skips epochs
    ///   once every blue of the rank is assigned, so extra epochs only
    ///   inflate the worst-case cap.
    /// * `window_slack: 3` — window budgets are upper bounds under adaptive
    ///   termination; 3 keeps a 3x margin over observed completion rounds on
    ///   the regression corpus while tightening `total_rounds()`.
    /// * `beep_interval: 8`, `quiescence_slack: 1` — a status beep every 8
    ///   work rounds; one silent beep round closes a phase. With collision
    ///   detection the wave frontier advances every round, so a full silent
    ///   interval is already conclusive; the interval itself is the slack.
    pub fn scaled(n: usize) -> Self {
        let log_n = ceil_log2(n.max(2));
        Params {
            log_n,
            decay_phases: 4,
            // Hold each of the log_n densities a few times.
            recruit_iterations: 4 * log_n,
            assignment_epochs: log_n / 2 + 4,
            ring_width: None,
            window_slack: 3,
            beep_interval: 8,
            quiescence_slack: 1,
        }
    }

    /// Proof-sized constants (slow; for deep validation runs).
    pub fn faithful(n: usize) -> Self {
        let log_n = ceil_log2(n.max(2));
        Params {
            log_n,
            decay_phases: 2 * log_n,
            recruit_iterations: 2 * log_n * log_n,
            assignment_epochs: 4 * log_n,
            ring_width: None,
            window_slack: 8,
            beep_interval: 8,
            quiescence_slack: 2,
        }
    }

    /// The rank cap: ranks live in `1..=max_rank()`.
    pub fn max_rank(&self) -> u32 {
        self.log_n
    }

    /// Length of one Decay phase in rounds.
    pub fn decay_phase_len(&self) -> u32 {
        self.log_n
    }

    /// Rounds of one "`Θ(log n)` phases of Decay" step.
    pub fn decay_step_rounds(&self) -> u32 {
        self.decay_phases * self.decay_phase_len()
    }

    /// Rounds of one full Recruiting protocol run
    /// (each iteration: beacon + a Decay phase + echo).
    pub fn recruit_rounds(&self) -> u32 {
        self.recruit_iterations * (2 + self.decay_phase_len())
    }

    /// Rounds of one epoch of the Bipartite Assignment algorithm:
    /// Stage I (1 + loner decay), parts 1–3 (recruiting each), Stage III
    /// (rank announcements).
    pub fn epoch_rounds(&self) -> u32 {
        1 + self.decay_step_rounds() + 3 * self.recruit_rounds() + self.decay_step_rounds()
    }

    /// Rounds of one rank's subproblem: identify + epochs.
    pub fn rank_rounds(&self) -> u32 {
        self.decay_step_rounds() + self.assignment_epochs * self.epoch_rounds()
    }

    /// Rounds of one boundary's Bipartite Assignment (all ranks).
    pub fn boundary_rounds(&self) -> u32 {
        self.max_rank() * self.rank_rounds()
    }

    /// The ring width for the decomposition of Theorem 1.1 / 1.3, honoring
    /// the override.
    ///
    /// The paper uses `D' = D / log^4 n`, which at paper scale
    /// (`D ≥ log^6 n`) automatically satisfies `D' ≥ log^2 n`. That lower
    /// bound is what keeps the total inter-ring handoff cost
    /// (`Θ(log^2 n)` per ring) additive rather than multiplicative in `D`,
    /// so at simulation scale we enforce it explicitly:
    /// `D' = max(D / log^4 n, 2·log^2 n)`. With the floor, graphs whose
    /// diameter is below `2·log^2 n` use a single ring — exactly the paper's
    /// footnote 7 ("if D is small, just one ring is enough").
    ///
    /// The floor of 2 on overrides keeps the parity-slotted parallel ring
    /// constructions interference-free.
    pub fn ring_width_for(&self, diameter_bound: u32) -> u32 {
        if let Some(w) = self.ring_width {
            return w.max(2);
        }
        let log4 = (self.log_n as u64).pow(4).max(1);
        let paper = u64::from(diameter_bound) / log4;
        let floor = 2 * (self.log_n as u64).pow(2);
        let w = paper.max(floor).max(2);
        u32::try_from(w).expect("ring width fits u32")
    }

    /// The period of the MMV schedule's fast-transmission pattern:
    /// `6·⌈log2 n⌉`.
    pub fn schedule_period(&self) -> u32 {
        6 * self.log_n
    }

    /// The ring width for the *adaptive* Theorem 1.1 and 1.3 pipelines,
    /// honoring the override.
    ///
    /// [`Params::ring_width_for`] floors the width at `2·log^2 n` because with
    /// fixed windows every inter-ring handoff costs its full worst-case
    /// `Θ(log^2 n)` window, so rings must be wide enough to amortize it. The
    /// adaptive pipeline closes each handoff window as soon as the next ring's
    /// roots are informed (typically a handful of Decay rounds), which removes
    /// that amortization argument: narrow rings now *win*, because every
    /// ring's GST forest is constructed in parallel (parity-slotted), making
    /// the construction phase proportional to the ring width rather than to
    /// `D`. The floor therefore drops to 2, the minimum that keeps the
    /// parity-slotted interleave interference-free; at paper-scale diameters
    /// the `D / log^4 n` term takes over exactly as before.
    pub fn adaptive_ring_width(&self, diameter_bound: u32) -> u32 {
        if let Some(w) = self.ring_width {
            return w.max(2);
        }
        let log4 = (self.log_n as u64).pow(4).max(1);
        let w = (u64::from(diameter_bound) / log4).max(2);
        u32::try_from(w).expect("ring width fits u32")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_derives_log() {
        let p = Params::scaled(1024);
        assert_eq!(p.log_n, 10);
        assert_eq!(p.max_rank(), 10);
        assert_eq!(p.decay_phase_len(), 10);
        assert_eq!(p.schedule_period(), 60);
    }

    #[test]
    fn faithful_is_larger() {
        let s = Params::scaled(256);
        let f = Params::faithful(256);
        assert!(f.recruit_iterations > s.recruit_iterations);
        assert!(f.decay_phases > s.decay_phases);
        assert!(f.rank_rounds() > s.rank_rounds());
    }

    #[test]
    fn round_structure_composes() {
        let p = Params::scaled(128);
        assert_eq!(
            p.epoch_rounds(),
            1 + p.decay_step_rounds() + 3 * p.recruit_rounds() + p.decay_step_rounds()
        );
        assert_eq!(p.rank_rounds(), p.decay_step_rounds() + p.assignment_epochs * p.epoch_rounds());
        assert_eq!(p.boundary_rounds(), p.max_rank() * p.rank_rounds());
    }

    #[test]
    fn ring_width_floor_keeps_handoffs_additive() {
        // log_n = 10. Small D: the 2·log^2 floor yields a single ring.
        let p = Params::scaled(1024);
        assert_eq!(p.ring_width_for(50), 200);

        // Huge D: the paper's D / log^4 takes over.
        assert_eq!(p.ring_width_for(3_000_000), 300);
    }

    #[test]
    fn ring_width_override_wins() {
        let mut p = Params::scaled(1024);
        p.ring_width = Some(7);
        assert_eq!(p.ring_width_for(1000), 7);
        p.ring_width = Some(1);
        assert_eq!(p.ring_width_for(1000), 2, "floor of 2 applies to overrides too");
    }

    #[test]
    fn tiny_n_has_floor() {
        let p = Params::scaled(1);
        assert!(p.log_n >= 1);
        assert!(p.rank_rounds() > 0);
    }

    #[test]
    fn adaptive_ring_width_prefers_narrow_rings() {
        // log_n = 10. Small D: the adaptive pipeline drops to the minimum
        // width of 2 (parallel construction, pay-as-you-go handoffs) where
        // the fixed pipeline would use one giant ring.
        let p = Params::scaled(1024);
        assert_eq!(p.adaptive_ring_width(50), 2);
        assert_eq!(p.ring_width_for(50), 200, "fixed formula unchanged");

        // Huge D: both formulas agree on the paper's D / log^4.
        assert_eq!(p.adaptive_ring_width(3_000_000), 300);
        assert_eq!(p.ring_width_for(3_000_000), 300);

        // Overrides win, with the interference floor of 2.
        let mut q = p.clone();
        q.ring_width = Some(7);
        assert_eq!(q.adaptive_ring_width(1000), 7);
        q.ring_width = Some(1);
        assert_eq!(q.adaptive_ring_width(1000), 2);
    }

    #[test]
    fn adaptive_knobs_are_sane() {
        let p = Params::scaled(64);
        assert!(p.beep_interval >= 1, "a zero beep interval would starve work rounds");
        assert!(p.quiescence_slack >= 1);
        let f = Params::faithful(64);
        assert!(f.quiescence_slack >= p.quiescence_slack);
    }
}
