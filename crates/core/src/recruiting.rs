//! The Recruiting protocol (Lemma 2.3).
//!
//! A bipartite exchange between *red* and *blue* nodes achieving, w.h.p., in
//! `Θ(log^2 n)` iterations of `2 + ⌈log2 n⌉` rounds each:
//!
//! * (a) every blue node with a participating red neighbor is **recruited**
//!   by one of them (its *parent*);
//! * (b) every red node knows whether it recruited zero, one, or ≥ 2 blues;
//! * (c) every recruited blue knows whether its parent recruited one or ≥ 2.
//!
//! Iteration structure (`j = 0, 1, …`):
//!
//! 1. **Beacon** — each participating red transmits its id with probability
//!    `2^{-(1 + ⌊j / hold⌋ mod ⌈log n⌉)}` (densities swept, each held `hold`
//!    iterations);
//! 2. **Response phase** — one Decay phase in which each unrecruited blue
//!    that received a beacon from red `v` transmits `(u, v)`;
//! 3. **Echo** — the *same* reds that beaconed transmit again (so a blue that
//!    heard `v` alone in step 1 hears `v` alone again): a red that heard
//!    exactly one responder `u` echoes `u`'s id; one that heard several
//!    echoes the multi marker `Σ`; one that heard none echoes an empty
//!    marker. Echoes carry the red's id and cumulative recruit class, which
//!    also lets already-recruited blues refresh a stale "only child" belief
//!    (see DESIGN.md §3.6).
//!
//! The paper's echo description has the red "broadcast v.id" in the
//! single-responder case; for the blue-side rule ("u is recruited if it
//! received *its own id*") to work this must be the *blue*'s id, which is
//! what we transmit.
//!
//! These types are driven by an enclosing protocol (the Bipartite Assignment
//! of [`crate::construction`]) via `act`/`observe` calls with *local* round
//! numbers; [`standalone`] wraps them into a self-contained
//! [`radio_sim::Protocol`] for direct validation (experiment E5).

use crate::params::Params;
use radio_sim::model::PacketBits;
use rand::Rng;

/// How many blues a red has recruited, as the red knows it (property (b)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CountClass {
    /// No recruits yet.
    #[default]
    Zero,
    /// Exactly one recruit.
    One,
    /// Two or more recruits.
    Multi,
}

/// Messages of the Recruiting protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecruitMsg {
    /// Step-1 red beacon.
    Beacon {
        /// The transmitting red.
        red: u32,
        /// Its cumulative recruit class (for stale-belief refresh).
        class: CountClass,
    },
    /// Step-2 blue response addressed to `red`.
    Response {
        /// The responding blue.
        blue: u32,
        /// The red whose beacon it heard.
        red: u32,
    },
    /// Step-3 echo: exactly one responder was heard.
    EchoSingle {
        /// The echoing red.
        red: u32,
        /// The uniquely-heard responder, now recruited.
        blue: u32,
        /// Whether the red's cumulative count is now ≥ 2.
        multi: bool,
    },
    /// Step-3 echo: two or more responders were heard (the paper's `Σ`).
    EchoMulti {
        /// The echoing red.
        red: u32,
    },
    /// Step-3 echo: no responder was heard (the paper's empty message).
    EchoNone {
        /// The echoing red.
        red: u32,
    },
}

impl PacketBits for RecruitMsg {
    fn packet_bits(&self) -> usize {
        // Tag (3 bits) + up to two ids (32 each) + flags; ids are O(log n).
        match self {
            RecruitMsg::Beacon { .. } => 3 + 32 + 2,
            RecruitMsg::Response { .. } => 3 + 64,
            RecruitMsg::EchoSingle { .. } => 3 + 64 + 1,
            RecruitMsg::EchoMulti { .. } | RecruitMsg::EchoNone { .. } => 3 + 32,
        }
    }
}

/// Static shape of a recruiting run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecruitConfig {
    /// Number of iterations (the paper's `Θ(log^2 n)`).
    pub iterations: u32,
    /// Decay phase length (`⌈log2 n⌉`).
    pub phase_len: u32,
    /// Iterations each beacon density is held for.
    pub density_hold: u32,
}

impl RecruitConfig {
    /// The configuration induced by `params`.
    pub fn from_params(params: &Params) -> Self {
        let iterations = params.recruit_iterations.max(1);
        let phase_len = params.decay_phase_len();
        RecruitConfig { iterations, phase_len, density_hold: (iterations / phase_len).max(1) }
    }

    /// Rounds per iteration: beacon + response phase + echo.
    pub fn iteration_rounds(&self) -> u32 {
        2 + self.phase_len
    }

    /// Total rounds of the run.
    pub fn total_rounds(&self) -> u32 {
        self.iterations * self.iteration_rounds()
    }

    /// Decomposes a local round into `(iteration, offset)`.
    fn split(&self, local_round: u64) -> (u32, u32) {
        let per = u64::from(self.iteration_rounds());
        ((local_round / per) as u32, (local_round % per) as u32)
    }

    /// Beacon probability at `iteration`: densities `1, 1/2, …, 2^{-L}`
    /// swept cyclically, each held `density_hold` iterations.
    fn beacon_probability(&self, iteration: u32) -> f64 {
        let idx = (iteration / self.density_hold) % (self.phase_len + 1);
        0.5f64.powi(idx as i32)
    }
}

/// Red-side state machine.
#[derive(Clone, Debug)]
pub struct RecruitingRed {
    cfg: RecruitConfig,
    id: u32,
    participating: bool,
    // Per-iteration state.
    beaconed: bool,
    heard_first: Option<u32>,
    heard_second: bool,
    // Cumulative.
    singles: u32,
    any_multi: bool,
}

impl RecruitingRed {
    /// A red node; non-participating reds stay silent but keep valid state.
    pub fn new(cfg: RecruitConfig, id: u32, participating: bool) -> Self {
        RecruitingRed {
            cfg,
            id,
            participating,
            beaconed: false,
            heard_first: None,
            heard_second: false,
            singles: 0,
            any_multi: false,
        }
    }

    /// Property (b): how many blues this red recruited.
    pub fn count_class(&self) -> CountClass {
        if self.any_multi || self.singles >= 2 {
            CountClass::Multi
        } else if self.singles == 1 {
            CountClass::One
        } else {
            CountClass::Zero
        }
    }

    /// The action for local round `r`, or `None` to listen.
    pub fn act(&mut self, r: u64, rng: &mut impl Rng) -> Option<RecruitMsg> {
        if !self.participating {
            return None;
        }
        let (iter, offset) = self.cfg.split(r);
        if iter >= self.cfg.iterations {
            return None;
        }
        if offset == 0 {
            // Fresh iteration.
            self.beaconed = rng.gen_bool(self.cfg.beacon_probability(iter));
            self.heard_first = None;
            self.heard_second = false;
            return self
                .beaconed
                .then_some(RecruitMsg::Beacon { red: self.id, class: self.count_class() });
        }
        if offset == self.cfg.iteration_rounds() - 1 && self.beaconed {
            // Echo, replicating the beacon transmission pattern.
            let msg = match (self.heard_first, self.heard_second) {
                (Some(blue), false) => {
                    self.singles += 1;
                    RecruitMsg::EchoSingle {
                        red: self.id,
                        blue,
                        multi: self.count_class() == CountClass::Multi,
                    }
                }
                (Some(_), true) => {
                    self.any_multi = true;
                    RecruitMsg::EchoMulti { red: self.id }
                }
                _ => RecruitMsg::EchoNone { red: self.id },
            };
            return Some(msg);
        }
        None
    }

    /// Feeds a received message (responses matter during step 2).
    pub fn observe(&mut self, _r: u64, msg: &RecruitMsg) {
        if !self.participating {
            return;
        }
        if let RecruitMsg::Response { blue, red } = msg {
            if *red == self.id {
                match self.heard_first {
                    None => self.heard_first = Some(*blue),
                    Some(b) if b != *blue => self.heard_second = true,
                    Some(_) => {}
                }
            }
        }
    }

    /// The next local round `>= r` in which [`RecruitingRed::act`] can
    /// transmit, draw from the RNG or change state — iteration starts, plus
    /// the echo round of an iteration whose beacon fired. `None` once the
    /// run is over (or for non-participants).
    pub fn next_act_round(&self, r: u64) -> Option<u64> {
        if !self.participating {
            return None;
        }
        let (iter, offset) = self.cfg.split(r);
        if iter >= self.cfg.iterations {
            return None;
        }
        let per = u64::from(self.cfg.iteration_rounds());
        let base = u64::from(iter) * per;
        if offset == 0 || (self.beaconed && offset == self.cfg.iteration_rounds() - 1) {
            return Some(r);
        }
        if self.beaconed {
            return Some(base + per - 1); // this iteration's echo
        }
        (iter + 1 < self.cfg.iterations).then_some(base + per) // next beacon
    }
}

/// The outcome carried by a recruited blue (properties (a) and (c)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recruited {
    /// The parent red's id.
    pub parent: u32,
    /// Whether the parent recruited ≥ 2 blues (as last heard).
    pub parent_multi: bool,
}

/// Blue-side state machine.
#[derive(Clone, Debug)]
pub struct RecruitingBlue {
    cfg: RecruitConfig,
    id: u32,
    participating: bool,
    beacon_heard: Option<u32>,
    recruited: Option<Recruited>,
}

impl RecruitingBlue {
    /// A blue node; non-participating blues listen only for stale-belief
    /// refreshes of an existing assignment.
    pub fn new(cfg: RecruitConfig, id: u32, participating: bool) -> Self {
        RecruitingBlue { cfg, id, participating, beacon_heard: None, recruited: None }
    }

    /// Pre-seeds an existing parent so later echoes can refresh its
    /// multiplicity (stale-belief repair across recruiting runs).
    pub fn with_existing_parent(mut self, parent: Recruited) -> Self {
        self.recruited = Some(parent);
        self
    }

    /// Property (a)/(c): the recruitment outcome.
    pub fn result(&self) -> Option<Recruited> {
        self.recruited
    }

    /// The action for local round `r`, or `None` to listen.
    pub fn act(&mut self, r: u64, rng: &mut impl Rng) -> Option<RecruitMsg> {
        let (iter, offset) = self.cfg.split(r);
        if iter >= self.cfg.iterations {
            return None;
        }
        if offset == 0 {
            self.beacon_heard = None;
            return None;
        }
        // Decay response rounds: offsets 1..=phase_len.
        if offset >= 1 && offset <= self.cfg.phase_len {
            if !self.participating || self.recruited.is_some() {
                return None;
            }
            if let Some(v) = self.beacon_heard {
                if rng.gen_bool(0.5f64.powi(offset as i32 - 1)) {
                    return Some(RecruitMsg::Response { blue: self.id, red: v });
                }
            }
        }
        None
    }

    /// Feeds a received message.
    pub fn observe(&mut self, _r: u64, msg: &RecruitMsg) {
        match *msg {
            RecruitMsg::Beacon { red, class } => {
                if self.recruited.is_none() {
                    self.beacon_heard = Some(red);
                } else if let Some(rec) = &mut self.recruited {
                    if rec.parent == red && class == CountClass::Multi {
                        rec.parent_multi = true;
                    }
                }
            }
            RecruitMsg::EchoSingle { red, blue, multi } => {
                if let Some(rec) = &mut self.recruited {
                    if rec.parent == red && multi {
                        rec.parent_multi = true;
                    }
                } else if self.participating && self.beacon_heard == Some(red) && blue == self.id {
                    self.recruited = Some(Recruited { parent: red, parent_multi: multi });
                }
            }
            RecruitMsg::EchoMulti { red } => {
                if let Some(rec) = &mut self.recruited {
                    if rec.parent == red {
                        rec.parent_multi = true;
                    }
                } else if self.participating && self.beacon_heard == Some(red) {
                    self.recruited = Some(Recruited { parent: red, parent_multi: true });
                }
            }
            RecruitMsg::EchoNone { .. } | RecruitMsg::Response { .. } => {}
        }
    }

    /// The next local round `>= r` in which [`RecruitingBlue::act`] can
    /// transmit, draw from the RNG or change state: every iteration start
    /// (the per-iteration reset), plus the Decay response rounds while an
    /// unanswered beacon is pending. `None` once the run is over.
    pub fn next_act_round(&self, r: u64) -> Option<u64> {
        let (iter, offset) = self.cfg.split(r);
        if iter >= self.cfg.iterations {
            return None;
        }
        if offset == 0 {
            return Some(r);
        }
        let responding = self.participating
            && self.recruited.is_none()
            && self.beacon_heard.is_some()
            && offset <= self.cfg.phase_len;
        if responding {
            return Some(r);
        }
        let per = u64::from(self.cfg.iteration_rounds());
        (iter + 1 < self.cfg.iterations).then_some(u64::from(iter + 1) * per)
    }
}

/// A self-contained [`radio_sim::Protocol`] running one recruiting instance —
/// the harness for validating Lemma 2.3 directly (experiment E5).
pub mod standalone {
    use super::*;
    use radio_sim::{Action, Observation, Protocol, Wake};
    use rand::rngs::SmallRng;

    /// One node of a standalone recruiting run.
    #[derive(Clone, Debug)]
    pub enum RecruitNode {
        /// A red-side node.
        Red(RecruitingRed),
        /// A blue-side node.
        Blue(RecruitingBlue),
    }

    impl RecruitNode {
        /// Creates a red node.
        pub fn red(cfg: RecruitConfig, id: u32) -> Self {
            RecruitNode::Red(RecruitingRed::new(cfg, id, true))
        }

        /// Creates a blue node.
        pub fn blue(cfg: RecruitConfig, id: u32) -> Self {
            RecruitNode::Blue(RecruitingBlue::new(cfg, id, true))
        }

        /// The blue-side outcome, if this is a blue node.
        pub fn recruited(&self) -> Option<Recruited> {
            match self {
                RecruitNode::Blue(b) => b.result(),
                RecruitNode::Red(_) => None,
            }
        }

        /// The red-side outcome, if this is a red node.
        pub fn count_class(&self) -> Option<CountClass> {
            match self {
                RecruitNode::Red(r) => Some(r.count_class()),
                RecruitNode::Blue(_) => None,
            }
        }
    }

    impl Protocol for RecruitNode {
        type Msg = RecruitMsg;
        // `observe` reacts to received packets only.
        const SILENCE_IS_NOOP: bool = true;
        const WAKE_HINTS: bool = true;

        /// Sleeps through the rounds its side of the exchange provably sits
        /// out (a red between beacon and echo, a blue with no pending
        /// beacon); idles once every iteration has run.
        fn next_wake(&self, round: u64) -> Wake {
            let next = match self {
                RecruitNode::Red(r) => r.next_act_round(round),
                RecruitNode::Blue(b) => b.next_act_round(round),
            };
            match next {
                Some(r) if r == round => Wake::Now,
                Some(r) => Wake::At(r),
                None => Wake::Idle,
            }
        }

        fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<RecruitMsg> {
            let msg = match self {
                RecruitNode::Red(r) => r.act(round, rng),
                RecruitNode::Blue(b) => b.act(round, rng),
            };
            msg.map_or(Action::Listen, Action::Transmit)
        }

        fn observe(&mut self, round: u64, obs: Observation<RecruitMsg>, _rng: &mut SmallRng) {
            if let Observation::Message(m) = obs {
                match self {
                    RecruitNode::Red(r) => r.observe(round, &m),
                    RecruitNode::Blue(b) => b.observe(round, &m),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::standalone::RecruitNode;
    use super::*;
    use radio_sim::graph::generators;
    use radio_sim::rng::stream_rng;
    use radio_sim::{CollisionMode, NodeId, Simulator};

    fn run_recruiting(
        reds: usize,
        blues: usize,
        p: f64,
        seed: u64,
        params: &Params,
    ) -> (Vec<Option<Recruited>>, Vec<CountClass>, radio_sim::Graph) {
        let mut rng = stream_rng(seed, 99);
        let bp = generators::random_bipartite(reds, blues, p, &mut rng);
        let cfg = RecruitConfig::from_params(params);
        let mut sim = Simulator::new(bp.graph.clone(), CollisionMode::NoDetection, seed, |id| {
            if id.index() < reds {
                RecruitNode::red(cfg, id.raw())
            } else {
                RecruitNode::blue(cfg, id.raw())
            }
        });
        sim.run(u64::from(cfg.total_rounds()));
        let outcomes: Vec<Option<Recruited>> =
            sim.nodes()[reds..].iter().map(|n| n.recruited()).collect();
        let classes: Vec<CountClass> =
            sim.nodes()[..reds].iter().map(|n| n.count_class().unwrap()).collect();
        (outcomes, classes, bp.graph)
    }

    #[test]
    fn most_blues_recruited_with_scaled_constants() {
        // Scaled constants trade the whp guarantee for speed; the enclosing
        // assignment algorithm retries across epochs. Require >= 90% here.
        let params = Params::scaled(64);
        let mut recruited = 0usize;
        let mut total = 0usize;
        for seed in 0..6 {
            let (outcomes, _, _) = run_recruiting(8, 24, 0.15, seed, &params);
            recruited += outcomes.iter().filter(|o| o.is_some()).count();
            total += outcomes.len();
            let (outcomes, _, _) = run_recruiting(16, 32, 0.5, seed, &params);
            recruited += outcomes.iter().filter(|o| o.is_some()).count();
            total += outcomes.len();
        }
        assert!(recruited * 10 >= total * 9, "only {recruited}/{total} recruited across seeds");
    }

    #[test]
    fn every_blue_recruited_with_faithful_constants() {
        // Lemma 2.3's whp guarantee with proof-sized Θ(log^2 n) iterations.
        let params = Params::faithful(64);
        for seed in 0..3 {
            let (outcomes, _, _) = run_recruiting(10, 30, 0.25, seed, &params);
            let recruited = outcomes.iter().filter(|o| o.is_some()).count();
            assert_eq!(recruited, 30, "only {recruited}/30 recruited (seed {seed})");
        }
    }

    #[test]
    fn parents_are_neighbors() {
        let params = Params::scaled(64);
        let (outcomes, _, g) = run_recruiting(10, 30, 0.2, 3, &params);
        for (b, outcome) in outcomes.iter().enumerate() {
            if let Some(rec) = outcome {
                let blue = NodeId::new(10 + b);
                assert!(
                    g.has_edge(blue, NodeId::new(rec.parent as usize)),
                    "blue {blue} recruited by non-neighbor"
                );
            }
        }
    }

    #[test]
    fn red_count_class_matches_actual_children() {
        let params = Params::scaled(64);
        for seed in 4..8 {
            let (outcomes, classes, _) = run_recruiting(10, 30, 0.2, seed, &params);
            let mut actual = [0u32; 10];
            for outcome in outcomes.iter().flatten() {
                actual[outcome.parent as usize] += 1;
            }
            for (r, &count) in actual.iter().enumerate() {
                let expected = match count {
                    0 => CountClass::Zero,
                    1 => CountClass::One,
                    _ => CountClass::Multi,
                };
                assert_eq!(classes[r], expected, "red {r} (seed {seed}): {count} children");
            }
        }
    }

    #[test]
    fn blue_multiplicity_belief_is_sound() {
        // Property (c) with the staleness caveat: a blue believing "multi"
        // must have a multi parent; "single" beliefs may be stale but only
        // one blue per parent may hold one.
        let params = Params::scaled(64);
        for seed in 10..14 {
            let (outcomes, _, _) = run_recruiting(8, 32, 0.3, seed, &params);
            let mut actual = [0u32; 8];
            for o in outcomes.iter().flatten() {
                actual[o.parent as usize] += 1;
            }
            for o in outcomes.iter().flatten() {
                if o.parent_multi {
                    assert!(actual[o.parent as usize] >= 2, "false multi belief (seed {seed})");
                }
            }
            // At most one stale "single" believer per parent.
            for red in 0..8u32 {
                let stale = outcomes
                    .iter()
                    .flatten()
                    .filter(|o| o.parent == red && !o.parent_multi)
                    .count();
                assert!(stale <= 1, "red {red}: {stale} single-believers (seed {seed})");
            }
        }
    }

    #[test]
    fn lone_pair_recruits_quickly() {
        let params = Params::scaled(8);
        let (outcomes, classes, _) = run_recruiting(1, 1, 1.0, 5, &params);
        assert!(outcomes[0].is_some());
        assert_eq!(classes[0], CountClass::One);
        assert!(!outcomes[0].unwrap().parent_multi);
    }

    #[test]
    fn config_round_math() {
        let params = Params::scaled(256);
        let cfg = RecruitConfig::from_params(&params);
        assert_eq!(cfg.iteration_rounds(), 2 + params.decay_phase_len());
        assert_eq!(cfg.total_rounds(), cfg.iterations * cfg.iteration_rounds());
        assert!(cfg.density_hold >= 1);
    }

    #[test]
    fn beacon_density_sweeps() {
        let cfg = RecruitConfig { iterations: 8, phase_len: 4, density_hold: 2 };
        assert_eq!(cfg.beacon_probability(0), 1.0);
        assert_eq!(cfg.beacon_probability(1), 1.0);
        assert_eq!(cfg.beacon_probability(2), 0.5);
        assert_eq!(cfg.beacon_probability(6), 0.125);
    }

    #[test]
    fn recruiting_wake_hints_match_dense_path() {
        use radio_sim::{DenseWrap, Simulator};
        let params = Params::scaled(64);
        let cfg = RecruitConfig::from_params(&params);
        for seed in 0..3u64 {
            let mut rng = stream_rng(seed, 99);
            let bp = generators::random_bipartite(8, 24, 0.2, &mut rng);
            let make = |id: NodeId| {
                if id.index() < 8 {
                    RecruitNode::red(cfg, id.raw())
                } else {
                    RecruitNode::blue(cfg, id.raw())
                }
            };
            let mut wake = Simulator::new(bp.graph.clone(), CollisionMode::NoDetection, seed, make);
            let mut dense =
                Simulator::new(bp.graph.clone(), CollisionMode::NoDetection, seed, |id| {
                    DenseWrap(make(id))
                });
            wake.run(u64::from(cfg.total_rounds()) + 50);
            dense.run(u64::from(cfg.total_rounds()) + 50);
            let wr: Vec<_> =
                wake.nodes().iter().map(|n| (n.recruited(), n.count_class())).collect();
            let dr: Vec<_> =
                dense.nodes().iter().map(|n| (n.0.recruited(), n.0.count_class())).collect();
            assert_eq!(wr, dr, "recruiting outcomes diverged (seed {seed})");
            assert_eq!(wake.stats().transmissions, dense.stats().transmissions);
            assert!(wake.stats().act_skips > 0, "no act was ever skipped");
            // After `total_rounds` every node idles: the +50 tail must have
            // been fast-forwarded.
            assert!(wake.stats().idle_fastforward >= 50, "finished run did not idle");
        }
    }

    #[test]
    fn packet_sizes_logarithmic() {
        let m = RecruitMsg::Response { blue: 1, red: 2 };
        assert!(m.packet_bits() <= 96);
    }
}
