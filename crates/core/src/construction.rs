//! Distributed GST construction (Theorem 2.1, Sections 2.2.2–2.2.3).
//!
//! After a BFS layering, the Gathering Spanning Tree is built boundary by
//! boundary from the deepest level towards the roots. Each boundary
//! `(l-1, l)` solves the *Bipartite Assignment Problem* rank by rank, from
//! the rank cap `⌈log2 n⌉` down to 1. One rank's subproblem is:
//!
//! * **Identify** — `Θ(log n)` Decay phases in which the unassigned rank-`i`
//!   blues (level `l`) transmit; the unranked reds (level `l-1`) that hear
//!   them become *active*;
//! * `Θ(log n)` **epochs**, each:
//!   * *Stage I* — one round in which every active red transmits: a blue that
//!     receives a clean message has exactly one active red neighbor and is a
//!     *loner*; `Θ(log n)` Decay phases let loners announce themselves, and
//!     the actives that hear them become *loner-parents*;
//!   * *Stage II* — three [recruiting](crate::recruiting) runs: part 1 with
//!     the loner-parents (assignments permanent), part 2 with a random half
//!     (*brisk*) of the other actives and part 3 with the rest (*lazy*);
//!     in parts 2–3 an only-child pair is only *temporary* and both sides
//!     re-enter the next epoch;
//!   * *Stage III* — reds that became *ranked* this epoch (loner-parents, and
//!     part-2/3 reds with ≥ 2 recruits, which get rank `i+1`) announce
//!     `(id, rank)` over `Θ(log n)` Decay phases; unassigned blues of
//!     strictly lower rank adopt the first announcer as parent, and
//!     already-assigned blues refresh a stale parent rank.
//!
//! The whole schedule is computable from the round number plus the shared
//! bounds (`n`, `D`), so nodes need no coordination beyond the paper's
//! standard assumptions. Every w.h.p. step can fail at simulation scale;
//! failures surface as counted *fallback assignments* (a blue that ends its
//! rank block unassigned adopts the last red it ever heard), never panics.

use crate::params::Params;
use crate::recruiting::{CountClass, RecruitConfig, RecruitMsg, RecruitingBlue, RecruitingRed};
use radio_sim::model::PacketBits;
use radio_sim::{Action, Observation, Protocol};
use rand::rngs::SmallRng;
use rand::Rng;

/// Messages of the construction protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GstMsg {
    /// Identify segment: an unassigned rank-`i` blue calling for reds.
    Identify {
        /// The caller's rank.
        rank: u32,
    },
    /// Stage I: an active red's loner-detection beacon.
    StageIBeacon {
        /// The transmitting red.
        red: u32,
    },
    /// Stage I: a loner blue's announcement.
    Loner,
    /// Stage II: a recruiting-protocol message.
    Recruit(RecruitMsg),
    /// Stage III: a newly ranked red announcing its id and rank.
    RankAnnounce {
        /// The announcing red.
        red: u32,
        /// Its (final) rank.
        rank: u32,
    },
}

impl PacketBits for GstMsg {
    fn packet_bits(&self) -> usize {
        3 + match self {
            GstMsg::Identify { .. } => 6,
            GstMsg::StageIBeacon { .. } => 32,
            GstMsg::Loner => 0,
            GstMsg::Recruit(m) => m.packet_bits(),
            GstMsg::RankAnnounce { .. } => 32 + 6,
        }
    }
}

/// A segment of one epoch (or the rank-level identify prologue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Rank prologue: blues call, reds activate.
    Identify,
    /// One round: active reds beacon for loner detection.
    StageIa,
    /// Loner announcement Decay phases.
    StageIb,
    /// Recruiting parts 1–3.
    Part(u8),
    /// Rank announcements.
    StageIii,
}

/// A resolved position in the construction schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseRef {
    /// The boundary being processed: its *blue* level `l`.
    pub boundary: u32,
    /// The rank subproblem `i`.
    pub rank: u32,
    /// The epoch within the rank, `None` during identify.
    pub epoch: Option<u32>,
    /// The active segment.
    pub segment: Segment,
    /// 0-based round offset within the segment.
    pub offset: u64,
}

/// The static round schedule shared by all nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstructionSchedule {
    /// Levels processed: boundaries `d_bound, d_bound-1, …, 1`.
    pub d_bound: u32,
    max_rank: u32,
    decay_step: u64,
    recruit: u64,
    epoch: u64,
    rank: u64,
    boundary: u64,
    phase_len: u32,
}

impl ConstructionSchedule {
    /// The schedule for diameters up to `d_bound` under `params`.
    pub fn new(params: &Params, d_bound: u32) -> Self {
        ConstructionSchedule {
            d_bound,
            max_rank: params.max_rank(),
            decay_step: u64::from(params.decay_step_rounds()),
            recruit: u64::from(params.recruit_rounds()),
            epoch: u64::from(params.epoch_rounds()),
            rank: u64::from(params.rank_rounds()),
            boundary: u64::from(params.boundary_rounds()),
            phase_len: params.decay_phase_len(),
        }
    }

    /// Total construction rounds.
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.d_bound) * self.boundary
    }

    /// Decay phase length used by all Decay segments.
    pub fn phase_len(&self) -> u32 {
        self.phase_len
    }

    /// The rank cap.
    pub fn max_rank(&self) -> u32 {
        self.max_rank
    }

    /// Rounds of one "`Θ(log n)` phases of Decay" segment.
    pub fn decay_step(&self) -> u64 {
        self.decay_step
    }

    /// Rounds of one recruiting part.
    pub fn recruit_rounds(&self) -> u64 {
        self.recruit
    }

    /// Rounds of one recruiting iteration (beacon + response phase + echo).
    pub fn recruit_iteration_rounds(&self) -> u64 {
        2 + u64::from(self.phase_len)
    }

    /// Epochs per rank subproblem.
    pub fn epochs(&self) -> u32 {
        u32::try_from((self.rank - self.decay_step) / self.epoch).expect("fits")
    }

    /// First round of the `(boundary, rank)` block (its Identify prologue).
    ///
    /// Used by the adaptive Theorem 1.1 driver to jump the shared construction
    /// cursor over quiescent blocks; the plain fixed schedule visits every
    /// round in order and never needs it.
    pub fn rank_block_start(&self, boundary: u32, rank: u32) -> u64 {
        debug_assert!(boundary >= 1 && boundary <= self.d_bound);
        debug_assert!(rank >= 1 && rank <= self.max_rank);
        u64::from(self.d_bound - boundary) * self.boundary
            + u64::from(self.max_rank - rank) * self.rank
    }

    /// First round of epoch `epoch` within the `(boundary, rank)` block
    /// (its Stage I single round).
    pub fn epoch_start(&self, boundary: u32, rank: u32, epoch: u32) -> u64 {
        self.rank_block_start(boundary, rank) + self.decay_step + u64::from(epoch) * self.epoch
    }

    /// Resolves round `t` to its phase, or `None` once construction is over.
    pub fn phase(&self, t: u64) -> Option<PhaseRef> {
        if t >= self.total_rounds() {
            return None;
        }
        let boundary = self.d_bound - u32::try_from(t / self.boundary).expect("fits");
        let in_boundary = t % self.boundary;
        let rank = self.max_rank - u32::try_from(in_boundary / self.rank).expect("fits");
        let in_rank = in_boundary % self.rank;
        if in_rank < self.decay_step {
            return Some(PhaseRef {
                boundary,
                rank,
                epoch: None,
                segment: Segment::Identify,
                offset: in_rank,
            });
        }
        let after = in_rank - self.decay_step;
        let epoch = u32::try_from(after / self.epoch).expect("fits");
        let in_epoch = after % self.epoch;
        let (segment, offset) = if in_epoch == 0 {
            (Segment::StageIa, 0)
        } else if in_epoch < 1 + self.decay_step {
            (Segment::StageIb, in_epoch - 1)
        } else if in_epoch < 1 + self.decay_step + 3 * self.recruit {
            let part_pos = in_epoch - 1 - self.decay_step;
            (
                Segment::Part(u8::try_from(part_pos / self.recruit).expect("fits") + 1),
                part_pos % self.recruit,
            )
        } else {
            (Segment::StageIii, in_epoch - 1 - self.decay_step - 3 * self.recruit)
        };
        Some(PhaseRef { boundary, rank, epoch: Some(epoch), segment, offset })
    }
}

/// The four GST labels a node must end up knowing (Section 2.1), plus its
/// level and stretch-child knowledge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GstLabels {
    /// BFS level.
    pub level: u32,
    /// Own rank.
    pub rank: u32,
    /// Parent id (`None` at roots).
    pub parent: Option<u32>,
    /// Parent's rank (`None` at roots).
    pub parent_rank: Option<u32>,
    /// Whether this node has a child of its own rank — true exactly for reds
    /// ranked through a single recruit (a loner-parent with one child), which
    /// is how a node *knows* it distributedly. Gates fast transmissions.
    pub has_stretch_child: bool,
}

impl GstLabels {
    /// Whether this node starts its fast stretch (footnote 3 of the paper:
    /// derivable from own rank and parent rank).
    pub fn is_stretch_start(&self) -> bool {
        self.parent_rank != Some(self.rank)
    }

    /// Whether this node expects stretch waves from its parent.
    pub fn in_stretch(&self) -> bool {
        self.parent_rank == Some(self.rank)
    }
}

/// Per-node statistics of a construction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// This node attached through the out-of-budget fallback.
    pub fallback_used: bool,
    /// This node ended construction without a parent (no red ever heard).
    pub orphaned: bool,
}

/// One node of the distributed GST construction.
///
/// Requires the node to already know its BFS `level` (from a
/// [layering](crate::layering) phase) and the shared bounds in
/// [`ConstructionSchedule`].
#[derive(Clone, Debug)]
pub struct GstConstructionNode {
    id: u32,
    level: u32,
    sched: ConstructionSchedule,
    recruit_cfg: RecruitConfig,

    rank: Option<u32>,
    parent: Option<u32>,
    parent_rank: Option<u32>,
    has_stretch_child: bool,

    // Red-side state, valid within a rank block.
    red_active: bool,
    red_loner_parent: bool,
    red_brisk: bool,
    red_newly_ranked: bool,
    red_participated: bool,
    red_recruit: Option<RecruitingRed>,

    // Blue-side state.
    blue_loner: bool,
    blue_temp: bool,
    blue_recruit: Option<RecruitingBlue>,

    /// Last red this node ever heard within the current rank block, with its
    /// rank when known — the fallback attachment candidate.
    last_heard_red: Option<(u32, Option<u32>)>,

    /// Set when this red activates; drained by the adaptive driver's
    /// progress probes ([`GstConstructionNode::take_new_activation`]).
    newly_active: bool,

    /// Cached phase for segment-transition detection.
    cursor: Option<PhaseRef>,
    stats: NodeStats,
}

impl GstConstructionNode {
    /// A node with BFS level `level` under the given schedule and parameters.
    pub fn new(params: &Params, sched: ConstructionSchedule, id: u32, level: u32) -> Self {
        GstConstructionNode {
            id,
            level,
            sched,
            recruit_cfg: RecruitConfig::from_params(params),
            rank: None,
            parent: None,
            parent_rank: None,
            has_stretch_child: false,
            red_active: false,
            red_loner_parent: false,
            red_brisk: false,
            red_newly_ranked: false,
            red_participated: false,
            red_recruit: None,
            blue_loner: false,
            blue_temp: false,
            blue_recruit: None,
            last_heard_red: None,
            newly_active: false,
            cursor: None,
            stats: NodeStats::default(),
        }
    }

    /// Drains the "this red activated since the last probe" flag.
    ///
    /// Part of the quiescence-probe surface the adaptive Theorem 1.1 pipeline
    /// uses to cut the Identify prologue short once activations stop.
    pub fn take_new_activation(&mut self) -> bool {
        std::mem::take(&mut self.newly_active)
    }

    /// Runs the end-of-construction epilogue for the block the cursor is in:
    /// applies a pending recruiting-part result and the unassigned-blue
    /// fallback (`last_heard_red`).
    ///
    /// The fixed schedule reaches the same state lazily — the first executed
    /// round of any *later* block triggers it through `sync` — but the
    /// adaptive driver may skip every remaining block, so it calls this on
    /// each node once the end of the construction phase is announced.
    pub fn finalize(&mut self) {
        if let Some(p) = self.cursor.take() {
            if let Segment::Part(part) = p.segment {
                self.finish_part(part, p.rank);
            }
            self.finish_rank(&p);
        }
    }

    /// Probe: is this node an unassigned blue of `(boundary, rank)`?
    ///
    /// Unlike [`GstConstructionNode::labels`]-derived checks this also counts
    /// childless blues that have not yet self-assigned the leaf rank 1 (that
    /// happens lazily on their first action inside the boundary), so the probe
    /// is meaningful *before* the block has started.
    pub fn probe_open_blue(&self, boundary: u32, rank: u32) -> bool {
        self.level == boundary && self.parent.is_none() && self.rank.unwrap_or(1) == rank
    }

    /// Probe: an unassigned blue of this boundary with rank strictly below
    /// `rank` (a potential Stage III adopter).
    pub fn probe_open_blue_below(&self, boundary: u32, rank: u32) -> bool {
        self.level == boundary && self.parent.is_none() && self.rank.unwrap_or(1) < rank
    }

    /// Probe: an *active* red of `boundary`'s rank subproblem.
    pub fn probe_active_red(&self, boundary: u32) -> bool {
        self.level + 1 == boundary && self.red_active
    }

    /// Probe: a red that would participate in recruiting part `part` of the
    /// current epoch. For part 2 the brisk/lazy coin has not been tossed at
    /// probe time, so the probe over-approximates with "not a loner-parent";
    /// the per-iteration [`GstConstructionNode::probe_part_participant`]
    /// refines it once the part has started.
    pub fn probe_part_red(&self, boundary: u32, part: u8) -> bool {
        self.probe_active_red(boundary)
            && match part {
                1 => self.red_loner_parent,
                2 => !self.red_loner_parent,
                _ => !self.red_loner_parent && !self.red_brisk,
            }
    }

    /// Probe: a red actually participating in the running recruiting part.
    pub fn probe_part_participant(&self) -> bool {
        self.red_participated
    }

    /// Probe: a loner blue of `boundary` (Stage Ib has announcements to make).
    pub fn probe_loner_blue(&self, boundary: u32) -> bool {
        self.level == boundary && self.blue_loner && !self.blue_temp
    }

    /// Probe: a blue whose recruiting machine is live but not yet resolved.
    pub fn probe_unresolved_blue(&self) -> bool {
        self.blue_recruit.as_ref().is_some_and(|b| b.result().is_none())
    }

    /// Probe: a red of `boundary` ranked this epoch (Stage III announcer).
    pub fn probe_newly_ranked_red(&self, boundary: u32) -> bool {
        self.level + 1 == boundary && self.red_newly_ranked
    }

    /// The labels this node has learned; complete once construction finished
    /// (`rank` defaults to 1 for childless nodes, per the paper's leaf rule).
    pub fn labels(&self) -> GstLabels {
        GstLabels {
            level: self.level,
            rank: self.rank.unwrap_or(1),
            parent: self.parent,
            parent_rank: self.parent_rank,
            has_stretch_child: self.has_stretch_child,
        }
    }

    /// Per-node failure accounting.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Wake helper for enclosing pipelines: whether [`Protocol::act`] at a
    /// round of `ph`'s segment might transmit or draw from the RNG given the
    /// node's current state.
    ///
    /// `false` promises that every `act` within the segment is a pure listen
    /// — no transmission, no RNG draw, and no observable state change (only
    /// the internal cursor's round offset, which nothing reads, advances).
    /// The promise covers only the *current* state, exactly like
    /// [`Protocol::next_wake`]: receptions can re-activate the node, and the
    /// engine re-queries hints after every delivered observation. A pending
    /// segment transition (`sync` has not yet seen `ph`'s segment) reports
    /// `true`, since transitions run epilogues and may seed recruiting
    /// machines (which draws the part-2 brisk/lazy coin).
    pub fn may_act_in(&self, ph: &PhaseRef) -> bool {
        let synced = self.cursor.is_some_and(|p| {
            (p.boundary, p.rank, p.epoch, p.segment) == (ph.boundary, ph.rank, ph.epoch, ph.segment)
        });
        if !synced {
            return true;
        }
        match ph.segment {
            Segment::Identify => self.is_open_blue(ph),
            Segment::StageIa => self.is_red(ph) && self.red_active,
            Segment::StageIb => self.is_open_blue(ph) && self.blue_loner && !self.blue_temp,
            // Recruiting machines pace themselves; their mere presence means
            // the node may beacon/respond/echo this part.
            Segment::Part(_) => self.red_recruit.is_some() || self.blue_recruit.is_some(),
            Segment::StageIii => self.is_red(ph) && self.red_newly_ranked,
        }
    }

    /// This node's BFS level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Whether this node is the blue side of `ph`'s boundary.
    fn is_blue(&self, ph: &PhaseRef) -> bool {
        self.level == ph.boundary
    }

    /// Whether this node is the red side of `ph`'s boundary.
    fn is_red(&self, ph: &PhaseRef) -> bool {
        self.level + 1 == ph.boundary
    }

    /// An unassigned blue of the current rank.
    fn is_open_blue(&self, ph: &PhaseRef) -> bool {
        self.is_blue(ph) && self.rank == Some(ph.rank) && self.parent.is_none()
    }

    /// Decay firing at `offset` with the schedule's phase length
    /// (`2^{-(offset mod L)}`, starting at probability 1).
    fn decay_fires(&self, offset: u64, rng: &mut SmallRng) -> bool {
        let i = (offset % u64::from(self.sched.phase_len())) as i32;
        rng.gen_bool(0.5f64.powi(i))
    }

    /// Handles all state transitions implied by moving to phase `ph`.
    fn sync(&mut self, ph: &PhaseRef, rng: &mut SmallRng) {
        let prev = self.cursor;
        let same = prev.is_some_and(|p| {
            (p.boundary, p.rank, p.epoch, p.segment) == (ph.boundary, ph.rank, ph.epoch, ph.segment)
        });
        if same {
            self.cursor = Some(*ph);
            return;
        }

        if let Some(p) = prev {
            if let Segment::Part(part) = p.segment {
                self.finish_part(part, p.rank);
            }
            let epoch_changed = (p.boundary, p.rank, p.epoch) != (ph.boundary, ph.rank, ph.epoch);
            if epoch_changed && p.epoch.is_some() {
                // Epoch boundary: temporary pairs dissolve.
                self.blue_temp = false;
                self.blue_loner = false;
                self.red_loner_parent = false;
                self.red_newly_ranked = false;
            }
            if (p.boundary, p.rank) != (ph.boundary, ph.rank) {
                self.finish_rank(&p);
            }
        }

        if prev.is_none_or(|p| p.boundary != ph.boundary)
            && self.level == ph.boundary
            && self.rank.is_none()
        {
            // Childless blue entering its boundary: leaf rank (Section 2.2.3).
            self.rank = Some(1);
        }
        if prev.is_none_or(|p| (p.boundary, p.rank) != (ph.boundary, ph.rank)) {
            self.red_active = false;
            self.red_loner_parent = false;
            self.red_newly_ranked = false;
            self.blue_loner = false;
            self.blue_temp = false;
            self.last_heard_red = None;
        }

        match ph.segment {
            Segment::StageIa => self.blue_loner = false,
            Segment::Part(part) => self.start_part(part, ph, rng),
            _ => {}
        }
        self.cursor = Some(*ph);
    }

    /// Sets up the recruiting machines for part `part`.
    fn start_part(&mut self, part: u8, ph: &PhaseRef, rng: &mut SmallRng) {
        self.red_recruit = None;
        self.blue_recruit = None;
        self.red_participated = false;
        if self.is_red(ph) && self.red_active {
            if part == 2 {
                self.red_brisk = rng.gen_bool(0.5);
            }
            let participates = match part {
                1 => self.red_loner_parent,
                2 => !self.red_loner_parent && self.red_brisk,
                _ => !self.red_loner_parent && !self.red_brisk,
            };
            self.red_participated = participates;
            self.red_recruit = Some(RecruitingRed::new(self.recruit_cfg, self.id, participates));
        }
        if self.is_open_blue(ph) && !self.blue_temp {
            self.blue_recruit = Some(RecruitingBlue::new(self.recruit_cfg, self.id, true));
        }
    }

    /// Applies the results of part `part` at rank `i`.
    fn finish_part(&mut self, part: u8, i: u32) {
        if let Some(red) = self.red_recruit.take() {
            if self.red_participated {
                match (part, red.count_class()) {
                    (1, CountClass::One) => {
                        self.rank = Some(i);
                        self.has_stretch_child = true;
                        self.red_active = false;
                        self.red_newly_ranked = true;
                    }
                    (1, CountClass::Multi) | (_, CountClass::Multi) => {
                        self.rank = Some(i + 1);
                        self.red_active = false;
                        self.red_newly_ranked = true;
                    }
                    (1, CountClass::Zero) | (_, CountClass::Zero) => {
                        // Marked with no recruits: out of this rank's problem.
                        self.red_active = false;
                    }
                    (_, CountClass::One) => {
                        // Temporary pair: stays active for the next epoch.
                    }
                }
            }
        }
        if let Some(blue) = self.blue_recruit.take() {
            if let Some(rec) = blue.result() {
                if part == 1 {
                    self.parent = Some(rec.parent);
                    self.parent_rank = Some(if rec.parent_multi { i + 1 } else { i });
                } else if rec.parent_multi {
                    self.parent = Some(rec.parent);
                    self.parent_rank = Some(i + 1);
                } else {
                    self.blue_temp = true;
                }
            }
        }
    }

    /// Rank-block epilogue: unassigned blues fall back to the last heard red.
    fn finish_rank(&mut self, p: &PhaseRef) {
        if self.is_open_blue(p) {
            match self.last_heard_red {
                Some((red, rank)) => {
                    self.parent = Some(red);
                    self.parent_rank = Some(rank.unwrap_or(p.rank));
                    self.stats.fallback_used = true;
                }
                None => {
                    self.stats.orphaned = true;
                }
            }
        }
    }
}

impl Protocol for GstConstructionNode {
    type Msg = GstMsg;
    // `observe` ignores silence and never draws from the RNG.
    const SILENCE_IS_NOOP: bool = true;

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<GstMsg> {
        let Some(ph) = self.sched.phase(round) else {
            return Action::Listen;
        };
        self.sync(&ph, rng);
        match ph.segment {
            Segment::Identify => {
                if self.is_open_blue(&ph) && self.decay_fires(ph.offset, rng) {
                    return Action::Transmit(GstMsg::Identify { rank: ph.rank });
                }
            }
            Segment::StageIa => {
                if self.is_red(&ph) && self.red_active {
                    return Action::Transmit(GstMsg::StageIBeacon { red: self.id });
                }
            }
            Segment::StageIb => {
                if self.is_open_blue(&ph)
                    && self.blue_loner
                    && !self.blue_temp
                    && self.decay_fires(ph.offset, rng)
                {
                    return Action::Transmit(GstMsg::Loner);
                }
            }
            Segment::Part(_) => {
                if let Some(red) = &mut self.red_recruit {
                    if let Some(m) = red.act(ph.offset, rng) {
                        return Action::Transmit(GstMsg::Recruit(m));
                    }
                }
                if let Some(blue) = &mut self.blue_recruit {
                    if let Some(m) = blue.act(ph.offset, rng) {
                        return Action::Transmit(GstMsg::Recruit(m));
                    }
                }
            }
            Segment::StageIii => {
                if self.is_red(&ph) && self.red_newly_ranked && self.decay_fires(ph.offset, rng) {
                    let rank = self.rank.expect("newly ranked red has a rank");
                    return Action::Transmit(GstMsg::RankAnnounce { red: self.id, rank });
                }
            }
        }
        Action::Listen
    }

    fn observe(&mut self, round: u64, obs: Observation<GstMsg>, _rng: &mut SmallRng) {
        let Some(ph) = self.sched.phase(round) else { return };
        let Observation::Message(packet) = obs else { return };
        let msg = *packet;

        // Fallback-candidate tracking (blues only care on their boundary).
        if self.is_blue(&ph) {
            match msg {
                GstMsg::StageIBeacon { red } | GstMsg::Recruit(RecruitMsg::Beacon { red, .. })
                    if self.last_heard_red.is_none_or(|(_, r)| r.is_none()) =>
                {
                    self.last_heard_red = Some((red, None));
                }
                GstMsg::RankAnnounce { red, rank } => {
                    self.last_heard_red = Some((red, Some(rank)));
                }
                _ => {}
            }
        }

        match (ph.segment, msg) {
            (Segment::Identify, GstMsg::Identify { rank })
                if self.is_red(&ph) && self.rank.is_none() && rank == ph.rank =>
            {
                if !self.red_active {
                    self.newly_active = true;
                }
                self.red_active = true;
            }
            (Segment::StageIa, GstMsg::StageIBeacon { .. })
                if self.is_open_blue(&ph) && !self.blue_temp =>
            {
                self.blue_loner = true;
            }
            (Segment::StageIb, GstMsg::Loner) if self.is_red(&ph) && self.red_active => {
                self.red_loner_parent = true;
            }
            (Segment::Part(_), GstMsg::Recruit(m)) => {
                if let Some(red) = &mut self.red_recruit {
                    red.observe(ph.offset, &m);
                }
                if let Some(blue) = &mut self.blue_recruit {
                    blue.observe(ph.offset, &m);
                }
                // Stale-parent repair: refresh multiplicity from the parent's
                // own transmissions within the same rank block.
                if let (Some(parent), Some(pr)) = (self.parent, self.parent_rank) {
                    let bump = match m {
                        RecruitMsg::EchoSingle { red, multi: true, .. } => red == parent,
                        RecruitMsg::EchoMulti { red } => red == parent,
                        RecruitMsg::Beacon { red, class: CountClass::Multi } => red == parent,
                        _ => false,
                    };
                    if bump && pr == ph.rank {
                        self.parent_rank = Some(ph.rank + 1);
                    }
                }
            }
            (Segment::StageIii, GstMsg::RankAnnounce { red, rank }) if self.is_blue(&ph) => {
                if self.parent.is_none() {
                    // Strictly lower-ranked blues adopt the announcer.
                    if self.rank.is_some() && self.rank < Some(ph.rank) && !self.blue_temp {
                        self.parent = Some(red);
                        self.parent_rank = Some(rank);
                    }
                } else if self.parent == Some(red) {
                    // Authoritative rank refresh.
                    self.parent_rank = Some(rank);
                }
            }
            _ => {}
        }
    }
}

/// Wraps a protocol so it runs only in rounds `r ≡ slot (mod period)`,
/// mapping them to consecutive inner rounds. Used to interleave the
/// constructions of adjacent rings (Theorem 1.1 / 1.3) without interference.
#[derive(Clone, Debug)]
pub struct Slotted<P> {
    inner: P,
    slot: u64,
    period: u64,
}

impl<P> Slotted<P> {
    /// Runs `inner` in slot `slot` of every `period` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `slot >= period`.
    pub fn new(inner: P, slot: u64, period: u64) -> Self {
        assert!(period > 0 && slot < period, "slot must lie within the period");
        Slotted { inner, slot, period }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped protocol.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

impl<P: Protocol> Protocol for Slotted<P> {
    type Msg = P::Msg;
    const SILENCE_IS_NOOP: bool = P::SILENCE_IS_NOOP;

    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<P::Msg> {
        if round % self.period == self.slot {
            self.inner.act(round / self.period, rng)
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, round: u64, obs: Observation<P::Msg>, rng: &mut SmallRng) {
        if round % self.period == self.slot {
            self.inner.observe(round / self.period, obs, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst::{verify_gst, Gst, GstViolation};
    use radio_sim::graph::{generators, Traversal};
    use radio_sim::{CollisionMode, Graph, NodeId, Simulator};

    /// Runs the construction on `g` (layers injected from BFS truth) and
    /// assembles the resulting labels into a `Gst`.
    fn construct(g: &Graph, seed: u64, params: &Params) -> (Gst, Vec<NodeStats>) {
        let layering = g.bfs(NodeId::new(0));
        let sched = ConstructionSchedule::new(params, layering.max_level().max(1));
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
            GstConstructionNode::new(params, sched, id.raw(), layering.level(id))
        });
        sim.run(sched.total_rounds() + 1);
        let labels: Vec<GstLabels> = sim.nodes().iter().map(|n| n.labels()).collect();
        let stats: Vec<NodeStats> = sim.nodes().iter().map(|n| n.stats()).collect();
        let gst = Gst::new(
            labels.iter().map(|l| l.level).collect(),
            labels.iter().map(|l| l.rank).collect(),
            labels.iter().map(|l| l.parent).collect(),
        )
        .expect("well-shaped labels");
        (gst, stats)
    }

    fn assert_valid(g: &Graph, seed: u64, params: &Params) {
        let (gst, stats) = construct(g, seed, params);
        let violations = verify_gst(g, &gst, &[NodeId::new(0)]);
        let fallbacks = stats.iter().filter(|s| s.fallback_used).count();
        let orphans = stats.iter().filter(|s| s.orphaned).count();
        assert!(
            violations.is_empty() && fallbacks == 0 && orphans == 0,
            "violations: {violations:#?}, fallbacks: {fallbacks}, orphans: {orphans}"
        );
    }

    #[test]
    fn constructs_on_path() {
        assert_valid(&generators::path(12), 1, &Params::scaled(12));
    }

    #[test]
    fn constructs_on_star() {
        assert_valid(&generators::star(9), 2, &Params::scaled(9));
    }

    #[test]
    fn constructs_on_binary_tree() {
        assert_valid(&generators::binary_tree(15), 3, &Params::scaled(15));
    }

    #[test]
    fn constructs_on_grid() {
        assert_valid(&generators::grid(5, 4), 4, &Params::scaled(20));
    }

    #[test]
    fn constructs_on_cluster_chain() {
        assert_valid(&generators::cluster_chain(4, 5), 5, &Params::scaled(20));
    }

    #[test]
    fn constructs_on_random_graphs() {
        for seed in 0..4 {
            let mut rng = radio_sim::rng::stream_rng(seed, 31);
            let g = generators::gnp_connected(40, 0.1, &mut rng);
            let params = Params::scaled(40);
            let (gst, stats) = construct(&g, seed, &params);
            let violations = verify_gst(&g, &gst, &[NodeId::new(0)]);
            // Scaled constants may rarely leave a stale-rank wrinkle; require
            // structural soundness (no orphans, no bad parents) and allow only
            // a whisker of rank-related softness.
            let hard: Vec<_> = violations
                .iter()
                .filter(|v| {
                    !matches!(
                        v,
                        GstViolation::WrongRank { .. }
                            | GstViolation::StretchReception { .. }
                            | GstViolation::CollisionFreeness { .. }
                    )
                })
                .collect();
            assert!(hard.is_empty(), "seed {seed}: {hard:#?}");
            assert_eq!(stats.iter().filter(|s| s.orphaned).count(), 0, "seed {seed}");
            assert!(
                violations.len() <= 3,
                "seed {seed}: {} soft violations: {violations:#?}",
                violations.len()
            );
        }
    }

    #[test]
    fn finalize_applies_pending_fallback() {
        // A blue mid-block that heard a red but never got assigned must fall
        // back to it when construction is finalized early — the adaptive
        // driver's skip path never executes the later rounds that would
        // trigger the lazy epilogue.
        let params = Params::scaled(8);
        let sched = ConstructionSchedule::new(&params, 1);
        let mut node = GstConstructionNode::new(&params, sched, 7, 1);
        let mut rng = radio_sim::rng::stream_rng(0, 0);
        let t = sched.rank_block_start(1, 1);
        let _ = node.act(t, &mut rng); // enters the block, takes leaf rank 1
        node.observe(t, Observation::packet(GstMsg::StageIBeacon { red: 3 }), &mut rng);
        assert_eq!(node.labels().parent, None);
        node.finalize();
        assert_eq!(node.labels().parent, Some(3), "fallback must adopt the heard red");
        assert!(node.stats().fallback_used);
    }

    #[test]
    fn finalize_marks_orphans() {
        // Same skip path, but the blue never heard any red: it must be
        // counted as orphaned rather than silently left parentless.
        let params = Params::scaled(8);
        let sched = ConstructionSchedule::new(&params, 1);
        let mut node = GstConstructionNode::new(&params, sched, 7, 1);
        let mut rng = radio_sim::rng::stream_rng(0, 0);
        let _ = node.act(sched.rank_block_start(1, 1), &mut rng);
        node.finalize();
        assert_eq!(node.labels().parent, None);
        assert!(node.stats().orphaned);
        // Finalizing twice is a no-op (the cursor is consumed).
        node.finalize();
    }

    #[test]
    fn schedule_phase_roundtrip() {
        let params = Params::scaled(64);
        let sched = ConstructionSchedule::new(&params, 3);
        let mut seen_segments = std::collections::HashSet::new();
        let mut last: Option<PhaseRef> = None;
        for t in 0..sched.total_rounds() {
            let ph = sched.phase(t).expect("within construction");
            assert!(ph.boundary >= 1 && ph.boundary <= 3);
            assert!(ph.rank >= 1 && ph.rank <= params.max_rank());
            // Boundaries descend, ranks descend within a boundary.
            if let Some(p) = last {
                assert!(ph.boundary <= p.boundary);
                if ph.boundary == p.boundary {
                    assert!(ph.rank <= p.rank);
                }
            }
            seen_segments.insert(std::mem::discriminant(&ph.segment));
            last = Some(ph);
        }
        assert_eq!(seen_segments.len(), 5, "all segment kinds appear");
        assert!(sched.phase(sched.total_rounds()).is_none());
    }

    #[test]
    fn slotted_isolates_slots() {
        // Path 0-1-2: nodes 0 (slot 0, beacon), 1 (slot 0, listener),
        // 2 (slot 1, beacon). Node 1 must hear node 0's slot-0 beacons and
        // must *not* process node 2's slot-1 beacons.
        #[derive(Debug)]
        struct Beacon {
            transmit: bool,
            heard: Vec<u32>,
        }
        impl Protocol for Beacon {
            type Msg = u32;
            fn act(&mut self, _r: u64, _rng: &mut SmallRng) -> Action<u32> {
                if self.transmit {
                    Action::Transmit(7)
                } else {
                    Action::Listen
                }
            }
            fn observe(&mut self, _r: u64, obs: Observation<u32>, _rng: &mut SmallRng) {
                if let Observation::Message(m) = obs {
                    self.heard.push(*m);
                }
            }
        }
        let g = generators::path(3);
        let mut sim = Simulator::new(g, CollisionMode::Detection, 0, |id| {
            let slot = u64::from(id.raw() / 2); // nodes 0,1 -> slot 0; node 2 -> slot 1
            Slotted::new(Beacon { transmit: id.index() != 1, heard: vec![] }, slot, 2)
        });
        sim.run(10);
        // Node 1 (slot 0) hears node 0 in every slot-0 round (node 2 is
        // silent there), and never processes node 2's slot-1 transmissions.
        assert_eq!(sim.node(NodeId::new(1)).inner().heard, vec![7, 7, 7, 7, 7]);
        // Node 0 transmits in its own slot, so it hears nothing.
        assert!(sim.node(NodeId::new(0)).inner().heard.is_empty());
    }

    #[test]
    #[should_panic(expected = "slot must lie within the period")]
    fn slotted_validates_slot() {
        #[derive(Debug)]
        struct Noop;
        impl Protocol for Noop {
            type Msg = u8;
            fn act(&mut self, _r: u64, _rng: &mut SmallRng) -> Action<u8> {
                Action::Listen
            }
            fn observe(&mut self, _r: u64, _o: Observation<u8>, _rng: &mut SmallRng) {}
        }
        let _ = Slotted::new(Noop, 3, 3);
    }
}
