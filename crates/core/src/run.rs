//! # One front door: declarative [`Scenario`]s over every pipeline and baseline
//!
//! The repo grew three theorem pipelines and two baselines, each behind a
//! differently-shaped free function. This module unifies them behind one
//! declarative facade: describe *what* to run — a [`TopologySpec`], a
//! [`Workload`], the shared knobs — and [`Scenario::run`] wires up the
//! graph, parameters, seeds and driver for you, returning one unified
//! [`Outcome`] regardless of which algorithm ran. [`Scenario::seeds`] sweeps
//! a seed range and aggregates the results into a [`SeedMatrix`] for benches
//! and regression suites.
//!
//! Graphs are built **lazily** from the spec at run time — the seam where a
//! streaming million-node generator can later plug in without touching any
//! call site.
//!
//! ## Which entry point do I want?
//!
//! | I want to… | Use |
//! |---|---|
//! | run any algorithm on a declared topology, compare apples to apples | [`Scenario`] (this module) |
//! | sweep seeds and aggregate | [`Scenario::seeds`] → [`SeedMatrix`] |
//! | Theorem 1.1 on a pre-built [`Graph`], typed [`Ghk1Outcome`](crate::single_message::Ghk1Outcome) | [`broadcast_single`](crate::single_message::broadcast_single) and friends |
//! | Theorem 1.2 with explicit [`KnownRunOpts`] | [`broadcast_known`](crate::multi_message::broadcast_known) |
//! | Theorem 1.3 with explicit [`MultiRunOpts`] | [`broadcast_unknown_with`](crate::multi_message::broadcast_unknown_with) |
//! | drive a protocol round by round | [`radio_sim::Simulator`] directly |
//!
//! The free functions are the engines this facade drives; they stay public
//! for callers that need the algorithm-specific outcome types. A `Scenario`
//! run is **bit-identical** to the corresponding free-function call with the
//! same graph, parameters and seed — `tests/e2e_scenario.rs` pins this on
//! both collision modes.
//!
//! ```
//! use broadcast::{Scenario, TopologySpec, Workload};
//!
//! let out = Scenario::new(
//!     TopologySpec::Path { n: 8 },
//!     Workload::Single { payload: 7 },
//! )
//! .seed(1)
//! .run();
//! let done = out.completion_round.expect("Theorem 1.1 completes");
//! assert!(done <= out.cap, "the worst-case cap bounds every run");
//! assert_eq!(out.phases.total(), out.stats.rounds);
//! ```

use crate::adaptive::Pacing;
use crate::decay::{DecayBroadcast, DecayMsg, MmvDecayBroadcast};
use crate::multi_message::{
    broadcast_known_faulted, broadcast_unknown_on, BatchMode, GhkMultiPlan, KnownRunOpts,
    MultiPhaseRounds, MultiRunOpts,
};
use crate::params::Params;
use crate::schedule::{EmptyBehavior, SchedAudit, SlowKey};
use crate::single_message::{broadcast_single_on, Ghk1Plan, PhaseRounds};
use radio_sim::graph::{bfs_layering, generators};
use radio_sim::rng::stream_rng;
use radio_sim::trace::RunStats;
use radio_sim::{
    CollisionMode, DoneCheck, FaultPlan, Graph, ImplicitGraph, NodeId, Simulator, Topology,
};
use rlnc::gf2::BitVec;
use std::sync::Arc;

/// Default hard cap for baseline workloads (the cap the hand-rolled Decay
/// comparison loops always used).
const BASELINE_ROUND_CAP: u64 = 5_000_000;

/// A declarative network topology, built lazily at run time.
///
/// Randomized families carry their own `graph_seed` (independent of the
/// scenario's protocol seed), so one scenario can sweep protocol seeds over
/// a fixed sampled graph.
#[derive(Clone, Debug)]
pub enum TopologySpec {
    /// A path of `n` nodes (diameter `n - 1`).
    Path {
        /// Node count.
        n: usize,
    },
    /// A `w × h` grid.
    Grid {
        /// Width in nodes.
        w: usize,
        /// Height in nodes.
        h: usize,
    },
    /// A star: node 0 is the hub, `n - 1` leaves.
    Star {
        /// Node count (hub included).
        n: usize,
    },
    /// A chain of `clusters` cliques of `size` nodes (the corridor-mesh
    /// family of the emergency-alert scenario).
    ClusterChain {
        /// Number of cliques.
        clusters: usize,
        /// Nodes per clique.
        size: usize,
    },
    /// A complete binary tree of `n` nodes.
    BinaryTree {
        /// Node count.
        n: usize,
    },
    /// A random unit-disk deployment (the classical physical radio model).
    UnitDisk {
        /// Node count.
        n: usize,
        /// Connection radius in the unit square.
        radius: f64,
        /// Seed of the placement stream.
        graph_seed: u64,
    },
    /// A connected Erdős–Rényi `G(n, p)` sample.
    Gnp {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Seed of the sampling stream.
        graph_seed: u64,
    },
    /// Any pre-built graph (escape hatch for hand-crafted topologies).
    /// Shared behind an [`Arc`] so seed sweeps and repeated runs never
    /// re-clone the CSR arrays; build one with [`TopologySpec::custom`].
    Custom(Arc<Graph>),
    /// Streamed `w × h` grid: neighborhoods computed on demand
    /// ([`ImplicitGraph::grid`]), edge-identical to [`TopologySpec::Grid`].
    /// Supports erasure/jammer fault plans but not churn/mobility (those
    /// rewrite a materialized adjacency).
    StreamedGrid {
        /// Width in nodes.
        w: usize,
        /// Height in nodes.
        h: usize,
    },
    /// Streamed hashed unit-disk deployment ([`ImplicitGraph::unit_disk`]).
    /// Deterministic per `(n, radius, graph_seed)` and distributionally
    /// equivalent to [`TopologySpec::UnitDisk`], but **not** edge-identical
    /// to it: positions are SplitMix64-hashed per node id instead of drawn
    /// sequentially, and no connectivity stitching is applied.
    StreamedUnitDisk {
        /// Node count.
        n: usize,
        /// Connection radius in the unit square.
        radius: f64,
        /// Seed of the position hash.
        graph_seed: u64,
    },
    /// Streamed hashed `G(n, p)` ([`ImplicitGraph::gnp`]): one SplitMix64
    /// coin per node pair, no connectivity stitching. Neighborhood queries
    /// cost `O(n)` hashes — for million-node streaming use
    /// [`TopologySpec::StreamedGrid`]/[`TopologySpec::StreamedUnitDisk`].
    StreamedGnp {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Seed of the pair-coin hash.
        graph_seed: u64,
    },
}

impl TopologySpec {
    /// Wraps a pre-built graph as a [`TopologySpec::Custom`] spec.
    pub fn custom(graph: Graph) -> Self {
        TopologySpec::Custom(Arc::new(graph))
    }

    /// The streamed topology of a `Streamed*` spec, `None` for materialized
    /// families. [`Scenario::run`] dispatches on this: streamed specs go to
    /// the generic pipeline entry points without ever building the CSR.
    pub fn streamed(&self) -> Option<ImplicitGraph> {
        match self {
            TopologySpec::StreamedGrid { w, h } => Some(ImplicitGraph::grid(*w, *h)),
            TopologySpec::StreamedUnitDisk { n, radius, graph_seed } => {
                Some(ImplicitGraph::unit_disk(*n, *radius, *graph_seed))
            }
            TopologySpec::StreamedGnp { n, p, graph_seed } => {
                Some(ImplicitGraph::gnp(*n, *p, *graph_seed))
            }
            _ => None,
        }
    }

    /// Materializes the graph. Deterministic: the same spec always builds
    /// the same graph (randomized families derive their RNG from
    /// `graph_seed` alone). `Streamed*` specs materialize via
    /// [`ImplicitGraph::materialize`] — byte-identical neighborhoods to the
    /// streamed queries, but an `O(n²)` pair scan for the hashed disk/Gnp
    /// families, intended for verification sizes rather than streaming
    /// scale.
    pub fn build(&self) -> Graph {
        match self {
            TopologySpec::Path { n } => generators::path(*n),
            TopologySpec::Grid { w, h } => generators::grid(*w, *h),
            TopologySpec::Star { n } => generators::star(*n),
            TopologySpec::ClusterChain { clusters, size } => {
                generators::cluster_chain(*clusters, *size)
            }
            TopologySpec::BinaryTree { n } => generators::binary_tree(*n),
            TopologySpec::UnitDisk { n, radius, graph_seed } => {
                let mut rng = stream_rng(*graph_seed, 0);
                generators::unit_disk(*n, *radius, &mut rng)
            }
            TopologySpec::Gnp { n, p, graph_seed } => {
                let mut rng = stream_rng(*graph_seed, 0);
                generators::gnp_connected(*n, *p, &mut rng)
            }
            TopologySpec::Custom(g) => g.as_ref().clone(),
            TopologySpec::StreamedGrid { .. }
            | TopologySpec::StreamedUnitDisk { .. }
            | TopologySpec::StreamedGnp { .. } => {
                self.streamed().expect("streamed variant").materialize()
            }
        }
    }

    /// A stable machine-readable label (used by the perf bench's JSON
    /// entries and validated by `scripts/check_bench.py`). Labels of the
    /// pre-existing materialized families are byte-identical to what they
    /// always were; streamed specs carry a `stream:` prefix.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Path { n } => format!("path({n})"),
            TopologySpec::Grid { w, h } => format!("grid({w}x{h})"),
            TopologySpec::Star { n } => format!("star({n})"),
            TopologySpec::ClusterChain { clusters, size } => {
                format!("cluster_chain({clusters}x{size})")
            }
            TopologySpec::BinaryTree { n } => format!("binary_tree({n})"),
            TopologySpec::UnitDisk { n, radius, graph_seed } => {
                format!("unit_disk({n},r={radius},g={graph_seed})")
            }
            TopologySpec::Gnp { n, p, graph_seed } => format!("gnp({n},p={p},g={graph_seed})"),
            TopologySpec::Custom(g) => format!("custom({})", g.node_count()),
            TopologySpec::StreamedGrid { w, h } => format!("stream:grid({w}x{h})"),
            TopologySpec::StreamedUnitDisk { n, radius, graph_seed } => {
                format!("stream:unit_disk({n},r={radius},g={graph_seed})")
            }
            TopologySpec::StreamedGnp { n, p, graph_seed } => {
                format!("stream:gnp({n},p={p},g={graph_seed})")
            }
        }
    }
}

/// A baseline comparator algorithm (see `crate::decay`). The published
/// protocols the paper measures against live here so baseline runs share
/// the exact topology/params/seed wiring of the theorem pipelines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// BGI Decay, `O(D log n + log^2 n)` — the classical no-CD baseline.
    Decay {
        /// The broadcast payload.
        payload: u64,
    },
    /// The MMV-framed layered Decay of Lemma 3.2 (nodes must know their BFS
    /// level; the facade injects it from the built graph, modelling the
    /// layering phase's outcome).
    MmvDecay {
        /// The broadcast payload.
        payload: u64,
        /// Whether prompted non-holders transmit noise (the Lemma 3.2
        /// worst-case stress) or stay silent (classical layered Decay).
        noise: bool,
    },
}

/// What to run on the topology.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Theorem 1.1: single-message broadcast with collision detection,
    /// run adaptively.
    Single {
        /// The broadcast payload.
        payload: u64,
    },
    /// Theorem 1.2: known-topology k-message broadcast over the MMV GST
    /// schedule with RLNC.
    MultiKnown {
        /// The messages, all of one bit length.
        messages: Vec<BitVec>,
        /// Slow-pattern keying (the E8 ablation).
        slow_key: SlowKey,
        /// Empty-decoder behavior (the MMV noise stress).
        empty: EmptyBehavior,
    },
    /// Theorem 1.3: unknown-topology k-message broadcast with collision
    /// detection, run adaptively.
    MultiUnknown {
        /// The messages, all of one bit length.
        messages: Vec<BitVec>,
        /// Message batching across ring handoffs.
        batch: BatchMode,
    },
    /// A published baseline, for apples-to-apples comparison runs.
    Baseline(Algo),
}

impl Workload {
    /// A stable machine-readable kind label (used in bench JSON entries).
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::Single { .. } => "single",
            Workload::MultiKnown { .. } => "multi_known",
            Workload::MultiUnknown { .. } => "multi_unknown",
            Workload::Baseline(Algo::Decay { .. }) => "decay",
            Workload::Baseline(Algo::MmvDecay { .. }) => "mmv_decay",
        }
    }

    /// The collision mode each workload's theorem (or analysis) assumes:
    /// Theorems 1.1/1.3 need collision detection; the MMV schedule and the
    /// Decay baselines are analyzed without it.
    fn default_mode(&self) -> CollisionMode {
        match self {
            Workload::Single { .. } | Workload::MultiUnknown { .. } => CollisionMode::Detection,
            Workload::MultiKnown { .. } | Workload::Baseline(_) => CollisionMode::NoDetection,
        }
    }
}

/// Unified per-phase round accounting across all workloads.
///
/// The Theorem 1.1 pipeline reports its in-ring broadcast rounds as
/// `disseminate`; workloads without setup phases (Theorem 1.2, baselines)
/// report every executed round as `disseminate`. The invariant
/// `phases.total() == stats.rounds` holds for every workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Phases {
    /// Collision-wave layering work rounds.
    pub wave: u64,
    /// GST-construction work rounds.
    pub construct: u64,
    /// Virtual-labeling work rounds (Theorem 1.3 only).
    pub label: u64,
    /// Payload-dissemination work rounds.
    pub disseminate: u64,
    /// Inter-ring handoff work rounds.
    pub handoff: u64,
    /// Recovery-ladder work rounds (rung-1 ring-local repair and rung-2
    /// regional re-dissemination; faulted adaptive runs only).
    pub repair: u64,
    /// No-knowledge Decay fallback rounds (faulted adaptive runs only).
    pub fallback: u64,
    /// Status-beep rounds of the adaptive drivers.
    pub status: u64,
}

impl Phases {
    /// Total rounds executed.
    pub fn total(&self) -> u64 {
        self.wave
            + self.construct
            + self.label
            + self.disseminate
            + self.handoff
            + self.repair
            + self.fallback
            + self.status
    }
}

impl From<PhaseRounds> for Phases {
    fn from(p: PhaseRounds) -> Self {
        // Exhaustive destructuring (no `..`): adding a phase field to the
        // pipeline accounting without mapping it here must not compile, or
        // the `phases.total() == stats.rounds` invariant would silently
        // break for facade callers.
        let PhaseRounds { wave, construct, broadcast, handoff, repair, fallback, status } = p;
        Phases {
            wave,
            construct,
            label: 0,
            disseminate: broadcast,
            handoff,
            repair,
            fallback,
            status,
        }
    }
}

impl From<MultiPhaseRounds> for Phases {
    fn from(p: MultiPhaseRounds) -> Self {
        // Exhaustive destructuring, same rationale as above.
        let MultiPhaseRounds {
            wave,
            construct,
            label,
            disseminate,
            handoff,
            repair,
            fallback,
            status,
        } = p;
        Phases { wave, construct, label, disseminate, handoff, repair, fallback, status }
    }
}

/// The algorithm-specific extension of an [`Outcome`].
#[derive(Clone, Debug)]
pub enum Detail {
    /// Theorem 1.1 extras.
    Single {
        /// The executed plan (per-phase worst-case budgets).
        plan: Ghk1Plan,
        /// Nodes that used the construction fallback.
        fallbacks: usize,
        /// Round the rung-3 recovery fallback armed, if the ladder got
        /// that far (`None` on clean runs and runs the earlier rungs
        /// repaired).
        fallback_entry: Option<u64>,
    },
    /// Theorem 1.2 extras.
    MultiKnown {
        /// The slow keying the schedule ran with.
        slow_key: SlowKey,
        /// The empty-decoder behavior the schedule ran with.
        empty: EmptyBehavior,
    },
    /// Theorem 1.3 extras.
    MultiUnknown {
        /// The executed plan (ring/batch pipeline geometry and caps).
        plan: GhkMultiPlan,
        /// Round the rung-3 recovery fallback armed, if the ladder got
        /// that far.
        fallback_entry: Option<u64>,
    },
    /// Baseline extras.
    Baseline {
        /// Which comparator ran.
        algo: Algo,
    },
}

/// The unified outcome of one [`Scenario`] run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Round at which the workload's completion predicate first held
    /// everywhere (`None`: the run hit its cap without completing).
    pub completion_round: Option<u64>,
    /// The worst-case round cap that bounded the run — the plan's
    /// `total_rounds()` for the adaptive pipelines, the configured
    /// `max_rounds`/round cap otherwise.
    pub cap: u64,
    /// Rounds actually executed, by phase.
    pub phases: Phases,
    /// Channel statistics of the run.
    pub stats: RunStats,
    /// Aggregated MMV-schedule audit counters (zero for workloads that
    /// never run the schedule).
    pub audit: SchedAudit,
    /// Peak resident state over the run, in bytes: the topology
    /// representation ([`Topology::resident_bytes`]) plus the struct-level
    /// per-node state, sampled at phase boundaries. See the README's
    /// "Streaming topologies and memory model" for the accounting contract.
    pub peak_state_bytes: usize,
    /// Algorithm-specific extension.
    pub detail: Detail,
}

impl Outcome {
    /// Whether the run completed within its worst-case cap.
    pub fn completed_within_cap(&self) -> bool {
        self.completion_round.is_some_and(|r| r <= self.cap)
    }
}

/// One run of a [`SeedMatrix`].
#[derive(Clone, Debug)]
pub struct SeedRun {
    /// Position of this run in the sweep's seed sequence (0-based). The
    /// canonical sort key of a matrix: a parallel executor that shards the
    /// sweep tags each run with its serial position, and
    /// [`SeedMatrix::merge`] restores serial order from it — so a merged
    /// matrix is identical to the serial sweep regardless of shard count or
    /// steal order.
    pub order: u64,
    /// The master seed of this run.
    pub seed: u64,
    /// Its outcome.
    pub outcome: Outcome,
}

/// Aggregated outcomes of one scenario swept over a seed range
/// ([`Scenario::seeds`]) — the shape benches and regression suites consume.
///
/// Matrices are **mergeable**: a sweep can be sharded across workers, each
/// shard folding its own matrix, and [`SeedMatrix::merge`] recombines the
/// shards into the serial result. Merging is associative and commutative
/// (runs carry their serial [`SeedRun::order`]), which is what makes a
/// work-stealing executor's output independent of worker count and steal
/// order.
#[derive(Clone, Debug)]
pub struct SeedMatrix {
    /// The scenario's label (`topology/workload`).
    pub label: String,
    /// One entry per seed, in sweep order (ascending [`SeedRun::order`]).
    pub runs: Vec<SeedRun>,
}

impl SeedMatrix {
    /// An empty matrix for `label` — the identity of [`SeedMatrix::merge`],
    /// the starting point of a shard fold.
    pub fn empty(label: String) -> Self {
        SeedMatrix { label, runs: Vec::new() }
    }

    /// Folds another shard of the same sweep into this matrix, restoring
    /// serial sweep order (ascending [`SeedRun::order`]). Associative and
    /// commutative: any parenthesization of any shard permutation yields
    /// the same matrix, so shard-merged results are bit-identical to the
    /// serial sweep no matter how a parallel executor split or stole the
    /// work.
    ///
    /// # Panics
    ///
    /// Panics if the labels differ (merging different scenarios is a bug),
    /// or if the shards overlap (two runs with the same `order`): shards
    /// must partition the sweep.
    pub fn merge(&mut self, other: SeedMatrix) {
        assert_eq!(self.label, other.label, "SeedMatrix::merge: shards of different scenarios");
        // Shards arrive in whatever order their worker executed (a stolen
        // chunk runs out of sequence), so sort unconditionally rather than
        // assume anything about either side.
        self.runs.extend(other.runs);
        self.runs.sort_by_key(|r| r.order);
        for pair in self.runs.windows(2) {
            assert_ne!(
                pair[0].order, pair[1].order,
                "SeedMatrix::merge: overlapping shards (order {} twice) — \
                 shards must partition the sweep",
                pair[0].order
            );
        }
    }
    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Whether every run completed.
    pub fn all_completed(&self) -> bool {
        self.runs.iter().all(|r| r.outcome.completion_round.is_some())
    }

    /// Whether every run completed within its worst-case cap.
    pub fn all_within_caps(&self) -> bool {
        self.runs.iter().all(|r| r.outcome.completed_within_cap())
    }

    /// Seeds whose run did not complete.
    pub fn failures(&self) -> Vec<u64> {
        self.runs.iter().filter(|r| r.outcome.completion_round.is_none()).map(|r| r.seed).collect()
    }

    /// Completion rounds of the completed runs.
    fn completions(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().filter_map(|r| r.outcome.completion_round)
    }

    /// Slowest completion round among completed runs.
    pub fn worst_rounds(&self) -> Option<u64> {
        self.completions().max()
    }

    /// Fastest completion round among completed runs.
    pub fn best_rounds(&self) -> Option<u64> {
        self.completions().min()
    }

    /// Mean completion round over completed runs.
    pub fn mean_rounds(&self) -> Option<f64> {
        let (mut sum, mut count) = (0u64, 0u64);
        for r in self.completions() {
            sum += r;
            count += 1;
        }
        (count > 0).then(|| sum as f64 / count as f64)
    }

    /// Completion round at the `q`-quantile (nearest-rank over the sorted
    /// completed runs; `q` clamped to `[0, 1]`).
    fn quantile_rounds(&self, q: f64) -> Option<u64> {
        let mut rounds: Vec<u64> = self.completions().collect();
        if rounds.is_empty() {
            return None;
        }
        rounds.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (rounds.len() - 1) as f64).round() as usize;
        Some(rounds[rank])
    }

    /// Median completion round among completed runs (nearest rank).
    pub fn median_rounds(&self) -> Option<u64> {
        self.quantile_rounds(0.5)
    }

    /// 95th-percentile completion round among completed runs (nearest
    /// rank) — the tail the paper's with-high-probability bounds speak to,
    /// where `worst_rounds` alone is too noisy across small sweeps.
    pub fn p95_rounds(&self) -> Option<u64> {
        self.quantile_rounds(0.95)
    }

    /// One-line aggregate report (the bench table cell).
    pub fn report(&self) -> String {
        let completed = self.runs.len() - self.failures().len();
        match (self.best_rounds(), self.mean_rounds(), self.worst_rounds()) {
            (Some(best), Some(mean), Some(worst)) => {
                let cap = self.runs.iter().map(|r| r.outcome.cap).max().unwrap_or(0);
                let median = self.median_rounds().unwrap_or(worst);
                let p95 = self.p95_rounds().unwrap_or(worst);
                format!(
                    "{}: {completed}/{} seeds completed; rounds min/median/mean/p95/max = \
                     {best}/{median}/{mean:.0}/{p95}/{worst} (cap {cap})",
                    self.label,
                    self.runs.len(),
                )
            }
            _ => format!("{}: 0/{} seeds completed", self.label, self.runs.len()),
        }
    }
}

/// A declarative run description: topology + workload + the shared knobs
/// (params, collision mode, pacing, seed, round cap). Build one with
/// [`Scenario::new`], chain the setters, then [`Scenario::run`] it or sweep
/// [`Scenario::seeds`]. See the module docs for the entry-point table and
/// the bit-identity guarantee against the legacy free functions.
#[derive(Clone, Debug)]
pub struct Scenario {
    topology: TopologySpec,
    workload: Workload,
    source: NodeId,
    params: Option<Params>,
    mode: Option<CollisionMode>,
    pacing: Pacing,
    seed: u64,
    round_cap: Option<u64>,
    faults: FaultPlan,
    fec_repair: u32,
}

impl Scenario {
    /// A scenario with the default knobs: source node 0,
    /// [`Params::scaled`] for the built graph's size, the workload's
    /// canonical collision mode, [`Pacing::Segment`], seed 0, and the
    /// workload's default round cap.
    pub fn new(topology: TopologySpec, workload: Workload) -> Self {
        Scenario {
            topology,
            workload,
            source: NodeId::new(0),
            params: None,
            mode: None,
            pacing: Pacing::Segment,
            seed: 0,
            round_cap: None,
            faults: FaultPlan::none(),
            fec_repair: 0,
        }
    }

    /// Sets the source node (default: node 0).
    pub fn source(mut self, source: NodeId) -> Self {
        self.source = source;
        self
    }

    /// Overrides the derived [`Params::scaled`] constants.
    pub fn params(mut self, params: Params) -> Self {
        self.params = Some(params);
        self
    }

    /// Overrides the workload's canonical collision mode (Theorems 1.1/1.3
    /// default to [`CollisionMode::Detection`]; Theorem 1.2 and the
    /// baselines to [`CollisionMode::NoDetection`]).
    pub fn collision_mode(mut self, mode: CollisionMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Sets the driver pacing of the adaptive pipelines
    /// ([`Pacing::PerStep`] reproduces the batched run round for round with
    /// every node polled; used by the equivalence suites).
    pub fn pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Sets the master seed (default 0). [`Scenario::seeds`] ignores this
    /// and sweeps its own range.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the hard round cap of cap-configured workloads
    /// ([`Workload::MultiKnown`]: default 1M rounds; baselines: default 5M).
    /// The adaptive pipelines derive their cap from the paper's plan
    /// (`total_rounds()`) and ignore this knob.
    pub fn round_cap(mut self, cap: u64) -> Self {
        self.round_cap = Some(cap);
        self
    }

    /// Applies a seeded adversarial [`FaultPlan`] (packet erasure, jammers,
    /// churn, mobility — see [`radio_sim::engine::faults`]) to every
    /// workload of this scenario, including the baselines.
    ///
    /// Fault randomness comes from dedicated streams of the master seed, so
    /// [`FaultPlan::none`] (the default) keeps every run bit-identical to
    /// the fault-free facade, and [`Scenario::seeds`] sweeps stay
    /// deterministic per seed.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the ring-handoff FEC repair aggressiveness of
    /// [`Workload::MultiUnknown`] runs (see
    /// [`MultiRunOpts::fec_repair`]) — optional
    /// erasure protection for lossy fault plans. Other workloads ignore the
    /// knob; `0` (the default) is bit-identical to the pre-knob pipeline.
    pub fn fec_repair(mut self, fec_repair: u32) -> Self {
        self.fec_repair = fec_repair;
        self
    }

    /// The topology spec.
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The configured master seed.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }

    /// The configured fault plan ([`FaultPlan::none`] unless
    /// [`Scenario::faults`] was called).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// `topology/workload`, the label under which sweeps report; scenarios
    /// with a fault plan append `+<plan label>` (e.g.
    /// `grid(6x6)/multi_unknown+erase(0.2)`), so fault-free labels are
    /// byte-identical to what they were before the fault layer existed.
    pub fn label(&self) -> String {
        if self.faults.is_none() {
            format!("{}/{}", self.topology.label(), self.workload.kind())
        } else {
            format!("{}/{}+{}", self.topology.label(), self.workload.kind(), self.faults.label())
        }
    }

    /// Builds the scenario's graph (what [`Scenario::run`] will run on).
    /// For `Streamed*` specs this **materializes** the streamed family
    /// ([`TopologySpec::build`]) — useful for verification, but
    /// [`Scenario::run`] itself never calls it on a streamed spec.
    pub fn graph(&self) -> Graph {
        self.topology.build()
    }

    /// Builds the topology and runs the workload once under the configured
    /// seed. Materialized specs build a CSR graph (shared, not re-cloned,
    /// across the run); `Streamed*` specs run the engine directly over the
    /// implicit topology — `O(active frontier)` resident state instead of
    /// `O(m)`.
    ///
    /// # Panics
    ///
    /// Panics if the built topology is empty, a multi-message workload has
    /// no messages, a streamed spec is paired with
    /// [`Workload::MultiKnown`] (its GST is built from global topology
    /// knowledge), or a streamed spec is paired with a churn/mobility fault
    /// plan (those rewrite a materialized adjacency).
    pub fn run(&self) -> Outcome {
        self.run_seed_built(&self.build_topology(), self.seed)
    }

    /// Runs the workload on a pre-built graph under the configured seed —
    /// for callers that already materialized [`Scenario::graph`] (to print
    /// its stats, time only the run, or amortize an expensive build) and
    /// must not pay a second build. The graph should be the one this
    /// scenario's spec builds; passing a different graph runs on it
    /// verbatim, exactly like [`TopologySpec::Custom`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty, or a multi-message workload has no
    /// messages.
    pub fn run_on(&self, graph: &Graph) -> Outcome {
        self.run_seed_on(&Arc::new(graph.clone()), self.seed)
    }

    /// Builds the topology once and runs the workload for every seed in
    /// `seeds`, aggregating into a [`SeedMatrix`]. The built topology is
    /// cached across the sweep: materialized graphs are shared by `Arc` (no
    /// per-seed CSR clone), streamed topologies re-use their spatial index
    /// and neighborhood cache.
    ///
    /// Takes any seed sequence — a range (`0..64`), an explicit list
    /// (`[3, 1, 4]`, what service requests carry), or any other
    /// `IntoIterator<Item = u64>`. Runs land in iteration order; duplicate
    /// seeds are allowed here (each is an independent run) but a duplicated
    /// sweep cannot be sharded, since shards must partition distinct
    /// [`SeedRun::order`] positions — which `seeds()` always assigns.
    pub fn seeds<I: IntoIterator<Item = u64>>(&self, seeds: I) -> SeedMatrix {
        let prepared = self.prepare();
        let runs = seeds
            .into_iter()
            .enumerate()
            .map(|(order, seed)| SeedRun {
                order: order as u64,
                seed,
                outcome: self.run_seed(&prepared, seed),
            })
            .collect();
        SeedMatrix { label: self.label(), runs }
    }

    /// Builds this scenario's topology once, in its natural representation,
    /// for repeated [`Scenario::run_seed`] calls — the per-worker cache of a
    /// parallel sweep executor. Cheap to create for materialized specs
    /// (one build, then `Arc`-shared per run) and for streamed specs (the
    /// spatial index and neighborhood cache are reused across runs).
    ///
    /// The prepared topology is **not** `Sync` (streamed topologies carry a
    /// single-threaded neighborhood cache); each worker thread prepares its
    /// own. Builds are deterministic, so every worker's copy is identical
    /// and runs stay bit-identical to the serial sweep.
    pub fn prepare(&self) -> PreparedTopology {
        PreparedTopology(self.build_topology())
    }

    /// Runs the workload once under `seed` on a topology prepared by
    /// [`Scenario::prepare`] — the single-job entry point a sweep executor
    /// fans out. `scenario.run_seed(&scenario.prepare(), s)` is bit-identical
    /// to `scenario.seed(s).run()`.
    pub fn run_seed(&self, prepared: &PreparedTopology, seed: u64) -> Outcome {
        self.run_seed_built(&prepared.0, seed)
    }

    /// Builds the spec's topology in its natural representation: streamed
    /// specs stay implicit, everything else materializes once into a shared
    /// [`Arc<Graph>`].
    fn build_topology(&self) -> BuiltTopology {
        match (&self.topology, self.topology.streamed()) {
            (_, Some(streamed)) => BuiltTopology::Streamed(streamed),
            (TopologySpec::Custom(g), None) => BuiltTopology::Dense(Arc::clone(g)),
            (spec, None) => BuiltTopology::Dense(Arc::new(spec.build())),
        }
    }

    /// Dispatches a built topology to the generic runner.
    fn run_seed_built(&self, built: &BuiltTopology, seed: u64) -> Outcome {
        match built {
            BuiltTopology::Dense(g) => self.run_seed_on(g, seed),
            BuiltTopology::Streamed(t) => self.run_seed_on(t, seed),
        }
    }

    /// Runs the workload on an already-built topology. Each arm delegates
    /// to the algorithm's engine function with exactly the arguments the
    /// legacy call sites passed, so runs are bit-identical to the free
    /// functions (pinned by `tests/e2e_scenario.rs`); the topology only
    /// changes *where* neighborhoods come from, never what they contain.
    fn run_seed_on<T: Topology + Clone>(&self, topo: &T, seed: u64) -> Outcome {
        let params = self.params.clone().unwrap_or_else(|| Params::scaled(topo.node_count()));
        let mode = self.mode.unwrap_or_else(|| self.workload.default_mode());
        match &self.workload {
            Workload::Single { payload } => {
                let out = broadcast_single_on(
                    topo.clone(),
                    self.source,
                    *payload,
                    &params,
                    seed,
                    mode,
                    self.pacing,
                    &self.faults,
                );
                Outcome {
                    completion_round: out.completion_round,
                    cap: out.plan.total_rounds(),
                    phases: out.phases.into(),
                    stats: out.stats,
                    audit: out.audit,
                    peak_state_bytes: out.peak_state_bytes,
                    detail: Detail::Single {
                        plan: out.plan,
                        fallbacks: out.fallbacks,
                        fallback_entry: out.fallback_entry,
                    },
                }
            }
            Workload::MultiKnown { messages, slow_key, empty } => {
                let graph = topo.as_graph().expect(
                    "Workload::MultiKnown builds its GST centrally from global \
                     topology knowledge and needs a materialized graph; streamed \
                     topologies support Single, MultiUnknown and Baseline workloads",
                );
                let mut opts =
                    KnownRunOpts::new().with_slow_key(*slow_key).with_empty(*empty).with_mode(mode);
                if let Some(cap) = self.round_cap {
                    opts = opts.with_max_rounds(cap);
                }
                let out = broadcast_known_faulted(
                    graph,
                    self.source,
                    messages,
                    &params,
                    seed,
                    opts,
                    &self.faults,
                );
                Outcome {
                    completion_round: out.completion_round,
                    cap: out.rounds_budget,
                    phases: out.phases.into(),
                    stats: out.stats,
                    audit: out.audit,
                    peak_state_bytes: out.peak_state_bytes,
                    detail: Detail::MultiKnown { slow_key: *slow_key, empty: *empty },
                }
            }
            Workload::MultiUnknown { messages, batch } => {
                let opts = MultiRunOpts::new(*batch)
                    .with_mode(mode)
                    .with_pacing(self.pacing)
                    .with_fec_repair(self.fec_repair);
                let out = broadcast_unknown_on(
                    topo.clone(),
                    self.source,
                    messages,
                    &params,
                    seed,
                    opts,
                    &self.faults,
                );
                // The engine derives the same plan internally; recompute it
                // here (deterministic) so the typed detail carries the full
                // ring/batch geometry, not just the cap. The cap check below
                // keeps this derivation honest if the engine's ever changes.
                let d = bfs_layering(topo, &[self.source]).max_level();
                let plan = GhkMultiPlan::new_adaptive(&params, d.max(1), messages.len(), *batch);
                assert_eq!(
                    plan.total_rounds(),
                    out.rounds_budget,
                    "facade plan derivation diverged from the engine's"
                );
                Outcome {
                    completion_round: out.completion_round,
                    cap: out.rounds_budget,
                    phases: out.phases.into(),
                    stats: out.stats,
                    audit: out.audit,
                    peak_state_bytes: out.peak_state_bytes,
                    detail: Detail::MultiUnknown { plan, fallback_entry: out.fallback_entry },
                }
            }
            Workload::Baseline(algo) => self.run_baseline(topo, &params, mode, seed, *algo),
        }
    }

    /// Runs a baseline comparator with the wiring the hand-rolled
    /// comparison loops used (delivery-gated completion scans; informedness
    /// flips only on receptions, so the policy is exact).
    fn run_baseline<T: Topology + Clone>(
        &self,
        topo: &T,
        params: &Params,
        mode: CollisionMode,
        seed: u64,
        algo: Algo,
    ) -> Outcome {
        assert!(topo.node_count() > 0, "graph must be non-empty");
        let cap = self.round_cap.unwrap_or(BASELINE_ROUND_CAP);
        let source = self.source;
        let (completion_round, stats, peak_state_bytes) = match algo {
            Algo::Decay { payload } => {
                let mut sim = Simulator::new_with_faults(
                    topo.clone(),
                    mode,
                    seed,
                    self.faults.clone(),
                    |id| DecayBroadcast::new(params, (id == source).then_some(DecayMsg(payload))),
                );
                let done = sim.run_until_with(cap, DoneCheck::OnDelivery, |ns| {
                    ns.iter().all(DecayBroadcast::is_informed)
                });
                let peak = sim.graph().resident_bytes() + std::mem::size_of_val(sim.nodes());
                (done, sim.stats().clone(), peak)
            }
            Algo::MmvDecay { payload, noise } => {
                let layering = bfs_layering(topo, &[source]);
                let levels: Vec<u32> =
                    (0..topo.node_count()).map(|i| layering.level(NodeId::new(i))).collect();
                let mut sim = Simulator::new_with_faults(
                    topo.clone(),
                    mode,
                    seed,
                    self.faults.clone(),
                    |id| {
                        MmvDecayBroadcast::new(
                            params,
                            levels[id.index()],
                            noise,
                            (id == source).then_some(payload),
                        )
                    },
                );
                let done = sim.run_until_with(cap, DoneCheck::OnDelivery, |ns| {
                    ns.iter().all(MmvDecayBroadcast::is_informed)
                });
                let peak = sim.graph().resident_bytes() + std::mem::size_of_val(sim.nodes());
                (done, sim.stats().clone(), peak)
            }
        };
        Outcome {
            completion_round,
            cap,
            phases: Phases { disseminate: stats.rounds, ..Phases::default() },
            stats,
            audit: SchedAudit::default(),
            peak_state_bytes,
            detail: Detail::Baseline { algo },
        }
    }
}

/// A spec's topology in the representation [`Scenario::run`] executes on:
/// materialized specs share one CSR graph behind an [`Arc`] (cloned per run
/// in `O(1)`), streamed specs keep the implicit generator.
enum BuiltTopology {
    /// A materialized, shared CSR graph.
    Dense(Arc<Graph>),
    /// A streamed topology; neighborhoods are computed on demand.
    Streamed(ImplicitGraph),
}

/// An opaque pre-built topology for repeated single-seed runs — what
/// [`Scenario::seeds`] caches internally and what a parallel sweep worker
/// holds per scenario. Build with [`Scenario::prepare`], consume with
/// [`Scenario::run_seed`].
pub struct PreparedTopology(BuiltTopology);

impl std::fmt::Debug for PreparedTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            BuiltTopology::Dense(g) => {
                write!(f, "PreparedTopology::Dense({} nodes)", g.node_count())
            }
            BuiltTopology::Streamed(t) => {
                write!(f, "PreparedTopology::Streamed({} nodes)", t.node_count())
            }
        }
    }
}

/// One unit of sweep work: run scenario number `scenario` (an index into
/// the executor's scenario list) under `seed`, and file the outcome at
/// serial position `order` of that scenario's [`SeedMatrix`]. The job
/// descriptor a work-stealing executor enqueues, steals and executes —
/// plain data, so chunks of jobs move freely between worker deques.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepJob {
    /// Index of the scenario in the sweep's scenario list.
    pub scenario: usize,
    /// Serial position in that scenario's seed sequence ([`SeedRun::order`]).
    pub order: u64,
    /// The master seed to run.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_expected_sizes() {
        assert_eq!(TopologySpec::Path { n: 9 }.build().node_count(), 9);
        assert_eq!(TopologySpec::Grid { w: 3, h: 4 }.build().node_count(), 12);
        assert_eq!(TopologySpec::Star { n: 7 }.build().node_count(), 7);
        assert_eq!(TopologySpec::ClusterChain { clusters: 3, size: 4 }.build().node_count(), 12);
        assert_eq!(TopologySpec::BinaryTree { n: 15 }.build().node_count(), 15);
        let u = TopologySpec::UnitDisk { n: 20, radius: 0.5, graph_seed: 3 };
        assert_eq!(u.build().node_count(), 20);
        let g = TopologySpec::Gnp { n: 16, p: 0.3, graph_seed: 4 };
        assert_eq!(g.build().node_count(), 16);
    }

    #[test]
    fn randomized_specs_build_deterministically() {
        let spec = TopologySpec::UnitDisk { n: 30, radius: 0.3, graph_seed: 11 };
        let (a, b) = (spec.build(), spec.build());
        assert_eq!(a.edge_count(), b.edge_count(), "same spec must build the same graph");
    }

    #[test]
    fn phases_roundtrip_from_both_pipelines() {
        let single = PhaseRounds {
            wave: 1,
            construct: 2,
            broadcast: 3,
            handoff: 4,
            repair: 8,
            fallback: 6,
            status: 5,
        };
        let p: Phases = single.into();
        assert_eq!(p.total(), single.total());
        assert_eq!(p.disseminate, 3);
        assert_eq!(p.repair, 8);
        assert_eq!(p.fallback, 6);
        let multi = MultiPhaseRounds {
            wave: 1,
            construct: 2,
            label: 3,
            disseminate: 4,
            handoff: 5,
            repair: 9,
            fallback: 7,
            status: 6,
        };
        let p: Phases = multi.into();
        assert_eq!(p.total(), multi.total());
        assert_eq!(p.label, 3);
        assert_eq!(p.repair, 9);
        assert_eq!(p.fallback, 7);
    }

    #[test]
    fn baseline_decay_runs_and_reports_phases() {
        let s = Scenario::new(
            TopologySpec::ClusterChain { clusters: 3, size: 4 },
            Workload::Baseline(Algo::Decay { payload: 5 }),
        )
        .seed(1);
        let out = s.run();
        assert!(out.completion_round.is_some());
        assert!(out.completed_within_cap());
        assert_eq!(out.phases.total(), out.stats.rounds);
        assert!(matches!(out.detail, Detail::Baseline { algo: Algo::Decay { payload: 5 } }));
    }

    #[test]
    fn baseline_mmv_decay_runs_with_and_without_noise() {
        for noise in [false, true] {
            let s = Scenario::new(
                TopologySpec::Grid { w: 4, h: 4 },
                Workload::Baseline(Algo::MmvDecay { payload: 9, noise }),
            )
            .seed(2);
            let out = s.run();
            assert!(out.completion_round.is_some(), "noise={noise} failed");
        }
    }

    #[test]
    fn seed_matrix_aggregates() {
        let m = Scenario::new(
            TopologySpec::Path { n: 10 },
            Workload::Baseline(Algo::Decay { payload: 1 }),
        )
        .seeds(0..3);
        assert_eq!(m.len(), 3);
        assert!(m.all_completed(), "failures: {:?}", m.failures());
        assert!(m.all_within_caps());
        let (best, worst) = (m.best_rounds().unwrap(), m.worst_rounds().unwrap());
        assert!(best <= worst);
        let mean = m.mean_rounds().unwrap();
        assert!(best as f64 <= mean && mean <= worst as f64);
        assert!(m.report().contains("3/3 seeds completed"), "report: {}", m.report());
    }

    #[test]
    fn round_cap_override_applies_to_capped_workloads() {
        // A cap too small to finish: the run must stop at the cap and
        // report no completion rather than running to the default.
        let s = Scenario::new(
            TopologySpec::Path { n: 16 },
            Workload::Baseline(Algo::Decay { payload: 1 }),
        )
        .round_cap(2)
        .seed(0);
        let out = s.run();
        assert_eq!(out.cap, 2);
        assert!(out.completion_round.is_none());
        assert!(out.stats.rounds <= 2);
    }

    #[test]
    fn labels_are_stable() {
        let s = Scenario::new(
            TopologySpec::UnitDisk { n: 80, radius: 0.18, graph_seed: 2024 },
            Workload::Single { payload: 1 },
        );
        assert_eq!(s.label(), "unit_disk(80,r=0.18,g=2024)/single");
        let s = Scenario::new(
            TopologySpec::ClusterChain { clusters: 20, size: 6 },
            Workload::MultiUnknown {
                messages: vec![BitVec::from_u64(1, 8)],
                batch: BatchMode::FullK,
            },
        );
        assert_eq!(s.label(), "cluster_chain(20x6)/multi_unknown");
    }

    #[test]
    fn faulted_labels_are_stable() {
        let s = Scenario::new(TopologySpec::Grid { w: 6, h: 6 }, Workload::Single { payload: 1 })
            .faults(FaultPlan::none().with_erasure(0.2).with_jammer(3, 2, 0));
        assert_eq!(s.label(), "grid(6x6)/single+erase(0.2)+jam(n3,p2+0)");
        // A plan that is set but empty must not perturb the label.
        let s = Scenario::new(TopologySpec::Path { n: 4 }, Workload::Single { payload: 1 })
            .faults(FaultPlan::none());
        assert_eq!(s.label(), "path(4)/single");
    }

    #[test]
    fn none_faults_are_bit_identical_through_the_facade() {
        let clean = Scenario::new(
            TopologySpec::ClusterChain { clusters: 3, size: 4 },
            Workload::Single { payload: 0xF00D },
        )
        .seed(5)
        .run();
        let faulted = Scenario::new(
            TopologySpec::ClusterChain { clusters: 3, size: 4 },
            Workload::Single { payload: 0xF00D },
        )
        .seed(5)
        .faults(FaultPlan::none())
        .run();
        assert_eq!(clean.completion_round, faulted.completion_round);
        assert_eq!(clean.stats, faulted.stats);
    }

    #[test]
    fn faulted_baseline_degrades_but_stays_deterministic() {
        let run = || {
            Scenario::new(
                TopologySpec::ClusterChain { clusters: 3, size: 4 },
                Workload::Baseline(Algo::Decay { payload: 5 }),
            )
            .seed(1)
            .round_cap(200_000)
            .faults(FaultPlan::none().with_erasure(0.3))
            .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completion_round, b.completion_round);
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.erased > 0, "erasure never fired: {:?}", a.stats);
    }
}
