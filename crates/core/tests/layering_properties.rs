//! Property tests for the layering primitives of Theorem 1.1.
//!
//! * The collision-wave layering is *exact*: on any connected graph, under
//!   collision detection, every node's learned level equals its BFS distance
//!   after `D` rounds — deterministically, for every seed. This is the
//!   invariant the adaptive pipeline's ring decomposition stands on.
//! * Decay-based completion is monotone in `decay_phases`: giving each epoch
//!   more Decay phases can only improve per-epoch delivery (Lemma 2.2 holds
//!   per phase), so the mislabel count of `DecayLayering` must not grow.
//!
//! The vendored `proptest` derives case inputs deterministically from the
//! test name, so these properties are exactly reproducible in CI.

use broadcast::layering::{CollisionWaveLayering, DecayLayering};
use broadcast::Params;
use proptest::prelude::*;
use radio_sim::graph::{generators, Graph, Traversal};
use radio_sim::rng::stream_rng;
use radio_sim::{CollisionMode, NodeId, Simulator};

/// Runs the collision wave for exactly `D` rounds and checks every node
/// against BFS ground truth.
fn assert_wave_equals_bfs(g: &Graph, seed: u64) {
    let truth = g.bfs(NodeId::new(0));
    let d = u64::from(truth.max_level());
    let mut sim = Simulator::new(g.clone(), CollisionMode::Detection, seed, |id| {
        CollisionWaveLayering::new(id.index() == 0)
    });
    sim.run(d);
    for (i, node) in sim.nodes().iter().enumerate() {
        assert_eq!(
            node.level(),
            Some(truth.level(NodeId::new(i))),
            "node {i} mislabelled (seed {seed})"
        );
    }
}

/// Mislabel count of the Decay layering with `phases` Decay phases per epoch.
fn decay_mislabels(g: &Graph, phases: u32, seed: u64) -> usize {
    let mut params = Params::scaled(g.node_count());
    params.decay_phases = phases;
    let truth = g.bfs(NodeId::new(0));
    let rounds = DecayLayering::rounds_required(&params, truth.max_level() + 1);
    let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
        DecayLayering::new(&params, id.index() == 0)
    });
    sim.run(rounds);
    sim.nodes()
        .iter()
        .enumerate()
        .filter(|(i, node)| node.level() != Some(truth.level(NodeId::new(*i))))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn collision_wave_equals_bfs_on_random_graphs(
        n in 8usize..64,
        p in 0.05f64..0.3,
        seed in 0u64..1000,
    ) {
        let mut rng = stream_rng(seed, 7);
        let g = generators::gnp_connected(n, p, &mut rng);
        assert_wave_equals_bfs(&g, seed);
    }

    #[test]
    fn collision_wave_equals_bfs_on_random_trees(n in 4usize..80, seed in 0u64..1000) {
        let mut rng = stream_rng(seed, 13);
        let g = generators::random_tree(n, &mut rng);
        assert_wave_equals_bfs(&g, seed);
    }

    #[test]
    fn collision_wave_equals_bfs_on_geometric_graphs(n in 20usize..70, seed in 0u64..1000) {
        let mut rng = stream_rng(seed, 29);
        let g = generators::unit_disk(n, 0.25, &mut rng);
        assert_wave_equals_bfs(&g, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn decay_completion_monotone_in_decay_phases(n in 12usize..40, seed in 0u64..500) {
        let mut rng = stream_rng(seed, 3);
        let g = generators::gnp_connected(n, 0.12, &mut rng);
        // Aggregate over a few master seeds: per-seed runs consume different
        // RNG streams, but the aggregated mislabel count must not get worse
        // when every epoch has strictly more Decay phases (slack 1 absorbs
        // single unlucky draws).
        let few: usize = (0..4).map(|s| decay_mislabels(&g, 2, s)).sum();
        let many: usize = (0..4).map(|s| decay_mislabels(&g, 5, s)).sum();
        prop_assert!(
            many <= few + 1,
            "more Decay phases must not hurt: 2 phases -> {few} mislabels, 5 phases -> {many}"
        );
    }
}
