//! Property tests for [`SeedMatrix::merge`] — the algebra the parallel
//! sweep executor stands on.
//!
//! A work-stealing pool shards a sweep arbitrarily: any worker count, any
//! chunk boundaries, any steal interleaving. Its result equals the serial
//! sweep *iff* merge is (1) associative, (2) commutative, and (3) invariant
//! under how the run set is partitioned into shards. Each property is
//! checked against full `Debug` equality, which covers every field of every
//! outcome transitively.
//!
//! The vendored `proptest` derives case inputs deterministically from the
//! test name, so these properties are exactly reproducible in CI.

use broadcast::{Algo, Scenario, SeedMatrix, TopologySpec, Workload};
use proptest::prelude::*;

/// A small but real sweep: every run is a genuine `Outcome` so debug
/// equality exercises real payload fields, not placeholders.
fn sweep(n: usize, seeds: u64) -> SeedMatrix {
    Scenario::new(TopologySpec::Path { n }, Workload::Baseline(Algo::Decay { payload: 3 }))
        .seeds(0..seeds)
}

/// Deals `matrix`'s runs round-robin onto `shards` shard matrices, then
/// rotates each shard's run order by `rot` — shards arrive from workers in
/// execution order, which under stealing is not serial order.
fn deal(matrix: &SeedMatrix, shards: usize, rot: usize) -> Vec<SeedMatrix> {
    let mut out: Vec<SeedMatrix> =
        (0..shards).map(|_| SeedMatrix::empty(matrix.label.clone())).collect();
    for (i, run) in matrix.runs.iter().enumerate() {
        out[i % shards].runs.push(run.clone());
    }
    for shard in &mut out {
        if !shard.runs.is_empty() {
            let r = rot % shard.runs.len();
            shard.runs.rotate_left(r);
        }
    }
    out
}

fn debug_eq(a: &SeedMatrix, b: &SeedMatrix) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any round-robin partition into any shard count, with shard-local
    /// execution order arbitrarily rotated, merges back to the serial
    /// matrix.
    #[test]
    fn merge_is_partition_invariant(
        n in 4usize..10,
        seeds in 1u64..10,
        shards in 1usize..6,
        rot in 0usize..7,
    ) {
        let serial = sweep(n, seeds);
        let mut merged = SeedMatrix::empty(serial.label.clone());
        for shard in deal(&serial, shards, rot) {
            merged.merge(shard);
        }
        prop_assert!(debug_eq(&merged, &serial));
    }

    /// `a ⊕ b == b ⊕ a` for every two-way split point.
    #[test]
    fn merge_is_commutative(n in 4usize..10, seeds in 2u64..10, split_num in 0usize..100) {
        let serial = sweep(n, seeds);
        let split = split_num % (serial.len() + 1);
        let (mut a, mut b) =
            (SeedMatrix::empty(serial.label.clone()), SeedMatrix::empty(serial.label.clone()));
        a.runs = serial.runs[..split].to_vec();
        b.runs = serial.runs[split..].to_vec();
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        prop_assert!(debug_eq(&ab, &ba));
        prop_assert!(debug_eq(&ab, &serial));
    }

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` over three-way round-robin shards.
    #[test]
    fn merge_is_associative(n in 4usize..10, seeds in 3u64..10, rot in 0usize..7) {
        let serial = sweep(n, seeds);
        let shards = deal(&serial, 3, rot);
        let [a, b, c] = <[SeedMatrix; 3]>::try_from(shards).expect("three shards");

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());

        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);

        prop_assert!(debug_eq(&left, &right));
        prop_assert!(debug_eq(&left, &serial));
    }
}

/// Merging the empty matrix (the identity) on either side is a no-op.
#[test]
fn empty_is_the_identity() {
    let serial = sweep(6, 4);
    let mut left = SeedMatrix::empty(serial.label.clone());
    left.merge(serial.clone());
    assert!(debug_eq(&left, &serial));

    let mut right = serial.clone();
    right.merge(SeedMatrix::empty(serial.label.clone()));
    assert!(debug_eq(&right, &serial));
}

/// Overlapping shards (the same serial position twice) are a partitioning
/// bug and must panic, not silently double-count.
#[test]
#[should_panic(expected = "overlapping shards")]
fn overlapping_shards_panic() {
    let serial = sweep(6, 4);
    let mut a = serial.clone();
    a.merge(serial);
}

/// Merging matrices of different scenarios is a bug and must panic.
#[test]
#[should_panic(expected = "different scenarios")]
fn mismatched_labels_panic() {
    let mut a = sweep(6, 2);
    a.merge(sweep(7, 2));
}
