//! # bench — the experiment harness
//!
//! Shared measurement utilities for the `fig_*` bench targets, which
//! regenerate the theorem-derived tables of `DESIGN.md` §2. Each bench
//! prints a table: rows = swept parameter, columns = algorithms, cells =
//! mean ± σ of the completion round over [`SEEDS`] seeds (`FAIL xN` cells
//! count runs that exhausted [`MAX_ROUNDS`]).
//!
//! This crate is also the workspace's *assembly point*: it is the only crate
//! depending on every other one, so the repo-root `tests/` (end-to-end
//! integration tests) and `examples/` (scenario walkthroughs) are wired into
//! it via explicit `[[test]]`/`[[example]]` entries in its `Cargo.toml`.
//!
//! ## Layout
//!
//! * this library — graph recipes ([`chain_with_n`]), sweep-friendly
//!   parameters ([`bench_params`]), one `run_*` wrapper per measured
//!   algorithm, and table formatting ([`header`], [`row`], [`cell`],
//!   [`mean_std`]);
//! * `benches/fig_*.rs` — one experiment per file (`harness = false`, plain
//!   `main`), named after the table it regenerates: e.g. `fig_single_vs_d`
//!   sweeps diameter for Theorem 1.1 against Decay and CR-style,
//!   `fig_multi_vs_k` sweeps message count for Theorems 1.2/1.3 against
//!   routing, `fig_fast_collision_audit` audits the Lemma 3.5 refinement;
//! * `benches/micro.rs` — criterion microbenchmarks of the GF(2) kernels and
//!   the simulator round loop.
//!
//! ## Running
//!
//! ```console
//! cargo bench --bench fig_single_vs_n   # one table
//! cargo bench                           # everything (minutes, release-built)
//! ```
//!
//! Measured protocols run under [`bench_params`], which lowers the
//! construction constants so diameter sweeps finish in seconds; resulting
//! fallbacks/violations are part of what the tables report, not hidden.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use broadcast::decay::{DecayBroadcast, DecayMsg};
use broadcast::multi_message::{broadcast_known, broadcast_unknown, BatchMode, KnownRunOpts};
use broadcast::schedule::SlowKey;
use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::Traversal;
use radio_sim::{CollisionMode, Graph, NodeId, Simulator};
use rlnc::gf2::BitVec;

/// Number of seeds per cell (kept small so `cargo bench` stays quick).
pub const SEEDS: u64 = 3;

/// Sweep-friendly parameters: like [`Params::scaled`] but with the
/// construction constants at the low end, so diameter sweeps finish in
/// seconds. Construction softness under these constants is part of what the
/// experiments measure (fallbacks/violations are reported, not hidden).
pub fn bench_params(n: usize) -> Params {
    let mut p = Params::scaled(n);
    p.decay_phases = 3;
    p.recruit_iterations = 2 * p.log_n;
    p.assignment_epochs = p.log_n / 2 + 4;
    p
}

/// A hard cap for open-ended runs.
pub const MAX_ROUNDS: u64 = 4_000_000;

/// Mean and standard deviation of the `Some` entries; `None` marks failures.
pub fn mean_std(xs: &[Option<u64>]) -> (f64, f64, usize) {
    let ok: Vec<f64> = xs.iter().flatten().map(|&x| x as f64).collect();
    let fails = xs.len() - ok.len();
    if ok.is_empty() {
        return (f64::NAN, f64::NAN, fails);
    }
    let mean = ok.iter().sum::<f64>() / ok.len() as f64;
    let var = ok.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / ok.len() as f64;
    (mean, var.sqrt(), fails)
}

/// Formats a `(mean, std, fails)` cell.
pub fn cell(stats: (f64, f64, usize)) -> String {
    let (mean, std, fails) = stats;
    if mean.is_nan() {
        return format!("FAIL x{fails}");
    }
    if fails > 0 {
        format!("{mean:.0}±{std:.0} ({fails} fail)")
    } else {
        format!("{mean:.0}±{std:.0}")
    }
}

/// Prints a table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    print!("{:>14}", "param");
    for c in columns {
        print!(" | {c:>18}");
    }
    println!();
}

/// Prints one table row.
pub fn row(param: &str, cells: &[String]) {
    print!("{param:>14}");
    for c in cells {
        print!(" | {c:>18}");
    }
    println!();
}

/// Exact diameter of `g`.
pub fn diameter(g: &Graph) -> u32 {
    g.bfs(NodeId::new(0)).max_level()
}

/// Test payloads for k-message runs.
pub fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64((i.wrapping_mul(0x9E37) + 1) & 0xFFFF, 32)).collect()
}

/// Measured completion round of the Theorem 1.1 pipeline.
pub fn run_ghk_single(g: &Graph, params: &Params, seed: u64) -> Option<u64> {
    broadcast_single(g, NodeId::new(0), 0xFEED, params, seed).completion_round
}

/// Measured completion round of BGI Decay.
pub fn run_decay(g: &Graph, params: &Params, seed: u64) -> Option<u64> {
    let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
        DecayBroadcast::new(params, (id.index() == 0).then_some(DecayMsg(1)))
    });
    sim.run_until(MAX_ROUNDS, |ns| ns.iter().all(DecayBroadcast::is_informed))
}

/// Measured completion round of the CR-style baseline.
pub fn run_cr(g: &Graph, params: &Params, seed: u64) -> Option<u64> {
    let d = diameter(g);
    let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
        baselines::cr::CrBroadcast::new(
            params,
            d,
            (id.index() == 0).then_some(baselines::cr::CrMsg(1)),
        )
    });
    sim.run_until(MAX_ROUNDS, |ns| ns.iter().all(baselines::cr::CrBroadcast::is_informed))
}

/// Measured completion round of the known-topology GST broadcast (k = 1),
/// the Gasieniec–Peleg–Xin reference point.
pub fn run_gpx_known(g: &Graph, params: &Params, seed: u64) -> Option<u64> {
    broadcast_known(
        g,
        NodeId::new(0),
        &payloads(1),
        params,
        seed,
        KnownRunOpts::new().with_max_rounds(MAX_ROUNDS),
    )
    .completion_round
}

/// Measured completion round of Theorem 1.2 (known topology, k messages).
pub fn run_known_k(g: &Graph, params: &Params, seed: u64, k: usize, key: SlowKey) -> Option<u64> {
    broadcast_known(
        g,
        NodeId::new(0),
        &payloads(k),
        params,
        seed,
        KnownRunOpts::new().with_slow_key(key).with_max_rounds(MAX_ROUNDS),
    )
    .completion_round
}

/// Measured completion round of Theorem 1.3 (unknown topology, k messages).
pub fn run_unknown_k(
    g: &Graph,
    params: &Params,
    seed: u64,
    k: usize,
    mode: BatchMode,
) -> Option<u64> {
    broadcast_unknown(g, NodeId::new(0), &payloads(k), params, seed, mode).completion_round
}

/// Measured completion round of the routing (no-coding) baseline.
pub fn run_routing_k(g: &Graph, params: &Params, seed: u64, k: usize) -> Option<u64> {
    use baselines::routing::RoutingNode;
    use broadcast::schedule::{SchedLabels, ScheduleConfig};
    let mut rng = radio_sim::rng::stream_rng(seed, 777);
    let (tree, _) = gst::build_gst(
        g,
        &[NodeId::new(0)],
        &mut rng,
        &gst::BuildConfig::for_nodes(g.node_count()),
    );
    let vd = gst::VirtualDistances::compute(g, &tree);
    let cfg = ScheduleConfig::from_params(params);
    let words: Vec<u64> = (0..k as u64).collect();
    let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
        let node = RoutingNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), k);
        if id.index() == 0 {
            node.with_messages(&words)
        } else {
            node
        }
    });
    sim.run_until(MAX_ROUNDS, |ns| ns.iter().all(RoutingNode::is_complete))
}

/// Cluster-chain with ~fixed node budget and the requested cluster count.
pub fn chain_with_n(clusters: usize, n_target: usize) -> Graph {
    let size = (n_target / clusters).max(2);
    radio_sim::graph::generators::cluster_chain(clusters, size)
}
