//! E12 — Section 3.4: ring decomposition and batch pipelining.
//!
//! Forces small ring widths so the multi-ring machinery (parallel slotted
//! construction, FEC handoffs, cross-ring batch pipeline) runs; measures
//! completion vs ring width and vs batch size.

use bench::*;
use broadcast::multi_message::BatchMode;
use radio_sim::graph::generators;

fn main() {
    header(
        "E12a: single message vs ring width (cluster_chain(10,4), adaptive pipeline)",
        &["ring width", "rings", "GHK-CD rounds"],
    );
    let g = generators::cluster_chain(10, 4);
    let d = diameter(&g);
    // The adaptive default (no override) plus forced widths: narrow rings
    // construct in parallel and hand off pay-as-you-go, so the auto row
    // should win or tie the forced sweeps.
    let auto_width = bench_params(g.node_count()).adaptive_ring_width(d);
    for (label, width) in [("auto", None), ("4", Some(4u32)), ("8", Some(8)), ("20", Some(20))] {
        let mut params = bench_params(g.node_count());
        params.ring_width = width;
        let w = width.unwrap_or(auto_width);
        let rings = (d + 1).div_ceil(w.max(2));
        let r: Vec<_> = (0..SEEDS).map(|s| run_ghk_single(&g, &params, s)).collect();
        row(label, &[format!("{w}"), format!("{rings}"), cell(mean_std(&r))]);
    }

    header("E12b: k=6 messages vs batch size with 4-layer rings", &["batch size", "T1.3 rounds"]);
    for batch in [2usize, 3, 6] {
        let mut params = bench_params(g.node_count());
        params.ring_width = Some(4);
        let r: Vec<_> = (0..SEEDS)
            .map(|s| run_unknown_k(&g, &params, s, 6, BatchMode::Generations(batch)))
            .collect();
        row(&format!("{batch}"), &[format!("{batch}"), cell(mean_std(&r))]);
    }
}
