//! Machine-readable perf tracker: runs the flagship pipelines (E1/E2 single
//! message, the adaptive Theorem 1.3 multi-message scenarios) and the
//! million-node idle-round microbench, then writes `BENCH_pipeline.json` at
//! the repo root — rounds, wall-clock and engine skip counters — so the perf
//! trajectory is tracked from PR 3 onward. CI runs this in release mode as a
//! smoke job.
//!
//! ```sh
//! cargo bench --bench perf_pipeline            # writes BENCH_pipeline.json
//! BENCH_OUT=/tmp/p.json cargo bench --bench perf_pipeline
//! ```

use broadcast::decay::{DecayBroadcast, DecayMsg};
use broadcast::multi_message::{broadcast_unknown, BatchMode};
use broadcast::single_message::broadcast_single;
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::rng::stream_rng;
use radio_sim::trace::RunStats;
use radio_sim::{CollisionMode, DenseWrap, NodeId, Simulator};
use rlnc::gf2::BitVec;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured pipeline run.
struct Entry {
    name: &'static str,
    rounds: u64,
    cap: u64,
    wall_ms: f64,
    stats: RunStats,
}

fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64(0xBEE0 + i, 32)).collect()
}

fn single(name: &'static str, g: radio_sim::Graph, seed: u64) -> Entry {
    let params = Params::scaled(g.node_count());
    let t = Instant::now();
    let out = broadcast_single(&g, NodeId::new(0), 0xFEED, &params, seed);
    Entry {
        name,
        rounds: out.completion_round.expect("single pipeline completes"),
        cap: out.plan.total_rounds(),
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        stats: out.stats,
    }
}

fn multi(name: &'static str, g: radio_sim::Graph, k: usize, mode: BatchMode, seed: u64) -> Entry {
    let params = Params::scaled(g.node_count());
    let t = Instant::now();
    let out = broadcast_unknown(&g, NodeId::new(0), &payloads(k), &params, seed, mode);
    Entry {
        name,
        rounds: out.completion_round.expect("multi pipeline completes"),
        cap: out.rounds_budget,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        stats: out.stats,
    }
}

/// The idle-heavy engine microbench: Decay broadcast from one end of a
/// million-node path, where almost every node is uninformed (and therefore
/// asleep on the wake path) for the whole run.
fn idle_microbench(n: usize, rounds: u64) -> (f64, f64, RunStats) {
    let make_graph = || generators::path(n);
    let params = Params::scaled(n);

    // Time only the simulated rounds: graph/simulator construction is the
    // same O(n) on both paths and would mask the per-round contrast.
    let mut dense = Simulator::new(make_graph(), CollisionMode::NoDetection, 1, |id| {
        DenseWrap(DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(1))))
    });
    let t = Instant::now();
    dense.run(rounds);
    let dense_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut wake = Simulator::new(make_graph(), CollisionMode::NoDetection, 1, |id| {
        DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(1)))
    });
    let t = Instant::now();
    wake.run(rounds);
    let wake_ms = t.elapsed().as_secs_f64() * 1e3;

    // The wake path must be a faithful fast path, not a different run.
    assert_eq!(dense.stats().transmissions, wake.stats().transmissions);
    assert_eq!(dense.stats().deliveries, wake.stats().deliveries);
    (dense_ms, wake_ms, wake.stats().clone())
}

fn json_entry(out: &mut String, e: &Entry) {
    let _ = write!(
        out,
        "    {{\"name\": \"{}\", \"rounds\": {}, \"cap\": {}, \"wall_ms\": {:.2}, \
         \"transmissions\": {}, \"deliveries\": {}, \"observe_skips\": {}, \
         \"act_skips\": {}, \"idle_fastforward\": {}}}",
        e.name,
        e.rounds,
        e.cap,
        e.wall_ms,
        e.stats.transmissions,
        e.stats.deliveries,
        e.stats.observe_skips,
        e.stats.act_skips,
        e.stats.idle_fastforward,
    );
}

fn main() {
    let mut entries = Vec::new();

    // E1: the emergency-alert corridor (Theorem 1.1, adaptive).
    entries.push(single("e1_corridor_single", generators::cluster_chain(20, 6), 1));
    // E2: a dense unit-disk deployment (Theorem 1.1, adaptive).
    let mut rng = stream_rng(2024, 0);
    entries.push(single("e2_unit_disk_single", generators::unit_disk(80, 0.18, &mut rng), 1));
    // The telemetry-backhaul scenario (Theorem 1.3, adaptive, FullK).
    entries.push(multi(
        "multi_telemetry_backhaul",
        generators::cluster_chain(6, 6),
        8,
        BatchMode::FullK,
        11,
    ));
    // The firmware-update topology (Theorem 1.3, adaptive, generations).
    entries.push(multi(
        "multi_firmware_grid",
        generators::grid(6, 6),
        8,
        BatchMode::Generations(4),
        3,
    ));

    let (n, rounds) = (1_000_000, 300);
    let (dense_ms, wake_ms, wake_stats) = idle_microbench(n, rounds);
    let speedup = dense_ms / wake_ms.max(1e-9);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"generated_by\": \"cargo bench --bench perf_pipeline\",");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        json_entry(&mut out, e);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"idle_microbench\": {{\"nodes\": {n}, \"rounds\": {rounds}, \
         \"dense_ms\": {dense_ms:.2}, \"wake_ms\": {wake_ms:.2}, \"speedup\": {speedup:.1}, \
         \"act_skips\": {}}}",
        wake_stats.act_skips
    );
    out.push_str("}\n");

    for e in &entries {
        println!(
            "{:>26}: {:>7} rounds (cap {:>9}) in {:>8.2} ms  [obs skips {}, act skips {}]",
            e.name, e.rounds, e.cap, e.wall_ms, e.stats.observe_skips, e.stats.act_skips
        );
    }
    println!(
        "{:>26}: dense {dense_ms:.1} ms vs wake {wake_ms:.1} ms -> {speedup:.0}x on {n} nodes",
        "idle_microbench"
    );
    assert!(speedup >= 50.0, "idle microbench speedup regressed: {speedup:.1}x < 50x");

    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
    });
    std::fs::write(&path, out).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
